// Package fastcache is a scaled-down model of VictoriaMetrics/fastcache: a
// sharded in-memory byte cache. It reproduces the patterns §6.1 discusses:
// Get with inter-procedural nested but non-conflicting locks (bucket lock
// inside cache-level bookkeeping), a Set that may panic (and is therefore
// not transformed), and atomic counters inside critical sections.
package fastcache

import "sync"

type bucketStats struct {
	mu       sync.Mutex
	getCalls int
	setCalls int
	misses   int
}

func (s *bucketStats) addGet() {
	s.mu.Lock()
	s.getCalls++
	s.mu.Unlock()
}

type bucket struct {
	mu    sync.RWMutex
	items map[uint64]uint64
	gen   int
}

func (b *bucket) get(h uint64) (uint64, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	v, ok := b.items[h]
	return v, ok
}

func (b *bucket) has(h uint64) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	_, ok := b.items[h]
	return ok
}

func (b *bucket) set(h uint64, v uint64) {
	if v > maxValue() {
		panic("fastcache: value too large")
	}
	b.mu.Lock()
	b.items[h] = v
	b.gen++
	b.mu.Unlock()
}

func (b *bucket) del(h uint64) {
	b.mu.Lock()
	delete(b.items, h)
	b.mu.Unlock()
}

func (b *bucket) reset() {
	b.mu.Lock()
	b.items = map[uint64]uint64{}
	b.gen = 0
	b.mu.Unlock()
}

func (b *bucket) count() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.items)
}

type Cache struct {
	shards  []bucket
	stats   bucketStats
	nshards int
}

func (c *Cache) Get(key uint64) (uint64, bool) {
	c.stats.addGet()
	idx := key % uint64(c.nshards)
	v, ok := c.shards[idx].get(key)
	return v, ok
}

func (c *Cache) Has(key uint64) bool {
	idx := key % uint64(c.nshards)
	return c.shards[idx].has(key)
}

func (c *Cache) Set(key uint64, v uint64) {
	idx := key % uint64(c.nshards)
	c.shards[idx].set(key, v)
}

func (c *Cache) Del(key uint64) {
	idx := key % uint64(c.nshards)
	c.shards[idx].del(key)
}

func (c *Cache) Reset() {
	for i := 0; i < c.nshards; i++ {
		c.shards[i].reset()
	}
}

func (c *Cache) EntryCount() int {
	n := 0
	for i := 0; i < c.nshards; i++ {
		n = n + c.shards[i].count()
	}
	return n
}

type statsView struct {
	mu     sync.Mutex
	copied bool
}

func (s *statsView) UpdateStats(c *Cache) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.copied = true
}

func (s *statsView) SaveStats(c *Cache) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Println("stats")
}

func maxValue() uint64 {
	return 1 << 30
}
