// Package gocache is a scaled-down model of patrickmn/go-cache: an
// in-memory key/value store with expiration. It reproduces the original's
// locking signature: RWMutex-protected map, and the repeating
// early-unlock-then-return pattern that makes many unlock points fail the
// post-dominance test (the paper's Table 1 shows go-cache with by far the
// most dominance violations).
package gocache

import "sync"

type Item struct {
	Object     int
	Expiration int
}

type Cache struct {
	mu              sync.RWMutex
	items           map[string]Item
	defaultExpiry   int
	cleanupInterval int
}

func (c *Cache) Set(k string, v int, d int) {
	c.mu.Lock()
	c.items[k] = Item{Object: v, Expiration: d}
	c.mu.Unlock()
}

func (c *Cache) SetDefault(k string, v int) {
	c.mu.Lock()
	c.items[k] = Item{Object: v, Expiration: c.defaultExpiry}
	c.mu.Unlock()
}

func (c *Cache) Get(k string) (int, bool) {
	c.mu.RLock()
	item, found := c.items[k]
	if !found {
		c.mu.RUnlock()
		return 0, false
	}
	if item.Expiration > 0 {
		if expired(item.Expiration) {
			c.mu.RUnlock()
			return 0, false
		}
	}
	c.mu.RUnlock()
	return item.Object, true
}

func (c *Cache) GetWithExpiration(k string) (int, int, bool) {
	c.mu.RLock()
	item, found := c.items[k]
	if !found {
		c.mu.RUnlock()
		return 0, 0, false
	}
	if expired(item.Expiration) {
		c.mu.RUnlock()
		return 0, 0, false
	}
	c.mu.RUnlock()
	return item.Object, item.Expiration, true
}

func (c *Cache) Add(k string, v int, d int) bool {
	c.mu.Lock()
	_, found := c.items[k]
	if found {
		c.mu.Unlock()
		return false
	}
	c.items[k] = Item{Object: v, Expiration: d}
	c.mu.Unlock()
	return true
}

func (c *Cache) Replace(k string, v int, d int) bool {
	c.mu.Lock()
	_, found := c.items[k]
	if !found {
		c.mu.Unlock()
		return false
	}
	c.items[k] = Item{Object: v, Expiration: d}
	c.mu.Unlock()
	return true
}

func (c *Cache) Increment(k string, n int) bool {
	c.mu.Lock()
	item, found := c.items[k]
	if !found {
		c.mu.Unlock()
		return false
	}
	item.Object = item.Object + n
	c.items[k] = item
	c.mu.Unlock()
	return true
}

func (c *Cache) Delete(k string) {
	c.mu.Lock()
	delete(c.items, k)
	c.mu.Unlock()
}

func (c *Cache) ItemCount() int {
	c.mu.RLock()
	n := len(c.items)
	c.mu.RUnlock()
	return n
}

func (c *Cache) Items() map[string]Item {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m := make(map[string]Item, len(c.items))
	for k, v := range c.items {
		if !expired(v.Expiration) {
			m[k] = v
		}
	}
	return m
}

func (c *Cache) Flush() {
	c.mu.Lock()
	c.items = map[string]Item{}
	c.mu.Unlock()
}

func (c *Cache) DeleteExpired() {
	c.mu.Lock()
	for k, v := range c.items {
		if expired(v.Expiration) {
			delete(c.items, k)
		}
	}
	c.mu.Unlock()
}

func (c *Cache) save() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for k, v := range c.items {
		fmt.Println(k, v.Object)
	}
}

func expired(e int) bool {
	if e == 0 {
		return false
	}
	return e < now()
}

func now() int {
	return 0
}

// Benchmark-style direct map access guarded by an RWMutex, mirroring the
// go-cache benchmarks that GOCC transforms in the benchmark files
// themselves.
type RWMap struct {
	mu sync.RWMutex
	m  map[string]string
}

func (r *RWMap) Read(k string) string {
	r.mu.RLock()
	v := r.m[k]
	r.mu.RUnlock()
	return v
}

func (r *RWMap) Write(k string, v string) {
	r.mu.Lock()
	r.m[k] = v
	r.mu.Unlock()
}
