// Package set is a scaled-down model of Workiva/go-datastructures' set: a
// thread-safe set whose benchmarks (Len, Exists, Flatten, Clear) drive the
// paper's Figure 8.
package set

import "sync"

type Set struct {
	mu      sync.Mutex
	items   map[uint64]bool
	flat    []uint64
	dirty   bool
	version int
}

func (s *Set) Add(item uint64) {
	s.mu.Lock()
	s.items[item] = true
	s.dirty = true
	s.version++
	s.mu.Unlock()
}

func (s *Set) Remove(item uint64) {
	s.mu.Lock()
	delete(s.items, item)
	s.dirty = true
	s.mu.Unlock()
}

func (s *Set) Exists(item uint64) bool {
	s.mu.Lock()
	_, ok := s.items[item]
	s.mu.Unlock()
	return ok
}

func (s *Set) Len() int {
	s.mu.Lock()
	n := len(s.items)
	s.mu.Unlock()
	return n
}

func (s *Set) Flatten() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.dirty {
		return s.flat
	}
	s.flat = s.flat[0:0]
	for item, _ := range s.items {
		s.flat = append(s.flat, item)
	}
	s.dirty = false
	return s.flat
}

func (s *Set) Clear() {
	s.mu.Lock()
	s.items = map[uint64]bool{}
	s.flat = s.flat[0:0]
	s.dirty = false
	s.mu.Unlock()
}

func (s *Set) All(items []uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, item := range items {
		_, ok := s.items[item]
		if !ok {
			return false
		}
	}
	return true
}

type RWSet struct {
	mu    sync.RWMutex
	items map[uint64]bool
}

func (s *RWSet) Exists(item uint64) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.items[item]
	return ok
}

func (s *RWSet) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.items)
}

func (s *RWSet) Add(item uint64) {
	s.mu.Lock()
	s.items[item] = true
	s.mu.Unlock()
}
