// Package tally is a scaled-down model of uber-go/tally: a buffered stats
// collection library with counters, gauges, histograms and scopes. Lock
// usage mirrors the original: registry maps behind RWMutexes, hot
// read-mostly lookup paths, defer-heavy unlock style, and IO confined to
// the reporting path.
package tally

import "sync"

type Counter struct {
	mu   sync.Mutex
	prev int
	curr int
}

func (c *Counter) Inc(delta int) {
	c.mu.Lock()
	c.curr = c.curr + delta
	c.mu.Unlock()
}

func (c *Counter) Value() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := c.curr - c.prev
	return v
}

func (c *Counter) snapshot() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.prev = c.curr
	return c.curr
}

type Gauge struct {
	mu      sync.Mutex
	value   int
	updated bool
}

func (g *Gauge) Update(v int) {
	g.mu.Lock()
	g.value = v
	g.updated = true
	g.mu.Unlock()
}

func (g *Gauge) Value() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.value
}

type HistogramBucket struct {
	mu      sync.Mutex
	samples int
	sum     int
}

func (b *HistogramBucket) Record(v int) {
	b.mu.Lock()
	b.samples++
	b.sum = b.sum + v
	b.mu.Unlock()
}

type Histogram struct {
	mu      sync.RWMutex
	buckets map[int]int
	count   int
}

func (h *Histogram) RecordValue(v int) {
	h.mu.Lock()
	h.buckets[v] = h.buckets[v] + 1
	h.count++
	h.mu.Unlock()
}

func (h *Histogram) Exists(v int) bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	_, ok := h.buckets[v]
	return ok
}

func (h *Histogram) Count() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.count
}

type Scope struct {
	cm         sync.RWMutex
	gm         sync.RWMutex
	hm         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	prefix     string
}

func (s *Scope) Counter(name string) *Counter {
	s.cm.RLock()
	c, ok := s.counters[name]
	s.cm.RUnlock()
	if ok {
		return c
	}
	s.cm.Lock()
	defer s.cm.Unlock()
	c, ok = s.counters[name]
	if !ok {
		c = newCounter()
		s.counters[name] = c
	}
	return c
}

func (s *Scope) Gauge(name string) *Gauge {
	s.gm.RLock()
	g, ok := s.gauges[name]
	s.gm.RUnlock()
	if ok {
		return g
	}
	s.gm.Lock()
	defer s.gm.Unlock()
	g, ok = s.gauges[name]
	if !ok {
		g = newGauge()
		s.gauges[name] = g
	}
	return g
}

func (s *Scope) Histogram(name string) *Histogram {
	s.hm.RLock()
	h, ok := s.histograms[name]
	s.hm.RUnlock()
	if ok {
		return h
	}
	s.hm.Lock()
	defer s.hm.Unlock()
	h, ok = s.histograms[name]
	if !ok {
		h = newHistogram()
		s.histograms[name] = h
	}
	return h
}

func (s *Scope) HistogramExists(name string) bool {
	s.hm.RLock()
	defer s.hm.RUnlock()
	_, ok := s.histograms[name]
	return ok
}

func (s *Scope) CounterCount() int {
	s.cm.RLock()
	defer s.cm.RUnlock()
	return len(s.counters)
}

func (s *Scope) report() {
	s.cm.RLock()
	defer s.cm.RUnlock()
	for name, c := range s.counters {
		fmt.Println(name, c.Value())
	}
}

func (s *Scope) reportLoop(ch chan int) {
	s.cm.RLock()
	n := len(s.counters)
	s.cm.RUnlock()
	ch <- n
}

func newCounter() *Counter {
	return &Counter{}
}

func newGauge() *Gauge {
	return &Gauge{}
}

func newHistogram() *Histogram {
	h := &Histogram{}
	return h
}

func sanitize(name string) string {
	return name
}

type CachedCount struct {
	mu    sync.Mutex
	cache map[string]int
	hits  int
}

func (cc *CachedCount) Get(key string) int {
	cc.mu.Lock()
	v, ok := cc.cache[key]
	if ok {
		cc.hits++
		cc.mu.Unlock()
		return v
	}
	cc.mu.Unlock()
	return 0
}
