// Package zap is a scaled-down model of uber-go/zap: fast structured
// logging. Being a logging library, most critical sections perform IO, so
// GOCC rewrites comparatively few locks (§6.1: "Being a logging library,
// it has several IO operations, and hence GOCC rewrote fewer locks").
package zap

import "sync"

type buffer struct {
	data []int
	n    int
}

type WriteSyncer struct {
	mu  sync.Mutex
	buf buffer
}

func (w *WriteSyncer) Write(v int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	fmt.Println(v)
}

func (w *WriteSyncer) Sync() {
	w.mu.Lock()
	defer w.mu.Unlock()
	os.Sync()
}

type Core struct {
	mu      sync.Mutex
	level   int
	fields  map[string]int
	enabled bool
}

func (c *Core) Enabled(lvl int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return lvl >= c.level
}

func (c *Core) SetLevel(lvl int) {
	c.mu.Lock()
	c.level = lvl
	c.mu.Unlock()
}

func (c *Core) With(key string, value int) {
	c.mu.Lock()
	c.fields[key] = value
	c.mu.Unlock()
}

func (c *Core) FieldCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.fields)
}

func (c *Core) Check(lvl int) bool {
	c.mu.Lock()
	ok := c.enabled
	if !ok {
		c.mu.Unlock()
		return false
	}
	pass := lvl >= c.level
	c.mu.Unlock()
	return pass
}

type SugaredLogger struct {
	mu   sync.Mutex
	core *Core
	name string
}

func (s *SugaredLogger) Infow(msg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Println(msg)
}

func (s *SugaredLogger) Named(n string) {
	s.mu.Lock()
	s.name = n
	s.mu.Unlock()
}

type Registry struct {
	mu      sync.RWMutex
	loggers map[string]*SugaredLogger
}

func (r *Registry) Lookup(name string) *SugaredLogger {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.loggers[name]
}

func (r *Registry) Register(name string, l *SugaredLogger) {
	r.mu.Lock()
	r.loggers[name] = l
	r.mu.Unlock()
}

func (r *Registry) Each() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, l := range r.loggers {
		if l != nil {
			n++
		}
	}
	return n
}

type LevelFlag struct {
	mu  sync.RWMutex
	lvl int
}

func (f *LevelFlag) Level() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.lvl
}

func (f *LevelFlag) SetLevel(v int) {
	f.mu.Lock()
	f.lvl = v
	f.mu.Unlock()
}
