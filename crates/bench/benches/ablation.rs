//! Criterion ablations for the design choices DESIGN.md calls out:
//! retry budget (`MAX_ATTEMPTS`), perceptron decay threshold, and HTM
//! write-capacity limits.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gocc_htm::HtmConfig;
use gocc_optilock::{
    call_site, ElidableMutex, GoccConfig, GoccRuntime, LockRef, PerceptronConfig, RetryPolicy,
};
use gocc_txds::TxCounter;
use gocc_workloads::{Engine, Mode};

/// One contended read-modify-write through optiLib under `threads`.
fn contended_ops(rt: &GoccRuntime, threads: usize, iters: u64) {
    let engine = Engine::new(rt, Mode::Gocc);
    let m = ElidableMutex::new();
    let shared = TxCounter::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            let (engine, m, shared) = (&engine, &m, &shared);
            s.spawn(move || {
                for _ in 0..iters {
                    engine.section(call_site!(), LockRef::Mutex(m), |tx| shared.add(tx, 1));
                }
            });
        }
    });
}

fn retry_budget(c: &mut Criterion) {
    gocc_gosync::set_procs(8);
    let mut group = c.benchmark_group("retry_budget");
    group
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
        .sample_size(10);
    for attempts in [0u32, 1, 3, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(attempts),
            &attempts,
            |b, &attempts| {
                let config = GoccConfig {
                    policy: RetryPolicy {
                        max_attempts: attempts,
                        ..RetryPolicy::default()
                    },
                    ..GoccConfig::standard()
                };
                b.iter(|| {
                    let rt = GoccRuntime::new(config.clone());
                    contended_ops(&rt, 4, 200);
                });
            },
        );
    }
    group.finish();
}

fn perceptron_decay(c: &mut Criterion) {
    gocc_gosync::set_procs(8);
    let mut group = c.benchmark_group("perceptron_decay");
    group
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
        .sample_size(10);
    for decay in [10u32, 100, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(decay), &decay, |b, &decay| {
            let config = GoccConfig {
                perceptron: PerceptronConfig {
                    decay_threshold: decay,
                    ..Default::default()
                },
                ..GoccConfig::standard()
            };
            // Unfriendly section: the perceptron parks it on the slow path;
            // smaller decay thresholds retry HTM more often (wasted work).
            b.iter(|| {
                let rt = GoccRuntime::new(config.clone());
                let engine = Engine::new(&rt, Mode::Gocc);
                let m = ElidableMutex::new();
                for _ in 0..500 {
                    engine.section(call_site!(), LockRef::Mutex(&m), |tx| tx.unfriendly());
                }
            });
        });
    }
    group.finish();
}

fn write_capacity(c: &mut Criterion) {
    gocc_gosync::set_procs(8);
    let mut group = c.benchmark_group("write_capacity");
    group
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
        .sample_size(10);
    // A section writing 64 distinct lines: fits a 512-line L1D model,
    // overflows a 16-line toy model (forcing the slow path every time).
    for cap in [16usize, 64, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            let config = GoccConfig {
                htm: HtmConfig {
                    max_write_lines: cap,
                    ..HtmConfig::coffee_lake()
                },
                ..GoccConfig::standard()
            };
            b.iter(|| {
                let rt = GoccRuntime::new(config.clone());
                let engine = Engine::new(&rt, Mode::Gocc);
                let m = ElidableMutex::new();
                let cells: Vec<gocc_htm::Padded<TxCounter>> = (0..64)
                    .map(|_| gocc_htm::Padded(TxCounter::new(0)))
                    .collect();
                for _ in 0..50 {
                    engine.section(call_site!(), LockRef::Mutex(&m), |tx| {
                        for c in &cells {
                            c.0.add(tx, 1)?;
                        }
                        Ok(())
                    });
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, retry_budget, perceptron_decay, write_capacity);
criterion_main!(benches);
