//! Runtime-configuration and parameter ablations on `run_parallel`.
//!
//! Replaces the old external-harness ablation bench with a self-contained
//! binary. Part 1 runs four configurations over the same op mix at each
//! core count:
//!
//! - `lock`          — pessimistic baseline (no elision at all)
//! - `gocc`          — the shipped configuration (perceptron-gated HTM)
//! - `gocc-np`       — "No Perceptron": always attempt HTM
//! - `gocc-telemetry`— shipped configuration + per-site telemetry on,
//!   so the artifact quantifies the observability tax directly against
//!   `gocc` (the <5% budget from the telemetry design).
//!
//! The workload mixes a contended shared counter (conflicts scale with
//! cores) with a striped read-mostly probe, so both the abort path and
//! the fast-commit path are exercised.
//!
//! Part 2 reproduces the design-parameter sweeps the paper implies but
//! does not plot: retry budget on a truly-conflicting section, perceptron
//! decay threshold on a hopeless section, and HTM write capacity on a
//! wide-write section.

use std::time::Duration;

use gocc_bench::{run_parallel, stats_fields, write_artifact, CORE_COUNTS};
use gocc_optilock::{call_site, ElidableMutex, GoccConfig, GoccRuntime, LockRef};
use gocc_telemetry::JsonWriter;
use gocc_txds::TxCounter;
use gocc_workloads::{Engine, Mode};

const WINDOW: Duration = Duration::from_millis(200);
const STRIPES: usize = 64;

struct Config {
    name: &'static str,
    mode: Mode,
    build: fn() -> GoccConfig,
}

fn measure(mode: Mode, config: GoccConfig, cores: usize) -> (f64, GoccRuntime) {
    let rt = GoccRuntime::new(config);
    let engine = Engine::new(&rt, mode);
    let hot = ElidableMutex::new();
    let hot_counter = TxCounter::new(0);
    let stripes: Vec<(ElidableMutex, TxCounter)> = (0..STRIPES)
        .map(|_| (ElidableMutex::new(), TxCounter::new(0)))
        .collect();
    let op = |w: usize, i: u64| {
        if i % 4 == 0 {
            // Contended write: every worker hits the same counter.
            engine.section(call_site!(), LockRef::Mutex(&hot), |tx| {
                hot_counter.add(tx, 1)
            });
        } else {
            // Striped read-mostly probe: mostly conflict-free.
            let (m, c) = &stripes[(w * 17 + i as usize) % STRIPES];
            engine.section(call_site!(), LockRef::Mutex(m), |tx| {
                let v = c.get(tx)?;
                std::hint::black_box(v);
                Ok(())
            });
        }
    };
    run_parallel(cores, WINDOW / 4, op);
    let ns = run_parallel(cores, WINDOW, op);
    (ns, rt)
}

fn main() {
    // Pinned to 8 procs for the whole sweep (unlike the figure sweeps,
    // which set procs per core point): this bench compares speculation
    // *configurations*, and at procs=1 the §5.4.2 bypass would route
    // every gocc variant to the identical slow path, erasing the signal.
    gocc_gosync::set_procs(8);
    println!("== Ablation: lock / gocc / gocc-np / gocc-telemetry ==");
    println!(
        "{:<16} | per core count: ns/op  (vs-gocc %, positive = slower than gocc)",
        "config"
    );
    println!("{}", "-".repeat(110));

    let configs = [
        Config {
            name: "lock",
            mode: Mode::Lock,
            build: GoccConfig::standard,
        },
        Config {
            name: "gocc",
            mode: Mode::Gocc,
            build: GoccConfig::standard,
        },
        Config {
            name: "gocc-np",
            mode: Mode::Gocc,
            build: GoccConfig::no_perceptron,
        },
        Config {
            name: "gocc-telemetry",
            mode: Mode::Gocc,
            build: GoccConfig::with_telemetry,
        },
    ];

    // Measure everything first so the gocc reference column exists when
    // printing relative numbers.
    let mut ns = vec![[0.0f64; CORE_COUNTS.len()]; configs.len()];
    let mut runs: Vec<Vec<(gocc_htm::StatsSnapshot, gocc_optilock::OptiStatsSnapshot)>> =
        Vec::new();
    for (ci, c) in configs.iter().enumerate() {
        let mut per_core = Vec::new();
        for (ki, &cores) in CORE_COUNTS.iter().enumerate() {
            let prev = gocc_htm::contention::set_sim_cores(cores);
            let (n, rt) = measure(c.mode, (c.build)(), cores);
            gocc_htm::contention::set_sim_cores(prev);
            ns[ci][ki] = n;
            per_core.push((rt.htm().stats().snapshot(), rt.stats().snapshot()));
        }
        runs.push(per_core);
    }
    let gocc_idx = 1;

    let mut w = JsonWriter::new();
    w.begin_object().field_str("figure", "ablation");
    w.key("core_counts").begin_array();
    for &c in &CORE_COUNTS {
        w.u64(c as u64);
    }
    w.end_array();
    w.key("configs").begin_array();
    for (ci, c) in configs.iter().enumerate() {
        print!("{:<16}", c.name);
        w.begin_object().field_str("name", c.name);
        w.key("points").begin_array();
        for (ki, &cores) in CORE_COUNTS.iter().enumerate() {
            let vs_gocc = (ns[ci][ki] / ns[gocc_idx][ki] - 1.0) * 100.0;
            print!(" | {:>2}c {:>8.1} ({:>+6.1}%)", cores, ns[ci][ki], vs_gocc);
            let (htm, opti) = &runs[ci][ki];
            w.begin_object()
                .field_u64("cores", cores as u64)
                .field_f64("ns_per_op", ns[ci][ki])
                .field_f64("vs_gocc_pct", vs_gocc);
            stats_fields(&mut w, htm, opti);
            w.end_object();
        }
        w.end_array().end_object();
        println!();
    }
    w.end_array();

    // Headline telemetry-overhead number: geomean across core counts of
    // the gocc-telemetry vs gocc ratio.
    let telemetry_idx = 3;
    let mut log_sum = 0.0;
    for ki in 0..CORE_COUNTS.len() {
        log_sum += (ns[telemetry_idx][ki] / ns[gocc_idx][ki]).ln();
    }
    let telemetry_overhead = (log_sum / CORE_COUNTS.len() as f64).exp() * 100.0 - 100.0;
    w.field_f64("telemetry_overhead_pct", telemetry_overhead);

    println!();
    println!("telemetry-on geomean overhead vs shipped config: {telemetry_overhead:+.2}%");

    parameter_sweeps(&mut w);
    w.end_object();
    write_artifact("ablation", &w.finish());
}

/// The design-parameter sweeps the old ablation harness carried: each
/// varies one knob of [`GoccConfig`] on a workload chosen to stress it.
fn parameter_sweeps(w: &mut JsonWriter) {
    const SWEEP_CORES: usize = 4;
    println!();
    println!("-- parameter sweeps ({SWEEP_CORES} workers) --");

    // Retry budget on a truly-conflicting counter: every attempt beyond
    // the first is wasted work, so tiny budgets should win.
    w.key("retry_budget").begin_array();
    for budget in [0u32, 1, 3, 8] {
        let mut config = GoccConfig::no_perceptron();
        config.policy.max_attempts = budget;
        let (ns, _) = measure(Mode::Gocc, config, SWEEP_CORES);
        println!("retry budget {budget:>2}: {ns:>10.1} ns/op");
        w.begin_object()
            .field_u64("max_attempts", u64::from(budget))
            .field_f64("ns_per_op", ns)
            .end_object();
    }
    w.end_array();

    // Decay threshold on the same hopeless section, perceptron on: small
    // thresholds resurrect HTM attempts too eagerly.
    w.key("perceptron_decay").begin_array();
    for decay in [10u32, 100, 1000] {
        let mut config = GoccConfig::standard();
        config.perceptron.decay_threshold = decay;
        let (ns, _) = measure(Mode::Gocc, config, SWEEP_CORES);
        println!("decay {decay:>5}   : {ns:>10.1} ns/op");
        w.begin_object()
            .field_u64("decay_threshold", u64::from(decay))
            .field_f64("ns_per_op", ns)
            .end_object();
    }
    w.end_array();

    // Write capacity on a wide-write section (one op touches ~64 cells):
    // whether the section fits decides capacity-abort rate.
    w.key("write_capacity").begin_array();
    for cap in [16usize, 64, 512] {
        let mut config = GoccConfig::standard();
        config.htm.max_write_lines = cap;
        let ns = measure_wide_writes(config, SWEEP_CORES);
        println!("write cap {cap:>4} : {ns:>10.1} ns/op");
        w.begin_object()
            .field_u64("max_write_lines", cap as u64)
            .field_f64("ns_per_op", ns)
            .end_object();
    }
    w.end_array();
}

fn measure_wide_writes(config: GoccConfig, cores: usize) -> f64 {
    let rt = GoccRuntime::new(config);
    let engine = Engine::new(&rt, Mode::Gocc);
    let stripes: Vec<(ElidableMutex, Vec<TxCounter>)> = (0..STRIPES)
        .map(|_| {
            (
                ElidableMutex::new(),
                (0..64).map(|_| TxCounter::new(0)).collect(),
            )
        })
        .collect();
    let op = |wk: usize, i: u64| {
        let (m, cells) = &stripes[(wk * 7 + i as usize) % STRIPES];
        engine.section(call_site!(), LockRef::Mutex(m), |tx| {
            for c in cells {
                c.add(tx, 1)?;
            }
            Ok(())
        });
    };
    let prev = gocc_htm::contention::set_sim_cores(cores);
    run_parallel(cores, WINDOW / 4, op);
    let ns = run_parallel(cores, WINDOW, op);
    gocc_htm::contention::set_sim_cores(prev);
    ns
}
