//! `bench_schema` — validates benchmark artifacts against the common
//! schema every `BENCH_*.json` must carry.
//!
//! Each artifact must parse with the workspace's own JSON parser and
//! open with the header [`gocc_bench::artifact_header`] renders: the
//! bench name, the mode list, the driving script's git revision and
//! wall-clock budget. The perf trajectory across PRs is diffed by
//! machine; an artifact that drops the header silently falls out of that
//! comparison, so CI fails it here instead.
//!
//! With file arguments, checks exactly those; with none, checks every
//! `BENCH_*.json` in the current directory and fails if there are none
//! (a schema check that validated nothing is a misconfigured pipeline,
//! not a pass). `--expect NAME.json` (repeatable) declares an artifact
//! that MUST be present: a bench that silently stopped emitting its
//! file would otherwise pass the glob check by absence, and its perf
//! trajectory would just end without anyone noticing. Expected files
//! are validated along with the rest.

use gocc_telemetry::JsonValue;

fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    let doc = JsonValue::parse(&text).map_err(|e| format!("does not parse: {e}"))?;
    let header = doc.get("header").ok_or("missing \"header\" object")?;
    let name = header
        .get("name")
        .and_then(|v| v.as_str())
        .ok_or("header.name missing or not a string")?;
    let modes = header
        .get("modes")
        .and_then(JsonValue::as_array)
        .ok_or("header.modes missing or not an array")?;
    if modes.is_empty() || modes.iter().any(|m| m.as_str().is_none()) {
        return Err("header.modes must be a non-empty array of strings".into());
    }
    let git_rev = header
        .get("git_rev")
        .and_then(|v| v.as_str())
        .ok_or("header.git_rev missing or not a string")?;
    let budget = header
        .get("budget_secs")
        .and_then(JsonValue::as_f64)
        .ok_or("header.budget_secs missing or not a number")?;
    println!(
        "ok: {path} (name={name} modes={} git_rev={git_rev} budget={budget}s)",
        modes.len()
    );
    Ok(())
}

fn main() {
    let mut paths: Vec<String> = Vec::new();
    let mut expected: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--expect" {
            match args.next() {
                Some(name) => expected.push(name),
                None => {
                    eprintln!("bench_schema: --expect needs a file name");
                    std::process::exit(1);
                }
            }
        } else {
            paths.push(arg);
        }
    }
    if paths.is_empty() {
        let mut found: Vec<String> = std::fs::read_dir(".")
            .expect("reading the current directory")
            .filter_map(Result::ok)
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            .collect();
        found.sort();
        paths = found;
    }
    let mut missing = 0usize;
    for want in &expected {
        if !std::path::Path::new(want).exists() {
            eprintln!("FAIL: expected artifact {want} was not produced");
            missing += 1;
        } else if !paths.contains(want) {
            paths.push(want.clone());
        }
    }
    if missing > 0 {
        eprintln!("bench_schema: {missing} expected artifact(s) missing");
        std::process::exit(1);
    }
    if paths.is_empty() {
        eprintln!("bench_schema: no BENCH_*.json artifacts to validate");
        std::process::exit(1);
    }
    let mut bad = 0usize;
    for path in &paths {
        if let Err(e) = check(path) {
            eprintln!("FAIL: {path}: {e}");
            bad += 1;
        }
    }
    if bad > 0 {
        eprintln!(
            "bench_schema: {bad} of {} artifact(s) violate the schema",
            paths.len()
        );
        std::process::exit(1);
    }
    println!("bench_schema: {} artifact(s) conform", paths.len());
}
