//! `bench_schema` — validates benchmark artifacts against the common
//! schema every `BENCH_*.json` must carry.
//!
//! Each artifact must parse with the workspace's own JSON parser and
//! open with the header [`gocc_bench::artifact_header`] renders: the
//! bench name, the mode list, the driving script's git revision and
//! wall-clock budget. The perf trajectory across PRs is diffed by
//! machine; an artifact that drops the header silently falls out of that
//! comparison, so CI fails it here instead.
//!
//! With file arguments, checks exactly those; with none, checks every
//! `BENCH_*.json` in the current directory and fails if there are none
//! (a schema check that validated nothing is a misconfigured pipeline,
//! not a pass).

use gocc_telemetry::JsonValue;

fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    let doc = JsonValue::parse(&text).map_err(|e| format!("does not parse: {e}"))?;
    let header = doc.get("header").ok_or("missing \"header\" object")?;
    let name = header
        .get("name")
        .and_then(|v| v.as_str())
        .ok_or("header.name missing or not a string")?;
    let modes = header
        .get("modes")
        .and_then(JsonValue::as_array)
        .ok_or("header.modes missing or not an array")?;
    if modes.is_empty() || modes.iter().any(|m| m.as_str().is_none()) {
        return Err("header.modes must be a non-empty array of strings".into());
    }
    let git_rev = header
        .get("git_rev")
        .and_then(|v| v.as_str())
        .ok_or("header.git_rev missing or not a string")?;
    let budget = header
        .get("budget_secs")
        .and_then(JsonValue::as_f64)
        .ok_or("header.budget_secs missing or not a number")?;
    println!(
        "ok: {path} (name={name} modes={} git_rev={git_rev} budget={budget}s)",
        modes.len()
    );
    Ok(())
}

fn main() {
    let mut paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        let mut found: Vec<String> = std::fs::read_dir(".")
            .expect("reading the current directory")
            .filter_map(Result::ok)
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            .collect();
        found.sort();
        paths = found;
    }
    if paths.is_empty() {
        eprintln!("bench_schema: no BENCH_*.json artifacts to validate");
        std::process::exit(1);
    }
    let mut bad = 0usize;
    for path in &paths {
        if let Err(e) = check(path) {
            eprintln!("FAIL: {path}: {e}");
            bad += 1;
        }
    }
    if bad > 0 {
        eprintln!(
            "bench_schema: {bad} of {} artifact(s) violate the schema",
            paths.len()
        );
        std::process::exit(1);
    }
    println!("bench_schema: {} artifact(s) conform", paths.len());
}
