//! §2's corpus scan analog: what fraction of unlocks are deferred?
//!
//! The paper scanned 21 million lines of industrial Go (≈8000 `Unlock()`
//! operations) and found about 76% prefixed with `defer`. This binary
//! runs the same census over the bundled corpus with the real frontend
//! (not `grep`): parse, build CFGs, count unlock points and their
//! deferredness.

use gocc::Package;
use gocc_bench::write_artifact;
use gocc_telemetry::JsonWriter;

const PACKAGES: [&str; 5] = ["tally", "zap", "gocache", "fastcache", "set"];

fn main() {
    let root = corpus_root();
    println!("== §2 corpus scan: deferred-unlock census ==");
    println!(
        "{:<12} {:>8} {:>10} {:>10}",
        "package", "unlocks", "deferred", "pct"
    );
    let mut total = 0usize;
    let mut total_deferred = 0usize;
    let mut w = JsonWriter::new();
    w.begin_object().field_str("figure", "corpus_stats");
    w.key("packages").begin_array();
    for name in PACKAGES {
        let path = format!("{root}/{name}/{name}.go");
        let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
        let pkg = Package::load(&[(&path, &src)]).expect("corpus parses");
        let mut unlocks = 0usize;
        let mut deferred = 0usize;
        for unit in pkg.all_units() {
            for (_, _, op) in unit.cfg.lu_points() {
                if !op.op.is_acquire() {
                    unlocks += 1;
                    if op.deferred {
                        deferred += 1;
                    }
                }
            }
        }
        total += unlocks;
        total_deferred += deferred;
        let pct = deferred as f64 / unlocks.max(1) as f64 * 100.0;
        println!("{:<12} {:>8} {:>10} {:>9.1}%", name, unlocks, deferred, pct);
        w.begin_object()
            .field_str("name", name)
            .field_u64("unlocks", unlocks as u64)
            .field_u64("deferred", deferred as u64)
            .field_f64("deferred_pct", pct)
            .end_object();
    }
    let total_pct = total_deferred as f64 / total.max(1) as f64 * 100.0;
    println!(
        "{:<12} {:>8} {:>10} {:>9.1}%   (paper's industrial scan: ~76%)",
        "total", total, total_deferred, total_pct
    );
    w.end_array();
    w.key("total")
        .begin_object()
        .field_u64("unlocks", total as u64)
        .field_u64("deferred", total_deferred as u64)
        .field_f64("deferred_pct", total_pct)
        .end_object();
    w.end_object();
    write_artifact("corpus_stats", &w.finish());
}

fn corpus_root() -> String {
    for candidate in ["corpus", "../../corpus"] {
        if std::path::Path::new(candidate).is_dir() {
            return candidate.to_string();
        }
    }
    panic!("corpus directory not found; run from the workspace root");
}
