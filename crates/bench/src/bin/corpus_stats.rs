//! §2's corpus scan analog: what fraction of unlocks are deferred?
//!
//! The paper scanned 21 million lines of industrial Go (≈8000 `Unlock()`
//! operations) and found about 76% prefixed with `defer`. This binary
//! runs the same census over the bundled corpus with the real frontend
//! (not `grep`): parse, build CFGs, count unlock points and their
//! deferredness.

use gocc::Package;

const PACKAGES: [&str; 5] = ["tally", "zap", "gocache", "fastcache", "set"];

fn main() {
    let root = corpus_root();
    println!("== §2 corpus scan: deferred-unlock census ==");
    println!(
        "{:<12} {:>8} {:>10} {:>10}",
        "package", "unlocks", "deferred", "pct"
    );
    let mut total = 0usize;
    let mut total_deferred = 0usize;
    for name in PACKAGES {
        let path = format!("{root}/{name}/{name}.go");
        let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
        let pkg = Package::load(&[(&path, &src)]).expect("corpus parses");
        let mut unlocks = 0usize;
        let mut deferred = 0usize;
        for unit in pkg.all_units() {
            for (_, _, op) in unit.cfg.lu_points() {
                if !op.op.is_acquire() {
                    unlocks += 1;
                    if op.deferred {
                        deferred += 1;
                    }
                }
            }
        }
        total += unlocks;
        total_deferred += deferred;
        println!(
            "{:<12} {:>8} {:>10} {:>9.1}%",
            name,
            unlocks,
            deferred,
            deferred as f64 / unlocks.max(1) as f64 * 100.0
        );
    }
    println!(
        "{:<12} {:>8} {:>10} {:>9.1}%   (paper's industrial scan: ~76%)",
        "total",
        total,
        total_deferred,
        total_deferred as f64 / total.max(1) as f64 * 100.0
    );
}

fn corpus_root() -> String {
    for candidate in ["corpus", "../../corpus"] {
        if std::path::Path::new(candidate).is_dir() {
            return candidate.to_string();
        }
    }
    panic!("corpus directory not found; run from the workspace root");
}
