//! §2's defer observation: `defer Unlock()` lengthens critical sections.
//!
//! The paper's motivating synthetic benchmark shows performance
//! degradation when the unlock is deferred to the function exit, because
//! everything between the last real use of the shared data and the return
//! is needlessly inside the critical section — under HTM, a longer
//! transaction window means more exposure to conflicts; under locks, more
//! serialization.
//!
//! The model: each operation updates one shared counter (the true critical
//! work) and then does "tail work" on private data. The *tight* variant
//! ends the section before the tail work; the *deferred* variant keeps the
//! tail work inside, as `defer m.Unlock()` would.

use std::time::Duration;

use gocc_bench::{run_parallel, write_artifact, CORE_COUNTS};
use gocc_optilock::{call_site, ElidableMutex, GoccConfig, GoccRuntime, LockRef};
use gocc_telemetry::JsonWriter;
use gocc_txds::TxCounter;
use gocc_workloads::{Engine, Mode};

const WINDOW: Duration = Duration::from_millis(200);
const TAIL_WORK: usize = 64;

fn tail(mut h: u64) -> u64 {
    for _ in 0..TAIL_WORK {
        h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(13);
    }
    h
}

fn measure(mode: Mode, deferred: bool, cores: usize) -> f64 {
    let rt = GoccRuntime::new(GoccConfig::standard());
    let engine = Engine::new(&rt, mode);
    let m = ElidableMutex::new();
    let shared = TxCounter::new(0);
    let op = |_w: usize, i: u64| {
        if deferred {
            // `defer m.Unlock()` style: the tail work rides inside.
            engine.section(call_site!(), LockRef::Mutex(&m), |tx| {
                shared.add(tx, 1)?;
                std::hint::black_box(tail(i));
                Ok(())
            });
        } else {
            engine.section(call_site!(), LockRef::Mutex(&m), |tx| shared.add(tx, 1));
            std::hint::black_box(tail(i));
        }
    };
    run_parallel(cores, WINDOW / 4, op);
    run_parallel(cores, WINDOW, op)
}

fn main() {
    // Pinned to 8 procs even for the 1-worker column: the subject is how
    // deferred unlock lengthens *speculative* sections, so the §5.4.2
    // single-thread bypass must not swap them for lock acquisitions.
    gocc_gosync::set_procs(8);
    println!("== §2 synthetic: deferred unlock lengthens the critical section ==");
    println!(
        "{:<10} {:<10} | cores: tight-ns / deferred-ns   penalty (positive = defer hurts)",
        "mode", ""
    );
    println!("{}", "-".repeat(110));
    let mut w = JsonWriter::new();
    w.begin_object().field_str("figure", "defer_cost");
    w.key("modes").begin_array();
    for mode in [Mode::Lock, Mode::Gocc] {
        print!("{:<21}", format!("{mode:?}"));
        w.begin_object().field_str("mode", &format!("{mode:?}"));
        w.key("points").begin_array();
        for &cores in &CORE_COUNTS {
            let prev = gocc_htm::contention::set_sim_cores(cores);
            let tight = measure(mode, false, cores);
            let deferred = measure(mode, true, cores);
            gocc_htm::contention::set_sim_cores(prev);
            let penalty = (deferred / tight - 1.0) * 100.0;
            print!(
                " | {:>2}c {:>8.1}/{:<8.1} {:>+7.1}%",
                cores, tight, deferred, penalty
            );
            w.begin_object()
                .field_u64("cores", cores as u64)
                .field_f64("tight_ns_per_op", tight)
                .field_f64("deferred_ns_per_op", deferred)
                .field_f64("defer_penalty_pct", penalty)
                .end_object();
        }
        w.end_array().end_object();
        println!();
    }
    w.end_array().end_object();
    println!();
    println!("76% of the 8000 Unlock() calls in the paper's 21-MLoC industrial scan were");
    println!("deferred — see `corpus_stats` for this repository's corpus analog.");
    write_artifact("defer_cost", &w.finish());
}
