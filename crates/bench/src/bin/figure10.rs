//! Figure 10: perceptron effectiveness on the Tally benchmarks.
//!
//! Compares GOCC with the perceptron against GOCC-NP ("No Perceptron":
//! every section always attempts HTM). On HTM-friendly benchmarks the two
//! should tie; on the abort-heavy allocation benchmarks
//! (`CounterAllocation`, `SanitizedCounterAllocation`) NP pays the full
//! abort-and-retry tax on every call while the perceptron "quickly learns
//! to move away from HTM and keeps using the slowpath", eliminating the
//! loss.

use std::time::Duration;

use gocc_bench::{run_parallel, stats_fields, write_artifact, CORE_COUNTS};
use gocc_optilock::{GoccConfig, GoccRuntime, PerceptronSnapshot};
use gocc_telemetry::JsonWriter;
use gocc_workloads::tally::Scope;
use gocc_workloads::{Engine, Mode};

const PRELOADED: usize = 512;
const WINDOW: Duration = Duration::from_millis(200);

struct Bench {
    name: &'static str,
    op: fn(&Engine<'_>, &Scope, usize, u64),
}

fn histogram_existing(engine: &Engine<'_>, scope: &Scope, worker: usize, i: u64) {
    let name = Scope::name_hash((worker * 131 + i as usize) % PRELOADED);
    let _ = scope.histogram_exists(engine, name);
}

fn scope_reporting1(engine: &Engine<'_>, scope: &Scope, _worker: usize, _i: u64) {
    let _ = scope.scope_reporting(engine, 1);
}

fn counter_allocation(engine: &Engine<'_>, scope: &Scope, worker: usize, i: u64) {
    let name = Scope::name_hash(1_000_000 + worker * 10_000_000 + i as usize);
    let _ = scope.counter_allocation(engine, name);
}

fn sanitized_allocation(engine: &Engine<'_>, scope: &Scope, worker: usize, i: u64) {
    let name = format!("svc.host-{worker}.metric/{i}");
    let _ = scope.sanitized_counter_allocation(engine, &name);
}

fn main() {
    // Pinned to 8 procs for the whole sweep: this figure contrasts the
    // perceptron's decisions against always-speculate, and the §5.4.2
    // bypass at procs=1 would override both sides with the lock path.
    gocc_gosync::set_procs(8);
    println!("== Figure 10: Tally with vs without the perceptron ==");
    println!(
        "{:<26} | cores: NP-ns / P-ns  perceptron-gain (positive = perceptron rescues)",
        "benchmark"
    );
    println!("{}", "-".repeat(118));

    let benches = [
        Bench {
            name: "HistogramExisting",
            op: histogram_existing,
        },
        Bench {
            name: "ScopeReporting1",
            op: scope_reporting1,
        },
        Bench {
            name: "CounterAllocation",
            op: counter_allocation,
        },
        Bench {
            name: "SanitizedCounterAlloc",
            op: sanitized_allocation,
        },
    ];

    let mut w = JsonWriter::new();
    w.begin_object().field_str("figure", "figure10");
    w.key("core_counts").begin_array();
    for &c in &CORE_COUNTS {
        w.u64(c as u64);
    }
    w.end_array();
    w.key("benchmarks").begin_array();

    for b in &benches {
        print!("{:<26}", b.name);
        w.begin_object().field_str("name", b.name);
        w.key("points").begin_array();
        for &cores in &CORE_COUNTS {
            let prev = gocc_htm::contention::set_sim_cores(cores);
            let mut ns = [0.0f64; 2];
            // Stats + perceptron introspection from the gated (P) run.
            let mut gated: Option<(gocc_htm::StatsSnapshot, _, PerceptronSnapshot)> = None;
            for (idx, config) in [GoccConfig::no_perceptron(), GoccConfig::standard()]
                .into_iter()
                .enumerate()
            {
                let rt = GoccRuntime::new(config);
                let scope = Scope::new(rt.htm(), PRELOADED);
                let engine = Engine::new(&rt, Mode::Gocc);
                run_parallel(cores, WINDOW / 4, |w, i| (b.op)(&engine, &scope, w, i));
                ns[idx] = run_parallel(cores, WINDOW, |w, i| (b.op)(&engine, &scope, w, i));
                if idx == 1 {
                    gated = Some((
                        rt.htm().stats().snapshot(),
                        rt.stats().snapshot(),
                        rt.perceptron().snapshot(),
                    ));
                }
            }
            gocc_htm::contention::set_sim_cores(prev);
            let gain = (ns[0] / ns[1] - 1.0) * 100.0;
            print!(
                " | {:>2}c {:>8.1}/{:<8.1} {:>+7.1}%",
                cores, ns[0], ns[1], gain
            );
            let (htm, opti, perc) = gated.expect("gated run measured");
            w.begin_object()
                .field_u64("cores", cores as u64)
                .field_f64("np_ns_per_op", ns[0])
                .field_f64("gocc_ns_per_op", ns[1])
                .field_f64("perceptron_gain_pct", gain);
            stats_fields(&mut w, &htm, &opti);
            w.key("perceptron")
                .begin_object()
                .field_u64("decisions_fast", opti.perceptron_htm)
                .field_u64("decisions_slow", opti.perceptron_slow)
                .field_u64("resets", perc.resets)
                .field_u64(
                    "trained_mutex_cells",
                    PerceptronSnapshot::trained_cells(&perc.mutex_weights) as u64,
                )
                .field_u64(
                    "trained_site_cells",
                    PerceptronSnapshot::trained_cells(&perc.site_weights) as u64,
                )
                .key("mutex_table_bias")
                .i64(PerceptronSnapshot::table_bias(&perc.mutex_weights))
                .key("site_table_bias")
                .i64(PerceptronSnapshot::table_bias(&perc.site_weights))
                .end_object()
                .end_object();
        }
        w.end_array().end_object();
        println!();
    }
    w.end_array().end_object();
    println!();
    println!("NP = always attempt HTM; P = perceptron-gated (the shipped configuration).");
    write_artifact("figure10", &w.finish());
}
