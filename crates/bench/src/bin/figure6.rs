//! Figure 6: Tally benchmarks, lock vs. GOCC, 1/2/4/8 simulated cores.
//!
//! Reproduces the benchmark set §6.1 discusses: `HistogramExisting` (the
//! headline ~660% case — a read-only probe whose RWMutex entry/exit RMWs
//! collapse under contention while the elided version stays conflict-
//! free), `ScopeReporting1`/`ScopeReporting10` (three independent
//! RWMutexes; 10× more work shrinks the relative win), the conflicting
//! allocation benchmarks, and non-sensitive pure-compute benchmarks that
//! must stay within noise.

use gocc_bench::{
    print_geomeans, print_header, sweep_driver, warm_measure, write_bench_json, Measured,
    SweepResult, DEFAULT_WINDOW,
};
use gocc_optilock::{GoccConfig, GoccRuntime};
use gocc_workloads::tally::Scope;
use gocc_workloads::Engine;

const PRELOADED: usize = 512;

/// Builds a sweep whose op closure sees a fresh (runtime, scope, engine)
/// triple per measured point.
fn tally_sweep(
    name: &str,
    sensitive: bool,
    op: impl Fn(&Engine<'_>, &Scope, usize, u64) + Sync,
) -> SweepResult {
    sweep_driver(name, sensitive, DEFAULT_WINDOW, &|mode, cores, window| {
        let rt = GoccRuntime::new(GoccConfig::standard());
        let scope = Scope::new(rt.htm(), PRELOADED);
        let engine = Engine::new(&rt, mode);
        let ns = warm_measure(cores, window, |w, i| op(&engine, &scope, w, i));
        Measured::with_runtime(ns, &rt)
    })
}

fn main() {
    print_header("Figure 6: Tally (lock vs GOCC)");
    let mut results: Vec<SweepResult> = Vec::new();

    results.push(tally_sweep("HistogramExisting", true, |e, s, worker, i| {
        let name = Scope::name_hash((worker * 131 + i as usize) % PRELOADED);
        let _ = s.histogram_exists(e, name);
    }));

    results.push(tally_sweep("ScopeReporting1", true, |e, s, _, _| {
        let _ = s.scope_reporting(e, 1);
    }));

    results.push(tally_sweep("ScopeReporting10", true, |e, s, _, _| {
        let _ = s.scope_reporting(e, 10);
    }));

    results.push(tally_sweep("CounterIncrement", true, |e, s, worker, i| {
        s.counter_inc(e, (worker * 61 + i as usize) % 256);
    }));

    results.push(tally_sweep("CounterAllocation", true, |e, s, worker, i| {
        // Fresh names: allocations genuinely conflict on the registry.
        let name = Scope::name_hash(1_000_000 + worker * 10_000_000 + i as usize);
        let _ = s.counter_allocation(e, name);
    }));

    results.push(tally_sweep(
        "SanitizedCounterAlloc",
        true,
        |e, s, worker, i| {
            let name = format!("svc.host-{worker}.metric/{i}");
            let _ = s.sanitized_counter_allocation(e, &name);
        },
    ));

    results.push(tally_sweep("NameGeneration", false, |_, s, worker, i| {
        let _ = s.name_generation(worker + i as usize);
    }));

    results.push(tally_sweep("TagFormatting", false, |_, _, worker, i| {
        // Pure compute, no locks: the non-sensitive control group.
        let mut h = i ^ worker as u64;
        for _ in 0..32 {
            h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
        }
        std::hint::black_box(h);
    }));

    for r in &results {
        r.print();
    }
    println!();
    print_geomeans(&results);
    write_bench_json("figure6", &results);
}
