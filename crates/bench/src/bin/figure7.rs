//! Figure 7: go-cache benchmarks, lock vs. GOCC.
//!
//! The direct-map benchmarks (RWMutex around plain map access) are the
//! >100% group of the paper — elision removes the contended reader-count
//! > RMWs entirely. The cache-layer benchmarks are mildly improved and,
//! > critically, never degraded.

use gocc_bench::{
    print_geomeans, print_header, sweep_driver, warm_measure, write_bench_json, Measured,
    SweepResult, DEFAULT_WINDOW,
};
use gocc_optilock::{GoccConfig, GoccRuntime};
use gocc_workloads::gocache::{Cache, RwMap};
use gocc_workloads::Engine;

const KEYS: usize = 256;

fn map_sweep(name: &str, op: impl Fn(&Engine<'_>, &RwMap, usize, u64) + Sync) -> SweepResult {
    sweep_driver(name, true, DEFAULT_WINDOW, &|mode, cores, window| {
        let rt = GoccRuntime::new(GoccConfig::standard());
        let map = RwMap::new(rt.htm(), KEYS);
        let engine = Engine::new(&rt, mode);
        let ns = warm_measure(cores, window, |w, i| op(&engine, &map, w, i));
        Measured::with_runtime(ns, &rt)
    })
}

fn cache_sweep(name: &str, op: impl Fn(&Engine<'_>, &Cache, usize, u64) + Sync) -> SweepResult {
    sweep_driver(name, true, DEFAULT_WINDOW, &|mode, cores, window| {
        let rt = GoccRuntime::new(GoccConfig::standard());
        let cache = Cache::new(rt.htm(), KEYS);
        let engine = Engine::new(&rt, mode);
        let ns = warm_measure(cores, window, |w, i| op(&engine, &cache, w, i));
        Measured::with_runtime(ns, &rt)
    })
}

fn main() {
    print_header("Figure 7: go-cache (lock vs GOCC)");
    let mut results: Vec<SweepResult> = Vec::new();

    results.push(map_sweep("RWMutexMapGet", |e, m, worker, i| {
        let _ = m.get(e, RwMap::key((worker * 31 + i as usize) % KEYS));
    }));

    results.push(map_sweep("RWMutexMapGetHot", |e, m, _, _| {
        // Repeatedly accessing the same item in a small map.
        let _ = m.get(e, RwMap::key(7));
    }));

    results.push(map_sweep("RWMutexMapLen", |e, m, _, _| {
        let _ = m.len(e);
    }));

    results.push(map_sweep("RWMutexMapMostlyRead", |e, m, worker, i| {
        // 1-in-64 writes: the realistic read-mostly mix.
        let k = (worker * 17 + i as usize) % KEYS;
        if i % 64 == 0 {
            m.set(e, RwMap::key(k), i);
        } else {
            let _ = m.get(e, RwMap::key(k));
        }
    }));

    results.push(cache_sweep("CacheGetNotExpiring", |e, c, worker, i| {
        let _ = c.get(e, RwMap::key((worker * 13 + i as usize) % KEYS));
    }));

    results.push(cache_sweep("CacheSet", |e, c, worker, i| {
        c.set(e, RwMap::key((worker * 7 + i as usize) % KEYS), i, 0);
    }));

    results.push(cache_sweep("CacheSetDelete", |e, c, worker, i| {
        let k = RwMap::key((worker * 11 + i as usize) % KEYS);
        c.set(e, k, i, 0);
        c.delete(e, k);
    }));

    results.push(cache_sweep("CacheItemCount", |e, c, _, _| {
        let _ = c.item_count(e);
    }));

    for r in &results {
        r.print();
    }
    println!();
    print_geomeans(&results);
    write_bench_json("figure7", &results);
}
