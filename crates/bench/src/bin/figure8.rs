//! Figure 8: go-datastructures set benchmarks, lock vs. GOCC.
//!
//! `Len` is the paper's ~1000% case (tiny read section, lock entry/exit
//! dominated); `Exists` scales almost as well; `Flatten` wins while its
//! cache holds but loses the advantage once cache-update conflicts rise
//! (the perceptron then pins it to the lock — no collapse); `Clear` has
//! true conflicts and must show no speedup *and* no collapse.

use gocc_bench::{
    print_geomeans, print_header, sweep_driver, warm_measure, write_bench_json, Measured,
    SweepResult, DEFAULT_WINDOW,
};
use gocc_optilock::{GoccConfig, GoccRuntime};
use gocc_workloads::set::{Set, FLATTEN_ITEMS};
use gocc_workloads::Engine;

fn set_sweep(
    name: &str,
    preload: usize,
    op: impl Fn(&Engine<'_>, &Set, usize, u64) + Sync,
) -> SweepResult {
    sweep_driver(name, true, DEFAULT_WINDOW, &|mode, cores, window| {
        let rt = GoccRuntime::new(GoccConfig::standard());
        let set = Set::new(rt.htm(), preload);
        let engine = Engine::new(&rt, mode);
        let ns = warm_measure(cores, window, |w, i| op(&engine, &set, w, i));
        Measured::with_runtime(ns, &rt)
    })
}

fn main() {
    print_header("Figure 8: set (lock vs GOCC)");
    let mut results: Vec<SweepResult> = Vec::new();

    results.push(set_sweep("Len", FLATTEN_ITEMS, |e, s, _, _| {
        let _ = s.len(e);
    }));

    // Paper: "each goroutine searches one item in a set containing only
    // one item".
    results.push(set_sweep("Exists", 1, |e, s, _, _| {
        let _ = s.exists(e, 0);
    }));

    results.push(set_sweep("Flatten", FLATTEN_ITEMS, |e, s, worker, i| {
        // Occasional adds dirty the cache so flattening does real work and
        // the cache update introduces conflicts at high core counts.
        if i % 128 == 0 {
            s.add(e, (worker * 1000 + i as usize % 50) as u64);
        }
        let _ = s.flatten(e);
    }));

    results.push(set_sweep("Clear", FLATTEN_ITEMS, |e, s, _, i| {
        // Refill a little so Clear always has work; true conflicts.
        s.add(e, i % 64);
        s.clear(e);
    }));

    results.push(set_sweep("Add", 0, |e, s, worker, i| {
        s.add(e, (worker as u64) << 32 | (i % 1024));
    }));

    for r in &results {
        r.print();
    }
    println!();
    print_geomeans(&results);
    write_bench_json("figure8", &results);
}
