//! Figure 9: fastcache benchmarks, lock vs. GOCC.
//!
//! `CacheGet`/`CacheHas` carry the speedups (Has more than Get — shorter
//! section, fewer conflicts on the shared stats counters); `CacheSet` is
//! untransformed (panic-guarded) and must be neutral; `CacheSetGet` is
//! the paper's starved-mutex curiosity: each worker runs a Set loop and
//! then a Get loop, and the baseline's starvation-mode hand-offs shape
//! the result.

use gocc_bench::{
    print_geomeans, print_header, sweep_driver, warm_measure, write_bench_json, Measured,
    SweepResult, DEFAULT_WINDOW,
};
use gocc_optilock::{GoccConfig, GoccRuntime};
use gocc_workloads::fastcache::FastCache;
use gocc_workloads::Engine;

const KEYS: usize = 512;
const SETGET_BATCH: usize = 64;

fn cache_sweep(
    name: &str,
    sensitive: bool,
    op: impl Fn(&Engine<'_>, &FastCache, usize, u64) + Sync,
) -> SweepResult {
    sweep_driver(name, sensitive, DEFAULT_WINDOW, &|mode, cores, window| {
        let rt = GoccRuntime::new(GoccConfig::standard());
        let cache = FastCache::new(KEYS * 4);
        cache.preload(rt.htm(), KEYS, b"fastcache-value-0123456789abcdef");
        let engine = Engine::new(&rt, mode);
        let ns = warm_measure(cores, window, |w, i| op(&engine, &cache, w, i));
        Measured::with_runtime(ns, &rt)
    })
}

fn main() {
    print_header("Figure 9: fastcache (lock vs GOCC)");
    let mut results: Vec<SweepResult> = Vec::new();

    results.push(cache_sweep("CacheGet", true, |e, c, worker, i| {
        let _ = c.get(e, FastCache::key((worker * 37 + i as usize) % KEYS));
    }));

    results.push(cache_sweep("CacheHas", true, |e, c, worker, i| {
        let _ = c.has(e, FastCache::key((worker * 29 + i as usize) % KEYS));
    }));

    results.push(cache_sweep("CacheSet", false, |e, c, worker, i| {
        // Untransformed in both modes: the neutral benchmark.
        c.set(
            e,
            FastCache::key((worker * 41 + i as usize) % KEYS),
            b"updated-value",
        );
    }));

    results.push(cache_sweep("CacheSetGet", true, |e, c, worker, i| {
        // Each "iteration" is a Set burst followed by a Get burst, like
        // the benchmark's two loops per goroutine.
        let base = (worker * 7919 + i as usize * SETGET_BATCH) % KEYS;
        for j in 0..SETGET_BATCH {
            c.set(e, FastCache::key((base + j) % KEYS), b"sg");
        }
        for j in 0..SETGET_BATCH {
            let _ = c.get(e, FastCache::key((base + j) % KEYS));
        }
    }));

    for r in &results {
        r.print();
    }
    println!();
    print_geomeans(&results);
    write_bench_json("figure9", &results);
}
