//! Hot-path micro-benchmark: what one *uncontended* critical section
//! costs, in both modes.
//!
//! GOCC's viability rests on the fast path being cheap enough to try
//! (§5.4, §6): if `FastLock`→section→`FastUnlock` costs much more than an
//! uncontended mutex, every figure's 1-core column pays for it. This
//! binary pins that cost down with a single worker and no contention,
//! across three section shapes:
//!
//! - `empty`  — lock/unlock only, no transactional work;
//! - `read1`  — one `TxVar` read;
//! - `write1` — one `TxVar` write.
//!
//! Each shape is measured three ways: the pessimistic baseline
//! (`Mode::Lock`), gocc with speculation engaged (`procs = 8`, so the
//! single-thread bypass stays out of the way and the perceptron/HTM path
//! runs), and gocc at `procs = 1` where the §5.4.2 single-OS-thread
//! bypass should convert every section into a plain lock acquisition.
//!
//! The simulated-coherence model stays at 1 core: this benchmark is about
//! constant overhead, not scaling.
//!
//! Flags: `--window-ms N` shrinks the measurement window (CI uses this),
//! `--gate RATIO` exits nonzero if any section's speculating-gocc cost
//! exceeds `RATIO ×` the lock baseline — a loose order-of-magnitude
//! regression gate, not a benchmark assertion.

use std::time::Duration;

use gocc_bench::{stats_fields, warm_measure, write_artifact, Measured};
use gocc_optilock::{call_site, GoccRuntime, LockRef};
use gocc_telemetry::JsonWriter;
use gocc_txds::TxCounter;
use gocc_workloads::{Engine, Mode};

#[derive(Clone, Copy)]
enum Shape {
    Empty,
    Read1,
    Write1,
}

impl Shape {
    fn name(self) -> &'static str {
        match self {
            Shape::Empty => "empty",
            Shape::Read1 => "read1",
            Shape::Write1 => "write1",
        }
    }
}

fn measure(shape: Shape, mode: Mode, procs: usize, window: Duration) -> Measured {
    let prev = gocc_gosync::set_procs(procs);
    let rt = GoccRuntime::new_default();
    let engine = Engine::new(&rt, mode);
    let m = gocc_optilock::ElidableMutex::new();
    let c = TxCounter::new(0);
    let ns = warm_measure(1, window, |_w, _i| {
        engine.section(call_site!(), LockRef::Mutex(&m), |tx| match shape {
            Shape::Empty => Ok(()),
            Shape::Read1 => c.get(tx).map(|_| ()),
            Shape::Write1 => c.add(tx, 1).map(|_| ()),
        });
    });
    let out = Measured::with_runtime(ns, &rt);
    gocc_gosync::set_procs(prev);
    out
}

struct Row {
    shape: Shape,
    lock: Measured,
    spec: Measured,
    bypass: Measured,
}

impl Row {
    fn spec_ratio(&self) -> f64 {
        self.spec.ns_per_op / self.lock.ns_per_op
    }
    fn bypass_ratio(&self) -> f64 {
        self.bypass.ns_per_op / self.lock.ns_per_op
    }
}

fn main() {
    let mut window = gocc_bench::DEFAULT_WINDOW;
    let mut gate: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--window-ms" => {
                let v = args.next().expect("--window-ms needs a value");
                window = Duration::from_millis(v.parse().expect("--window-ms: integer"));
            }
            "--gate" => {
                let v = args.next().expect("--gate needs a value");
                gate = Some(v.parse().expect("--gate: float"));
            }
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }

    println!("== hotpath: uncontended single-worker section cost ==");
    println!(
        "{:<8} {:>12} {:>14} {:>12} {:>16} {:>14}",
        "section", "lock ns/op", "gocc ns/op", "gocc/lock", "bypass ns/op", "bypass/lock"
    );

    let mut rows = Vec::new();
    for shape in [Shape::Empty, Shape::Read1, Shape::Write1] {
        let lock = measure(shape, Mode::Lock, 8, window);
        let spec = measure(shape, Mode::Gocc, 8, window);
        let bypass = measure(shape, Mode::Gocc, 1, window);
        let row = Row {
            shape,
            lock,
            spec,
            bypass,
        };
        println!(
            "{:<8} {:>12.1} {:>14.1} {:>11.2}x {:>16.1} {:>13.2}x",
            shape.name(),
            row.lock.ns_per_op,
            row.spec.ns_per_op,
            row.spec_ratio(),
            row.bypass.ns_per_op,
            row.bypass_ratio(),
        );
        rows.push(row);
    }

    let worst = rows.iter().map(Row::spec_ratio).fold(0.0f64, f64::max);
    println!("worst speculating gocc/lock ratio: {worst:.2}x");

    let mut w = JsonWriter::new();
    w.begin_object()
        .field_str("figure", "hotpath")
        .field_u64("window_ms", window.as_millis() as u64)
        .field_f64("worst_spec_ratio", worst)
        .key("sections")
        .begin_array();
    for row in &rows {
        w.begin_object()
            .field_str("name", row.shape.name())
            .field_f64("lock_ns_per_op", row.lock.ns_per_op)
            .field_f64("gocc_ns_per_op", row.spec.ns_per_op)
            .field_f64("gocc_bypass_ns_per_op", row.bypass.ns_per_op)
            .field_f64("spec_ratio", row.spec_ratio())
            .field_f64("bypass_ratio", row.bypass_ratio());
        stats_fields(&mut w, &row.spec.htm, &row.spec.opti);
        w.key("bypass_stats").begin_object();
        stats_fields(&mut w, &row.bypass.htm, &row.bypass.opti);
        w.end_object().end_object();
    }
    w.end_array().end_object();
    write_artifact("hotpath", &w.finish());

    if let Some(gate) = gate {
        if worst > gate {
            eprintln!("GATE FAILED: worst gocc/lock ratio {worst:.2}x exceeds gate {gate:.2}x");
            std::process::exit(1);
        }
        println!("gate ok: {worst:.2}x <= {gate:.2}x");
    }
}
