//! §6.2's perceptron-overhead micro-benchmark.
//!
//! The paper measures, on "a conflict-free critical section with 1000
//! counter updates", a prediction overhead of 0.65%, a weight-update
//! overhead of 0.73%, and 1.38% total. This binary reproduces the setup:
//! a single worker repeatedly runs the 1000-update section through
//! `optiLib` with the perceptron enabled and disabled, and additionally
//! times the raw predict/update operations to apportion the difference.

use std::time::{Duration, Instant};

use gocc_bench::{run_parallel, write_artifact};
use gocc_optilock::{call_site, GoccConfig, GoccRuntime, Perceptron};
use gocc_telemetry::JsonWriter;
use gocc_txds::TxCounter;
use gocc_workloads::{Engine, Mode};

const UPDATES: usize = 1000;
const WINDOW: Duration = Duration::from_millis(400);

fn section_ns(config: GoccConfig) -> f64 {
    let rt = GoccRuntime::new(config);
    let engine = Engine::new(&rt, Mode::Gocc);
    let m = gocc_optilock::ElidableMutex::new();
    let counters: Vec<TxCounter> = (0..UPDATES).map(|_| TxCounter::new(0)).collect();
    let op = |_w: usize, _i: u64| {
        engine.section(call_site!(), gocc_optilock::LockRef::Mutex(&m), |tx| {
            for c in &counters {
                c.add(tx, 1)?;
            }
            Ok(())
        });
    };
    run_parallel(1, WINDOW / 4, op);
    run_parallel(1, WINDOW, op)
}

fn main() {
    // The section runs on one worker thread, but procs stays pinned at 8:
    // the measurement is the perceptron's cost *on the speculative path*,
    // which the §5.4.2 single-thread bypass would otherwise skip entirely.
    gocc_gosync::set_procs(8);
    println!("== §6.2: perceptron overhead on a conflict-free 1000-update section ==");

    // Best-of-three to suppress scheduler noise on the shared container.
    let with = (0..3)
        .map(|_| section_ns(GoccConfig::standard()))
        .fold(f64::MAX, f64::min);
    let without = (0..3)
        .map(|_| section_ns(GoccConfig::no_perceptron()))
        .fold(f64::MAX, f64::min);
    let total_pct = (with / without - 1.0) * 100.0;

    // Telemetry is the same kind of always-on bookkeeping the perceptron
    // is, so this binary also measures its cost on the identical section:
    // with_telemetry vs the shipped (telemetry-off) configuration.
    let with_telemetry = (0..3)
        .map(|_| section_ns(GoccConfig::with_telemetry()))
        .fold(f64::MAX, f64::min);
    let telemetry_pct = (with_telemetry / with - 1.0) * 100.0;

    // Apportion: time raw predict and update operations.
    let p = Perceptron::default();
    let f = p.features(0x1000, 0x2000);
    let iters = 2_000_000u64;
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(p.predict(std::hint::black_box(f)));
    }
    let predict_ns = t0.elapsed().as_nanos() as f64 / iters as f64;
    let t1 = Instant::now();
    for _ in 0..iters {
        p.reward(std::hint::black_box(f));
    }
    let update_ns = t1.elapsed().as_nanos() as f64 / iters as f64;

    println!("section ns/op   with perceptron: {with:>12.1}");
    println!("section ns/op   without        : {without:>12.1}");
    println!("total perceptron overhead      : {total_pct:>11.2}%  (paper: 1.38%)");
    println!("raw predict                    : {predict_ns:>10.2} ns/call");
    println!("raw weight update              : {update_ns:>10.2} ns/call");
    println!(
        "apportioned per section: predict {:.4}%  update {:.4}%  (paper: 0.65% / 0.73%)",
        predict_ns / without * 100.0,
        update_ns / without * 100.0,
    );
    println!("section ns/op   with telemetry : {with_telemetry:>12.1}");
    println!(
        "telemetry-on overhead          : {telemetry_pct:>11.2}%  (off = zero by construction)"
    );

    let mut w = JsonWriter::new();
    w.begin_object()
        .field_str("figure", "perceptron_overhead")
        .field_f64("with_perceptron_ns_per_op", with)
        .field_f64("without_perceptron_ns_per_op", without)
        .field_f64("total_overhead_pct", total_pct)
        .field_f64("predict_ns_per_call", predict_ns)
        .field_f64("update_ns_per_call", update_ns)
        .field_f64("predict_pct_of_section", predict_ns / without * 100.0)
        .field_f64("update_pct_of_section", update_ns / without * 100.0)
        .field_f64("with_telemetry_ns_per_op", with_telemetry)
        .field_f64("telemetry_overhead_pct", telemetry_pct)
        .end_object();
    write_artifact("perceptron_overhead", &w.finish());
    println!();
    println!("note: the simulated section is ~100x costlier than its hardware");
    println!("equivalent, so the relative overhead here bounds the paper's from");
    println!("below; the with/without difference is dominated by run-to-run noise.");
}
