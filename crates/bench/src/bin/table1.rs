//! Regenerates Table 1: package characteristics and the analyzer funnel.
//!
//! Runs the real GOCC analyzer over the `corpus/` mini-packages (scaled-
//! down models of the five evaluated repos; see DESIGN.md) twice — without
//! and with execution profiles — and prints one row per package with the
//! same columns as the paper's Table 1.

use gocc::{analyze_package, AnalysisOptions, FunnelReport, Package};
use gocc_profile::Profile;

const PACKAGES: [&str; 5] = ["tally", "zap", "gocache", "fastcache", "set"];

fn main() {
    let root = corpus_root();
    println!("Table 1 (reproduction): analyzer funnel over the corpus mini-packages");
    println!("{}", FunnelReport::table_header());
    for name in PACKAGES {
        let src_path = format!("{root}/{name}/{name}.go");
        let prof_path = format!("{root}/{name}/profile.txt");
        let src = std::fs::read_to_string(&src_path)
            .unwrap_or_else(|e| panic!("reading {src_path}: {e}"));
        let profile_text = std::fs::read_to_string(&prof_path)
            .unwrap_or_else(|e| panic!("reading {prof_path}: {e}"));
        let profile = Profile::parse(&profile_text).expect("corpus profile parses");

        let mut pkg = Package::load(&[(&src_path, &src)]).expect("corpus parses");
        let opts = AnalysisOptions {
            profile: Some(profile),
            hot_threshold: None,
        };
        let report = analyze_package(&mut pkg, &opts);
        let loc = src.lines().count();
        println!("{} loc={loc}", report.funnel.table_row(name));
    }
    println!();
    println!("columns: locks, unlocks(defer), dominance violations, candidate pairs,");
    println!("         unfit intra/interproc, nested-alias intra/interproc,");
    println!("         transformed(defer) without profiles, with profiles");
}

fn corpus_root() -> String {
    // Works from the workspace root or the crate directory.
    for candidate in ["corpus", "../../corpus"] {
        if std::path::Path::new(candidate).is_dir() {
            return candidate.to_string();
        }
    }
    panic!("corpus directory not found; run from the workspace root");
}
