//! Regenerates Table 1: package characteristics and the analyzer funnel.
//!
//! Runs the real GOCC analyzer over the `corpus/` mini-packages (scaled-
//! down models of the five evaluated repos; see DESIGN.md) twice — without
//! and with execution profiles — and prints one row per package with the
//! same columns as the paper's Table 1.

use gocc::{analyze_package, AnalysisOptions, FunnelReport, Package};
use gocc_bench::write_artifact;
use gocc_profile::Profile;
use gocc_telemetry::JsonWriter;

const PACKAGES: [&str; 5] = ["tally", "zap", "gocache", "fastcache", "set"];

fn funnel_fields(w: &mut JsonWriter, f: &FunnelReport) {
    w.field_u64("lock_points", f.lock_points as u64)
        .field_u64("unlock_points", f.unlock_points as u64)
        .field_u64("deferred_unlocks", f.deferred_unlocks as u64)
        .field_u64("discarded_multi_defer", f.discarded_multi_defer as u64)
        .field_u64("dominance_violations", f.dominance_violations as u64)
        .field_u64("candidate_pairs", f.candidate_pairs as u64)
        .field_u64("unfit_intra", f.unfit_intra as u64)
        .field_u64("unfit_interproc", f.unfit_interproc as u64)
        .field_u64("nested_alias_intra", f.nested_alias_intra as u64)
        .field_u64("nested_alias_interproc", f.nested_alias_interproc as u64)
        .field_u64("transformed", f.transformed as u64)
        .field_u64("transformed_deferred", f.transformed_deferred as u64)
        .field_u64("transformed_hot", f.transformed_hot as u64)
        .field_u64(
            "transformed_hot_deferred",
            f.transformed_hot_deferred as u64,
        );
}

fn main() {
    let root = corpus_root();
    println!("Table 1 (reproduction): analyzer funnel over the corpus mini-packages");
    println!("{}", FunnelReport::table_header());
    let mut w = JsonWriter::new();
    w.begin_object().field_str("figure", "table1");
    w.key("packages").begin_array();
    for name in PACKAGES {
        let src_path = format!("{root}/{name}/{name}.go");
        let prof_path = format!("{root}/{name}/profile.txt");
        let src = std::fs::read_to_string(&src_path)
            .unwrap_or_else(|e| panic!("reading {src_path}: {e}"));
        let profile_text = std::fs::read_to_string(&prof_path)
            .unwrap_or_else(|e| panic!("reading {prof_path}: {e}"));
        let profile = Profile::parse(&profile_text).expect("corpus profile parses");

        let mut pkg = Package::load(&[(&src_path, &src)]).expect("corpus parses");
        let opts = AnalysisOptions {
            profile: Some(profile),
            hot_threshold: None,
        };
        let report = analyze_package(&mut pkg, &opts);
        let loc = src.lines().count();
        println!("{} loc={loc}", report.funnel.table_row(name));
        w.begin_object()
            .field_str("name", name)
            .field_u64("loc", loc as u64);
        funnel_fields(&mut w, &report.funnel);
        w.end_object();
    }
    w.end_array().end_object();
    write_artifact("table1", &w.finish());
    println!();
    println!("columns: locks, unlocks(defer), dominance violations, candidate pairs,");
    println!("         unfit intra/interproc, nested-alias intra/interproc,");
    println!("         transformed(defer) without profiles, with profiles");
}

fn corpus_root() -> String {
    // Works from the workspace root or the crate directory.
    for candidate in ["corpus", "../../corpus"] {
        if std::path::Path::new(candidate).is_dir() {
            return candidate.to_string();
        }
    }
    panic!("corpus directory not found; run from the workspace root");
}
