//! Flight-recorder overhead gate: what per-request tracing costs on the
//! speculating hot path.
//!
//! An observability layer that taxes the fast path defeats its purpose —
//! the whole point of PR 4's allocation-free discipline was to keep
//! `FastLock`→section→`FastUnlock` cheap, and the flight recorder rides
//! exactly that path. This binary pins the tax down against the same
//! speculating baseline `hotpath` uses (gocc mode, `procs = 8`, one
//! uncontended write-style section per request), emulating the server's
//! per-request pattern around each section:
//!
//! - `baseline` — no tracing anywhere: the recorder stays unconfigured
//!   and the loop never touches the trace API;
//! - `disabled` — the full request plumbing (`begin_request`, the
//!   [`gocc_telemetry::trace::tracing_active`] gate in every layer) with
//!   sampling off: what *every* deployment pays;
//! - `sampled` — 1-in-64 sampling, the default `goccd` runs with;
//! - `full` — every request traced (`N = 1`): the worst case, reported
//!   but not gated.
//!
//! Configurations are measured in interleaved repeats (round-robin, so
//! drift hits all of them equally) and scored min-of-K — the floor is the
//! honest cost, everything above it is scheduler noise. Gates:
//! `disabled` ≤ 5% over baseline, `sampled` ≤ 10%, overridable via
//! `TRACE_GATE_DISABLED_PCT` / `TRACE_GATE_SAMPLED_PCT`. Everything lands
//! in `BENCH_trace.json`; exit 1 on a violated gate.
//!
//! The thresholds carry deliberate margin over the measured cost. The
//! sampled configuration's true tax is the full-trace cost amortized
//! over the sampling period (~320 ns of span pushes every 64th request
//! ≈ 5 ns/op) plus the per-request sampling decision — about 4–5% of a
//! ~140 ns section; the disabled path's is one relaxed load and a
//! branch, well under 1%. But per-process floors spread a further
//! ±3–4% run to run (ASLR / arena layout shift the path by whole
//! nanoseconds), so a gate set at the true cost flakes on honest runs.
//! The margined gates still trip instantly on a real regression — any
//! accidental work on the disabled path (an allocation, an un-gated
//! push) lands near the `full` figure, +220%.

use std::time::Duration;

use gocc_bench::{warm_measure, write_artifact};
use gocc_optilock::{call_site, GoccRuntime, LockRef};
use gocc_telemetry::{trace, JsonWriter};
use gocc_txds::TxCounter;
use gocc_workloads::{Engine, Mode};

/// Interleaved repeats per configuration; each row's score is its min.
const REPEATS: usize = 5;

#[derive(Clone, Copy, PartialEq)]
enum Config {
    Baseline,
    Disabled,
    Sampled,
    Full,
}

impl Config {
    fn name(self) -> &'static str {
        match self {
            Config::Baseline => "baseline",
            Config::Disabled => "disabled",
            Config::Sampled => "sampled",
            Config::Full => "full",
        }
    }

    /// The recorder's `sample_n` for this configuration.
    fn sample_n(self) -> u64 {
        match self {
            Config::Baseline | Config::Disabled => 0,
            Config::Sampled => 64,
            Config::Full => 1,
        }
    }
}

/// One measurement window of the per-request pattern under `config`.
fn measure(config: Config, window: Duration) -> f64 {
    let rt = GoccRuntime::new_default();
    rt.tracer().configure(config.sample_n(), 0x7AC3_5EED);
    let engine = Engine::new(&rt, Mode::Gocc);
    let m = gocc_optilock::ElidableMutex::new();
    let c = TxCounter::new(0);
    let site = call_site!();
    let ns = if config == Config::Baseline {
        // No trace API anywhere: the cost every pre-tracing build paid.
        warm_measure(1, window, |_w, _i| {
            engine.section(site, LockRef::Mutex(&m), |tx| c.add(tx, 1).map(|_| ()));
        })
    } else {
        // The server's per-request shape: one sampling decision, the id
        // pinned for the section, cleared after — exactly what
        // `conn::process_frames` does around `execute_admitted`.
        warm_measure(1, window, |_w, _i| {
            let id = rt.tracer().begin_request();
            if id != 0 {
                trace::set_current(id);
            }
            engine.section(site, LockRef::Mutex(&m), |tx| c.add(tx, 1).map(|_| ()));
            if id != 0 {
                trace::clear_current();
            }
        })
    };
    rt.tracer().configure(0, 0);
    ns
}

fn gate_from_env(var: &str, default: f64) -> f64 {
    match std::env::var(var) {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|e| panic!("{var} must be a float: {e}")),
        Err(_) => default,
    }
}

fn main() {
    let mut window = Duration::from_millis(120);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--window-ms" => {
                let v = args.next().expect("--window-ms needs a value");
                window = Duration::from_millis(v.parse().expect("--window-ms: integer"));
            }
            other => {
                eprintln!("unknown flag: {other}\nusage: trace_overhead [--window-ms N]");
                std::process::exit(2);
            }
        }
    }
    let gate_disabled = gate_from_env("TRACE_GATE_DISABLED_PCT", 5.0);
    let gate_sampled = gate_from_env("TRACE_GATE_SAMPLED_PCT", 10.0);

    let prev = gocc_gosync::set_procs(8);
    const CONFIGS: [Config; 4] = [
        Config::Baseline,
        Config::Disabled,
        Config::Sampled,
        Config::Full,
    ];
    // Round-robin over configurations so thermal / scheduler drift is
    // spread across all of them instead of biasing whichever ran last.
    let mut best = [f64::INFINITY; 4];
    for _ in 0..REPEATS {
        for (i, &config) in CONFIGS.iter().enumerate() {
            best[i] = best[i].min(measure(config, window));
        }
    }
    gocc_gosync::set_procs(prev);

    let baseline = best[0];
    let overhead_pct = |ns: f64| ((ns - baseline) / baseline * 100.0).max(0.0);

    println!("== trace_overhead: flight-recorder cost on the speculating hot path ==");
    println!("{:<10} {:>12} {:>12}", "config", "ns/op", "overhead");
    for (i, &config) in CONFIGS.iter().enumerate() {
        println!(
            "{:<10} {:>12.1} {:>11.2}%",
            config.name(),
            best[i],
            overhead_pct(best[i]),
        );
    }

    let mut w = JsonWriter::new();
    w.begin_object()
        .field_str("figure", "trace")
        .field_u64("window_ms", window.as_millis() as u64)
        .field_u64("repeats", REPEATS as u64)
        .field_f64("gate_disabled_pct", gate_disabled)
        .field_f64("gate_sampled_pct", gate_sampled)
        .key("configs")
        .begin_array();
    for (i, &config) in CONFIGS.iter().enumerate() {
        w.begin_object()
            .field_str("name", config.name())
            .field_u64("sample_n", config.sample_n())
            .field_f64("ns_per_op", best[i])
            .field_f64("overhead_pct", overhead_pct(best[i]))
            .end_object();
    }
    w.end_array().end_object();
    write_artifact("trace", &w.finish());

    let mut failed = false;
    for (config, pct, gate) in [
        (Config::Disabled, overhead_pct(best[1]), gate_disabled),
        (Config::Sampled, overhead_pct(best[2]), gate_sampled),
    ] {
        if pct > gate {
            eprintln!(
                "GATE FAILED: {} overhead {pct:.2}% exceeds gate {gate:.2}%",
                config.name()
            );
            failed = true;
        } else {
            println!("gate ok: {} {pct:.2}% <= {gate:.2}%", config.name());
        }
    }
    if failed {
        std::process::exit(1);
    }
}
