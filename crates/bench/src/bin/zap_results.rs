//! §6.1 Zap results: mild geomean speedup, rare small slowdowns.
//!
//! The paper reports ~4% geometric-mean improvement with a 28% best case
//! and a worst-case 7% slowdown — a logging library keeps IO inside its
//! critical sections, so few locks elide and most benchmarks are carried
//! by the hot level-check/field-lookup paths.

use gocc_bench::{
    print_geomeans, print_header, sweep_driver, warm_measure, write_bench_json, Measured,
    SweepResult, DEFAULT_WINDOW,
};
use gocc_optilock::{GoccConfig, GoccRuntime};
use gocc_workloads::zaplite::{Logger, INFO};
use gocc_workloads::Engine;

const FIELDS: usize = 64;

fn zap_sweep(
    name: &str,
    sensitive: bool,
    op: impl Fn(&Engine<'_>, &Logger, usize, u64) + Sync,
) -> SweepResult {
    sweep_driver(name, sensitive, DEFAULT_WINDOW, &|mode, cores, window| {
        let rt = GoccRuntime::new(GoccConfig::standard());
        let log = Logger::new(rt.htm(), FIELDS);
        let engine = Engine::new(&rt, mode);
        let ns = warm_measure(cores, window, |w, i| op(&engine, &log, w, i));
        Measured::with_runtime(ns, &rt)
    })
}

fn main() {
    print_header("Zap (lock vs GOCC) — §6.1 prose results");
    let mut results: Vec<SweepResult> = Vec::new();

    results.push(zap_sweep("LevelEnabled", true, |e, l, _, _| {
        let _ = l.enabled(e, INFO);
    }));

    results.push(zap_sweep("FieldLookup", true, |e, l, worker, i| {
        let _ = l.field(e, Logger::field_key((worker * 13 + i as usize) % FIELDS));
    }));

    results.push(zap_sweep("CheckedLog", true, |e, l, worker, i| {
        // Level check + field resolution + IO-tailed write: the realistic
        // hot pipeline.
        let _ = l.infow(e, (worker + i as usize) % FIELDS, 48);
    }));

    results.push(zap_sweep("WriteOnly", false, |e, l, _, _| {
        // IO-dominated section: stays on the lock in both modes.
        l.write(e, 128);
    }));

    results.push(zap_sweep("WithField", true, |e, l, worker, i| {
        l.with_field(e, Logger::field_key((worker * 7 + i as usize) % FIELDS), i);
    }));

    for r in &results {
        r.print();
    }
    println!();
    print_geomeans(&results);
    write_bench_json("zap_results", &results);
    println!();
    println!("expected shape (paper): mild overall geomean gain, no benchmark losing");
    println!("more than a few percent, best case on the read-only gating paths.");
}
