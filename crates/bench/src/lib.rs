//! Benchmark harness for reproducing the paper's tables and figures.
//!
//! Binaries (one per artifact) live in `src/bin/`; this library provides
//! the Go-`testing`-style driver they share: [`run_parallel`] mirrors
//! `b.RunParallel` — N workers hammer an operation for a fixed duration
//! and the result is nanoseconds per operation — and [`sweep_driver`]
//! runs a benchmark across worker counts and modes, printing paper-style
//! rows.
//!
//! A note on this reproduction's hardware: the container has **one** CPU,
//! so "cores" are oversubscribed workers. Contention *shapes* (lock-word
//! RMW serialization, abort/retry behavior, perceptron dynamics) survive;
//! absolute scaling numbers do not. EXPERIMENTS.md discusses per-figure
//! fidelity.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use gocc_workloads::Mode;

/// Default measurement window per benchmark point.
pub const DEFAULT_WINDOW: Duration = Duration::from_millis(200);

/// The paper's core sweep.
pub const CORE_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Runs `op` from `workers` threads for `window`, returning ns/op.
///
/// Mirrors Go's `b.RunParallel`: workers spin on the operation until the
/// window closes; throughput is aggregated across workers.
pub fn run_parallel(workers: usize, window: Duration, op: impl Fn(usize, u64) + Sync) -> f64 {
    let stop = AtomicBool::new(false);
    let total_ops = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for w in 0..workers {
            let (stop, total_ops, op) = (&stop, &total_ops, &op);
            s.spawn(move || {
                let mut local: u64 = 0;
                let mut i: u64 = 0;
                while !stop.load(Ordering::Relaxed) {
                    op(w, i);
                    i += 1;
                    local += 1;
                    // Check the clock occasionally from worker 0 to bound
                    // the window without per-op syscalls.
                    if w == 0 && local.is_multiple_of(64) && start.elapsed() >= window {
                        stop.store(true, Ordering::Relaxed);
                    }
                }
                total_ops.fetch_add(local, Ordering::Relaxed);
            });
        }
    });
    let elapsed = start.elapsed();
    let ops = total_ops.load(Ordering::Relaxed).max(1);
    elapsed.as_nanos() as f64 / ops as f64
}

/// One measured point.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// Simulated core (worker) count.
    pub cores: usize,
    /// Baseline ns/op.
    pub lock_ns: f64,
    /// GOCC ns/op.
    pub gocc_ns: f64,
}

impl Point {
    /// Percentage improvement of GOCC over the lock baseline (positive =
    /// GOCC wins), the paper's reporting convention.
    #[must_use]
    pub fn speedup_pct(&self) -> f64 {
        (self.lock_ns / self.gocc_ns - 1.0) * 100.0
    }
}

/// A benchmark's sweep results across core counts.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// Benchmark name.
    pub name: String,
    /// Whether the benchmark belongs to the concurrency-sensitive group.
    pub sensitive: bool,
    /// Points in [`CORE_COUNTS`] order.
    pub points: Vec<Point>,
}

impl SweepResult {
    /// Prints one paper-style row: ns/op for both variants and the
    /// speedup percentage per core count.
    pub fn print(&self) {
        print!("{:<28}", self.name);
        for p in &self.points {
            print!(
                " | {:>2}c {:>9.1}/{:<9.1} {:>+7.1}%",
                p.cores,
                p.lock_ns,
                p.gocc_ns,
                p.speedup_pct()
            );
        }
        println!();
    }
}

/// Geometric mean of the speedup ratios (lock/gocc) at one core index,
/// expressed as a percentage like the paper's "sensitive"/"all" bars.
#[must_use]
pub fn geomean_pct(results: &[&SweepResult], core_idx: usize) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    let mut log_sum = 0.0;
    for r in results {
        let p = r.points[core_idx];
        log_sum += (p.lock_ns / p.gocc_ns).ln();
    }
    ((log_sum / results.len() as f64).exp() - 1.0) * 100.0
}

/// Runs one benchmark across modes and core counts.
///
/// `point` measures one configuration: it receives the mode, worker count
/// and window, builds a fresh runtime + world (so perceptron state and
/// stripe versions never leak between points, like separate benchmark
/// process runs in the paper), warms up, and returns ns/op — typically by
/// calling [`run_parallel`] twice. The driver owns the sweep structure.
pub fn sweep_driver(
    name: &str,
    sensitive: bool,
    window: Duration,
    point: &dyn Fn(Mode, usize, Duration) -> f64,
) -> SweepResult {
    // The paper pins GOMAXPROCS to the machine's 8 cores while varying
    // the benchmark's parallelism.
    gocc_gosync::set_procs(8);
    let mut points = Vec::new();
    for &cores in &CORE_COUNTS {
        // Engage the coherence-cost model at this sweep's core count (the
        // container has one CPU; see crate docs and DESIGN.md §7).
        let prev = gocc_htm::contention::set_sim_cores(cores);
        let lock_ns = point(Mode::Lock, cores, window);
        let gocc_ns = point(Mode::Gocc, cores, window);
        gocc_htm::contention::set_sim_cores(prev);
        points.push(Point {
            cores,
            lock_ns,
            gocc_ns,
        });
    }
    SweepResult {
        name: name.to_string(),
        sensitive,
        points,
    }
}

/// Warm-up-then-measure helper for `point` closures.
pub fn warm_measure(cores: usize, window: Duration, op: impl Fn(usize, u64) + Sync) -> f64 {
    run_parallel(cores, window / 4, &op);
    run_parallel(cores, window, &op)
}

/// Formats the standard figure header.
pub fn print_header(title: &str) {
    println!("== {title} ==");
    println!(
        "{:<28} | cores: lock-ns/gocc-ns  speedup (positive = GOCC wins)",
        "benchmark"
    );
    println!("{}", "-".repeat(120));
}

/// Prints the sensitive / non-sensitive / all geomean summary lines the
/// paper's figures carry.
pub fn print_geomeans(results: &[SweepResult]) {
    let sensitive: Vec<&SweepResult> = results.iter().filter(|r| r.sensitive).collect();
    let non: Vec<&SweepResult> = results.iter().filter(|r| !r.sensitive).collect();
    let all: Vec<&SweepResult> = results.iter().collect();
    for (label, group) in [
        (format!("sensitive ({})", sensitive.len()), sensitive),
        (format!("non sensitive ({})", non.len()), non),
        (format!("all ({})", all.len()), all),
    ] {
        if group.is_empty() {
            continue;
        }
        print!("{label:<28}");
        for (idx, &cores) in CORE_COUNTS.iter().enumerate() {
            print!(
                " | {:>2}c geomean {:>+7.1}%          ",
                cores,
                geomean_pct(&group, idx)
            );
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_parallel_measures_something() {
        let counter = AtomicU64::new(0);
        let ns = run_parallel(2, Duration::from_millis(20), |_, _| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert!(ns > 0.0);
        assert!(counter.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn speedup_sign_convention() {
        let p = Point {
            cores: 1,
            lock_ns: 200.0,
            gocc_ns: 100.0,
        };
        assert!((p.speedup_pct() - 100.0).abs() < 1e-9, "2x faster = +100%");
        let q = Point {
            cores: 1,
            lock_ns: 90.0,
            gocc_ns: 100.0,
        };
        assert!(q.speedup_pct() < 0.0, "slower = negative");
    }

    #[test]
    fn geomean_of_identical_points() {
        let r = SweepResult {
            name: "x".into(),
            sensitive: true,
            points: vec![Point {
                cores: 1,
                lock_ns: 100.0,
                gocc_ns: 50.0,
            }],
        };
        let g = geomean_pct(&[&r, &r], 0);
        assert!((g - 100.0).abs() < 1e-9);
    }
}
