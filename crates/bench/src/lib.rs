//! Benchmark harness for reproducing the paper's tables and figures.
//!
//! Binaries (one per artifact) live in `src/bin/`; this library provides
//! the Go-`testing`-style driver they share: [`run_parallel`] mirrors
//! `b.RunParallel` — N workers hammer an operation for a fixed duration
//! and the result is nanoseconds per operation — and [`sweep_driver`]
//! runs a benchmark across worker counts and modes, printing paper-style
//! rows.
//!
//! Every measured GOCC point also captures the runtime's statistics
//! ([`Measured`]), and each binary writes a machine-readable
//! `BENCH_<figure>.json` artifact next to the text output — ns/op,
//! speedup percentages, commit ratios and abort-cause breakdowns — via
//! [`write_bench_json`].
//!
//! A note on this reproduction's hardware: the container has **one** CPU,
//! so "cores" are oversubscribed workers. Contention *shapes* (lock-word
//! RMW serialization, abort/retry behavior, perceptron dynamics) survive;
//! absolute scaling numbers do not. EXPERIMENTS.md discusses per-figure
//! fidelity.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use gocc_htm::StatsSnapshot;
use gocc_optilock::{GoccRuntime, OptiStatsSnapshot};
use gocc_telemetry::{JsonWriter, ABORT_CAUSE_NAMES};
use gocc_workloads::Mode;

/// Default measurement window per benchmark point.
pub const DEFAULT_WINDOW: Duration = Duration::from_millis(200);

/// The paper's core sweep.
pub const CORE_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Runs `op` from `workers` threads for `window`, returning ns/op.
///
/// Mirrors Go's `b.RunParallel`: workers spin on the operation until the
/// window closes; throughput is aggregated across workers. Every worker
/// checks the clock (every 64 ops, to avoid per-op syscalls) — a single
/// designated timekeeper could block indefinitely on a contended lock
/// while the others spin past the window, or worse, leave the window
/// unbounded if it parks.
pub fn run_parallel(workers: usize, window: Duration, op: impl Fn(usize, u64) + Sync) -> f64 {
    let stop = AtomicBool::new(false);
    let total_ops = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for w in 0..workers {
            let (stop, total_ops, op) = (&stop, &total_ops, &op);
            s.spawn(move || {
                let mut local: u64 = 0;
                let mut i: u64 = 0;
                while !stop.load(Ordering::Relaxed) {
                    op(w, i);
                    i += 1;
                    local += 1;
                    if local.is_multiple_of(64) && start.elapsed() >= window {
                        stop.store(true, Ordering::Relaxed);
                    }
                }
                total_ops.fetch_add(local, Ordering::Relaxed);
            });
        }
    });
    let elapsed = start.elapsed();
    let ops = total_ops.load(Ordering::Relaxed).max(1);
    elapsed.as_nanos() as f64 / ops as f64
}

/// One measurement plus the runtime statistics accumulated while taking
/// it. Lock-mode points carry zeroed stats (the baseline never touches
/// the HTM machinery).
#[derive(Clone, Copy, Debug, Default)]
pub struct Measured {
    /// Nanoseconds per operation.
    pub ns_per_op: f64,
    /// HTM-domain counters (starts, commits, aborts by cause).
    pub htm: StatsSnapshot,
    /// `optiLib` counters (paths taken, perceptron decisions).
    pub opti: OptiStatsSnapshot,
}

impl Measured {
    /// A measurement with no runtime statistics (baseline mode).
    #[must_use]
    pub fn bare(ns_per_op: f64) -> Self {
        Measured {
            ns_per_op,
            ..Measured::default()
        }
    }

    /// Captures `rt`'s statistics alongside the measurement.
    #[must_use]
    pub fn with_runtime(ns_per_op: f64, rt: &GoccRuntime) -> Self {
        Measured {
            ns_per_op,
            htm: rt.htm().stats().snapshot(),
            opti: rt.stats().snapshot(),
        }
    }
}

/// One measured point.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// Simulated core (worker) count.
    pub cores: usize,
    /// Baseline ns/op.
    pub lock_ns: f64,
    /// GOCC ns/op.
    pub gocc_ns: f64,
    /// HTM statistics from the GOCC run at this point.
    pub htm: StatsSnapshot,
    /// `optiLib` statistics from the GOCC run at this point.
    pub opti: OptiStatsSnapshot,
}

impl Point {
    /// Percentage improvement of GOCC over the lock baseline (positive =
    /// GOCC wins), the paper's reporting convention.
    #[must_use]
    pub fn speedup_pct(&self) -> f64 {
        (self.lock_ns / self.gocc_ns - 1.0) * 100.0
    }
}

/// A benchmark's sweep results across core counts.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// Benchmark name.
    pub name: String,
    /// Whether the benchmark belongs to the concurrency-sensitive group.
    pub sensitive: bool,
    /// Points in [`CORE_COUNTS`] order.
    pub points: Vec<Point>,
}

impl SweepResult {
    /// Prints one paper-style row: ns/op for both variants and the
    /// speedup percentage per core count.
    pub fn print(&self) {
        print!("{:<28}", self.name);
        for p in &self.points {
            print!(
                " | {:>2}c {:>9.1}/{:<9.1} {:>+7.1}%",
                p.cores,
                p.lock_ns,
                p.gocc_ns,
                p.speedup_pct()
            );
        }
        println!();
    }
}

/// Geometric mean of the speedup ratios (lock/gocc) at one core index,
/// expressed as a percentage like the paper's "sensitive"/"all" bars.
///
/// An empty set has no geomean: `None`, which the JSON emission renders
/// as `null`. (It used to render as `0.000`, which reads as "measured, no
/// speedup" — a different claim entirely.)
#[must_use]
pub fn geomean_pct(results: &[&SweepResult], core_idx: usize) -> Option<f64> {
    if results.is_empty() {
        return None;
    }
    let mut log_sum = 0.0;
    for r in results {
        let p = r.points[core_idx];
        log_sum += (p.lock_ns / p.gocc_ns).ln();
    }
    Some(((log_sum / results.len() as f64).exp() - 1.0) * 100.0)
}

/// Runs one benchmark across modes and core counts.
///
/// `point` measures one configuration: it receives the mode, worker count
/// and window, builds a fresh runtime + world (so perceptron state and
/// stripe versions never leak between points, like separate benchmark
/// process runs in the paper), warms up, and returns a [`Measured`] —
/// typically `Measured::with_runtime(warm_measure(...), &rt)`. The driver
/// owns the sweep structure.
pub fn sweep_driver(
    name: &str,
    sensitive: bool,
    window: Duration,
    point: &dyn Fn(Mode, usize, Duration) -> Measured,
) -> SweepResult {
    let mut points = Vec::new();
    for &cores in &CORE_COUNTS {
        // Go's benchmark harness sets GOMAXPROCS per `-cpu` point, so the
        // 1-core column runs with one P and the §5.4.2 single-OS-thread
        // bypass engages — mirror that by setting the modeled proc count
        // per point, not once per sweep.
        let prev_procs = gocc_gosync::set_procs(cores);
        // Engage the coherence-cost model at this sweep's core count (the
        // container has one CPU; see crate docs and DESIGN.md §7).
        let prev = gocc_htm::contention::set_sim_cores(cores);
        let lock = point(Mode::Lock, cores, window);
        let gocc = point(Mode::Gocc, cores, window);
        gocc_htm::contention::set_sim_cores(prev);
        gocc_gosync::set_procs(prev_procs);
        points.push(Point {
            cores,
            lock_ns: lock.ns_per_op,
            gocc_ns: gocc.ns_per_op,
            htm: gocc.htm,
            opti: gocc.opti,
        });
    }
    SweepResult {
        name: name.to_string(),
        sensitive,
        points,
    }
}

/// Warm-up-then-measure helper for `point` closures.
pub fn warm_measure(cores: usize, window: Duration, op: impl Fn(usize, u64) + Sync) -> f64 {
    run_parallel(cores, window / 4, &op);
    run_parallel(cores, window, &op)
}

/// Formats the standard figure header.
pub fn print_header(title: &str) {
    println!("== {title} ==");
    println!(
        "{:<28} | cores: lock-ns/gocc-ns  speedup (positive = GOCC wins)",
        "benchmark"
    );
    println!("{}", "-".repeat(120));
}

/// Prints the sensitive / non-sensitive / all geomean summary lines the
/// paper's figures carry.
pub fn print_geomeans(results: &[SweepResult]) {
    let sensitive: Vec<&SweepResult> = results.iter().filter(|r| r.sensitive).collect();
    let non: Vec<&SweepResult> = results.iter().filter(|r| !r.sensitive).collect();
    let all: Vec<&SweepResult> = results.iter().collect();
    for (label, group) in [
        (format!("sensitive ({})", sensitive.len()), sensitive),
        (format!("non sensitive ({})", non.len()), non),
        (format!("all ({})", all.len()), all),
    ] {
        if group.is_empty() {
            continue;
        }
        print!("{label:<28}");
        for (idx, &cores) in CORE_COUNTS.iter().enumerate() {
            match geomean_pct(&group, idx) {
                Some(g) => print!(" | {cores:>2}c geomean {g:>+7.1}%          "),
                None => print!(" | {cores:>2}c geomean     n/a           "),
            }
        }
        println!();
    }
}

/// Abort counts from an HTM snapshot in [`ABORT_CAUSE_NAMES`] order.
#[must_use]
pub fn abort_counts(htm: &StatsSnapshot) -> [u64; 7] {
    [
        htm.aborts_explicit,
        htm.aborts_retry,
        htm.aborts_conflict,
        htm.aborts_capacity,
        htm.aborts_debug,
        htm.aborts_nested,
        htm.aborts_unfriendly,
    ]
}

/// Writes the shared GOCC statistics fields — commit ratio, fast-path
/// ratio, HTM counters, abort-cause breakdown and `optiLib` counters —
/// into the writer's current object. Used by every figure's JSON
/// emission so the artifacts share a schema.
pub fn stats_fields(w: &mut JsonWriter, htm: &StatsSnapshot, opti: &OptiStatsSnapshot) {
    w.field_f64("commit_ratio", htm.commit_ratio())
        .field_f64("fast_ratio", opti.fast_ratio())
        .key("htm")
        .begin_object()
        .field_u64("starts", htm.starts)
        .field_u64("commits", htm.commits)
        .field_u64("read_only_commits", htm.read_only_commits)
        .field_u64("direct_sections", htm.direct_sections)
        .field_u64("ctx_fresh", htm.ctx_fresh)
        .field_u64("ctx_reused", htm.ctx_reused)
        .field_u64("inline_overflows", htm.inline_overflows)
        .end_object()
        .key("aborts")
        .begin_object();
    for (name, count) in ABORT_CAUSE_NAMES.iter().zip(abort_counts(htm)) {
        w.field_u64(name, count);
    }
    w.end_object()
        .key("opti")
        .begin_object()
        .field_u64("htm_attempts", opti.htm_attempts)
        .field_u64("fast_commits", opti.fast_commits)
        .field_u64("slow_sections", opti.slow_sections)
        .field_u64("perceptron_htm", opti.perceptron_htm)
        .field_u64("perceptron_slow", opti.perceptron_slow)
        .field_u64("single_thread_bypass", opti.single_thread_bypass)
        .field_u64("mismatch_recoveries", opti.mismatch_recoveries)
        .field_u64("watchdog_forced", opti.watchdog_forced)
        .end_object();
}

/// Renders a figure's sweep results as the `BENCH_<figure>.json` document.
#[must_use]
pub fn bench_json(figure: &str, results: &[SweepResult]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object().field_str("figure", figure);
    w.key("core_counts").begin_array();
    for &c in &CORE_COUNTS {
        w.u64(c as u64);
    }
    w.end_array();
    w.key("benchmarks").begin_array();
    for r in results {
        w.begin_object()
            .field_str("name", &r.name)
            .field_bool("sensitive", r.sensitive)
            .key("points")
            .begin_array();
        for p in &r.points {
            w.begin_object()
                .field_u64("cores", p.cores as u64)
                .field_f64("lock_ns_per_op", p.lock_ns)
                .field_f64("gocc_ns_per_op", p.gocc_ns)
                .field_f64("speedup_pct", p.speedup_pct());
            stats_fields(&mut w, &p.htm, &p.opti);
            w.end_object();
        }
        w.end_array().end_object();
    }
    w.end_array();
    let groups: [(&str, Vec<&SweepResult>); 3] = [
        (
            "sensitive",
            results.iter().filter(|r| r.sensitive).collect(),
        ),
        (
            "non_sensitive",
            results.iter().filter(|r| !r.sensitive).collect(),
        ),
        ("all", results.iter().collect()),
    ];
    // Geomeans per sweep position (defensively bounded by the shortest
    // sweep, though all figure bins emit full CORE_COUNTS sweeps).
    let npoints = results.iter().map(|r| r.points.len()).min().unwrap_or(0);
    w.key("geomean_pct").begin_object();
    for (label, group) in &groups {
        w.key(label).begin_array();
        for idx in 0..npoints {
            match geomean_pct(group, idx) {
                Some(g) => w.f64(g),
                None => w.null(),
            };
        }
        w.end_array();
    }
    w.end_object().end_object();
    w.finish()
}

/// Writes `BENCH_<figure>.json` into the current directory and reports
/// the path on stdout. Benchmarks must not silently lose their artifact,
/// so IO errors panic.
pub fn write_bench_json(figure: &str, results: &[SweepResult]) {
    write_artifact(figure, &bench_json(figure, results));
}

/// Renders the common artifact header every `BENCH_*.json` carries: the
/// bench name, the execution-mode list, the git revision and wall-clock
/// budget the driving script exported (`BENCH_GIT_REV` / `BENCH_TIMEOUT`,
/// `"unknown"` / 0 when run standalone).
#[must_use]
pub fn artifact_header(figure: &str) -> String {
    let git_rev = std::env::var("BENCH_GIT_REV").unwrap_or_else(|_| "unknown".to_string());
    let budget_secs = std::env::var("BENCH_TIMEOUT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0u64);
    let mut w = JsonWriter::new();
    w.begin_object()
        .field_str("name", figure)
        .key("modes")
        .begin_array()
        .string("lock")
        .string("gocc")
        .end_array()
        .field_str("git_rev", &git_rev)
        .field_u64("budget_secs", budget_secs)
        .end_object();
    w.finish()
}

/// Splices [`artifact_header`] into a rendered top-level JSON object as
/// its first `"header"` field.
#[must_use]
pub fn with_header(figure: &str, json: &str) -> String {
    let rest = json
        .strip_prefix('{')
        .unwrap_or_else(|| panic!("artifact {figure} is not a JSON object: {json:.40}"));
    let header = artifact_header(figure);
    if rest.trim_start().starts_with('}') {
        format!("{{\"header\":{header}{rest}")
    } else {
        format!("{{\"header\":{header},{rest}")
    }
}

/// Writes an already-rendered JSON document as `BENCH_<figure>.json`,
/// splicing in the common `"header"` object first.
pub fn write_artifact(figure: &str, json: &str) {
    let path = format!("BENCH_{figure}.json");
    std::fs::write(&path, with_header(figure, json))
        .unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use gocc_telemetry::JsonValue;

    #[test]
    fn run_parallel_measures_something() {
        let counter = AtomicU64::new(0);
        let ns = run_parallel(2, Duration::from_millis(20), |_, _| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert!(ns > 0.0);
        assert!(counter.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn run_parallel_terminates_when_worker_zero_is_blocked() {
        // Regression: only worker 0 used to check the clock. If worker 0
        // stalls (here: sleeping far past the window), the run must still
        // end promptly because any worker can flip the stop flag.
        let start = Instant::now();
        let ns = run_parallel(2, Duration::from_millis(20), |w, _| {
            if w == 0 && start.elapsed() < Duration::from_millis(400) {
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        assert!(ns > 0.0);
        assert!(
            start.elapsed() < Duration::from_millis(300),
            "run_parallel failed to stop without worker 0's help"
        );
    }

    #[test]
    fn speedup_sign_convention() {
        let p = Point {
            cores: 1,
            lock_ns: 200.0,
            gocc_ns: 100.0,
            htm: StatsSnapshot::default(),
            opti: OptiStatsSnapshot::default(),
        };
        assert!((p.speedup_pct() - 100.0).abs() < 1e-9, "2x faster = +100%");
        let q = Point {
            cores: 1,
            lock_ns: 90.0,
            gocc_ns: 100.0,
            htm: StatsSnapshot::default(),
            opti: OptiStatsSnapshot::default(),
        };
        assert!(q.speedup_pct() < 0.0, "slower = negative");
    }

    #[test]
    fn geomean_of_identical_points() {
        let r = SweepResult {
            name: "x".into(),
            sensitive: true,
            points: vec![Point {
                cores: 1,
                lock_ns: 100.0,
                gocc_ns: 50.0,
                htm: StatsSnapshot::default(),
                opti: OptiStatsSnapshot::default(),
            }],
        };
        let g = geomean_pct(&[&r, &r], 0).expect("non-empty set");
        assert!((g - 100.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_of_empty_set_is_none_and_renders_null() {
        assert_eq!(geomean_pct(&[], 0), None);
        // A figure where every benchmark is sensitive leaves the
        // non_sensitive group empty: its geomeans must render as null,
        // not 0.000 ("measured, no speedup").
        let r = SweepResult {
            name: "x".into(),
            sensitive: true,
            points: vec![Point {
                cores: 1,
                lock_ns: 100.0,
                gocc_ns: 50.0,
                htm: StatsSnapshot::default(),
                opti: OptiStatsSnapshot::default(),
            }],
        };
        let json = bench_json("test", &[r]);
        let doc = JsonValue::parse(&json).expect("valid JSON");
        let geo = doc.get("geomean_pct").unwrap();
        assert_eq!(
            geo.get("non_sensitive").unwrap().as_array().unwrap()[0],
            JsonValue::Null,
            "empty group must emit null: {json}"
        );
        assert!(
            (geo.get("all").unwrap().as_array().unwrap()[0]
                .as_f64()
                .unwrap()
                - 100.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn artifacts_carry_the_common_header() {
        let json = with_header("test", r#"{"figure":"test"}"#);
        let v = JsonValue::parse(&json).expect("headered artifact parses");
        let h = v.get("header").unwrap();
        assert_eq!(h.get("name").unwrap().as_str(), Some("test"));
        let modes = h.get("modes").unwrap().as_array().unwrap();
        assert_eq!(modes.len(), 2);
        assert!(h.get("git_rev").unwrap().as_str().is_some());
        assert!(h.get("budget_secs").unwrap().as_f64().is_some());
        assert_eq!(v.get("figure").unwrap().as_str(), Some("test"));
        let empty = with_header("e", "{}");
        JsonValue::parse(&empty).expect("empty object splices cleanly");
    }

    #[test]
    fn bench_json_parses_and_carries_the_schema() {
        let r = SweepResult {
            name: "Bench".into(),
            sensitive: true,
            points: vec![Point {
                cores: 2,
                lock_ns: 100.0,
                gocc_ns: 80.0,
                htm: StatsSnapshot {
                    starts: 10,
                    commits: 8,
                    aborts_conflict: 2,
                    ..StatsSnapshot::default()
                },
                opti: OptiStatsSnapshot {
                    htm_attempts: 10,
                    fast_commits: 8,
                    slow_sections: 2,
                    ..OptiStatsSnapshot::default()
                },
            }],
        };
        let doc = JsonValue::parse(&bench_json("test", &[r])).expect("valid JSON");
        assert_eq!(doc.get("figure").unwrap().as_str().unwrap(), "test");
        let bench = &doc.get("benchmarks").unwrap().as_array().unwrap()[0];
        let point = &bench.get("points").unwrap().as_array().unwrap()[0];
        assert_eq!(point.get("cores").unwrap().as_f64().unwrap(), 2.0);
        assert_eq!(point.get("speedup_pct").unwrap().as_f64().unwrap(), 25.0);
        assert_eq!(point.get("commit_ratio").unwrap().as_f64().unwrap(), 0.8);
        assert_eq!(
            point
                .get("aborts")
                .unwrap()
                .get("conflict")
                .unwrap()
                .as_f64()
                .unwrap(),
            2.0
        );
        let geo = doc.get("geomean_pct").unwrap();
        assert_eq!(geo.get("sensitive").unwrap().as_array().unwrap().len(), 1);
        assert!(
            (geo.get("sensitive").unwrap().as_array().unwrap()[0]
                .as_f64()
                .unwrap()
                - 25.0)
                .abs()
                < 1e-9
        );
    }
}
