//! HTM abort injection.
//!
//! `gocc-htm` consults an [`HtmFaultPlan`] once per transaction attempt
//! (lazily, at the first fault-checkable operation after the call site is
//! known) and dooms the transaction with the drawn cause. The four
//! injectable classes map onto the TSX-style abort taxonomy the retry
//! policy keys on:
//!
//! | [`InjectedAbort`] | `gocc_htm::AbortCause`       | retry policy    |
//! |-------------------|------------------------------|-----------------|
//! | `Conflict`        | `Conflict`                   | transient       |
//! | `Spurious`        | `Retry`                      | transient       |
//! | `LockHeld`        | `Explicit(LOCK_HELD_CODE)`   | transient       |
//! | `Capacity`        | `Capacity`                   | give up → lock  |
//!
//! The mapping itself lives in `gocc-htm` (this crate must stay below it
//! in the dependency order).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::seq::SeqTable;
use crate::{decide, unit};

/// An abort class the plan can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectedAbort {
    /// A data conflict with another transaction (transient).
    Conflict,
    /// Read/write-set overflow (non-transient: retrying cannot help).
    Capacity,
    /// The fallback lock was observed held (`Explicit(LOCK_HELD_CODE)`).
    LockHeld,
    /// A cause-less hardware hiccup (`Retry`).
    Spurious,
}

impl InjectedAbort {
    /// Stable index into [`INJECTED_ABORT_NAMES`] and counter arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            InjectedAbort::Conflict => 0,
            InjectedAbort::Capacity => 1,
            InjectedAbort::LockHeld => 2,
            InjectedAbort::Spurious => 3,
        }
    }
}

/// Names matching [`InjectedAbort::index`], for reports.
pub const INJECTED_ABORT_NAMES: [&str; 4] = ["conflict", "capacity", "lock_held", "spurious"];

/// Per-attempt injection probabilities for the four abort classes.
///
/// Probabilities are absolute (not conditional): `conflict: 0.1,
/// capacity: 0.05` means 10% of attempts abort with Conflict, 5% with
/// Capacity, 85% run clean. The sum must be ≤ 1.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AbortMix {
    /// P(injected Conflict) per attempt.
    pub conflict: f64,
    /// P(injected Capacity) per attempt.
    pub capacity: f64,
    /// P(injected lock-held explicit abort) per attempt.
    pub lock_held: f64,
    /// P(injected Spurious/Retry) per attempt.
    pub spurious: f64,
}

impl AbortMix {
    /// An even split of `total` across all four classes.
    #[must_use]
    pub fn uniform(total: f64) -> Self {
        let each = total / 4.0;
        AbortMix {
            conflict: each,
            capacity: each,
            lock_held: each,
            spurious: each,
        }
    }

    /// Total injection probability per attempt.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.conflict + self.capacity + self.lock_held + self.spurious
    }

    /// Classifies a uniform draw in `[0, 1)` against the cumulative mix.
    fn classify(&self, u: f64) -> Option<InjectedAbort> {
        let mut edge = self.conflict;
        if u < edge {
            return Some(InjectedAbort::Conflict);
        }
        edge += self.capacity;
        if u < edge {
            return Some(InjectedAbort::Capacity);
        }
        edge += self.lock_held;
        if u < edge {
            return Some(InjectedAbort::LockHeld);
        }
        edge += self.spurious;
        if u < edge {
            return Some(InjectedAbort::Spurious);
        }
        None
    }
}

/// Deterministic per-site HTM abort schedule.
///
/// The `n`-th draw at a site is a pure function of `(seed, site, n)`; see
/// the crate docs for the replay contract. Per-site mixes override the
/// default and are fixed at construction, so the hot path takes no lock.
#[derive(Debug)]
pub struct HtmFaultPlan {
    seed: u64,
    default_mix: AbortMix,
    site_mix: HashMap<usize, AbortMix>,
    seq: SeqTable,
    injected: [AtomicU64; 4],
}

impl HtmFaultPlan {
    /// A plan applying `default_mix` at every site.
    #[must_use]
    pub fn new(seed: u64, default_mix: AbortMix) -> Self {
        HtmFaultPlan {
            seed,
            default_mix,
            site_mix: HashMap::new(),
            seq: SeqTable::new(),
            injected: Default::default(),
        }
    }

    /// Overrides the mix for one site (builder style, pre-run only).
    #[must_use]
    pub fn with_site_mix(mut self, site: usize, mix: AbortMix) -> Self {
        self.site_mix.insert(site, mix);
        self
    }

    /// The mix in effect at `site`.
    #[must_use]
    pub fn mix_for(&self, site: usize) -> AbortMix {
        self.site_mix
            .get(&site)
            .copied()
            .unwrap_or(self.default_mix)
    }

    /// Draws the next decision for `site`: `None` = run clean.
    ///
    /// Each call advances the site's decision index, so callers must draw
    /// exactly once per transaction attempt.
    pub fn draw(&self, site: usize) -> Option<InjectedAbort> {
        let mix = self.mix_for(site);
        if mix.total() <= 0.0 {
            return None;
        }
        let n = self.seq.next(site);
        let cause = mix.classify(unit(decide(self.seed, site as u64, n)))?;
        self.injected[cause.index()].fetch_add(1, Ordering::Relaxed);
        Some(cause)
    }

    /// Injected-abort counts, indexed per [`InjectedAbort::index`].
    #[must_use]
    pub fn counts(&self) -> [u64; 4] {
        [
            self.injected[0].load(Ordering::Relaxed),
            self.injected[1].load(Ordering::Relaxed),
            self.injected[2].load(Ordering::Relaxed),
            self.injected[3].load(Ordering::Relaxed),
        ]
    }

    /// Total injected aborts across all classes.
    #[must_use]
    pub fn total_injected(&self) -> u64 {
        self.counts().iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_mix_never_injects_and_never_advances() {
        let plan = HtmFaultPlan::new(1, AbortMix::default());
        for _ in 0..100 {
            assert_eq!(plan.draw(9), None);
        }
        assert_eq!(plan.total_injected(), 0);
        assert_eq!(plan.seq.drawn(9), 0, "clean sites pay no sequencing");
    }

    #[test]
    fn full_mix_always_injects() {
        let plan = HtmFaultPlan::new(2, AbortMix::uniform(1.0));
        let mut seen = [false; 4];
        for _ in 0..400 {
            let cause = plan.draw(3).expect("total=1.0 must always inject");
            seen[cause.index()] = true;
        }
        assert!(seen.iter().all(|&s| s), "all four classes drawn: {seen:?}");
        assert_eq!(plan.total_injected(), 400);
    }

    #[test]
    fn rates_are_roughly_honored() {
        let plan = HtmFaultPlan::new(
            3,
            AbortMix {
                conflict: 0.25,
                ..AbortMix::default()
            },
        );
        let n = 20_000;
        let hits = (0..n).filter(|_| plan.draw(1).is_some()).count();
        let rate = hits as f64 / n as f64;
        assert!((0.23..0.27).contains(&rate), "rate {rate}");
    }

    #[test]
    fn site_override_beats_default() {
        let plan = HtmFaultPlan::new(4, AbortMix::uniform(1.0)).with_site_mix(
            42,
            AbortMix {
                capacity: 1.0,
                ..AbortMix::default()
            },
        );
        for _ in 0..50 {
            assert_eq!(plan.draw(42), Some(InjectedAbort::Capacity));
            assert!(plan.draw(7).is_some());
        }
        assert_eq!(plan.counts()[InjectedAbort::Capacity.index()] >= 50, true);
    }

    #[test]
    fn schedule_is_a_pure_function_of_seed_site_index() {
        let a = HtmFaultPlan::new(11, AbortMix::uniform(0.6));
        let b = HtmFaultPlan::new(11, AbortMix::uniform(0.6));
        // b visits sites in a different global order; per-site schedules
        // must still match a's exactly.
        let a_5: Vec<_> = (0..50).map(|_| a.draw(5)).collect();
        let a_6: Vec<_> = (0..50).map(|_| a.draw(6)).collect();
        let mut b_5 = Vec::new();
        let mut b_6 = Vec::new();
        for _ in 0..50 {
            b_6.push(b.draw(6));
            b_5.push(b.draw(5));
        }
        assert_eq!(a_5, b_5);
        assert_eq!(a_6, b_6);
    }
}
