//! Seeded, deterministic fault injection for the GOCC stack.
//!
//! GOCC's safety argument (paper §5.4) is that lock elision *degrades
//! gracefully*: abort-cause-keyed retry, mutex-mismatch recovery and the
//! perceptron fallback guarantee the pessimistic lock path always wins
//! eventually. Nothing in normal operation forces those paths, so this
//! crate manufactures the rare events on demand — and does so
//! *deterministically*, so any failure a fault schedule exposes is
//! replayable from its seed.
//!
//! Four plans cover the stack's correctness fault surfaces:
//!
//! * [`HtmFaultPlan`] — injects transaction aborts
//!   (conflict/capacity/explicit/spurious) into `gocc-htm` at per-site
//!   configurable probabilities, driving the `optilock` retry policy and
//!   perceptron through every branch;
//! * [`PairingFaultPlan`] — tells a driver when to emit a mis-paired
//!   Lock/Unlock sequence (hand-over-hand style) so mutex-mismatch
//!   detection is exercised end-to-end;
//! * [`TransportFaultPlan`] — short reads/writes, stalls and mid-frame
//!   resets for the `wire`/`server`/`loadgen` I/O path;
//! * [`StorageFaultPlan`] — torn appends, short fsyncs and crash points
//!   for the `wal` durability path, keyed by `(seed, lsn)`; injected
//!   under the `WalFile` trait so the WAL cannot tell a simulated file
//!   from a real one (`crash_soak` replays its schedules both in-process
//!   and by aborting a real `goccd`).
//!
//! A fourth, standalone plan targets the *overload* surface rather than
//! the correctness surface: [`LoadFaultPlan`] injects seeded worker
//! stalls and slow-store draws so `goccd`'s brownout controller can be
//! driven through every state transition deterministically, without
//! constructing wall-clock load.
//!
//! # The replay-by-seed contract
//!
//! Every decision is a pure function of `(seed, key, n)` where `key` is
//! the call site (HTM/pairing) or stream id (transport) and `n` is that
//! key's decision index, tracked by a per-plan [`SeqTable`]. Re-running
//! the same deterministic driver with the same seed therefore reproduces
//! the *identical* fault schedule — same decisions, in the same per-key
//! order, with the same injected-fault counts. No global RNG is shared
//! across keys, so schedules for independent keys do not perturb each
//! other.
//!
//! The crate depends only on `gocc-telemetry` (for JSON emission); the
//! layers above (`htm`, `wire`, `server`, `loadgen`) depend on it, never
//! the other way around.

mod htm;
mod load;
mod pairing;
mod report;
mod seq;
mod storage;
mod transport;

pub use htm::{AbortMix, HtmFaultPlan, InjectedAbort, INJECTED_ABORT_NAMES};
pub use load::{LoadFault, LoadFaultPlan, LoadMix, LOAD_FAULT_NAMES};
pub use pairing::PairingFaultPlan;
pub use report::FaultReport;
pub use seq::SeqTable;
pub use storage::{StorageFault, StorageFaultPlan, StorageMix, STORAGE_FAULT_NAMES};
pub use transport::{TransportFault, TransportFaultPlan, TransportMix, TRANSPORT_FAULT_NAMES};

use gocc_telemetry::SplitMix64;
use std::sync::Arc;

/// One deterministic decision: a pure function of `(seed, key, n)`.
///
/// SplitMix64's output stage is a strong 64-bit mixer, so seeding it with
/// the xor-folded tuple and taking one output gives an independent,
/// reproducible draw per `(key, n)` pair.
#[must_use]
pub(crate) fn decide(seed: u64, key: u64, n: u64) -> u64 {
    let folded =
        seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ n.wrapping_mul(0xD1B5_4A32_D192_ED03);
    SplitMix64::new(folded).next_u64()
}

/// Converts a raw draw to a uniform in `[0, 1)`.
pub(crate) fn unit(draw: u64) -> f64 {
    // 53 explicit mantissa bits; exact and bias-free.
    (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Configuration for a full [`FaultPlane`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultPlaneConfig {
    /// Per-attempt HTM abort injection mix (applies to every site unless
    /// overridden per site on the plan).
    pub abort_mix: AbortMix,
    /// Probability a driver-controlled section mis-pairs its unlock.
    pub pairing_rate: f64,
    /// Per-I/O-operation transport fault mix.
    pub transport_mix: TransportMix,
}

/// The bundle of all three plans under one seed.
#[derive(Clone, Debug)]
pub struct FaultPlane {
    seed: u64,
    /// HTM abort injection, consumed by `gocc-htm`.
    pub htm: Arc<HtmFaultPlan>,
    /// Lock/Unlock mis-pairing, consumed by chaos drivers.
    pub pairing: Arc<PairingFaultPlan>,
    /// I/O faults, consumed by `wire`/`server`/`loadgen`.
    pub transport: Arc<TransportFaultPlan>,
}

impl FaultPlane {
    /// Builds all three plans from one seed. Sub-plans get decorrelated
    /// seeds derived from `seed` so the same site/stream key does not see
    /// correlated schedules across plans.
    #[must_use]
    pub fn new(seed: u64, config: FaultPlaneConfig) -> Self {
        let mut derive = SplitMix64::new(seed);
        let htm_seed = derive.next_u64();
        let pairing_seed = derive.next_u64();
        let transport_seed = derive.next_u64();
        FaultPlane {
            seed,
            htm: Arc::new(HtmFaultPlan::new(htm_seed, config.abort_mix)),
            pairing: Arc::new(PairingFaultPlan::new(pairing_seed, config.pairing_rate)),
            transport: Arc::new(TransportFaultPlan::new(
                transport_seed,
                config.transport_mix,
            )),
        }
    }

    /// The root seed this plane was built from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Snapshots every plan's injected-fault counters.
    #[must_use]
    pub fn report(&self) -> FaultReport {
        FaultReport {
            seed: self.seed,
            htm_injected: self.htm.counts(),
            pairing_injected: self.pairing.count(),
            transport_injected: self.transport.counts(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let cfg = FaultPlaneConfig {
            abort_mix: AbortMix::uniform(0.4),
            pairing_rate: 0.3,
            transport_mix: TransportMix::uniform(0.4),
        };
        let a = FaultPlane::new(99, cfg);
        let b = FaultPlane::new(99, cfg);
        for site in [1usize, 77, 1 << 40] {
            for _ in 0..200 {
                assert_eq!(a.htm.draw(site), b.htm.draw(site));
                assert_eq!(a.pairing.mispair(site), b.pairing.mispair(site));
            }
        }
        for stream in 0u64..8 {
            for _ in 0..200 {
                assert_eq!(a.transport.draw_read(stream), b.transport.draw_read(stream));
                assert_eq!(
                    a.transport.draw_write(stream),
                    b.transport.draw_write(stream)
                );
            }
        }
        assert_eq!(a.report(), b.report());
    }

    #[test]
    fn different_seeds_diverge() {
        let cfg = FaultPlaneConfig {
            abort_mix: AbortMix::uniform(0.5),
            pairing_rate: 0.5,
            transport_mix: TransportMix::uniform(0.5),
        };
        let a = FaultPlane::new(1, cfg);
        let b = FaultPlane::new(2, cfg);
        let draws_a: Vec<_> = (0..64).map(|_| a.htm.draw(7)).collect();
        let draws_b: Vec<_> = (0..64).map(|_| b.htm.draw(7)).collect();
        assert_ne!(draws_a, draws_b, "seeds must decorrelate schedules");
    }

    #[test]
    fn independent_keys_do_not_perturb_each_other() {
        let cfg = FaultPlaneConfig {
            abort_mix: AbortMix::uniform(0.4),
            ..FaultPlaneConfig::default()
        };
        // Plan A draws only for site 5; plan B interleaves site 5 with
        // heavy traffic on site 6. Site 5's schedule must be identical.
        let a = FaultPlane::new(4242, cfg);
        let b = FaultPlane::new(4242, cfg);
        let mut seq_a = Vec::new();
        let mut seq_b = Vec::new();
        for i in 0..100 {
            seq_a.push(a.htm.draw(5));
            if i % 2 == 0 {
                for _ in 0..3 {
                    let _ = b.htm.draw(6);
                }
            }
            seq_b.push(b.htm.draw(5));
        }
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn report_counts_every_injection() {
        let cfg = FaultPlaneConfig {
            abort_mix: AbortMix::uniform(1.0),
            pairing_rate: 1.0,
            // Read-side classes only, summing to 1, so every read draw hits.
            transport_mix: TransportMix {
                short_read: 0.5,
                short_write: 0.0,
                stall: 0.25,
                reset: 0.25,
            },
        };
        let plane = FaultPlane::new(5, cfg);
        for _ in 0..10 {
            assert!(plane.htm.draw(1).is_some());
            assert!(plane.pairing.mispair(1));
            assert!(plane.transport.draw_read(1).is_some());
        }
        let report = plane.report();
        assert_eq!(report.htm_injected.iter().sum::<u64>(), 10);
        assert_eq!(report.pairing_injected, 10);
        assert_eq!(report.transport_injected.iter().sum::<u64>(), 10);
        let json = report.to_json();
        assert!(json.contains("\"seed\":5"), "json: {json}");
    }

    #[test]
    fn unit_is_in_range() {
        for i in 0..1000 {
            let u = unit(decide(3, 4, i));
            assert!((0.0..1.0).contains(&u));
        }
    }
}
