//! Load fault injection: seeded worker stalls and slow-store draws.
//!
//! The overload layer in `crates/server` (admission control, deadlines,
//! brownout) reacts to *latency pressure* — but real pressure needs real
//! wall-clock load, which makes its state transitions slow and flaky to
//! test. This plan manufactures the pressure deterministically instead:
//!
//! * **Stall** — a worker pauses between pump passes (a GC pause, a noisy
//!   neighbor stealing the core);
//! * **SlowStore** — one request's storage call takes extra time (a cold
//!   page, a contended shard).
//!
//! Both follow the crate-wide replay-by-seed contract: every draw is a
//! pure function of `(seed, key, n)` where `key` is the worker index and
//! `n` that worker's decision counter, so a brownout transition sequence
//! a schedule provokes is reproducible from its seed — and the brownout
//! controller itself can be unit-tested against plan draws with no server
//! and no wall clock at all.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::seq::SeqTable;
use crate::{decide, unit};

/// A load fault class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadFault {
    /// The worker pauses for this long before its next pump pass.
    Stall(Duration),
    /// One request's storage call is delayed by this long.
    SlowStore(Duration),
}

impl LoadFault {
    /// Stable index into [`LOAD_FAULT_NAMES`] and counter arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            LoadFault::Stall(_) => 0,
            LoadFault::SlowStore(_) => 1,
        }
    }
}

/// Names matching [`LoadFault::index`], for reports.
pub const LOAD_FAULT_NAMES: [&str; 2] = ["stall", "slow_store"];

/// Per-decision load fault probabilities and magnitudes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoadMix {
    /// P(worker stall) per pump-level draw.
    pub stall: f64,
    /// Length of an injected stall.
    pub stall_for: Duration,
    /// P(slow store) per request-level draw.
    pub slow_store: f64,
    /// Extra latency of an injected slow store call.
    pub slow_store_for: Duration,
}

impl Default for LoadMix {
    fn default() -> Self {
        LoadMix {
            stall: 0.0,
            stall_for: Duration::from_millis(2),
            slow_store: 0.0,
            slow_store_for: Duration::from_millis(1),
        }
    }
}

impl LoadMix {
    /// A mix applying `rate` to both classes with default magnitudes.
    #[must_use]
    pub fn uniform(rate: f64) -> Self {
        LoadMix {
            stall: rate,
            slow_store: rate,
            ..LoadMix::default()
        }
    }
}

/// Salt decorrelating worker-level draws from request-level draws, so the
/// stall schedule of worker *w* is independent of how many requests it
/// happens to serve.
const STORE_SALT: u64 = 0x51D7_4E0B_6A1C_9F35;

/// Deterministic per-worker load fault schedule.
#[derive(Debug)]
pub struct LoadFaultPlan {
    seed: u64,
    mix: LoadMix,
    worker_seq: SeqTable,
    store_seq: SeqTable,
    injected: [AtomicU64; 2],
}

impl LoadFaultPlan {
    /// A plan applying `mix` to every worker.
    #[must_use]
    pub fn new(seed: u64, mix: LoadMix) -> Self {
        LoadFaultPlan {
            seed,
            mix,
            worker_seq: SeqTable::new(),
            store_seq: SeqTable::new(),
            injected: Default::default(),
        }
    }

    /// The configured mix.
    #[must_use]
    pub fn mix(&self) -> LoadMix {
        self.mix
    }

    /// Decision for worker `w`'s next pump pass: stall or proceed.
    pub fn draw_worker(&self, w: u64) -> Option<LoadFault> {
        if self.mix.stall <= 0.0 {
            return None;
        }
        let n = self.worker_seq.next(w as usize);
        if unit(decide(self.seed, w, n)) < self.mix.stall {
            self.injected[0].fetch_add(1, Ordering::Relaxed);
            Some(LoadFault::Stall(self.mix.stall_for))
        } else {
            None
        }
    }

    /// Decision for the next storage call executed by worker `w`.
    pub fn draw_store(&self, w: u64) -> Option<LoadFault> {
        if self.mix.slow_store <= 0.0 {
            return None;
        }
        let n = self.store_seq.next(w as usize);
        if unit(decide(self.seed ^ STORE_SALT, w, n)) < self.mix.slow_store {
            self.injected[1].fetch_add(1, Ordering::Relaxed);
            Some(LoadFault::SlowStore(self.mix.slow_store_for))
        } else {
            None
        }
    }

    /// Injected counts, indexed per [`LoadFault::index`].
    #[must_use]
    pub fn counts(&self) -> [u64; 2] {
        [
            self.injected[0].load(Ordering::Relaxed),
            self.injected[1].load(Ordering::Relaxed),
        ]
    }

    /// Total injected load faults across both classes.
    #[must_use]
    pub fn total_injected(&self) -> u64 {
        self.counts().iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_mix_is_transparent() {
        let plan = LoadFaultPlan::new(1, LoadMix::default());
        for _ in 0..200 {
            assert_eq!(plan.draw_worker(0), None);
            assert_eq!(plan.draw_store(0), None);
        }
        assert_eq!(plan.total_injected(), 0);
    }

    #[test]
    fn same_seed_same_schedule() {
        let mix = LoadMix::uniform(0.4);
        let a = LoadFaultPlan::new(77, mix);
        let b = LoadFaultPlan::new(77, mix);
        for w in 0..4u64 {
            for _ in 0..200 {
                assert_eq!(a.draw_worker(w), b.draw_worker(w));
                assert_eq!(a.draw_store(w), b.draw_store(w));
            }
        }
        assert_eq!(a.counts(), b.counts());
        assert!(a.total_injected() > 0, "a 0.4 mix must fire in 1600 draws");
    }

    #[test]
    fn different_seeds_diverge() {
        let mix = LoadMix::uniform(0.5);
        let a = LoadFaultPlan::new(1, mix);
        let b = LoadFaultPlan::new(2, mix);
        let da: Vec<_> = (0..128).map(|_| a.draw_worker(3)).collect();
        let db: Vec<_> = (0..128).map(|_| b.draw_worker(3)).collect();
        assert_ne!(da, db);
    }

    #[test]
    fn worker_and_store_streams_are_independent() {
        // Plan A draws only worker-level; plan B interleaves store draws.
        // Worker 0's stall schedule must be identical either way.
        let mix = LoadMix::uniform(0.3);
        let a = LoadFaultPlan::new(9, mix);
        let b = LoadFaultPlan::new(9, mix);
        let mut seq_a = Vec::new();
        let mut seq_b = Vec::new();
        for i in 0..100 {
            seq_a.push(a.draw_worker(0));
            if i % 3 == 0 {
                let _ = b.draw_store(0);
            }
            seq_b.push(b.draw_worker(0));
        }
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn magnitudes_come_from_the_mix() {
        let mix = LoadMix {
            stall: 1.0,
            stall_for: Duration::from_micros(123),
            slow_store: 1.0,
            slow_store_for: Duration::from_micros(456),
        };
        let plan = LoadFaultPlan::new(5, mix);
        assert_eq!(
            plan.draw_worker(0),
            Some(LoadFault::Stall(Duration::from_micros(123)))
        );
        assert_eq!(
            plan.draw_store(0),
            Some(LoadFault::SlowStore(Duration::from_micros(456)))
        );
        assert_eq!(plan.counts(), [1, 1]);
    }
}
