//! Lock/Unlock mis-pairing injection.
//!
//! GOCC's transform pairs each `Lock` with a post-dominating `Unlock` and
//! relies on runtime mutex-mismatch detection (paper §5.4, Listing 19's
//! `FastUnlock` check) to recover when a pair was mis-identified — the
//! classic trigger being hand-over-hand locking. This plan tells a chaos
//! driver *when* to emit such a mis-paired sequence: the driver holds two
//! locks and, on `mispair() == true`, unlocks the *other* one inside the
//! elided section, which must surface as a mismatch recovery (never a
//! panic, never silent corruption).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::seq::SeqTable;
use crate::{decide, unit};

/// Deterministic per-site mis-pairing schedule.
#[derive(Debug)]
pub struct PairingFaultPlan {
    seed: u64,
    rate: f64,
    seq: SeqTable,
    injected: AtomicU64,
}

impl PairingFaultPlan {
    /// A plan mis-pairing each decision with probability `rate`.
    #[must_use]
    pub fn new(seed: u64, rate: f64) -> Self {
        PairingFaultPlan {
            seed,
            rate,
            seq: SeqTable::new(),
            injected: AtomicU64::new(0),
        }
    }

    /// The configured mis-pairing rate.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Draws the next decision for `site`: should this section mis-pair
    /// its unlock? Advances the site's decision index.
    pub fn mispair(&self, site: usize) -> bool {
        if self.rate <= 0.0 {
            return false;
        }
        let n = self.seq.next(site);
        let hit = unit(decide(self.seed, site as u64, n)) < self.rate;
        if hit {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Number of mis-pairings injected so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_fires() {
        let plan = PairingFaultPlan::new(8, 0.0);
        assert!((0..100).all(|_| !plan.mispair(1)));
        assert_eq!(plan.count(), 0);
    }

    #[test]
    fn full_rate_always_fires_and_counts() {
        let plan = PairingFaultPlan::new(8, 1.0);
        assert!((0..100).all(|_| plan.mispair(1)));
        assert_eq!(plan.count(), 100);
    }

    #[test]
    fn deterministic_per_site() {
        let a = PairingFaultPlan::new(21, 0.5);
        let b = PairingFaultPlan::new(21, 0.5);
        let sa: Vec<bool> = (0..200).map(|_| a.mispair(9)).collect();
        let sb: Vec<bool> = (0..200).map(|_| b.mispair(9)).collect();
        assert_eq!(sa, sb);
        assert!(sa.iter().any(|&x| x) && sa.iter().any(|&x| !x));
    }
}
