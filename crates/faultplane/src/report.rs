//! Snapshot of everything a [`crate::FaultPlane`] injected.
//!
//! The report is `Eq`, which is the replay-by-seed check in executable
//! form: a deterministic driver re-run under the same seed must produce a
//! byte-identical report (`chaos_soak` asserts exactly this).

use gocc_telemetry::JsonWriter;

use crate::{INJECTED_ABORT_NAMES, TRANSPORT_FAULT_NAMES};

/// Injected-fault counts across all three plans.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultReport {
    /// Root seed the plane was built from.
    pub seed: u64,
    /// Injected HTM aborts, indexed per `InjectedAbort::index`.
    pub htm_injected: [u64; 4],
    /// Injected Lock/Unlock mis-pairings.
    pub pairing_injected: u64,
    /// Injected transport faults, indexed per `TransportFault::index`.
    pub transport_injected: [u64; 4],
}

impl FaultReport {
    /// Total injections across every plan.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.htm_injected.iter().sum::<u64>()
            + self.pairing_injected
            + self.transport_injected.iter().sum::<u64>()
    }

    /// Renders the report as a stable-order JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object().field_u64("seed", self.seed);
        w.key("htm_injected").begin_object();
        for (name, count) in INJECTED_ABORT_NAMES.iter().zip(self.htm_injected) {
            w.field_u64(name, count);
        }
        w.end_object();
        w.field_u64("pairing_injected", self.pairing_injected);
        w.key("transport_injected").begin_object();
        for (name, count) in TRANSPORT_FAULT_NAMES.iter().zip(self.transport_injected) {
            w.field_u64(name, count);
        }
        w.end_object();
        w.field_u64("total", self.total());
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gocc_telemetry::JsonValue;

    #[test]
    fn json_roundtrips() {
        let report = FaultReport {
            seed: 7,
            htm_injected: [1, 2, 3, 4],
            pairing_injected: 5,
            transport_injected: [6, 7, 8, 9],
        };
        let v = JsonValue::parse(&report.to_json()).unwrap();
        assert_eq!(v.get("seed").unwrap().as_f64(), Some(7.0));
        assert_eq!(
            v.get("htm_injected")
                .unwrap()
                .get("capacity")
                .unwrap()
                .as_f64(),
            Some(2.0)
        );
        assert_eq!(
            v.get("transport_injected")
                .unwrap()
                .get("reset")
                .unwrap()
                .as_f64(),
            Some(9.0)
        );
        assert_eq!(v.get("total").unwrap().as_f64(), Some(45.0));
    }

    #[test]
    fn equality_is_the_replay_check() {
        let a = FaultReport {
            seed: 1,
            htm_injected: [0; 4],
            pairing_injected: 0,
            transport_injected: [0; 4],
        };
        let mut b = a.clone();
        assert_eq!(a, b);
        b.pairing_injected = 1;
        assert_ne!(a, b);
    }
}
