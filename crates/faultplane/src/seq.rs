//! Per-key decision sequence counters.
//!
//! Every fault decision is keyed by `(key, n)` where `n` is the key's own
//! monotonically increasing decision index. Keys must not share counters —
//! a shared counter would let an unrelated key's traffic shift this key's
//! schedule, breaking replay-by-seed for partitioned drivers. So the table
//! stores exact keys with lock-free open addressing rather than hashing
//! into a lossy fixed grid.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Sentinel for an unclaimed slot. Keys are call-site addresses or small
/// stream ids; `usize::MAX` collides with neither.
const EMPTY: usize = usize::MAX;

/// Number of slots. Sized for "sites in one process" (call sites are
/// static addresses; streams are connection indices) — far more than any
/// driver uses. The last slot acts as a shared overflow counter so the
/// table degrades (loses per-key isolation, keeps determinism for
/// single-threaded drivers) instead of failing when full.
const SLOTS: usize = 4096;

/// Lock-free exact-key table of `u64` counters.
pub struct SeqTable {
    keys: Box<[AtomicUsize]>,
    counts: Box<[AtomicU64]>,
}

impl std::fmt::Debug for SeqTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeqTable").field("slots", &SLOTS).finish()
    }
}

impl Default for SeqTable {
    fn default() -> Self {
        SeqTable::new()
    }
}

impl SeqTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        SeqTable {
            keys: (0..SLOTS).map(|_| AtomicUsize::new(EMPTY)).collect(),
            counts: (0..SLOTS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Claims or finds the slot for `key`, returning its index.
    fn slot(&self, key: usize) -> usize {
        // Fibonacci hashing spreads pointer-like keys well.
        let mut idx = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16) % (SLOTS - 1);
        for _ in 0..SLOTS - 1 {
            let cur = self.keys[idx].load(Ordering::Acquire);
            if cur == key {
                return idx;
            }
            if cur == EMPTY {
                match self.keys[idx].compare_exchange(
                    EMPTY,
                    key,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => return idx,
                    Err(actual) if actual == key => return idx,
                    Err(_) => {}
                }
            }
            idx = (idx + 1) % (SLOTS - 1);
        }
        SLOTS - 1 // shared overflow slot
    }

    /// Returns the next decision index for `key` (0, 1, 2, … per key).
    pub fn next(&self, key: usize) -> u64 {
        self.counts[self.slot(key)].fetch_add(1, Ordering::Relaxed)
    }

    /// The number of decisions drawn so far for `key`.
    #[must_use]
    pub fn drawn(&self, key: usize) -> u64 {
        self.counts[self.slot(key)].load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_key_sequences_are_independent() {
        let t = SeqTable::new();
        assert_eq!(t.next(10), 0);
        assert_eq!(t.next(20), 0);
        assert_eq!(t.next(10), 1);
        assert_eq!(t.next(10), 2);
        assert_eq!(t.next(20), 1);
        assert_eq!(t.drawn(10), 3);
        assert_eq!(t.drawn(20), 2);
    }

    #[test]
    fn survives_many_distinct_keys() {
        let t = SeqTable::new();
        // More keys than slots: the tail shares the overflow counter but
        // nothing panics and early keys keep exact sequences.
        for key in 0..2 * SLOTS {
            let _ = t.next(key);
        }
        assert_eq!(t.next(0), 1);
    }

    #[test]
    fn concurrent_draws_are_gap_free_and_duplicate_free() {
        // Four racing drawers on one key: the indices they observe must
        // partition 0..4000 exactly — a duplicate would replay a fault
        // decision, a gap would skip one, and either breaks replay.
        let t = SeqTable::new();
        let seen: std::sync::Mutex<Vec<u64>> = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut local = Vec::with_capacity(1000);
                    for _ in 0..1000 {
                        local.push(t.next(55));
                    }
                    seen.lock().unwrap().extend(local);
                });
            }
        });
        let mut all = seen.into_inner().unwrap();
        all.sort_unstable();
        let expect: Vec<u64> = (0..4000).collect();
        assert_eq!(all, expect, "draw indices must be gap- and dup-free");
    }

    #[test]
    fn gaps_in_one_keys_traffic_never_shift_anothers_schedule() {
        // Key A draws in bursts with arbitrary gaps between them; key B's
        // observed sequence must match a table where B ran alone. This is
        // the property that keeps seeded replication fault schedules
        // replayable when an unrelated stream goes quiet or chatty.
        let noisy = SeqTable::new();
        let quiet = SeqTable::new();
        let mut noisy_b = Vec::new();
        let mut quiet_b = Vec::new();
        for round in 0..50usize {
            for _ in 0..round % 7 {
                let _ = noisy.next(111); // key A bursts, sizes vary
            }
            noisy_b.push(noisy.next(222));
            quiet_b.push(quiet.next(222));
        }
        assert_eq!(noisy_b, quiet_b);
        assert_eq!(noisy.drawn(222), 50);
    }

    #[test]
    fn colliding_keys_keep_exact_independent_counters() {
        // Two keys whose Fibonacci hash lands on the same initial slot
        // must probe apart, not share a counter.
        let home = |key: usize| (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16) % (SLOTS - 1);
        let a = 1usize;
        let b = (2..)
            .find(|&k| home(k) == home(a))
            .expect("a colliding key exists");
        let t = SeqTable::new();
        for _ in 0..5 {
            let _ = t.next(a);
        }
        assert_eq!(t.next(b), 0, "collision partner starts fresh");
        assert_eq!(t.drawn(a), 5);
        assert_eq!(t.drawn(b), 1);
    }

    #[test]
    fn concurrent_claims_do_not_lose_counts() {
        let t = SeqTable::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        t.next(77);
                    }
                });
            }
        });
        assert_eq!(t.drawn(77), 4000);
    }
}
