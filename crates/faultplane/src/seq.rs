//! Per-key decision sequence counters.
//!
//! Every fault decision is keyed by `(key, n)` where `n` is the key's own
//! monotonically increasing decision index. Keys must not share counters —
//! a shared counter would let an unrelated key's traffic shift this key's
//! schedule, breaking replay-by-seed for partitioned drivers. So the table
//! stores exact keys with lock-free open addressing rather than hashing
//! into a lossy fixed grid.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Sentinel for an unclaimed slot. Keys are call-site addresses or small
/// stream ids; `usize::MAX` collides with neither.
const EMPTY: usize = usize::MAX;

/// Number of slots. Sized for "sites in one process" (call sites are
/// static addresses; streams are connection indices) — far more than any
/// driver uses. The last slot acts as a shared overflow counter so the
/// table degrades (loses per-key isolation, keeps determinism for
/// single-threaded drivers) instead of failing when full.
const SLOTS: usize = 4096;

/// Lock-free exact-key table of `u64` counters.
pub struct SeqTable {
    keys: Box<[AtomicUsize]>,
    counts: Box<[AtomicU64]>,
}

impl std::fmt::Debug for SeqTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeqTable").field("slots", &SLOTS).finish()
    }
}

impl Default for SeqTable {
    fn default() -> Self {
        SeqTable::new()
    }
}

impl SeqTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        SeqTable {
            keys: (0..SLOTS).map(|_| AtomicUsize::new(EMPTY)).collect(),
            counts: (0..SLOTS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Claims or finds the slot for `key`, returning its index.
    fn slot(&self, key: usize) -> usize {
        // Fibonacci hashing spreads pointer-like keys well.
        let mut idx = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16) % (SLOTS - 1);
        for _ in 0..SLOTS - 1 {
            let cur = self.keys[idx].load(Ordering::Acquire);
            if cur == key {
                return idx;
            }
            if cur == EMPTY {
                match self.keys[idx].compare_exchange(
                    EMPTY,
                    key,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => return idx,
                    Err(actual) if actual == key => return idx,
                    Err(_) => {}
                }
            }
            idx = (idx + 1) % (SLOTS - 1);
        }
        SLOTS - 1 // shared overflow slot
    }

    /// Returns the next decision index for `key` (0, 1, 2, … per key).
    pub fn next(&self, key: usize) -> u64 {
        self.counts[self.slot(key)].fetch_add(1, Ordering::Relaxed)
    }

    /// The number of decisions drawn so far for `key`.
    #[must_use]
    pub fn drawn(&self, key: usize) -> u64 {
        self.counts[self.slot(key)].load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_key_sequences_are_independent() {
        let t = SeqTable::new();
        assert_eq!(t.next(10), 0);
        assert_eq!(t.next(20), 0);
        assert_eq!(t.next(10), 1);
        assert_eq!(t.next(10), 2);
        assert_eq!(t.next(20), 1);
        assert_eq!(t.drawn(10), 3);
        assert_eq!(t.drawn(20), 2);
    }

    #[test]
    fn survives_many_distinct_keys() {
        let t = SeqTable::new();
        // More keys than slots: the tail shares the overflow counter but
        // nothing panics and early keys keep exact sequences.
        for key in 0..2 * SLOTS {
            let _ = t.next(key);
        }
        assert_eq!(t.next(0), 1);
    }

    #[test]
    fn concurrent_claims_do_not_lose_counts() {
        let t = SeqTable::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        t.next(77);
                    }
                });
            }
        });
        assert_eq!(t.drawn(77), 4000);
    }
}
