//! Storage (durability) fault injection.
//!
//! A write-ahead log makes promises only a crash can test: an
//! acknowledged write must survive, an unacknowledged one must never be
//! half-applied. Nothing in normal operation crashes the process at the
//! worst possible byte, so [`StorageFaultPlan`] manufactures those
//! moments deterministically. Every draw is the pure `decide(seed, key,
//! n)` function shared with the other plans, keyed by the WAL position
//! the fault lands on:
//!
//! * **Crash at `(seed, lsn)`** — the process (or the simulated file)
//!   dies inside the append carrying log sequence number `lsn`. A
//!   companion draw decides whether the final append survives **torn at
//!   byte granularity** (a partial record prefix lands on disk) or is
//!   lost entirely, along with how much of the unsynced tail the page
//!   cache happened to flush.
//! * **Short fsync** — the barrier reports success but persists only a
//!   prefix of the bytes it covered. Harmless until a later crash, which
//!   is exactly why it must be paired with the crash schedule above.
//! * **Checkpoint-phase crash** — keyed by `(checkpoint index, phase)`
//!   so a schedule can land a death mid-checkpoint-write, between the
//!   side-file rename and the WAL truncation, or mid-truncation.
//!
//! The plan is consumed through the `WalFile` seam in `gocc-wal`; the
//! real-file backend turns a crash draw into `process::abort()`, the
//! simulated backend materializes the surviving prefix and poisons the
//! log in-process.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::{decide, unit};

/// A storage fault class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageFault {
    /// Death inside an append; only the durable prefix (plus a possibly
    /// torn fragment) survives.
    Crash,
    /// The crash left a partial record on disk.
    TornWrite,
    /// An fsync that persisted only a prefix of what it claimed.
    ShortFsync,
    /// Death inside the checkpoint/truncate sequence.
    CkptCrash,
}

impl StorageFault {
    /// Stable index into [`STORAGE_FAULT_NAMES`] and counter arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            StorageFault::Crash => 0,
            StorageFault::TornWrite => 1,
            StorageFault::ShortFsync => 2,
            StorageFault::CkptCrash => 3,
        }
    }
}

/// Names matching [`StorageFault::index`], for reports and STATS.
pub const STORAGE_FAULT_NAMES: [&str; 4] = ["crash", "torn_write", "short_fsync", "ckpt_crash"];

/// Per-operation storage fault probabilities. Absolute, each in `[0, 1]`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StorageMix {
    /// P(crash) per appended record, keyed by its LSN.
    pub crash_per_append: f64,
    /// P(the fatal append survives torn | crash). The torn length is a
    /// further uniform draw over the record's bytes.
    pub torn_given_crash: f64,
    /// P(short fsync) per durability barrier.
    pub short_fsync: f64,
    /// P(crash) per checkpoint phase (write / rename / truncate).
    pub ckpt_crash: f64,
}

// Draw-salt namespaces: one per independent question asked about a key,
// so schedules never alias.
const N_CRASH: u64 = 0;
const N_TORN: u64 = 1;
const N_TORN_LEN: u64 = 2;
const N_TAIL_KEEP: u64 = 3;
const N_SHORT: u64 = 4;
const N_SHORT_LEN: u64 = 5;

// Key namespaces keep fsync and checkpoint draws decorrelated from LSN
// draws that happen to share small integer keys.
const K_FSYNC: u64 = 0x5F5F_F5_00 << 32;
const K_CKPT: u64 = 0x6C6B_70_00 << 32;

/// Seeded storage fault schedule; a pure function of `(seed, position)`.
#[derive(Debug)]
pub struct StorageFaultPlan {
    seed: u64,
    mix: StorageMix,
    injected: [AtomicU64; 4],
}

impl StorageFaultPlan {
    /// Builds a plan. `seed` fully determines the schedule.
    #[must_use]
    pub fn new(seed: u64, mix: StorageMix) -> Self {
        StorageFaultPlan {
            seed,
            mix,
            injected: Default::default(),
        }
    }

    /// The schedule's seed, for replay and reports.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured mix.
    #[must_use]
    pub fn mix(&self) -> StorageMix {
        self.mix
    }

    /// Does the append carrying `lsn` crash the process?
    #[must_use]
    pub fn crash_at(&self, lsn: u64) -> bool {
        let hit = unit(decide(self.seed, lsn, N_CRASH)) < self.mix.crash_per_append;
        if hit {
            self.note(StorageFault::Crash);
        }
        hit
    }

    /// Given a crash at `lsn` during an append of `len` bytes: how many
    /// of those bytes survive on disk? `0` means the append vanishes;
    /// anything in `1..len` is a torn write.
    #[must_use]
    pub fn surviving_append_bytes(&self, lsn: u64, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        if unit(decide(self.seed, lsn, N_TORN)) < self.mix.torn_given_crash {
            self.note(StorageFault::TornWrite);
            // Uniform in 1..len: torn means *some* bytes landed.
            1 + (decide(self.seed, lsn, N_TORN_LEN) as usize) % len.max(2).saturating_sub(1)
        } else {
            0
        }
    }

    /// Given a crash at `lsn`: the fraction of the unsynced tail (bytes
    /// appended but not yet covered by a successful fsync) the page cache
    /// happened to flush before death. Uniform in `[0, 1)`.
    #[must_use]
    pub fn surviving_tail_fraction(&self, lsn: u64) -> f64 {
        unit(decide(self.seed, lsn, N_TAIL_KEEP))
    }

    /// Does the `idx`-th fsync persist only a prefix? Returns the kept
    /// fraction of the newly covered bytes, or `None` for an honest sync.
    #[must_use]
    pub fn short_fsync(&self, idx: u64) -> Option<f64> {
        if unit(decide(self.seed, K_FSYNC ^ idx, N_SHORT)) < self.mix.short_fsync {
            self.note(StorageFault::ShortFsync);
            Some(unit(decide(self.seed, K_FSYNC ^ idx, N_SHORT_LEN)))
        } else {
            None
        }
    }

    /// Does checkpoint number `ckpt` crash in `phase`? Phases are the
    /// caller's enumeration of its fs-operation sequence (side-file
    /// write, rename, per-segment truncation step, ...).
    #[must_use]
    pub fn ckpt_crash(&self, ckpt: u64, phase: u64) -> bool {
        let hit = unit(decide(self.seed, K_CKPT ^ ckpt, phase)) < self.mix.ckpt_crash;
        if hit {
            self.note(StorageFault::CkptCrash);
        }
        hit
    }

    fn note(&self, fault: StorageFault) {
        self.injected[fault.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Injected-fault count for one class.
    #[must_use]
    pub fn injected(&self, fault: StorageFault) -> u64 {
        self.injected[fault.index()].load(Ordering::Relaxed)
    }

    /// Total injected faults across all classes.
    #[must_use]
    pub fn injected_total(&self) -> u64 {
        self.injected
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let mix = StorageMix {
            crash_per_append: 0.01,
            torn_given_crash: 0.5,
            short_fsync: 0.05,
            ckpt_crash: 0.1,
        };
        let a = StorageFaultPlan::new(77, mix);
        let b = StorageFaultPlan::new(77, mix);
        for lsn in 0..5000 {
            assert_eq!(a.crash_at(lsn), b.crash_at(lsn));
            assert_eq!(
                a.surviving_append_bytes(lsn, 52),
                b.surviving_append_bytes(lsn, 52)
            );
        }
        for idx in 0..1000 {
            assert_eq!(a.short_fsync(idx), b.short_fsync(idx));
        }
        for ckpt in 0..100 {
            for phase in 0..4 {
                assert_eq!(a.ckpt_crash(ckpt, phase), b.ckpt_crash(ckpt, phase));
            }
        }
        assert_eq!(a.injected_total(), b.injected_total());
    }

    #[test]
    fn different_seeds_diverge() {
        let mix = StorageMix {
            crash_per_append: 0.05,
            ..StorageMix::default()
        };
        let a = StorageFaultPlan::new(1, mix);
        let b = StorageFaultPlan::new(2, mix);
        let divergent = (0..2000)
            .filter(|&l| a.crash_at(l) != b.crash_at(l))
            .count();
        assert!(divergent > 0, "independent seeds must differ somewhere");
    }

    #[test]
    fn rates_are_roughly_honored() {
        let mix = StorageMix {
            crash_per_append: 0.02,
            torn_given_crash: 1.0,
            short_fsync: 0.1,
            ckpt_crash: 0.0,
        };
        let plan = StorageFaultPlan::new(9, mix);
        let crashes = (0..50_000).filter(|&l| plan.crash_at(l)).count();
        assert!(
            (500..1500).contains(&crashes),
            "2% of 50k draws, got {crashes}"
        );
        let shorts = (0..50_000)
            .filter(|&i| plan.short_fsync(i).is_some())
            .count();
        assert!((3500..6500).contains(&shorts), "10% of 50k, got {shorts}");
    }

    #[test]
    fn torn_bytes_stay_in_record_bounds() {
        let mix = StorageMix {
            torn_given_crash: 1.0,
            ..StorageMix::default()
        };
        let plan = StorageFaultPlan::new(4, mix);
        for lsn in 0..10_000 {
            let kept = plan.surviving_append_bytes(lsn, 52);
            assert!(kept >= 1 && kept < 52, "lsn {lsn}: kept {kept}");
            let frac = plan.surviving_tail_fraction(lsn);
            assert!((0.0..1.0).contains(&frac));
        }
        assert_eq!(plan.surviving_append_bytes(3, 0), 0, "empty append");
    }

    #[test]
    fn zero_mix_is_silent() {
        let plan = StorageFaultPlan::new(123, StorageMix::default());
        for lsn in 0..10_000 {
            assert!(!plan.crash_at(lsn));
            assert!(plan.short_fsync(lsn).is_none());
            assert!(!plan.ckpt_crash(lsn, lsn % 4));
        }
        assert_eq!(plan.injected_total(), 0);
    }
}
