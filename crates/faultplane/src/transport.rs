//! Transport (I/O) fault injection.
//!
//! The wire protocol is length-prefixed, so the interesting failures are
//! the ones that land *mid-frame*: a read that returns half a header, a
//! write that flushes half a payload, a socket that stalls, a peer that
//! resets. The plan decides, per I/O operation on a stream, whether to
//! inject one of:
//!
//! * **ShortRead** — deliver fewer bytes than were available;
//! * **ShortWrite** — accept fewer bytes than were offered;
//! * **Stall** — report "not ready" (`WouldBlock`-shaped) this round;
//! * **Reset** — fail with `ConnectionReset`; the stream is dead after.
//!
//! Short reads/writes are *correctness-preserving* faults: `FrameBuf`
//! reassembly and `write_all` loops must absorb them with zero protocol
//! divergence. Stalls exercise timeout paths; resets exercise the
//! client's reconnect-with-replay and the server's connection isolation.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::seq::SeqTable;
use crate::{decide, unit};

/// A transport fault class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportFault {
    /// Deliver fewer bytes than available on a read.
    ShortRead,
    /// Accept fewer bytes than offered on a write.
    ShortWrite,
    /// Report "not ready" for this operation.
    Stall,
    /// Fail with `ConnectionReset`; the stream stays dead.
    Reset,
}

impl TransportFault {
    /// Stable index into [`TRANSPORT_FAULT_NAMES`] and counter arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            TransportFault::ShortRead => 0,
            TransportFault::ShortWrite => 1,
            TransportFault::Stall => 2,
            TransportFault::Reset => 3,
        }
    }
}

/// Names matching [`TransportFault::index`], for reports.
pub const TRANSPORT_FAULT_NAMES: [&str; 4] = ["short_read", "short_write", "stall", "reset"];

/// Per-operation transport fault probabilities. Absolute, sum ≤ 1.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TransportMix {
    /// P(short read) per read op.
    pub short_read: f64,
    /// P(short write) per write op.
    pub short_write: f64,
    /// P(stall) per op.
    pub stall: f64,
    /// P(reset) per op.
    pub reset: f64,
}

impl TransportMix {
    /// An even split of `total` across all four classes.
    #[must_use]
    pub fn uniform(total: f64) -> Self {
        let each = total / 4.0;
        TransportMix {
            short_read: each,
            short_write: each,
            stall: each,
            reset: each,
        }
    }

    /// Total per-op fault probability on the read side.
    #[must_use]
    pub fn read_total(&self) -> f64 {
        self.short_read + self.stall + self.reset
    }

    /// Total per-op fault probability on the write side.
    #[must_use]
    pub fn write_total(&self) -> f64 {
        self.short_write + self.stall + self.reset
    }
}

/// Salt decorrelating length draws from fault-class draws.
const CHOP_SALT: u64 = 0xC4CE_B9FE_1A85_EC53;

/// Deterministic per-stream transport fault schedule.
///
/// Streams are identified by a caller-chosen `u64` (connection index,
/// worker id, …); [`TransportFaultPlan::next_stream_id`] hands out fresh
/// ones when the caller has no natural key.
#[derive(Debug)]
pub struct TransportFaultPlan {
    seed: u64,
    mix: TransportMix,
    seq: SeqTable,
    injected: [AtomicU64; 4],
    next_stream: AtomicU64,
}

impl TransportFaultPlan {
    /// A plan applying `mix` on every stream.
    #[must_use]
    pub fn new(seed: u64, mix: TransportMix) -> Self {
        TransportFaultPlan {
            seed,
            mix,
            seq: SeqTable::new(),
            injected: Default::default(),
            next_stream: AtomicU64::new(0),
        }
    }

    /// The configured mix.
    #[must_use]
    pub fn mix(&self) -> TransportMix {
        self.mix
    }

    /// Allocates a fresh stream id.
    pub fn next_stream_id(&self) -> u64 {
        self.next_stream.fetch_add(1, Ordering::Relaxed)
    }

    fn draw(&self, stream: u64, classes: [(f64, TransportFault); 3]) -> Option<TransportFault> {
        if classes.iter().map(|(p, _)| p).sum::<f64>() <= 0.0 {
            return None;
        }
        let n = self.seq.next(stream as usize);
        let u = unit(decide(self.seed, stream, n));
        let mut edge = 0.0;
        for (p, fault) in classes {
            edge += p;
            if u < edge {
                self.injected[fault.index()].fetch_add(1, Ordering::Relaxed);
                return Some(fault);
            }
        }
        None
    }

    /// Decision for the next read operation on `stream`.
    pub fn draw_read(&self, stream: u64) -> Option<TransportFault> {
        self.draw(
            stream,
            [
                (self.mix.short_read, TransportFault::ShortRead),
                (self.mix.stall, TransportFault::Stall),
                (self.mix.reset, TransportFault::Reset),
            ],
        )
    }

    /// Decision for the next write operation on `stream`.
    pub fn draw_write(&self, stream: u64) -> Option<TransportFault> {
        self.draw(
            stream,
            [
                (self.mix.short_write, TransportFault::ShortWrite),
                (self.mix.stall, TransportFault::Stall),
                (self.mix.reset, TransportFault::Reset),
            ],
        )
    }

    /// Deterministically truncates `len` to `[1, len]` for a short
    /// read/write on `stream`.
    #[must_use]
    pub fn chop(&self, stream: u64, len: usize) -> usize {
        if len <= 1 {
            return len;
        }
        let n = self.seq.next(stream as usize);
        1 + (decide(self.seed ^ CHOP_SALT, stream, n) % len as u64) as usize
    }

    /// Injected-fault counts, indexed per [`TransportFault::index`].
    #[must_use]
    pub fn counts(&self) -> [u64; 4] {
        [
            self.injected[0].load(Ordering::Relaxed),
            self.injected[1].load(Ordering::Relaxed),
            self.injected[2].load(Ordering::Relaxed),
            self.injected[3].load(Ordering::Relaxed),
        ]
    }

    /// Total injected transport faults across all classes.
    #[must_use]
    pub fn total_injected(&self) -> u64 {
        self.counts().iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_mix_is_transparent() {
        let plan = TransportFaultPlan::new(1, TransportMix::default());
        for _ in 0..100 {
            assert_eq!(plan.draw_read(0), None);
            assert_eq!(plan.draw_write(0), None);
        }
        assert_eq!(plan.total_injected(), 0);
    }

    #[test]
    fn read_and_write_sides_see_their_classes() {
        let plan = TransportFaultPlan::new(2, TransportMix::uniform(1.0));
        let mut read_seen = [false; 4];
        let mut write_seen = [false; 4];
        for _ in 0..400 {
            if let Some(f) = plan.draw_read(0) {
                read_seen[f.index()] = true;
            }
            if let Some(f) = plan.draw_write(1) {
                write_seen[f.index()] = true;
            }
        }
        assert!(read_seen[TransportFault::ShortRead.index()]);
        assert!(!read_seen[TransportFault::ShortWrite.index()]);
        assert!(read_seen[TransportFault::Stall.index()]);
        assert!(read_seen[TransportFault::Reset.index()]);
        assert!(write_seen[TransportFault::ShortWrite.index()]);
        assert!(!write_seen[TransportFault::ShortRead.index()]);
    }

    #[test]
    fn chop_is_deterministic_and_in_range() {
        let a = TransportFaultPlan::new(3, TransportMix::uniform(0.5));
        let b = TransportFaultPlan::new(3, TransportMix::uniform(0.5));
        for _ in 0..200 {
            let ca = a.chop(4, 100);
            let cb = b.chop(4, 100);
            assert_eq!(ca, cb);
            assert!((1..=100).contains(&ca));
        }
        assert_eq!(a.chop(5, 1), 1);
        assert_eq!(a.chop(5, 0), 0);
    }

    #[test]
    fn stream_ids_are_unique() {
        let plan = TransportFaultPlan::new(4, TransportMix::default());
        assert_eq!(plan.next_stream_id(), 0);
        assert_eq!(plan.next_stream_id(), 1);
        assert_eq!(plan.next_stream_id(), 2);
    }
}
