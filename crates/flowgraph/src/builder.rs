//! Lowering `golite` function bodies to CFGs.

use std::collections::HashMap;

use golite::ast::{Block, Expr, FuncDecl, NodeId, Stmt, Type, UnaryOp};
use golite::token::Span;
use golite::types::TypeInfo;

use crate::cfg::{
    BasicBlock, BlockId, CalleeRef, Cfg, Inst, InstKind, LockOp, LuOp, UnfriendlyKind,
};
use crate::path::AccessPath;

/// Packages whose calls are HTM-unfriendly IO (§5.2's condition 4).
const IO_PACKAGES: &[&str] = &[
    "fmt", "os", "log", "io", "net", "http", "syscall", "bufio", "ioutil", "time",
];

/// Packages whose calls are runtime/unsafe intrinsics.
const INTRINSIC_PACKAGES: &[&str] = &["runtime", "unsafe", "reflect"];

/// Inputs the builder needs from the frontend.
pub struct BuildCtx<'a> {
    /// Package type information.
    pub info: &'a TypeInfo,
    /// Flat local type environment of the function being lowered.
    pub env: &'a HashMap<String, Type>,
}

/// One analyzable unit: a named function or one of its closures.
#[derive(Debug)]
pub struct FuncUnit {
    /// Unit name (`Counter.Inc`, `lockAll`, `lockAll$1` for closures).
    pub name: String,
    /// The closure's AST node, when the unit is a function literal.
    pub lit_node: Option<NodeId>,
    /// The lowered control-flow graph.
    pub cfg: Cfg,
}

/// Lowers a function declaration and all closures inside it, returning the
/// function's unit first.
#[must_use]
pub fn build_cfg(fd: &FuncDecl, ctx: &BuildCtx<'_>) -> Vec<FuncUnit> {
    let name = match &fd.recv {
        Some(r) => format!("{}.{}", r.type_name, fd.name),
        None => fd.name.clone(),
    };
    let mut units = Vec::new();
    lower_unit(&name, None, &fd.body, ctx, &mut units);
    units
}

fn lower_unit(
    name: &str,
    lit_node: Option<NodeId>,
    body: &Block,
    ctx: &BuildCtx<'_>,
    units: &mut Vec<FuncUnit>,
) {
    let mut b = Builder::new(ctx);
    b.block_stmts(body);
    let cfg = b.finish();
    let closures = std::mem::take(&mut b.closures);
    units.push(FuncUnit {
        name: name.to_string(),
        lit_node,
        cfg,
    });
    for (i, (node, closure_body)) in closures.into_iter().enumerate() {
        let child = format!("{name}${}", i + 1);
        lower_unit(&child, Some(node), &closure_body, ctx, units);
    }
}

struct Builder<'a> {
    ctx: &'a BuildCtx<'a>,
    blocks: Vec<BasicBlock>,
    current: BlockId,
    exit: BlockId,
    /// (continue target, break target) stack.
    loops: Vec<(BlockId, BlockId)>,
    /// Deferred unlock templates, in defer-encounter order.
    deferred_unlocks: Vec<LuOp>,
    /// Deferred non-unlock instructions replayed at exits.
    deferred_other: Vec<Inst>,
    /// Whether the current block already ended in a jump.
    terminated: bool,
    closures: Vec<(NodeId, Block)>,
    multiple_defer_unlocks: bool,
    has_other_defers: bool,
}

impl<'a> Builder<'a> {
    fn new(ctx: &'a BuildCtx<'a>) -> Self {
        let entry = BasicBlock::default();
        let exit = BasicBlock::default();
        Builder {
            ctx,
            blocks: vec![entry, exit],
            current: BlockId(0),
            exit: BlockId(1),
            loops: Vec::new(),
            deferred_unlocks: Vec::new(),
            deferred_other: Vec::new(),
            terminated: false,
            closures: Vec::new(),
            multiple_defer_unlocks: false,
            has_other_defers: false,
        }
    }

    fn finish(&mut self) -> Cfg {
        if !self.terminated {
            self.emit_exit_path();
        }
        // Deferred unlocks run when the function returns; placing their
        // synthetic instructions in the single virtual exit block (in LIFO
        // order) makes each one post-dominate every lock point, which is
        // what lets Definition 5.4's condition (2) hold for `defer
        // m.Unlock()` no matter how many return statements exist (§5.2.5).
        for op in self.deferred_unlocks.iter().rev() {
            let mut synth = op.clone();
            synth.synthetic = true;
            let span = synth.span;
            self.blocks[self.exit.0 as usize].insts.push(Inst {
                kind: InstKind::Lu(synth),
                span,
            });
        }
        Cfg {
            blocks: std::mem::take(&mut self.blocks),
            entry: BlockId(0),
            exit: self.exit,
            multiple_defer_unlocks: self.multiple_defer_unlocks,
            has_other_defers: self.has_other_defers,
        }
    }

    fn new_block(&mut self) -> BlockId {
        self.blocks.push(BasicBlock::default());
        BlockId((self.blocks.len() - 1) as u32)
    }

    fn link(&mut self, from: BlockId, to: BlockId) {
        self.blocks[from.0 as usize].succs.push(to);
        self.blocks[to.0 as usize].preds.push(from);
    }

    fn emit(&mut self, kind: InstKind, span: Span) {
        if self.terminated {
            // Unreachable code after return/break: park it in a fresh
            // detached block so spans remain addressable.
            let b = self.new_block();
            self.current = b;
            self.terminated = false;
        }
        self.blocks[self.current.0 as usize]
            .insts
            .push(Inst { kind, span });
    }

    /// Moves to a fresh block, linking fall-through from the current one.
    fn start_block(&mut self) -> BlockId {
        let next = self.new_block();
        if !self.terminated {
            self.link(self.current, next);
        }
        self.current = next;
        self.terminated = false;
        next
    }

    /// Emits the per-return part of the exit path (deferred non-unlock
    /// calls) and jumps to the virtual exit; deferred unlocks are placed in
    /// the exit block itself by `finish` so a single synthetic instruction
    /// post-dominates every lock point.
    fn emit_exit_path(&mut self) {
        let other = self.deferred_other.clone();
        for inst in other {
            self.emit(inst.kind, inst.span);
        }
        self.link(self.current, self.exit);
        self.terminated = true;
    }

    fn block_stmts(&mut self, b: &Block) {
        for s in &b.stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Var(vd) => {
                for v in &vd.values {
                    self.expr(v);
                }
                self.emit(InstKind::Other, vd.span);
            }
            Stmt::Assign { lhs, rhs, span, .. } => {
                for e in lhs.iter().chain(rhs) {
                    self.expr(e);
                }
                self.emit(InstKind::Other, *span);
            }
            Stmt::Expr(e) => {
                if !self.try_lu_point(e, false) {
                    self.expr(e);
                    self.emit(InstKind::Other, e.span());
                }
            }
            Stmt::IncDec { target, span, .. } => {
                self.expr(target);
                self.emit(InstKind::Other, *span);
            }
            Stmt::Defer { call, span, .. } => {
                if let Some(op) = self.classify_lu(call, true) {
                    if !self.deferred_unlocks.is_empty() {
                        self.multiple_defer_unlocks = true;
                    }
                    self.deferred_unlocks.push(op);
                    // The original occurrence is ignored in the CFG
                    // (§5.2.5 point (b)).
                } else {
                    self.has_other_defers = true;
                    // Model the deferred call as executing at every exit.
                    let insts = self.insts_of_call(call);
                    self.deferred_other.extend(insts);
                    let _ = span;
                }
            }
            Stmt::Go { call, span } => {
                // Collect closures (goroutine bodies become their own
                // units) without lowering the call into this section.
                let mut scratch = Vec::new();
                self.walk_expr(call, &mut scratch);
                self.emit(InstKind::Unfriendly(UnfriendlyKind::GoStmt), *span);
            }
            Stmt::Send { chan, value, span } => {
                self.expr(chan);
                self.expr(value);
                self.emit(InstKind::Unfriendly(UnfriendlyKind::Channel), *span);
            }
            Stmt::Return { values, span } => {
                for v in values {
                    self.expr(v);
                }
                self.emit(InstKind::Other, *span);
                self.emit_exit_path();
            }
            Stmt::Break(span) => {
                self.emit(InstKind::Other, *span);
                if let Some(&(_, brk)) = self.loops.last() {
                    self.link(self.current, brk);
                }
                self.terminated = true;
            }
            Stmt::Continue(span) => {
                self.emit(InstKind::Other, *span);
                if let Some(&(cont, _)) = self.loops.last() {
                    self.link(self.current, cont);
                }
                self.terminated = true;
            }
            Stmt::Block(b) => self.block_stmts(b),
            Stmt::If {
                init,
                cond,
                then,
                els,
                ..
            } => {
                if let Some(i) = init {
                    self.stmt(i);
                }
                self.expr(cond);
                let branch = self.current;
                let branch_terminated = self.terminated;
                // Then arm.
                let then_block = self.new_block();
                if !branch_terminated {
                    self.link(branch, then_block);
                }
                self.current = then_block;
                self.terminated = false;
                self.block_stmts(then);
                let then_end = if self.terminated {
                    None
                } else {
                    Some(self.current)
                };
                // Else arm.
                let else_end = match els {
                    Some(e) => {
                        let else_block = self.new_block();
                        if !branch_terminated {
                            self.link(branch, else_block);
                        }
                        self.current = else_block;
                        self.terminated = false;
                        self.stmt(e);
                        if self.terminated {
                            None
                        } else {
                            Some(self.current)
                        }
                    }
                    None => Some(branch),
                };
                let join = self.new_block();
                let mut any = false;
                if let Some(t) = then_end {
                    self.link(t, join);
                    any = true;
                }
                if let Some(e) = else_end {
                    if !(els.is_none() && branch_terminated) {
                        self.link(e, join);
                        any = true;
                    }
                }
                self.current = join;
                self.terminated = !any;
            }
            Stmt::For {
                init,
                cond,
                post,
                range_over,
                body,
                ..
            } => {
                if let Some(i) = init {
                    self.stmt(i);
                }
                if let Some(over) = range_over {
                    self.expr(over);
                }
                let header = self.start_block();
                if let Some(c) = cond {
                    self.expr(c);
                }
                self.emit(InstKind::Other, body.span);
                let header_end = self.current;
                // Loop exit.
                let exit = self.new_block();
                let conditional = cond.is_some() || range_over.is_some();
                if conditional {
                    self.link(header_end, exit);
                }
                // Body.
                let body_block = self.new_block();
                self.link(header_end, body_block);
                self.current = body_block;
                self.terminated = false;
                // `continue` goes to the post block if there is one.
                let post_block = post.as_ref().map(|_| self.new_block());
                self.loops.push((post_block.unwrap_or(header), exit));
                self.block_stmts(body);
                self.loops.pop();
                match (post, post_block) {
                    (Some(p), Some(pb)) => {
                        if !self.terminated {
                            self.link(self.current, pb);
                        }
                        self.current = pb;
                        self.terminated = false;
                        self.stmt(p);
                        if !self.terminated {
                            self.link(self.current, header);
                        }
                    }
                    _ => {
                        if !self.terminated {
                            self.link(self.current, header);
                        }
                    }
                }
                self.current = exit;
                // An infinite loop with no break leaves the exit block
                // unreachable; dominance handles that uniformly.
                self.terminated = false;
            }
            Stmt::Switch {
                cond,
                cases,
                has_default,
                span,
            } => {
                if let Some(c) = cond {
                    self.expr(c);
                }
                self.emit(InstKind::Other, *span);
                let head = self.current;
                let head_terminated = self.terminated;
                let join = self.new_block();
                let mut reaches_join = false;
                for (guards, body) in cases {
                    let case_block = self.new_block();
                    if !head_terminated {
                        self.link(head, case_block);
                    }
                    self.current = case_block;
                    self.terminated = false;
                    for g in guards {
                        self.expr(g);
                    }
                    self.block_stmts(body);
                    if !self.terminated {
                        self.link(self.current, join);
                        reaches_join = true;
                    }
                }
                if !has_default && !head_terminated {
                    self.link(head, join);
                    reaches_join = true;
                }
                self.current = join;
                self.terminated = !reaches_join && !cases.is_empty();
            }
            Stmt::Select { cases, span } => {
                self.emit(InstKind::Unfriendly(UnfriendlyKind::Select), *span);
                let head = self.current;
                let join = self.new_block();
                let mut reaches_join = false;
                for body in cases {
                    let case_block = self.new_block();
                    self.link(head, case_block);
                    self.current = case_block;
                    self.terminated = false;
                    self.block_stmts(body);
                    if !self.terminated {
                        self.link(self.current, join);
                        reaches_join = true;
                    }
                }
                if cases.is_empty() {
                    self.link(head, join);
                    reaches_join = true;
                }
                self.current = join;
                self.terminated = !reaches_join;
            }
        }
    }

    /// If the expression is a lock/unlock call, lower it as an LU point
    /// with the §5.2.1 block-splitting discipline.
    fn try_lu_point(&mut self, e: &Expr, _deferred: bool) -> bool {
        let Some(op) = self.classify_lu(e, false) else {
            return false;
        };
        if op.op.is_acquire() {
            // A lock-point begins a new basic block.
            self.start_block();
            self.emit(InstKind::Lu(op), e.span());
        } else {
            // An unlock-point ends its basic block.
            self.emit(InstKind::Lu(op), e.span());
            self.start_block();
        }
        true
    }

    /// Classifies `recv.Lock()`-shaped calls against the type info.
    fn classify_lu(&mut self, e: &Expr, deferred: bool) -> Option<LuOp> {
        let (recv, method) = e.as_method_call()?;
        let op = match method {
            "Lock" => LockOp::Lock,
            "Unlock" => LockOp::Unlock,
            "RLock" => LockOp::RLock,
            "RUnlock" => LockOp::RUnlock,
            _ => return None,
        };
        let access = self.ctx.info.classify_mutex(recv, self.ctx.env)?;
        if matches!(op, LockOp::RLock | LockOp::RUnlock) && !access.rw {
            return None;
        }
        Some(LuOp {
            node: e.id().expect("calls carry ids"),
            recv: AccessPath::of_expr(recv),
            op,
            rw: access.rw,
            deferred,
            synthetic: false,
            span: e.span(),
        })
    }

    /// Lowers an arbitrary expression: nested calls become `Call` or
    /// `Unfriendly` instructions; closures are collected as separate units.
    fn expr(&mut self, e: &Expr) {
        let insts = self.insts_of_call(e);
        for inst in insts {
            self.emit(inst.kind, inst.span);
        }
    }

    /// Collects the instruction stream an expression contributes (calls,
    /// channel receives) without emitting, so deferred calls can be
    /// replayed at exits.
    fn insts_of_call(&mut self, e: &Expr) -> Vec<Inst> {
        let mut out = Vec::new();
        self.walk_expr(e, &mut out);
        out
    }

    fn walk_expr(&mut self, e: &Expr, out: &mut Vec<Inst>) {
        match e {
            Expr::Call {
                callee, args, span, ..
            } => {
                for a in args {
                    self.walk_expr(a, out);
                }
                // The callee expression itself (e.g. receiver chains).
                if let Expr::Selector { base, .. } = callee.as_ref() {
                    self.walk_expr(base, out);
                }
                let kind = self.classify_call(callee, *span);
                out.push(Inst { kind, span: *span });
            }
            Expr::Unary {
                op: UnaryOp::Recv,
                operand,
                span,
                ..
            } => {
                self.walk_expr(operand, out);
                out.push(Inst {
                    kind: InstKind::Unfriendly(UnfriendlyKind::Channel),
                    span: *span,
                });
            }
            Expr::Unary { operand, .. } => self.walk_expr(operand, out),
            Expr::Binary { left, right, .. } => {
                self.walk_expr(left, out);
                self.walk_expr(right, out);
            }
            Expr::Selector { base, .. } => self.walk_expr(base, out),
            Expr::Index { base, index, .. } => {
                self.walk_expr(base, out);
                self.walk_expr(index, out);
            }
            Expr::Composite { elems, .. } => {
                for (_, v) in elems {
                    self.walk_expr(v, out);
                }
            }
            Expr::FuncLit { id, body, .. } => {
                self.closures.push((*id, (**body).clone()));
            }
            _ => {}
        }
    }

    fn classify_call(&mut self, callee: &Expr, _span: Span) -> InstKind {
        match callee {
            Expr::Ident { name, .. } => match name.as_str() {
                "panic" => InstKind::Unfriendly(UnfriendlyKind::Panic),
                "print" | "println" => InstKind::Unfriendly(UnfriendlyKind::Io),
                "len" | "cap" | "append" | "make" | "new" | "copy" | "delete" | "min" | "max"
                | "byteslice" => InstKind::Call(CalleeRef::Builtin(name.clone())),
                _ => {
                    if self
                        .ctx
                        .env
                        .get(name)
                        .map(|t| *t == Type::Func)
                        .unwrap_or(false)
                    {
                        InstKind::Call(CalleeRef::Indirect)
                    } else {
                        InstKind::Call(CalleeRef::Func(name.clone()))
                    }
                }
            },
            Expr::Selector { base, field, .. } => {
                // Package-qualified call?
                if let Expr::Ident { name: pkg, .. } = base.as_ref() {
                    if !self.ctx.env.contains_key(pkg) {
                        if IO_PACKAGES.contains(&pkg.as_str()) {
                            return InstKind::Unfriendly(UnfriendlyKind::Io);
                        }
                        if INTRINSIC_PACKAGES.contains(&pkg.as_str()) {
                            return InstKind::Unfriendly(UnfriendlyKind::Intrinsic);
                        }
                        // `sync/atomic` and unknown externals: neutral.
                        return InstKind::Call(CalleeRef::External {
                            pkg: pkg.clone(),
                            name: field.clone(),
                        });
                    }
                }
                let recv_struct = self.ctx.info.receiver_struct(base, self.ctx.env);
                InstKind::Call(CalleeRef::Method {
                    recv_struct,
                    name: field.clone(),
                })
            }
            Expr::FuncLit { id, body, .. } => {
                self.closures.push((*id, (**body).clone()));
                InstKind::Call(CalleeRef::FuncLit(*id))
            }
            _ => InstKind::Call(CalleeRef::Indirect),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use golite::parser::parse_file;

    fn units_of(src: &str) -> Vec<FuncUnit> {
        let f = parse_file(src).expect("parse");
        let files = [&f];
        let info = TypeInfo::new(&files);
        let fd = f.funcs().next().expect("one function");
        let env = info.local_env(fd);
        let ctx = BuildCtx {
            info: &info,
            env: &env,
        };
        build_cfg(fd, &ctx)
    }

    const HEADER: &str = "package p\n\nimport \"sync\"\n\ntype C struct {\n\tmu sync.Mutex\n\trw sync.RWMutex\n\tn int\n}\n\n";

    #[test]
    fn straight_line_lock_unlock_splits_blocks() {
        let src =
            format!("{HEADER}func (c *C) Inc() {{\n\tc.mu.Lock()\n\tc.n++\n\tc.mu.Unlock()\n}}\n");
        let units = units_of(&src);
        assert_eq!(units.len(), 1);
        let cfg = &units[0].cfg;
        let lus = cfg.lu_points();
        assert_eq!(lus.len(), 2);
        // Lock begins its block; Unlock ends its block.
        let (lb, li, lop) = &lus[0];
        assert_eq!(*li, 0, "lock-point must be first in its block");
        assert_eq!(lop.op, LockOp::Lock);
        let (ub, ui, uop) = &lus[1];
        assert_eq!(uop.op, LockOp::Unlock);
        assert_eq!(
            *ui,
            cfg.block(*ub).insts.len() - 1,
            "unlock-point must be last in its block"
        );
        // One straight-line pair legally shares a block: the lock begins
        // it and the unlock ends it.
        assert_eq!(lb, ub);
    }

    #[test]
    fn defer_unlock_synthesized_at_exits() {
        let src = format!(
            "{HEADER}func (c *C) Two(x int) {{\n\tc.mu.Lock()\n\tdefer c.mu.Unlock()\n\tif x > 0 {{\n\t\treturn\n\t}}\n\tc.n++\n}}\n"
        );
        let units = units_of(&src);
        let cfg = &units[0].cfg;
        let lus = cfg.lu_points();
        let synthetic: Vec<_> = lus.iter().filter(|(_, _, op)| op.synthetic).collect();
        // One synthetic unlock in the virtual exit block covers both exit
        // paths (early return + fall-off) and post-dominates the lock.
        assert_eq!(synthetic.len(), 1);
        assert!(synthetic.iter().all(|(_, _, op)| op.deferred));
        assert_eq!(
            synthetic[0].0, cfg.exit,
            "synthetic unlock lives in the exit block"
        );
        assert!(!cfg.multiple_defer_unlocks);
    }

    #[test]
    fn multiple_defer_unlocks_flagged() {
        let src = format!(
            "{HEADER}func (c *C) Bad() {{\n\tc.mu.Lock()\n\tdefer c.mu.Unlock()\n\tc.rw.Lock()\n\tdefer c.rw.Unlock()\n\tc.n++\n}}\n"
        );
        let units = units_of(&src);
        assert!(units[0].cfg.multiple_defer_unlocks);
    }

    #[test]
    fn io_call_marks_unfriendly() {
        let src = format!(
            "{HEADER}func (c *C) Log() {{\n\tc.mu.Lock()\n\tfmt.Println(c.n)\n\tc.mu.Unlock()\n}}\n"
        );
        let units = units_of(&src);
        let cfg = &units[0].cfg;
        let unfriendly = cfg
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i.kind, InstKind::Unfriendly(UnfriendlyKind::Io)))
            .count();
        assert_eq!(unfriendly, 1);
    }

    #[test]
    fn rwlock_ops_classified() {
        let src = format!(
            "{HEADER}func (c *C) Read() int {{\n\tc.rw.RLock()\n\tv := c.n\n\tc.rw.RUnlock()\n\treturn v\n}}\n"
        );
        let units = units_of(&src);
        let lus = units[0].cfg.lu_points();
        assert_eq!(lus[0].2.op, LockOp::RLock);
        assert!(lus[0].2.rw);
        assert_eq!(lus[1].2.op, LockOp::RUnlock);
    }

    #[test]
    fn goroutine_closure_becomes_unit() {
        let src = format!(
            "{HEADER}func (c *C) Par() {{\n\tgo func() {{\n\t\tc.mu.Lock()\n\t\tc.n++\n\t\tc.mu.Unlock()\n\t}}()\n}}\n"
        );
        let units = units_of(&src);
        assert_eq!(units.len(), 2, "closure is its own unit");
        assert!(units[1].lit_node.is_some());
        assert_eq!(units[1].cfg.lu_points().len(), 2);
        // The launching function carries the go-statement marker.
        let launcher_unfriendly = units[0]
            .cfg
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i.kind, InstKind::Unfriendly(UnfriendlyKind::GoStmt)));
        assert!(launcher_unfriendly);
    }

    #[test]
    fn branches_and_loops_shape() {
        let src = format!(
            "{HEADER}func (c *C) Sum(xs []int) int {{\n\ts := 0\n\tfor i := 0; i < len(xs); i++ {{\n\t\tif xs[i] > 0 {{\n\t\t\ts += xs[i]\n\t\t}} else {{\n\t\t\ts--\n\t\t}}\n\t}}\n\treturn s\n}}\n"
        );
        let units = units_of(&src);
        let cfg = &units[0].cfg;
        // Exit reachable, entry has successors, and a back edge exists.
        assert!(!cfg.block(cfg.entry).succs.is_empty());
        let has_back_edge = cfg
            .blocks
            .iter()
            .enumerate()
            .any(|(i, b)| b.succs.iter().any(|s| (s.0 as usize) < i));
        assert!(has_back_edge, "loop must produce a back edge");
    }

    #[test]
    fn channel_and_select_unfriendly() {
        let src = format!(
            "{HEADER}func (c *C) Chan(ch chan int) {{\n\tch <- 1\n\tv := <-ch\n\tc.n = v\n\tselect {{\n\tdefault:\n\t\tc.n++\n\t}}\n}}\n"
        );
        let units = units_of(&src);
        let kinds: Vec<_> = units[0]
            .cfg
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter_map(|i| match i.kind {
                InstKind::Unfriendly(k) => Some(k),
                _ => None,
            })
            .collect();
        assert!(kinds.contains(&UnfriendlyKind::Channel));
        assert!(kinds.contains(&UnfriendlyKind::Select));
    }

    #[test]
    fn method_calls_resolved_for_callgraph() {
        let src = format!(
            "{HEADER}func (c *C) Outer() {{\n\tc.mu.Lock()\n\tc.helper()\n\tc.mu.Unlock()\n}}\n\nfunc (c *C) helper() {{\n\tc.n++\n}}\n"
        );
        let units = units_of(&src);
        let has_method_call = units[0].cfg.blocks.iter().flat_map(|b| &b.insts).any(|i| {
            matches!(
                &i.kind,
                InstKind::Call(CalleeRef::Method { recv_struct: Some(s), name })
                    if s == "C" && name == "helper"
            )
        });
        assert!(has_method_call);
    }

    #[test]
    fn break_and_continue_edges() {
        let src = format!(
            "{HEADER}func (c *C) Loop() {{\n\tfor {{\n\t\tif c.n > 10 {{\n\t\t\tbreak\n\t\t}}\n\t\tif c.n < 0 {{\n\t\t\tcontinue\n\t\t}}\n\t\tc.n++\n\t}}\n}}\n"
        );
        let units = units_of(&src);
        let cfg = &units[0].cfg;
        // The exit must be reachable from the entry (via break).
        let dom = crate::dom::DomTree::dominators(cfg);
        assert!(dom.reachable(cfg.exit));
    }
}
