//! CFG data structures.

use golite::ast::NodeId;
use golite::token::Span;

use crate::path::AccessPath;

/// Index of a basic block within its [`Cfg`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

/// Lock operation kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LockOp {
    /// `Lock()` on a Mutex or RWMutex.
    Lock,
    /// `Unlock()`.
    Unlock,
    /// `RLock()` on an RWMutex.
    RLock,
    /// `RUnlock()`.
    RUnlock,
}

impl LockOp {
    /// Whether this operation acquires.
    #[must_use]
    pub fn is_acquire(self) -> bool {
        matches!(self, LockOp::Lock | LockOp::RLock)
    }

    /// The matching release/acquire operation.
    #[must_use]
    pub fn counterpart(self) -> LockOp {
        match self {
            LockOp::Lock => LockOp::Unlock,
            LockOp::Unlock => LockOp::Lock,
            LockOp::RLock => LockOp::RUnlock,
            LockOp::RUnlock => LockOp::RLock,
        }
    }
}

/// A lock or unlock point (the paper's L / U points).
#[derive(Clone, Debug)]
pub struct LuOp {
    /// The AST call node (key for the transformer).
    pub node: NodeId,
    /// Canonical receiver path (input to points-to analysis).
    pub recv: AccessPath,
    /// Operation kind.
    pub op: LockOp,
    /// Whether the RWMutex variant is in play.
    pub rw: bool,
    /// Whether this op came from a `defer` statement (the transformer
    /// keeps `defer` in place, §5.2.5).
    pub deferred: bool,
    /// Whether this instruction was synthesized at a function exit to
    /// normalize a deferred unlock (not present in source).
    pub synthetic: bool,
    /// Source span of the call.
    pub span: Span,
}

/// Why an instruction disqualifies HTM (§5.2's condition 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnfriendlyKind {
    /// IO-performing call (`fmt`, `os`, `log`, `net`, `syscall`, …).
    Io,
    /// Channel send or receive.
    Channel,
    /// `select` statement.
    Select,
    /// Goroutine launch inside the section.
    GoStmt,
    /// `panic` (fastcache's `Set` case in §6.1).
    Panic,
    /// Atomic/unsafe/runtime intrinsics that do not mix with speculation.
    Intrinsic,
}

/// Callee of a call instruction, as resolved by rapid type analysis inputs.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum CalleeRef {
    /// Package-local free function.
    Func(String),
    /// Method call with the statically resolved receiver struct (`None`
    /// when the receiver type is unknown — treated conservatively).
    Method {
        /// Receiver struct name, if resolved.
        recv_struct: Option<String>,
        /// Method name.
        name: String,
    },
    /// A function literal (closure) invoked or launched.
    FuncLit(NodeId),
    /// Go builtin (`len`, `append`, `make`, …) — HTM-neutral.
    Builtin(String),
    /// Cross-package call (`pkg.Fn`); classified by package lists.
    External {
        /// Package qualifier.
        pkg: String,
        /// Function name.
        name: String,
    },
    /// A call through a variable of function type; unresolved.
    Indirect,
}

/// One CFG instruction.
#[derive(Clone, Debug)]
pub struct Inst {
    /// What the instruction does.
    pub kind: InstKind,
    /// Source span.
    pub span: Span,
}

/// Instruction kinds relevant to the analysis.
#[derive(Clone, Debug)]
pub enum InstKind {
    /// A lock or unlock point.
    Lu(LuOp),
    /// A function call (for inter-procedural closure, §5.2.4).
    Call(CalleeRef),
    /// An HTM-unfriendly operation.
    Unfriendly(UnfriendlyKind),
    /// Anything else (assignments, arithmetic, …).
    Other,
}

/// A basic block.
#[derive(Clone, Debug, Default)]
pub struct BasicBlock {
    /// Instructions in order.
    pub insts: Vec<Inst>,
    /// Successor blocks.
    pub succs: Vec<BlockId>,
    /// Predecessor blocks.
    pub preds: Vec<BlockId>,
}

/// A function's control-flow graph.
///
/// Block 0 is the entry; a dedicated virtual exit block collects every
/// return path, which is what makes "a function always forms a region"
/// (§5.2.1) literally true in the implementation.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// All blocks; [`Cfg::entry`] and [`Cfg::exit`] index into this.
    pub blocks: Vec<BasicBlock>,
    /// Entry block id.
    pub entry: BlockId,
    /// Virtual exit block id.
    pub exit: BlockId,
    /// Set when the function contains more than one `defer mu.Unlock()`
    /// (such functions are discarded, §5.2.5).
    pub multiple_defer_unlocks: bool,
    /// Set when the function contains any `defer` of a non-unlock call
    /// (its execution extends to the exit; tracked for HTM-fitness).
    pub has_other_defers: bool,
}

impl Cfg {
    /// The block behind an id.
    #[must_use]
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0 as usize]
    }

    /// Number of blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the graph is trivial (it never is; entry+exit always exist).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// All lock/unlock points as `(block, instruction index)` pairs, in
    /// block order.
    #[must_use]
    pub fn lu_points(&self) -> Vec<(BlockId, usize, &LuOp)> {
        let mut out = Vec::new();
        for (b, block) in self.blocks.iter().enumerate() {
            for (i, inst) in block.insts.iter().enumerate() {
                if let InstKind::Lu(op) = &inst.kind {
                    out.push((BlockId(b as u32), i, op));
                }
            }
        }
        out
    }

    /// Whether a path exists from `from` to `to` where no instruction on
    /// the way (exclusive of `from`'s instructions before `start_idx`)
    /// satisfies `blocked`. Used for the DELock / UEUnlock definitions.
    #[must_use]
    pub fn path_exists_avoiding(
        &self,
        from: BlockId,
        start_idx: usize,
        to: BlockId,
        blocked: &dyn Fn(&Inst) -> bool,
    ) -> bool {
        // Check the remainder of the starting block first.
        let start_block = self.block(from);
        for inst in &start_block.insts[start_idx..] {
            if blocked(inst) {
                return false;
            }
        }
        if from == to {
            return true;
        }
        let mut visited = vec![false; self.blocks.len()];
        let mut stack: Vec<BlockId> = start_block.succs.clone();
        while let Some(b) = stack.pop() {
            if visited[b.0 as usize] {
                continue;
            }
            visited[b.0 as usize] = true;
            let mut clean = true;
            for inst in &self.block(b).insts {
                if blocked(inst) {
                    clean = false;
                    break;
                }
            }
            // The destination's own instructions lie on the path: control
            // reaching the (virtual) exit still executes synthetic deferred
            // unlocks placed there (§5.2.5).
            if b == to {
                if clean {
                    return true;
                }
                continue;
            }
            if clean {
                stack.extend(self.block(b).succs.iter().copied());
            }
        }
        false
    }

    /// Whether a path exists from the *top* of `from` to instruction
    /// `end_idx` of block `to`, with no instruction on the way satisfying
    /// `blocked` (instructions of `to` past `end_idx` are not considered).
    /// Used for the UEUnlock definition, walking forward from the entry.
    #[must_use]
    pub fn path_exists_avoiding_until(
        &self,
        from: BlockId,
        to: BlockId,
        end_idx: usize,
        blocked: &dyn Fn(&Inst) -> bool,
    ) -> bool {
        // Instructions of `to` before `end_idx` lie on every arriving path.
        if self.block(to).insts[..end_idx].iter().any(blocked) {
            return false;
        }
        if from == to {
            return true;
        }
        let mut visited = vec![false; self.blocks.len()];
        let mut stack = vec![from];
        while let Some(b) = stack.pop() {
            if visited[b.0 as usize] {
                continue;
            }
            visited[b.0 as usize] = true;
            // A path passing through `b` traverses all of its instructions.
            if self.block(b).insts.iter().any(blocked) {
                continue;
            }
            for s in &self.block(b).succs {
                if *s == to {
                    return true;
                }
                stack.push(*s);
            }
        }
        false
    }
}
