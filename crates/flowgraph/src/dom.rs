//! Dominator and post-dominator trees (Cooper–Harvey–Kennedy).

use crate::cfg::{BlockId, Cfg};

/// A dominator tree over a CFG (or a post-dominator tree, when built over
/// the reversed graph).
#[derive(Debug)]
pub struct DomTree {
    /// Immediate dominator of each block; `None` for the root and for
    /// unreachable blocks. The root's entry is `Some(root)` internally and
    /// exposed as `None` by [`DomTree::idom`].
    idom: Vec<Option<BlockId>>,
    root: BlockId,
    /// Reverse-postorder index of each block (`usize::MAX` = unreachable).
    rpo_index: Vec<usize>,
}

impl DomTree {
    /// Builds the dominator tree rooted at the CFG entry.
    #[must_use]
    pub fn dominators(cfg: &Cfg) -> DomTree {
        DomTree::build(cfg, cfg.entry, false)
    }

    /// Builds the post-dominator tree rooted at the CFG exit.
    #[must_use]
    pub fn post_dominators(cfg: &Cfg) -> DomTree {
        DomTree::build(cfg, cfg.exit, true)
    }

    fn build(cfg: &Cfg, root: BlockId, reversed: bool) -> DomTree {
        let n = cfg.len();
        let succs = |b: BlockId| -> &[BlockId] {
            if reversed {
                &cfg.block(b).preds
            } else {
                &cfg.block(b).succs
            }
        };
        let preds = |b: BlockId| -> &[BlockId] {
            if reversed {
                &cfg.block(b).succs
            } else {
                &cfg.block(b).preds
            }
        };

        // Reverse postorder from the root.
        let mut rpo: Vec<BlockId> = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
        let mut stack: Vec<(BlockId, usize)> = vec![(root, 0)];
        state[root.0 as usize] = 1;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let ss = succs(b);
            if *next < ss.len() {
                let s = ss[*next];
                *next += 1;
                if state[s.0 as usize] == 0 {
                    state[s.0 as usize] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b.0 as usize] = 2;
                rpo.push(b);
                stack.pop();
            }
        }
        rpo.reverse();

        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.0 as usize] = i;
        }

        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[root.0 as usize] = Some(root);
        let intersect =
            |idom: &[Option<BlockId>], rpo_index: &[usize], mut a: BlockId, mut b: BlockId| {
                while a != b {
                    while rpo_index[a.0 as usize] > rpo_index[b.0 as usize] {
                        a = idom[a.0 as usize].expect("processed block has idom");
                    }
                    while rpo_index[b.0 as usize] > rpo_index[a.0 as usize] {
                        b = idom[b.0 as usize].expect("processed block has idom");
                    }
                }
                a
            };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in preds(b) {
                    if rpo_index[p.0 as usize] == usize::MAX {
                        continue; // unreachable predecessor
                    }
                    if idom[p.0 as usize].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.0 as usize] != Some(ni) {
                        idom[b.0 as usize] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree {
            idom,
            root,
            rpo_index,
        }
    }

    /// The immediate dominator, or `None` for the root / unreachable.
    #[must_use]
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b == self.root {
            return None;
        }
        self.idom[b.0 as usize]
    }

    /// Whether `a` dominates `b` (reflexive).
    #[must_use]
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.rpo_index[a.0 as usize] == usize::MAX || self.rpo_index[b.0 as usize] == usize::MAX
        {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.root {
                return false;
            }
            match self.idom[cur.0 as usize] {
                Some(next) if next != cur => cur = next,
                _ => return false,
            }
        }
    }

    /// Whether the block is reachable from the root.
    #[must_use]
    pub fn reachable(&self, b: BlockId) -> bool {
        self.rpo_index[b.0 as usize] != usize::MAX
    }

    /// Walks the idom chain from `b` (exclusive) to the root (inclusive).
    pub fn ancestors(&self, b: BlockId) -> impl Iterator<Item = BlockId> + '_ {
        let mut cur = Some(b);
        std::iter::from_fn(move || {
            let c = cur?;
            if c == self.root {
                cur = None;
                return None;
            }
            let parent = self.idom[c.0 as usize]?;
            cur = Some(parent);
            Some(parent)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{BasicBlock, Cfg};

    /// Builds a CFG skeleton from an edge list (block 0 = entry, last =
    /// exit).
    fn diamond() -> Cfg {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let edges = [(0u32, 1u32), (0, 2), (1, 3), (2, 3)];
        build(4, &edges)
    }

    fn build(n: u32, edges: &[(u32, u32)]) -> Cfg {
        let mut blocks: Vec<BasicBlock> = (0..n).map(|_| BasicBlock::default()).collect();
        for &(a, b) in edges {
            blocks[a as usize].succs.push(BlockId(b));
            blocks[b as usize].preds.push(BlockId(a));
        }
        Cfg {
            blocks,
            entry: BlockId(0),
            exit: BlockId(n - 1),
            multiple_defer_unlocks: false,
            has_other_defers: false,
        }
    }

    #[test]
    fn diamond_dominators() {
        let cfg = diamond();
        let dom = DomTree::dominators(&cfg);
        assert_eq!(dom.idom(BlockId(0)), None);
        assert_eq!(dom.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(2)), Some(BlockId(0)));
        assert_eq!(
            dom.idom(BlockId(3)),
            Some(BlockId(0)),
            "join is dominated by the fork"
        );
        assert!(dom.dominates(BlockId(0), BlockId(3)));
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
        assert!(
            dom.dominates(BlockId(3), BlockId(3)),
            "dominance is reflexive"
        );
    }

    #[test]
    fn diamond_post_dominators() {
        let cfg = diamond();
        let pdom = DomTree::post_dominators(&cfg);
        assert_eq!(pdom.idom(BlockId(0)), Some(BlockId(3)));
        assert_eq!(pdom.idom(BlockId(1)), Some(BlockId(3)));
        assert!(
            pdom.dominates(BlockId(3), BlockId(0)),
            "exit post-dominates entry"
        );
        assert!(!pdom.dominates(BlockId(1), BlockId(0)));
    }

    #[test]
    fn loop_dominators() {
        // 0 -> 1 (header) -> 2 (body) -> 1, 1 -> 3 (exit)
        let cfg = build(4, &[(0, 1), (1, 2), (2, 1), (1, 3)]);
        let dom = DomTree::dominators(&cfg);
        assert_eq!(dom.idom(BlockId(2)), Some(BlockId(1)));
        assert_eq!(dom.idom(BlockId(3)), Some(BlockId(1)));
        assert!(dom.dominates(BlockId(1), BlockId(2)));
        let pdom = DomTree::post_dominators(&cfg);
        assert!(
            pdom.dominates(BlockId(1), BlockId(2)),
            "body must exit through header"
        );
        assert!(pdom.dominates(BlockId(3), BlockId(0)));
    }

    #[test]
    fn textbook_graph() {
        // The classic CHK example graph.
        // 0->1, 1->2, 1->3, 2->4, 3->4, 4->1, 4->5
        let cfg = build(6, &[(0, 1), (1, 2), (1, 3), (2, 4), (3, 4), (4, 1), (4, 5)]);
        let dom = DomTree::dominators(&cfg);
        assert_eq!(dom.idom(BlockId(4)), Some(BlockId(1)));
        assert_eq!(dom.idom(BlockId(5)), Some(BlockId(4)));
        assert!(dom.dominates(BlockId(1), BlockId(5)));
    }

    #[test]
    fn unreachable_block() {
        // Block 2 is disconnected.
        let cfg = build(4, &[(0, 1), (1, 3)]);
        let dom = DomTree::dominators(&cfg);
        assert!(!dom.reachable(BlockId(2)));
        assert!(!dom.dominates(BlockId(0), BlockId(2)));
        assert!(dom.dominates(BlockId(0), BlockId(3)));
    }

    #[test]
    fn ancestors_walk() {
        let cfg = build(4, &[(0, 1), (1, 2), (2, 3)]);
        let dom = DomTree::dominators(&cfg);
        let chain: Vec<_> = dom.ancestors(BlockId(3)).collect();
        assert_eq!(chain, vec![BlockId(2), BlockId(1), BlockId(0)]);
    }
}
