//! Control-flow graphs and dominance analyses for GOCC (§5.2.1, §5.2.5).
//!
//! This crate lowers `golite` function bodies to basic-block CFGs with the
//! exact shape the paper's analyzer requires:
//!
//! * basic blocks are **split at lock/unlock points** so every lock-point
//!   begins a block and every unlock-point ends one (§5.2.1), letting the
//!   pairing analysis work at block granularity;
//! * `defer m.Unlock()` is normalized by synthesizing unlock instructions
//!   at every function exit and ignoring the original occurrence (§5.2.5);
//!   functions with multiple deferred unlocks are flagged for discarding;
//! * calls, HTM-unfriendly operations (IO, channels, `select`, `go`,
//!   `panic`) and lock operations are surfaced as typed instructions for
//!   the inter-procedural summaries of §5.2.4;
//! * dominator and post-dominator trees (iterative Cooper–Harvey–Kennedy)
//!   drive the Feasible-HTM-Pair conditions and the Appendix-B splicing.

mod builder;
mod cfg;
mod dom;
mod path;

pub use builder::{build_cfg, BuildCtx, FuncUnit};
pub use cfg::{BasicBlock, BlockId, CalleeRef, Cfg, Inst, InstKind, LockOp, LuOp, UnfriendlyKind};
pub use dom::DomTree;
pub use path::{AccessPath, PathSeg};
