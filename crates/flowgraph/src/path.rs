//! Canonical access paths for lock receivers.

use golite::ast::{Expr, NodeId, UnaryOp};

/// One step of an access path.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PathSeg {
    /// Field selection (`.mu`).
    Field(String),
    /// Array/slice/map indexing — all elements collapse to one abstract
    /// location (sound for may-alias).
    Index,
}

/// A canonicalized receiver expression (`c.mu`, `shards[i].lock`, …).
///
/// Pointer syntax (`&x`, `*p`) is stripped: at the analysis level a mutex
/// value and a pointer to it denote the same abstract object, matching the
/// paper's footnote that "at the SSA level it is always a pointer".
/// Receivers that are not variable-rooted (e.g. `getLock().Lock()`) become
/// [`AccessPath::Opaque`], which the points-to analysis treats as a
/// distinct unknown — such LU-points never pair.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AccessPath {
    /// A variable-rooted path: base identifier plus segments.
    Rooted {
        /// The root variable name.
        base: String,
        /// Selection steps from the root.
        segs: Vec<PathSeg>,
    },
    /// A receiver the analysis cannot name (keyed by its AST node).
    Opaque(NodeId),
}

impl AccessPath {
    /// Builds the access path of a receiver expression.
    #[must_use]
    pub fn of_expr(expr: &Expr) -> AccessPath {
        fn walk(e: &Expr, segs: &mut Vec<PathSeg>) -> Option<String> {
            match e {
                Expr::Ident { name, .. } => Some(name.clone()),
                Expr::Selector { base, field, .. } => {
                    let root = walk(base, segs)?;
                    segs.push(PathSeg::Field(field.clone()));
                    Some(root)
                }
                Expr::Index { base, .. } => {
                    let root = walk(base, segs)?;
                    segs.push(PathSeg::Index);
                    Some(root)
                }
                Expr::Unary {
                    op: UnaryOp::Addr | UnaryOp::Deref,
                    operand,
                    ..
                } => walk(operand, segs),
                _ => None,
            }
        }
        let mut segs = Vec::new();
        match walk(expr, &mut segs) {
            Some(base) => AccessPath::Rooted { base, segs },
            None => AccessPath::Opaque(expr.id().unwrap_or(NodeId(u32::MAX))),
        }
    }

    /// The root variable name, if the path has one.
    #[must_use]
    pub fn base(&self) -> Option<&str> {
        match self {
            AccessPath::Rooted { base, .. } => Some(base),
            AccessPath::Opaque(_) => None,
        }
    }
}

impl std::fmt::Display for AccessPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessPath::Rooted { base, segs } => {
                write!(f, "{base}")?;
                for s in segs {
                    match s {
                        PathSeg::Field(name) => write!(f, ".{name}")?,
                        PathSeg::Index => write!(f, "[*]")?,
                    }
                }
                Ok(())
            }
            AccessPath::Opaque(id) => write!(f, "<opaque:{}>", id.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use golite::ast::Stmt;
    use golite::parser::parse_file;

    fn first_recv(src: &str) -> AccessPath {
        let f = parse_file(src).unwrap();
        let fd = f.funcs().next().unwrap();
        for s in &fd.body.stmts {
            if let Stmt::Expr(call) = s {
                if let Some((recv, _)) = call.as_method_call() {
                    return AccessPath::of_expr(recv);
                }
            }
        }
        panic!("no method call found");
    }

    #[test]
    fn simple_ident() {
        let p = first_recv("package p\nfunc f() {\n\tm.Lock()\n}\n");
        assert_eq!(
            p,
            AccessPath::Rooted {
                base: "m".into(),
                segs: vec![]
            }
        );
        assert_eq!(p.to_string(), "m");
    }

    #[test]
    fn field_chain() {
        let p = first_recv("package p\nfunc f(c *C) {\n\tc.inner.mu.Lock()\n}\n");
        assert_eq!(p.to_string(), "c.inner.mu");
    }

    #[test]
    fn index_collapses() {
        let p = first_recv("package p\nfunc f(s []S) {\n\ts[3].mu.Lock()\n}\n");
        assert_eq!(p.to_string(), "s[*].mu");
        let q = first_recv("package p\nfunc f(s []S) {\n\ts[9].mu.Lock()\n}\n");
        assert_eq!(p, q, "different indices must alias");
    }

    #[test]
    fn pointer_syntax_is_stripped() {
        let a = first_recv("package p\nfunc f(m *sync2) {\n\t(*m).Lock()\n}\n");
        let b = first_recv("package p\nfunc f(m *sync2) {\n\tm.Lock()\n}\n");
        assert_eq!(a, b);
    }

    #[test]
    fn call_receiver_is_opaque() {
        let p = first_recv("package p\nfunc f() {\n\tgetLock().Lock()\n}\n");
        assert!(matches!(p, AccessPath::Opaque(_)));
    }
}
