//! Property tests for the dominator machinery on random CFGs.

use gocc_flowgraph::{BasicBlock, BlockId, Cfg, DomTree};
use proptest::prelude::*;

/// Builds a CFG from a random edge list over `n` blocks, with block 0 as
/// entry and block n-1 as exit; every block additionally gets a fall-
/// through edge toward the exit region so the graph is mostly connected.
fn build_cfg(n: usize, edges: &[(usize, usize)]) -> Cfg {
    let mut blocks: Vec<BasicBlock> = (0..n).map(|_| BasicBlock::default()).collect();
    let add = |a: usize, b: usize, blocks: &mut Vec<BasicBlock>| {
        if a != b && a < n && b < n && !blocks[a].succs.contains(&BlockId(b as u32)) {
            blocks[a].succs.push(BlockId(b as u32));
            blocks[b].preds.push(BlockId(a as u32));
        }
    };
    // A spine guarantees reachability entry → exit.
    for i in 0..n - 1 {
        add(i, i + 1, &mut blocks);
    }
    for &(a, b) in edges {
        add(a % n, b % n, &mut blocks);
    }
    Cfg {
        blocks,
        entry: BlockId(0),
        exit: BlockId((n - 1) as u32),
        multiple_defer_unlocks: false,
        has_other_defers: false,
    }
}

fn cfg_strategy() -> impl Strategy<Value = Cfg> {
    (
        3usize..24,
        proptest::collection::vec((any::<usize>(), any::<usize>()), 0..40),
    )
        .prop_map(|(n, edges)| build_cfg(n, &edges))
}

/// Reference dominance by exhaustive path enumeration: `a` dominates `b`
/// iff removing `a` makes `b` unreachable from the entry.
fn dominates_reference(cfg: &Cfg, a: BlockId, b: BlockId) -> bool {
    if a == b {
        return true;
    }
    let mut visited = vec![false; cfg.len()];
    let mut stack = vec![cfg.entry];
    if cfg.entry == a {
        return true;
    }
    while let Some(x) = stack.pop() {
        if x == a || visited[x.0 as usize] {
            continue; // paths through `a` don't count
        }
        visited[x.0 as usize] = true;
        if x == b {
            return false; // reached b while avoiding a
        }
        stack.extend(cfg.block(x).succs.iter().copied());
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dominators_match_path_based_reference(cfg in cfg_strategy()) {
        let dom = DomTree::dominators(&cfg);
        for a in 0..cfg.len() {
            for b in 0..cfg.len() {
                let (ba, bb) = (BlockId(a as u32), BlockId(b as u32));
                // Only reachable blocks have defined dominance.
                if !dom.reachable(bb) || !dom.reachable(ba) {
                    continue;
                }
                prop_assert_eq!(
                    dom.dominates(ba, bb),
                    dominates_reference(&cfg, ba, bb),
                    "dominates({},{}) mismatch", a, b
                );
            }
        }
    }

    #[test]
    fn entry_dominates_everything_reachable(cfg in cfg_strategy()) {
        let dom = DomTree::dominators(&cfg);
        for b in 0..cfg.len() {
            let bb = BlockId(b as u32);
            if dom.reachable(bb) {
                prop_assert!(dom.dominates(cfg.entry, bb));
            }
        }
    }

    #[test]
    fn idom_is_a_strict_dominator(cfg in cfg_strategy()) {
        let dom = DomTree::dominators(&cfg);
        for b in 0..cfg.len() {
            let bb = BlockId(b as u32);
            if let Some(parent) = dom.idom(bb) {
                prop_assert!(dom.dominates(parent, bb));
                prop_assert_ne!(parent, bb);
            }
        }
    }

    #[test]
    fn post_dominators_are_dominators_of_reverse_graph(cfg in cfg_strategy()) {
        let pdom = DomTree::post_dominators(&cfg);
        // The exit post-dominates every block that reaches it (here: all,
        // thanks to the spine).
        for b in 0..cfg.len() {
            let bb = BlockId(b as u32);
            if pdom.reachable(bb) {
                prop_assert!(pdom.dominates(cfg.exit, bb));
            }
        }
    }

    #[test]
    fn dominance_is_antisymmetric(cfg in cfg_strategy()) {
        let dom = DomTree::dominators(&cfg);
        for a in 0..cfg.len() {
            for b in 0..cfg.len() {
                if a == b { continue; }
                let (ba, bb) = (BlockId(a as u32), BlockId(b as u32));
                if dom.reachable(ba) && dom.reachable(bb) {
                    prop_assert!(
                        !(dom.dominates(ba, bb) && dom.dominates(bb, ba)),
                        "mutual dominance between {} and {}", a, b
                    );
                }
            }
        }
    }
}
