//! Property tests for the dominator machinery on random CFGs, generated
//! from a seeded [`SplitMix64`] stream (deterministic, no external crates).

use gocc_flowgraph::{BasicBlock, BlockId, Cfg, DomTree};
use gocc_telemetry::SplitMix64;

/// Builds a CFG from a random edge list over `n` blocks, with block 0 as
/// entry and block n-1 as exit; every block additionally gets a fall-
/// through edge toward the exit region so the graph is mostly connected.
fn build_cfg(n: usize, edges: &[(usize, usize)]) -> Cfg {
    let mut blocks: Vec<BasicBlock> = (0..n).map(|_| BasicBlock::default()).collect();
    let add = |a: usize, b: usize, blocks: &mut Vec<BasicBlock>| {
        if a != b && a < n && b < n && !blocks[a].succs.contains(&BlockId(b as u32)) {
            blocks[a].succs.push(BlockId(b as u32));
            blocks[b].preds.push(BlockId(a as u32));
        }
    };
    // A spine guarantees reachability entry → exit.
    for i in 0..n - 1 {
        add(i, i + 1, &mut blocks);
    }
    for &(a, b) in edges {
        add(a % n, b % n, &mut blocks);
    }
    Cfg {
        blocks,
        entry: BlockId(0),
        exit: BlockId((n - 1) as u32),
        multiple_defer_unlocks: false,
        has_other_defers: false,
    }
}

fn random_cfg(rng: &mut SplitMix64) -> Cfg {
    let n = rng.range(3, 24) as usize;
    let edges: Vec<(usize, usize)> = (0..rng.below(40))
        .map(|_| (rng.next_u64() as usize, rng.next_u64() as usize))
        .collect();
    build_cfg(n, &edges)
}

fn cases() -> impl Iterator<Item = (u64, Cfg)> {
    (0..64u64).map(|case| {
        let mut rng = SplitMix64::new(0xCF6 + case);
        (case, random_cfg(&mut rng))
    })
}

/// Reference dominance by exhaustive path enumeration: `a` dominates `b`
/// iff removing `a` makes `b` unreachable from the entry.
fn dominates_reference(cfg: &Cfg, a: BlockId, b: BlockId) -> bool {
    if a == b {
        return true;
    }
    let mut visited = vec![false; cfg.len()];
    let mut stack = vec![cfg.entry];
    if cfg.entry == a {
        return true;
    }
    while let Some(x) = stack.pop() {
        if x == a || visited[x.0 as usize] {
            continue; // paths through `a` don't count
        }
        visited[x.0 as usize] = true;
        if x == b {
            return false; // reached b while avoiding a
        }
        stack.extend(cfg.block(x).succs.iter().copied());
    }
    true
}

#[test]
fn dominators_match_path_based_reference() {
    for (case, cfg) in cases() {
        let dom = DomTree::dominators(&cfg);
        for a in 0..cfg.len() {
            for b in 0..cfg.len() {
                let (ba, bb) = (BlockId(a as u32), BlockId(b as u32));
                // Only reachable blocks have defined dominance.
                if !dom.reachable(bb) || !dom.reachable(ba) {
                    continue;
                }
                assert_eq!(
                    dom.dominates(ba, bb),
                    dominates_reference(&cfg, ba, bb),
                    "case {case}: dominates({a},{b}) mismatch"
                );
            }
        }
    }
}

#[test]
fn entry_dominates_everything_reachable() {
    for (_, cfg) in cases() {
        let dom = DomTree::dominators(&cfg);
        for b in 0..cfg.len() {
            let bb = BlockId(b as u32);
            if dom.reachable(bb) {
                assert!(dom.dominates(cfg.entry, bb));
            }
        }
    }
}

#[test]
fn idom_is_a_strict_dominator() {
    for (_, cfg) in cases() {
        let dom = DomTree::dominators(&cfg);
        for b in 0..cfg.len() {
            let bb = BlockId(b as u32);
            if let Some(parent) = dom.idom(bb) {
                assert!(dom.dominates(parent, bb));
                assert_ne!(parent, bb);
            }
        }
    }
}

#[test]
fn post_dominators_are_dominators_of_reverse_graph() {
    for (_, cfg) in cases() {
        let pdom = DomTree::post_dominators(&cfg);
        // The exit post-dominates every block that reaches it (here: all,
        // thanks to the spine).
        for b in 0..cfg.len() {
            let bb = BlockId(b as u32);
            if pdom.reachable(bb) {
                assert!(pdom.dominates(cfg.exit, bb));
            }
        }
    }
}

#[test]
fn dominance_is_antisymmetric() {
    for (case, cfg) in cases() {
        let dom = DomTree::dominators(&cfg);
        for a in 0..cfg.len() {
            for b in 0..cfg.len() {
                if a == b {
                    continue;
                }
                let (ba, bb) = (BlockId(a as u32), BlockId(b as u32));
                if dom.reachable(ba) && dom.reachable(bb) {
                    assert!(
                        !(dom.dominates(ba, bb) && dom.dominates(bb, ba)),
                        "case {case}: mutual dominance between {a} and {b}"
                    );
                }
            }
        }
    }
}
