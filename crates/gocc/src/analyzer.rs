//! The GOCC analyzer: finding Feasible-HTM-Pairs (§5.2).

use std::collections::{BTreeSet, HashMap};

use gocc_flowgraph::{BlockId, CalleeRef, Cfg, DomTree, FuncUnit, Inst, InstKind, LuOp};
use gocc_pointsto::ObjId;
use gocc_profile::{Profile, DEFAULT_HOT_THRESHOLD};
use golite::ast::NodeId;

use crate::package::Package;
use crate::report::{FunnelReport, PackageReport};
use crate::summary::Summaries;

/// Analyzer knobs.
#[derive(Debug, Default)]
pub struct AnalysisOptions {
    /// Execution profile for §5.2.6 filtering (optional; absent = all hot).
    pub profile: Option<Profile>,
    /// Hotness threshold; defaults to 1%.
    pub hot_threshold: Option<f64>,
}

/// Why a candidate pair was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PairRejection {
    /// HTM-unfriendly instruction inside the section (condition 4).
    UnfitIntra,
    /// HTM-unfriendly callee in the transitive closure (condition 4,
    /// inter-procedural) — includes unresolvable calls.
    UnfitInterproc,
    /// Another LU-point in the section may alias the pair (condition 3).
    NestedAliasIntra,
    /// A callee's LU-points may alias the pair (condition 3,
    /// inter-procedural).
    NestedAliasInterproc,
}

/// One accepted transformation.
#[derive(Clone, Debug)]
pub struct TransformPlan {
    /// Unit the pair lives in.
    pub unit: String,
    /// File index within the package.
    pub file_idx: usize,
    /// AST node of the lock call.
    pub lock_node: NodeId,
    /// AST node of the unlock call (the deferred call when `deferred`).
    pub unlock_node: NodeId,
    /// Whether the unlock is a `defer m.Unlock()`.
    pub deferred: bool,
    /// Whether the pair elides a read acquisition (`RLock`/`RUnlock`).
    pub read_elision: bool,
    /// Whether the mutex is an RWMutex.
    pub rw: bool,
    /// Whether the §5.2.6 profile filter keeps this pair.
    pub hot: bool,
}

struct LuPt {
    block: BlockId,
    idx: usize,
    op: LuOp,
    m: BTreeSet<ObjId>,
}

/// Runs the full analysis over a package, producing the Table-1 funnel and
/// the transformation plans.
pub fn analyze_package(pkg: &mut Package, opts: &AnalysisOptions) -> PackageReport {
    let threshold = opts.hot_threshold.unwrap_or(DEFAULT_HOT_THRESHOLD);
    let empty_profile = Profile::default();
    let profile = opts.profile.as_ref().unwrap_or(&empty_profile);

    // Resolve the points-to set of every LU point up front: `resolve`
    // interns on demand and needs `&mut PointsTo`, while the per-unit
    // analysis borrows the package immutably.
    let mut jobs = Vec::new();
    for fu in pkg.units.iter().flatten() {
        for (_, _, op) in fu.cfg.lu_points() {
            jobs.push((fu.name.clone(), op.node, op.recv.clone()));
        }
    }
    let mut resolved: HashMap<String, HashMap<NodeId, BTreeSet<ObjId>>> = HashMap::new();
    for (name, node, recv) in jobs {
        let m = pkg.points_to.resolve(&name, &recv);
        resolved.entry(name).or_default().insert(node, m);
    }

    let units: Vec<&FuncUnit> = pkg.units.iter().flatten().collect();
    let summaries = Summaries::compute(&units, &mut pkg.points_to);

    let mut report = PackageReport::default();
    let mut plans = Vec::new();
    for (file_idx, file_units) in pkg.units.iter().enumerate() {
        for unit in file_units {
            let funnel = analyze_unit(
                unit, file_idx, pkg, &summaries, &resolved, profile, threshold, &mut plans,
            );
            report.merge(&funnel);
        }
    }
    report.plans = plans;
    report
}

#[allow(clippy::too_many_arguments)]
fn analyze_unit(
    unit: &FuncUnit,
    file_idx: usize,
    pkg: &Package,
    summaries: &Summaries,
    resolved: &HashMap<String, HashMap<NodeId, BTreeSet<ObjId>>>,
    profile: &Profile,
    threshold: f64,
    plans: &mut Vec<TransformPlan>,
) -> FunnelReport {
    let cfg = &unit.cfg;
    let mut funnel = FunnelReport::default();

    // Collect LU points with their pre-resolved points-to sets.
    let mut lus: Vec<LuPt> = Vec::new();
    let mut m_of_node: HashMap<NodeId, BTreeSet<ObjId>> = HashMap::new();
    let unit_resolved = resolved.get(&unit.name);
    for (block, idx, op) in cfg.lu_points() {
        let m = unit_resolved
            .and_then(|r| r.get(&op.node))
            .cloned()
            .unwrap_or_default();
        m_of_node.entry(op.node).or_insert_with(|| m.clone());
        lus.push(LuPt {
            block,
            idx,
            op: op.clone(),
            m,
        });
    }

    funnel.lock_points = lus.iter().filter(|l| l.op.op.is_acquire()).count();
    funnel.unlock_points = lus.iter().filter(|l| !l.op.op.is_acquire()).count();
    funnel.deferred_unlocks = lus
        .iter()
        .filter(|l| !l.op.op.is_acquire() && l.op.deferred)
        .count();

    if cfg.multiple_defer_unlocks {
        // §5.2.5: functions with multiple deferred unlocks are discarded.
        funnel.discarded_multi_defer += 1;
        return funnel;
    }
    if lus.is_empty() {
        return funnel;
    }

    let matching_m = |inst: &Inst, against: &BTreeSet<ObjId>, acquire: bool| -> bool {
        if let InstKind::Lu(u) = &inst.kind {
            if u.op.is_acquire() == acquire {
                if let Some(m) = m_of_node.get(&u.node) {
                    return m.iter().any(|o| against.contains(o));
                }
            }
        }
        false
    };

    // DELock / UEUnlock pruning (Definitions 5.2 / 5.3) over the function
    // region.
    let mut survivors: Vec<usize> = Vec::new();
    for (i, lu) in lus.iter().enumerate() {
        if lu.op.op.is_acquire() {
            let downward_exposed =
                cfg.path_exists_avoiding(lu.block, lu.idx + 1, cfg.exit, &|inst| {
                    matching_m(inst, &lu.m, false)
                });
            if downward_exposed {
                funnel.dominance_violations += 1;
            } else {
                survivors.push(i);
            }
        } else {
            let upward_exposed =
                cfg.path_exists_avoiding_until(cfg.entry, lu.block, lu.idx, &|inst| {
                    matching_m(inst, &lu.m, true)
                });
            if upward_exposed {
                funnel.dominance_violations += 1;
            } else {
                survivors.push(i);
            }
        }
    }

    // Appendix-B pairing over the dominator / post-dominator trees.
    let dom = DomTree::dominators(cfg);
    let pdom = DomTree::post_dominators(cfg);
    let mut matched_release: Vec<bool> = vec![false; lus.len()];
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut acquires: Vec<usize> = survivors
        .iter()
        .copied()
        .filter(|&i| lus[i].op.op.is_acquire())
        .collect();
    // Inner-first: visit acquires deepest in the dominator tree first.
    acquires.sort_by_key(|&i| std::cmp::Reverse(dom_depth(&dom, lus[i].block)));
    for &li in &acquires {
        let l = &lus[li];
        let Some(ui) = nearest_pdom_release(cfg, &lus, &survivors, &matched_release, &pdom, li)
        else {
            funnel.dominance_violations += 1;
            continue;
        };
        // Reverse test: the nearest dominating acquire of U must be L.
        let back = nearest_dom_acquire(cfg, &lus, &survivors, &pairs, &dom, ui);
        if back != Some(li) {
            funnel.dominance_violations += 1;
            continue;
        }
        // Condition (2) in full: L Dom U ∧ U PDom L.
        let u = &lus[ui];
        let l_dom_u = if l.block == u.block {
            l.idx < u.idx
        } else {
            dom.dominates(l.block, u.block)
        };
        let u_pdom_l = if l.block == u.block {
            l.idx < u.idx
        } else {
            pdom.dominates(u.block, l.block)
        };
        if !(l_dom_u && u_pdom_l) {
            funnel.dominance_violations += 1;
            continue;
        }
        matched_release[ui] = true;
        pairs.push((li, ui));
    }
    // Surviving-but-unmatched releases also violate the dominance pairing.
    funnel.dominance_violations += survivors
        .iter()
        .filter(|&&i| !lus[i].op.op.is_acquire() && !matched_release[i])
        .count();

    funnel.candidate_pairs = pairs.len();

    // Conditions (3) and (4), intra- and inter-procedural, per pair.
    for (li, ui) in pairs {
        let l = &lus[li];
        let u = &lus[ui];
        let mut against: BTreeSet<ObjId> = l.m.iter().copied().collect();
        against.extend(u.m.iter().copied());

        let mut rejection: Option<PairRejection> = None;
        let mut callees: Vec<CalleeRef> = Vec::new();
        for_each_region_inst(cfg, l, u, &dom, &pdom, |bi, ii, inst| {
            if rejection.is_some() {
                return;
            }
            match &inst.kind {
                InstKind::Lu(x) => {
                    let is_l = bi == l.block && ii == l.idx;
                    let is_u = bi == u.block && ii == u.idx;
                    if !is_l && !is_u {
                        if let Some(m) = m_of_node.get(&x.node) {
                            if m.iter().any(|o| against.contains(o)) {
                                rejection = Some(PairRejection::NestedAliasIntra);
                            }
                        }
                    }
                }
                InstKind::Unfriendly(_) => rejection = Some(PairRejection::UnfitIntra),
                InstKind::Call(c) => callees.push(c.clone()),
                InstKind::Other => {}
            }
        });

        if rejection.is_none() && !callees.is_empty() {
            let mut roots: Vec<String> = Vec::new();
            for c in &callees {
                match c {
                    CalleeRef::Builtin(_) => {}
                    CalleeRef::External { pkg, .. } => {
                        if !crate::summary::is_pure_package(pkg) {
                            rejection = Some(PairRejection::UnfitInterproc);
                        }
                    }
                    CalleeRef::Indirect => rejection = Some(PairRejection::UnfitInterproc),
                    CalleeRef::Func(name) => roots.push(name.clone()),
                    CalleeRef::Method {
                        recv_struct: Some(s),
                        name,
                    } => {
                        roots.push(format!("{s}.{name}"));
                    }
                    CalleeRef::Method {
                        recv_struct: None, ..
                    } => {
                        rejection = Some(PairRejection::UnfitInterproc);
                    }
                    CalleeRef::FuncLit(node) => {
                        if let Some(n) = pkg
                            .all_units()
                            .find(|x| x.lit_node == Some(*node))
                            .map(|x| x.name.clone())
                        {
                            roots.push(n);
                        } else {
                            rejection = Some(PairRejection::UnfitInterproc);
                        }
                    }
                }
            }
            if rejection.is_none() && !roots.is_empty() {
                let closure = pkg.call_graph.closure(roots);
                let excluded = BTreeSet::new();
                let (fit, alias) = summaries.evaluate_closure(&closure, &excluded, &against);
                if !fit {
                    rejection = Some(PairRejection::UnfitInterproc);
                } else if alias {
                    rejection = Some(PairRejection::NestedAliasInterproc);
                }
            }
        }

        match rejection {
            Some(PairRejection::UnfitIntra) => funnel.unfit_intra += 1,
            Some(PairRejection::UnfitInterproc) => funnel.unfit_interproc += 1,
            Some(PairRejection::NestedAliasIntra) => funnel.nested_alias_intra += 1,
            Some(PairRejection::NestedAliasInterproc) => funnel.nested_alias_interproc += 1,
            None => {
                let hot = profile.is_hot(&unit.name, threshold);
                let deferred = u.op.deferred;
                funnel.transformed += 1;
                if deferred {
                    funnel.transformed_deferred += 1;
                }
                if hot {
                    funnel.transformed_hot += 1;
                    if deferred {
                        funnel.transformed_hot_deferred += 1;
                    }
                }
                plans.push(TransformPlan {
                    unit: unit.name.clone(),
                    file_idx,
                    lock_node: l.op.node,
                    unlock_node: u.op.node,
                    deferred,
                    read_elision: matches!(l.op.op, gocc_flowgraph::LockOp::RLock),
                    rw: l.op.rw,
                    hot,
                });
            }
        }
    }
    funnel
}

fn dom_depth(dom: &DomTree, b: BlockId) -> usize {
    dom.ancestors(b).count()
}

/// Nearest (pdom-tree) release matching acquire `li` (Appendix B forward
/// step).
fn nearest_pdom_release(
    cfg: &Cfg,
    lus: &[LuPt],
    survivors: &[usize],
    matched: &[bool],
    pdom: &DomTree,
    li: usize,
) -> Option<usize> {
    let l = &lus[li];
    let candidate = |block: BlockId, after_idx: Option<usize>| -> Option<usize> {
        survivors
            .iter()
            .copied()
            .filter(|&i| {
                let c = &lus[i];
                !c.op.op.is_acquire()
                    && !matched[i]
                    && c.op.op == l.op.op.counterpart()
                    && c.block == block
                    && after_idx.is_none_or(|a| c.idx > a)
                    && c.m.iter().any(|o| l.m.contains(o))
            })
            .min_by_key(|&i| lus[i].idx)
    };
    // Same block, after the acquire.
    if let Some(u) = candidate(l.block, Some(l.idx)) {
        return Some(u);
    }
    // Walk up the post-dominator tree.
    let mut cur = l.block;
    loop {
        cur = pdom.idom(cur)?;
        if let Some(u) = candidate(cur, None) {
            return Some(u);
        }
        if cur == cfg.exit {
            return None;
        }
    }
}

/// Nearest (dom-tree) acquire matching release `ui` (Appendix B reverse
/// step).
fn nearest_dom_acquire(
    cfg: &Cfg,
    lus: &[LuPt],
    survivors: &[usize],
    pairs: &[(usize, usize)],
    dom: &DomTree,
    ui: usize,
) -> Option<usize> {
    let u = &lus[ui];
    let already_matched = |i: usize| pairs.iter().any(|&(l, _)| l == i);
    let candidate = |block: BlockId, before_idx: Option<usize>| -> Option<usize> {
        survivors
            .iter()
            .copied()
            .filter(|&i| {
                let c = &lus[i];
                c.op.op.is_acquire()
                    && !already_matched(i)
                    && c.op.op == u.op.op.counterpart()
                    && c.block == block
                    && before_idx.is_none_or(|b| c.idx < b)
                    && c.m.iter().any(|o| u.m.contains(o))
            })
            .max_by_key(|&i| lus[i].idx)
    };
    if let Some(l) = candidate(u.block, Some(u.idx)) {
        return Some(l);
    }
    let mut cur = u.block;
    loop {
        cur = dom.idom(cur)?;
        if let Some(l) = candidate(cur, None) {
            return Some(l);
        }
        if cur == cfg.entry {
            return None;
        }
    }
}

/// Visits every instruction in the critical section of pair `(l, u)`:
/// blocks dominated by L's block and post-dominated by U's block, with the
/// boundary blocks sliced at the L/U instructions.
fn for_each_region_inst(
    cfg: &Cfg,
    l: &LuPt,
    u: &LuPt,
    dom: &DomTree,
    pdom: &DomTree,
    mut f: impl FnMut(BlockId, usize, &Inst),
) {
    if l.block == u.block {
        for (i, inst) in cfg.block(l.block).insts.iter().enumerate() {
            if i >= l.idx && i <= u.idx {
                f(l.block, i, inst);
            }
        }
        return;
    }
    for (bi, block) in cfg.blocks.iter().enumerate() {
        let b = BlockId(bi as u32);
        if !dom.dominates(l.block, b) || !pdom.dominates(u.block, b) {
            continue;
        }
        let (lo, hi) = if b == l.block {
            (l.idx, block.insts.len())
        } else if b == u.block {
            (0, u.idx + 1)
        } else {
            (0, block.insts.len())
        };
        for (i, inst) in block.insts.iter().enumerate() {
            if i >= lo && i < hi {
                f(b, i, inst);
            }
        }
    }
}
