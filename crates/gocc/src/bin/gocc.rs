//! The `gocc` command-line driver.
//!
//! ```text
//! gocc analyze   <file.go>... [--profile prof.txt]           # print the Table-1 funnel
//! gocc transform <file.go>... [--profile prof.txt] [--write] # print the source patch
//! ```
//!
//! `--write` additionally writes each transformed file next to its input
//! as `<file>.gocc.go`, ready for review or a `diff -u` of one's own.
//!
//! Sources passed together are analyzed as one package. The output of
//! `transform` is a unified diff against the gofmt-normalized original,
//! exactly the developer-reviewable patch the paper describes as GOCC's
//! end product.

use std::process::ExitCode;

use gocc::{analyze_package, transform_file, unified_diff, AnalysisOptions, Package};
use gocc_profile::Profile;
use golite::printer::print_file;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("gocc: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some((mode, rest)) = args.split_first() else {
        return Err(usage());
    };
    let mut files: Vec<String> = Vec::new();
    let mut profile_path: Option<String> = None;
    let mut only_hot = false;
    let mut write_files = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--write" => write_files = true,
            "--profile" => {
                profile_path = Some(it.next().ok_or("--profile needs a file argument")?.clone());
                only_hot = true;
            }
            "--help" | "-h" => return Err(usage()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`\n{}", usage()))
            }
            path => files.push(path.to_string()),
        }
    }
    if files.is_empty() {
        return Err(format!("no input files\n{}", usage()));
    }

    let mut sources = Vec::new();
    for path in &files {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        sources.push((path.clone(), text));
    }
    let source_refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str()))
        .collect();
    let mut pkg = Package::load(&source_refs).map_err(|e| e.to_string())?;

    let profile = match &profile_path {
        Some(p) => {
            let text =
                std::fs::read_to_string(p).map_err(|e| format!("reading profile {p}: {e}"))?;
            Some(Profile::parse(&text).map_err(|e| e.to_string())?)
        }
        None => None,
    };
    let opts = AnalysisOptions {
        profile,
        hot_threshold: None,
    };
    let report = analyze_package(&mut pkg, &opts);

    match mode.as_str() {
        "analyze" => {
            println!("{}", gocc::FunnelReport::table_header());
            println!("{}", report.funnel.table_row(&pkg.files[0].package));
            println!();
            println!("accepted pairs:");
            for plan in &report.plans {
                println!(
                    "  {} lock={:?} unlock={:?}{}{}{}",
                    plan.unit,
                    plan.lock_node,
                    plan.unlock_node,
                    if plan.deferred { " [defer]" } else { "" },
                    if plan.read_elision { " [rlock]" } else { "" },
                    if plan.hot { "" } else { " [cold]" },
                );
            }
            Ok(())
        }
        "transform" => {
            let plans: Vec<_> = if only_hot {
                report.plans.iter().filter(|p| p.hot).cloned().collect()
            } else {
                report.plans.clone()
            };
            let mut emitted = false;
            for (idx, file) in pkg.files.iter().enumerate() {
                let original = print_file(file);
                let transformed = transform_file(file, &pkg.info, idx, &plans);
                let new_text = print_file(&transformed);
                let diff = unified_diff(
                    &pkg.file_names[idx],
                    &format!("{}.gocc", pkg.file_names[idx]),
                    &original,
                    &new_text,
                );
                if !diff.is_empty() {
                    print!("{diff}");
                    emitted = true;
                    if write_files {
                        let out_path =
                            format!("{}.gocc.go", pkg.file_names[idx].trim_end_matches(".go"));
                        std::fs::write(&out_path, &new_text)
                            .map_err(|e| format!("writing {out_path}: {e}"))?;
                        eprintln!("gocc: wrote {out_path}");
                    }
                }
            }
            if !emitted {
                eprintln!("gocc: no transformable lock/unlock pairs found");
            }
            Ok(())
        }
        other => Err(format!("unknown mode `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: gocc <analyze|transform> <file.go>... [--profile prof.txt] [--write]".to_string()
}
