//! GOCC: source-to-source optimistic concurrency control for Go programs.
//!
//! This crate is the paper's primary contribution — the end-to-end pipeline
//! of Figure 1:
//!
//! 1. [`Package`] loads the Go-subset sources of one package, builds type
//!    information, per-function CFGs (with LU-point block splitting and
//!    `defer` normalization), Andersen points-to sets and the call graph;
//! 2. [`analyzer`] finds candidate lock/unlock pairs with the
//!    Feasible-HTM-Pair conditions of Definition 5.4 — points-to
//!    intersection, dominance/post-dominance (via the Appendix-B
//!    nearest-match splicing), the nesting rule (condition 3) and
//!    HTM-fitness (condition 4), both extended inter-procedurally through
//!    per-function [`summary`] information — and applies the §5.2.6
//!    profile filter;
//! 3. [`transform`] rewrites the accepted pairs at the AST level into
//!    `optiLock.FastLock(&m)` / `optiLock.FastUnlock(&m)` calls, handling
//!    pointer-vs-value receivers, anonymous mutex fields, `defer`, and
//!    OptiLock declaration placement in the innermost enclosing function
//!    (§5.3);
//! 4. [`patch`] renders the result as a reviewable unified diff — GOCC's
//!    end product is a source patch, not a binary.
//!
//! The `gocc` binary drives the pipeline from the command line.

pub mod analyzer;
pub mod package;
pub mod patch;
pub mod report;
pub mod summary;
pub mod transform;

pub use analyzer::{analyze_package, AnalysisOptions, PairRejection, TransformPlan};
pub use package::Package;
pub use patch::unified_diff;
pub use report::{FunnelReport, PackageReport};
pub use summary::{FuncSummary, Summaries};
pub use transform::transform_file;
