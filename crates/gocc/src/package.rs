//! Package loading: sources → AST + types + CFGs + points-to + call graph.

use std::collections::HashMap;

use gocc_flowgraph::{build_cfg, BuildCtx, FuncUnit};
use gocc_pointsto::{CallGraph, PointsTo};
use golite::ast::File;
use golite::parser::{parse_file, ParseError};
use golite::types::TypeInfo;

/// One analyzed Go package: every artifact the analyzer consumes.
pub struct Package {
    /// Parsed source files, in load order.
    pub files: Vec<File>,
    /// File names parallel to [`Package::files`].
    pub file_names: Vec<String>,
    /// Package-level type information.
    pub info: TypeInfo,
    /// Analyzer units (functions and closures), per file: `units[i]` holds
    /// the units of `files[i]`.
    pub units: Vec<Vec<FuncUnit>>,
    /// May-alias points-to model.
    pub points_to: PointsTo,
    /// Static call graph over all units.
    pub call_graph: CallGraph,
}

impl Package {
    /// Parses and analyzes the given `(name, source)` pairs as one package.
    pub fn load(sources: &[(&str, &str)]) -> Result<Package, ParseError> {
        let mut files = Vec::new();
        let mut file_names = Vec::new();
        for (name, src) in sources {
            files.push(parse_file(src)?);
            file_names.push((*name).to_string());
        }
        let refs: Vec<&File> = files.iter().collect();
        let info = TypeInfo::new(&refs);
        let mut units: Vec<Vec<FuncUnit>> = Vec::new();
        for file in &files {
            let mut file_units = Vec::new();
            for fd in file.funcs() {
                let env = info.local_env(fd);
                let ctx = BuildCtx {
                    info: &info,
                    env: &env,
                };
                file_units.extend(build_cfg(fd, &ctx));
            }
            units.push(file_units);
        }
        let points_to = PointsTo::analyze(&refs, &info);
        let all_units: Vec<&FuncUnit> = units.iter().flatten().collect();
        // CallGraph::build takes a slice of owned units; rebuild a flat
        // list by reference walking.
        let call_graph = build_call_graph(&all_units);
        Ok(Package {
            files,
            file_names,
            info,
            units,
            points_to,
            call_graph,
        })
    }

    /// Convenience: load a single anonymous source file.
    pub fn from_source(src: &str) -> Result<Package, ParseError> {
        Package::load(&[("input.go", src)])
    }

    /// Iterates all units across files.
    pub fn all_units(&self) -> impl Iterator<Item = &FuncUnit> {
        self.units.iter().flatten()
    }

    /// Map from unit name to its index pair `(file, unit)`.
    #[must_use]
    pub fn unit_index(&self) -> HashMap<String, (usize, usize)> {
        let mut out = HashMap::new();
        for (fi, file_units) in self.units.iter().enumerate() {
            for (ui, u) in file_units.iter().enumerate() {
                out.insert(u.name.clone(), (fi, ui));
            }
        }
        out
    }
}

fn build_call_graph(units: &[&FuncUnit]) -> CallGraph {
    CallGraph::build(units)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_multi_file_package() {
        let a = "package p\n\nimport \"sync\"\n\ntype C struct {\n\tmu sync.Mutex\n\tn int\n}\n";
        let b = "package p\n\nfunc (c *C) Inc() {\n\tc.mu.Lock()\n\tc.n++\n\tc.mu.Unlock()\n}\n";
        let pkg = Package::load(&[("types.go", a), ("inc.go", b)]).unwrap();
        assert_eq!(pkg.files.len(), 2);
        assert_eq!(pkg.all_units().count(), 1);
        let idx = pkg.unit_index();
        assert!(idx.contains_key("C.Inc"));
    }

    #[test]
    fn parse_error_propagates() {
        assert!(Package::from_source("package p\nfunc broken( {").is_err());
    }
}
