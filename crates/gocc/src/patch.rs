//! Unified-diff rendering of transformations.
//!
//! GOCC's end product is a source patch handed to the developer for review
//! (Figure 1). The diff is computed between the *printed* original and the
//! printed transformed AST, so formatting noise cancels out and the hunks
//! contain exactly the transformation.

/// Produces a unified diff (3 lines of context) between two texts.
#[must_use]
pub fn unified_diff(old_name: &str, new_name: &str, old: &str, new: &str) -> String {
    let a: Vec<&str> = old.lines().collect();
    let b: Vec<&str> = new.lines().collect();
    let ops = diff_ops(&a, &b);
    if ops.iter().all(|op| matches!(op, DiffOp::Equal(_, _))) {
        return String::new();
    }
    let mut out = format!("--- {old_name}\n+++ {new_name}\n");
    for hunk in hunks(&ops, 3) {
        let (a_start, a_len, b_start, b_len) = hunk_header(&hunk, &ops);
        out.push_str(&format!(
            "@@ -{},{} +{},{} @@\n",
            a_start + 1,
            a_len,
            b_start + 1,
            b_len
        ));
        for &i in &hunk {
            match ops[i] {
                DiffOp::Equal(ai, _) => {
                    out.push(' ');
                    out.push_str(a[ai]);
                }
                DiffOp::Delete(ai) => {
                    out.push('-');
                    out.push_str(a[ai]);
                }
                DiffOp::Insert(bi) => {
                    out.push('+');
                    out.push_str(b[bi]);
                }
            }
            out.push('\n');
        }
    }
    out
}

#[derive(Clone, Copy, Debug)]
enum DiffOp {
    Equal(usize, usize),
    Delete(usize),
    Insert(usize),
}

/// Longest-common-subsequence diff (quadratic DP; inputs are single source
/// files).
fn diff_ops(a: &[&str], b: &[&str]) -> Vec<DiffOp> {
    let (n, m) = (a.len(), b.len());
    // lcs[i][j] = LCS length of a[i..] and b[j..].
    let mut lcs = vec![vec![0u32; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[i][j] = if a[i] == b[j] {
                lcs[i + 1][j + 1] + 1
            } else {
                lcs[i + 1][j].max(lcs[i][j + 1])
            };
        }
    }
    let mut ops = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if a[i] == b[j] {
            ops.push(DiffOp::Equal(i, j));
            i += 1;
            j += 1;
        } else if lcs[i + 1][j] >= lcs[i][j + 1] {
            ops.push(DiffOp::Delete(i));
            i += 1;
        } else {
            ops.push(DiffOp::Insert(j));
            j += 1;
        }
    }
    while i < n {
        ops.push(DiffOp::Delete(i));
        i += 1;
    }
    while j < m {
        ops.push(DiffOp::Insert(j));
        j += 1;
    }
    ops
}

/// Groups op indices into hunks with `ctx` lines of context.
fn hunks(ops: &[DiffOp], ctx: usize) -> Vec<Vec<usize>> {
    let changed: Vec<usize> = ops
        .iter()
        .enumerate()
        .filter(|(_, op)| !matches!(op, DiffOp::Equal(_, _)))
        .map(|(i, _)| i)
        .collect();
    if changed.is_empty() {
        return Vec::new();
    }
    let mut groups: Vec<(usize, usize)> = Vec::new();
    for &c in &changed {
        let lo = c.saturating_sub(ctx);
        let hi = (c + ctx + 1).min(ops.len());
        match groups.last_mut() {
            Some((_, prev_hi)) if lo <= *prev_hi => *prev_hi = (*prev_hi).max(hi),
            _ => groups.push((lo, hi)),
        }
    }
    groups
        .into_iter()
        .map(|(lo, hi)| (lo..hi).collect())
        .collect()
}

fn hunk_header(hunk: &[usize], ops: &[DiffOp]) -> (usize, usize, usize, usize) {
    let mut a_start = usize::MAX;
    let mut b_start = usize::MAX;
    let (mut a_len, mut b_len) = (0, 0);
    for &i in hunk {
        match ops[i] {
            DiffOp::Equal(ai, bi) => {
                a_start = a_start.min(ai);
                b_start = b_start.min(bi);
                a_len += 1;
                b_len += 1;
            }
            DiffOp::Delete(ai) => {
                a_start = a_start.min(ai);
                a_len += 1;
            }
            DiffOp::Insert(bi) => {
                b_start = b_start.min(bi);
                b_len += 1;
            }
        }
    }
    (
        if a_start == usize::MAX { 0 } else { a_start },
        a_len,
        if b_start == usize::MAX { 0 } else { b_start },
        b_len,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_inputs_empty_diff() {
        assert_eq!(unified_diff("a", "b", "x\ny\n", "x\ny\n"), "");
    }

    #[test]
    fn single_line_change() {
        let old = "a\nb\nc\nd\ne\nf\ng\n";
        let new = "a\nb\nc\nD\ne\nf\ng\n";
        let d = unified_diff("old.go", "new.go", old, new);
        assert!(d.contains("--- old.go"));
        assert!(d.contains("-d"));
        assert!(d.contains("+D"));
        // Context of 3 around the change.
        assert!(d.contains(" c"));
        assert!(d.contains(" e"));
    }

    #[test]
    fn insertion_only() {
        let d = unified_diff("a", "b", "x\nz\n", "x\ny\nz\n");
        assert!(d.contains("+y"));
        assert!(!d.contains("-x"));
    }

    #[test]
    fn distant_changes_make_two_hunks() {
        let old: String = (0..40).map(|i| format!("line{i}\n")).collect();
        let new = old
            .replace("line2\n", "LINE2\n")
            .replace("line35\n", "LINE35\n");
        let d = unified_diff("a", "b", &old, &new);
        assert_eq!(
            d.matches("@@").count(),
            4,
            "two hunks, two @@ markers each:\n{d}"
        );
    }
}
