//! Table-1-style analysis funnels.

use crate::analyzer::TransformPlan;

/// Counters mirroring the columns of the paper's Table 1, for one unit or
/// aggregated over a package.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FunnelReport {
    /// Lock points (acquires) found.
    pub lock_points: usize,
    /// Unlock points (releases) found.
    pub unlock_points: usize,
    /// Releases that came from `defer`.
    pub deferred_unlocks: usize,
    /// Functions discarded for multiple `defer Unlock()` (§5.2.5).
    pub discarded_multi_defer: usize,
    /// LU-points pruned by DELock/UEUnlock or left unpaired ("violates
    /// dominance").
    pub dominance_violations: usize,
    /// Matched candidate pairs entering conditions (3)/(4).
    pub candidate_pairs: usize,
    /// Rejected: unfriendly instruction in the section body.
    pub unfit_intra: usize,
    /// Rejected: unfriendly/unknown callee in the transitive closure.
    pub unfit_interproc: usize,
    /// Rejected: aliasing LU-point inside the section.
    pub nested_alias_intra: usize,
    /// Rejected: aliasing LU-point in a callee.
    pub nested_alias_interproc: usize,
    /// Pairs accepted for transformation (without profiles).
    pub transformed: usize,
    /// Accepted pairs whose unlock is deferred.
    pub transformed_deferred: usize,
    /// Accepted pairs surviving the profile filter.
    pub transformed_hot: usize,
    /// Hot accepted pairs whose unlock is deferred.
    pub transformed_hot_deferred: usize,
}

impl FunnelReport {
    /// Accumulates another funnel into this one.
    pub fn merge(&mut self, other: &FunnelReport) {
        self.lock_points += other.lock_points;
        self.unlock_points += other.unlock_points;
        self.deferred_unlocks += other.deferred_unlocks;
        self.discarded_multi_defer += other.discarded_multi_defer;
        self.dominance_violations += other.dominance_violations;
        self.candidate_pairs += other.candidate_pairs;
        self.unfit_intra += other.unfit_intra;
        self.unfit_interproc += other.unfit_interproc;
        self.nested_alias_intra += other.nested_alias_intra;
        self.nested_alias_interproc += other.nested_alias_interproc;
        self.transformed += other.transformed;
        self.transformed_deferred += other.transformed_deferred;
        self.transformed_hot += other.transformed_hot;
        self.transformed_hot_deferred += other.transformed_hot_deferred;
    }

    /// Renders one row in the spirit of Table 1.
    #[must_use]
    pub fn table_row(&self, name: &str) -> String {
        format!(
            "{name:<12} {lp:>6} {up:>6} ({d:>3}) {dv:>9} {cp:>10} {ui:>4}/{uip:<4} {ni:>4}/{nip:<4} {t:>5} ({td:>3}) {th:>5} ({thd:>3})",
            lp = self.lock_points,
            up = self.unlock_points,
            d = self.deferred_unlocks,
            dv = self.dominance_violations,
            cp = self.candidate_pairs,
            ui = self.unfit_intra,
            uip = self.unfit_interproc,
            ni = self.nested_alias_intra,
            nip = self.nested_alias_interproc,
            t = self.transformed,
            td = self.transformed_deferred,
            th = self.transformed_hot,
            thd = self.transformed_hot_deferred,
        )
    }

    /// The Table-1 header matching [`Self::table_row`].
    #[must_use]
    pub fn table_header() -> String {
        format!(
            "{:<12} {:>6} {:>6} {:>5} {:>9} {:>10} {:>9} {:>9} {:>11} {:>11}",
            "repo",
            "locks",
            "unlocks",
            "(def)",
            "dom-viol",
            "cand-pairs",
            "unfit i/x",
            "alias i/x",
            "xformed(def)",
            "w/prof(def)",
        )
    }
}

/// The result of analyzing one package.
#[derive(Debug, Default)]
pub struct PackageReport {
    /// Aggregated funnel counters.
    pub funnel: FunnelReport,
    /// Accepted transformation plans.
    pub plans: Vec<TransformPlan>,
}

impl PackageReport {
    /// Accumulates a unit funnel.
    pub fn merge(&mut self, other: &FunnelReport) {
        self.funnel.merge(other);
    }

    /// Plans surviving the profile filter.
    #[must_use]
    pub fn hot_plans(&self) -> Vec<&TransformPlan> {
        self.plans.iter().filter(|p| p.hot).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters() {
        let mut a = FunnelReport {
            lock_points: 2,
            transformed: 1,
            ..Default::default()
        };
        let b = FunnelReport {
            lock_points: 3,
            candidate_pairs: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.lock_points, 5);
        assert_eq!(a.candidate_pairs, 2);
        assert_eq!(a.transformed, 1);
    }

    #[test]
    fn table_row_renders() {
        let f = FunnelReport {
            lock_points: 54,
            unlock_points: 56,
            deferred_unlocks: 28,
            ..Default::default()
        };
        let row = f.table_row("tally");
        assert!(row.starts_with("tally"));
        assert!(row.contains("54"));
        assert!(row.contains("( 28)"));
    }
}
