//! Per-function summaries for inter-procedural analysis (§5.2.4).
//!
//! For every unit the analyzer precomputes, *without* its transitive
//! closure: (a) HTM fitness — whether the body contains HTM-unfriendly
//! instructions — and (b) `P`, the union of the points-to sets of all
//! LU-points in the body. A candidate pair is then checked against the
//! closure `F*` of the functions its critical section calls: any unfit
//! callee kills the pair (condition 4 extended), and any callee whose `P`
//! intersects `M(L) ∪ M(U)` kills it (condition 3 extended — nested
//! aliased locks may hide in callees).

use std::collections::{BTreeSet, HashMap};

use gocc_flowgraph::{FuncUnit, InstKind, UnfriendlyKind};
use gocc_pointsto::{ObjId, PointsTo};

/// Cross-package callees assumed pure enough for HTM (no IO, no
/// syscalls). Everything not listed and not resolvable in-package is
/// treated conservatively as unfit.
const PURE_PACKAGES: &[&str] = &[
    "atomic", "math", "sort", "strings", "strconv", "errors", "bytes", "unicode", "utf8",
];

/// Whether calls into `pkg` are assumed HTM-neutral.
#[must_use]
pub fn is_pure_package(pkg: &str) -> bool {
    PURE_PACKAGES.contains(&pkg)
}

/// Summary of one unit.
#[derive(Clone, Debug, Default)]
pub struct FuncSummary {
    /// HTM-unfriendly instruction kinds present in the body itself.
    pub unfriendly: Vec<UnfriendlyKind>,
    /// Whether the unit calls into packages outside the pure list.
    pub impure_external: bool,
    /// Union of points-to sets of all LU points in the body (`P`).
    pub lu_points_to: BTreeSet<ObjId>,
}

impl FuncSummary {
    /// Whether the body itself is fit for HTM execution.
    #[must_use]
    pub fn is_fit(&self) -> bool {
        self.unfriendly.is_empty() && !self.impure_external
    }
}

/// All summaries of a package, keyed by unit name.
#[derive(Debug, Default)]
pub struct Summaries {
    map: HashMap<String, FuncSummary>,
}

impl Summaries {
    /// Computes summaries for every unit.
    #[must_use]
    pub fn compute(units: &[&FuncUnit], points_to: &mut PointsTo) -> Summaries {
        let mut map = HashMap::new();
        for unit in units {
            let mut s = FuncSummary::default();
            for block in &unit.cfg.blocks {
                for inst in &block.insts {
                    match &inst.kind {
                        InstKind::Unfriendly(kind) => s.unfriendly.push(*kind),
                        InstKind::Lu(op) => {
                            let m = points_to.resolve(&unit.name, &op.recv);
                            s.lu_points_to.extend(m);
                        }
                        InstKind::Call(gocc_flowgraph::CalleeRef::External { pkg, .. })
                            if !PURE_PACKAGES.contains(&pkg.as_str()) =>
                        {
                            s.impure_external = true;
                        }
                        _ => {}
                    }
                }
            }
            map.insert(unit.name.clone(), s);
        }
        Summaries { map }
    }

    /// The summary of a unit, if known.
    #[must_use]
    pub fn get(&self, unit: &str) -> Option<&FuncSummary> {
        self.map.get(unit)
    }

    /// Evaluates a call-graph closure: returns `(fit, alias_hit)` where
    /// `fit` is false if any reached unit is HTM-unfit (or unknown), and
    /// `alias_hit` is true if any reached unit's `P` intersects `against`.
    #[must_use]
    pub fn evaluate_closure(
        &self,
        closure: &gocc_pointsto::Closure,
        roots_excluded: &BTreeSet<String>,
        against: &BTreeSet<ObjId>,
    ) -> (bool, bool) {
        let mut fit = !closure.hits_unknown;
        for (pkg, _) in &closure.externals {
            if !PURE_PACKAGES.contains(&pkg.as_str()) {
                fit = false;
            }
        }
        let mut alias_hit = false;
        for unit in &closure.reached {
            if roots_excluded.contains(unit) {
                continue;
            }
            match self.map.get(unit) {
                Some(s) => {
                    if !s.is_fit() {
                        fit = false;
                    }
                    if s.lu_points_to.iter().any(|o| against.contains(o)) {
                        alias_hit = true;
                    }
                }
                None => fit = false,
            }
        }
        (fit, alias_hit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::Package;

    #[test]
    fn io_body_is_unfit() {
        let src = r#"
package p

import "sync"

type C struct {
	mu sync.Mutex
	n  int
}

func clean(c *C) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func dirty(c *C) {
	fmt.Println(c.n)
}
"#;
        let mut pkg = Package::from_source(src).unwrap();
        let units: Vec<_> = pkg.units.iter().flatten().collect();
        let sums = Summaries::compute(&units, &mut pkg.points_to);
        assert!(sums.get("clean").unwrap().is_fit());
        assert!(!sums.get("dirty").unwrap().is_fit());
        assert!(!sums.get("clean").unwrap().lu_points_to.is_empty());
        assert!(sums.get("dirty").unwrap().lu_points_to.is_empty());
    }

    #[test]
    fn impure_external_marks_unfit() {
        let src = r#"
package p

func usesAtomic(p *int) {
	atomic.AddInt64(p, 1)
}

func usesCrypto() {
	crypto.Rand()
}
"#;
        let mut pkg = Package::from_source(src).unwrap();
        let units: Vec<_> = pkg.units.iter().flatten().collect();
        let sums = Summaries::compute(&units, &mut pkg.points_to);
        assert!(
            sums.get("usesAtomic").unwrap().is_fit(),
            "sync/atomic is HTM-neutral"
        );
        assert!(!sums.get("usesCrypto").unwrap().is_fit());
    }
}
