//! The GOCC transformer: AST rewriting of accepted pairs (§5.3).
//!
//! For every accepted [`TransformPlan`], the lock call becomes
//! `optiLockN.FastLock(arg)` and the unlock call `optiLockN.FastUnlock(arg)`
//! (`FastRLock`/`FastRUnlock` for read elision), where:
//!
//! * `arg` is the original receiver as-is when it is already a mutex
//!   pointer, `&recv` when it is a mutex value (Listing 10);
//! * anonymous mutex fields are reached by suffixing the access path with
//!   the embedded type name, e.g. `a` → `&a.Mutex` (Listing 12);
//! * `defer m.Unlock()` keeps its `defer`, becoming
//!   `defer optiLockN.FastUnlock(&m)` (Listing 8);
//! * each pair gets one fresh `OptiLock` variable declared at the top of
//!   the innermost function or closure body enclosing both calls, so
//!   anonymous goroutines own their state (Listing 14).

use std::collections::HashMap;

use golite::ast::{Block, Decl, Expr, File, FuncDecl, NodeId, Stmt, Type};
use golite::types::TypeInfo;

use crate::analyzer::TransformPlan;

/// Rewrites one file according to the plans that target it.
///
/// Plans for other files are ignored, so callers can pass the package-wide
/// plan list for each file.
#[must_use]
pub fn transform_file(
    file: &File,
    info: &TypeInfo,
    file_idx: usize,
    plans: &[TransformPlan],
) -> File {
    let mut out = file.clone();
    let mine: Vec<&TransformPlan> = plans.iter().filter(|p| p.file_idx == file_idx).collect();
    if mine.is_empty() {
        return out;
    }
    let mut any = false;
    let mut counter = 0usize;
    for decl in &mut out.decls {
        let Decl::Func(fd) = decl else { continue };
        let env = info.local_env(fd);
        // Plans whose unit is this function or one of its closures.
        let key = func_key(fd);
        let fplans: Vec<&TransformPlan> = mine
            .iter()
            .copied()
            .filter(|p| p.unit == key || p.unit.starts_with(&format!("{key}$")))
            .collect();
        if fplans.is_empty() {
            continue;
        }
        any = true;
        for plan in fplans {
            counter += 1;
            let ol_name = format!("optiLock{counter}");
            let mut rewriter = Rewriter {
                info,
                env: &env,
                plan,
                ol_name: ol_name.clone(),
            };
            rewriter.rewrite_block(&mut fd.body);
            // Declare the OptiLock in the innermost scope containing both
            // calls.
            insert_decl(&mut fd.body, &ol_name, plan);
        }
    }
    if any && !out.imports.iter().any(|i| i == "optilib") {
        out.imports.push("optilib".to_string());
    }
    out
}

fn func_key(fd: &FuncDecl) -> String {
    match &fd.recv {
        Some(r) => format!("{}.{}", r.type_name, fd.name),
        None => fd.name.clone(),
    }
}

struct Rewriter<'a> {
    info: &'a TypeInfo,
    env: &'a HashMap<String, Type>,
    plan: &'a TransformPlan,
    ol_name: String,
}

impl Rewriter<'_> {
    fn rewrite_block(&mut self, b: &mut Block) {
        for s in &mut b.stmts {
            self.rewrite_stmt(s);
        }
    }

    fn rewrite_stmt(&mut self, s: &mut Stmt) {
        match s {
            Stmt::Expr(e) | Stmt::Defer { call: e, .. } | Stmt::Go { call: e, .. } => {
                self.rewrite_expr(e);
            }
            Stmt::Var(vd) => {
                for v in &mut vd.values {
                    self.rewrite_expr(v);
                }
            }
            Stmt::Assign { lhs, rhs, .. } => {
                for e in lhs.iter_mut().chain(rhs.iter_mut()) {
                    self.rewrite_expr(e);
                }
            }
            Stmt::IncDec { target, .. } => self.rewrite_expr(target),
            Stmt::If {
                init,
                cond,
                then,
                els,
                ..
            } => {
                if let Some(i) = init {
                    self.rewrite_stmt(i);
                }
                self.rewrite_expr(cond);
                self.rewrite_block(then);
                if let Some(e) = els {
                    self.rewrite_stmt(e);
                }
            }
            Stmt::Block(b) => self.rewrite_block(b),
            Stmt::For {
                init,
                cond,
                post,
                range_over,
                body,
                ..
            } => {
                if let Some(i) = init {
                    self.rewrite_stmt(i);
                }
                if let Some(c) = cond {
                    self.rewrite_expr(c);
                }
                if let Some(p) = post {
                    self.rewrite_stmt(p);
                }
                if let Some(r) = range_over {
                    self.rewrite_expr(r);
                }
                self.rewrite_block(body);
            }
            Stmt::Switch { cond, cases, .. } => {
                if let Some(c) = cond {
                    self.rewrite_expr(c);
                }
                for (guards, body) in cases {
                    for g in guards {
                        self.rewrite_expr(g);
                    }
                    self.rewrite_block(body);
                }
            }
            Stmt::Select { cases, .. } => {
                for b in cases {
                    self.rewrite_block(b);
                }
            }
            Stmt::Return { values, .. } => {
                for v in values {
                    self.rewrite_expr(v);
                }
            }
            Stmt::Send { chan, value, .. } => {
                self.rewrite_expr(chan);
                self.rewrite_expr(value);
            }
            Stmt::Break(_) | Stmt::Continue(_) => {}
        }
    }

    fn rewrite_expr(&mut self, e: &mut Expr) {
        // Rewrite this node if it is one of the plan's calls.
        if let Expr::Call {
            callee,
            args,
            id,
            span,
        } = e
        {
            let is_lock = *id == self.plan.lock_node;
            let is_unlock = *id == self.plan.unlock_node;
            if is_lock || is_unlock {
                if let Expr::Selector { base, .. } = callee.as_mut() {
                    let recv = std::mem::replace(
                        base.as_mut(),
                        Expr::Ident {
                            name: String::new(),
                            id: NodeId(0),
                            span: *span,
                        },
                    );
                    let arg = self.mutex_arg(recv);
                    let method = match (is_lock, self.plan.read_elision) {
                        (true, false) => "FastLock",
                        (true, true) => "FastRLock",
                        (false, false) => "FastUnlock",
                        (false, true) => "FastRUnlock",
                    };
                    **callee = Expr::Selector {
                        base: Box::new(Expr::Ident {
                            name: self.ol_name.clone(),
                            id: NodeId(0),
                            span: *span,
                        }),
                        field: method.to_string(),
                        id: NodeId(0),
                        span: *span,
                    };
                    *args = vec![arg];
                    return;
                }
            }
        }
        // Otherwise recurse.
        match e {
            Expr::Call { callee, args, .. } => {
                self.rewrite_expr(callee);
                for a in args {
                    self.rewrite_expr(a);
                }
            }
            Expr::Selector { base, .. } => self.rewrite_expr(base),
            Expr::Index { base, index, .. } => {
                self.rewrite_expr(base);
                self.rewrite_expr(index);
            }
            Expr::Unary { operand, .. } => self.rewrite_expr(operand),
            Expr::Binary { left, right, .. } => {
                self.rewrite_expr(left);
                self.rewrite_expr(right);
            }
            Expr::Composite { elems, .. } => {
                for (_, v) in elems {
                    self.rewrite_expr(v);
                }
            }
            Expr::FuncLit { body, .. } => self.rewrite_block(body),
            _ => {}
        }
    }

    /// Builds the `*sync.Mutex` argument from the original receiver
    /// (Listings 10 and 12).
    fn mutex_arg(&self, recv: Expr) -> Expr {
        let span = recv.span();
        let access = self.info.classify_mutex(&recv, self.env);
        let Some(access) = access else {
            // Should not happen for analyzer-approved plans; pass through.
            return recv;
        };
        let path = if access.anonymous {
            // Suffix the access path with the embedded field's name.
            let field = if access.rw { "RWMutex" } else { "Mutex" };
            Expr::Selector {
                base: Box::new(recv),
                field: field.to_string(),
                id: NodeId(0),
                span,
            }
        } else {
            recv
        };
        if access.pointer {
            path
        } else {
            Expr::Unary {
                op: golite::ast::UnaryOp::Addr,
                operand: Box::new(path),
                id: NodeId(0),
                span,
            }
        }
    }
}

/// Inserts `olName := optilib.OptiLock{}` at the top of the innermost
/// function or closure body containing both of the plan's calls.
fn insert_decl(body: &mut Block, ol_name: &str, plan: &TransformPlan) {
    let decl = Stmt::Assign {
        lhs: vec![Expr::Ident {
            name: ol_name.to_string(),
            id: NodeId(0),
            span: Default::default(),
        }],
        rhs: vec![Expr::Composite {
            ty: Type::Named {
                pkg: Some("optilib".into()),
                name: "OptiLock".into(),
            },
            elems: Vec::new(),
            id: NodeId(0),
            span: Default::default(),
        }],
        define: true,
        id: NodeId(0),
        span: Default::default(),
    };
    match choose_scope_lit(body, plan) {
        None => body.stmts.insert(0, decl),
        Some(lit) => {
            let inserted = insert_into_lit(body, lit, decl);
            debug_assert!(inserted, "chosen closure must exist");
        }
    }
}

/// Picks the innermost closure (by literal node id) whose body contains
/// both plan nodes; `None` means the function body itself.
fn choose_scope_lit(body: &Block, plan: &TransformPlan) -> Option<NodeId> {
    let mut lits: Vec<(NodeId, bool)> = Vec::new();
    collect_lits(body, &mut lits, plan);
    // Pre-order collection: the last closure containing both nodes is the
    // innermost along the enclosing chain.
    lits.into_iter()
        .filter(|(_, both)| *both)
        .map(|(id, _)| id)
        .next_back()
}

fn collect_lits(b: &Block, out: &mut Vec<(NodeId, bool)>, plan: &TransformPlan) {
    for s in &b.stmts {
        collect_lits_stmt(s, out, plan);
    }
}

fn collect_lits_stmt(s: &Stmt, out: &mut Vec<(NodeId, bool)>, plan: &TransformPlan) {
    let handle_expr = |e: &Expr, out: &mut Vec<(NodeId, bool)>| {
        collect_lits_expr(e, out, plan);
    };
    match s {
        Stmt::Expr(e) | Stmt::Defer { call: e, .. } | Stmt::Go { call: e, .. } => {
            handle_expr(e, out);
        }
        Stmt::Var(vd) => {
            for v in &vd.values {
                handle_expr(v, out);
            }
        }
        Stmt::Assign { lhs, rhs, .. } => {
            for e in lhs.iter().chain(rhs.iter()) {
                handle_expr(e, out);
            }
        }
        Stmt::If {
            init,
            cond,
            then,
            els,
            ..
        } => {
            if let Some(i) = init {
                collect_lits_stmt(i, out, plan);
            }
            handle_expr(cond, out);
            collect_lits(then, out, plan);
            if let Some(e) = els {
                collect_lits_stmt(e, out, plan);
            }
        }
        Stmt::Block(b) => collect_lits(b, out, plan),
        Stmt::For {
            init,
            cond,
            post,
            range_over,
            body,
            ..
        } => {
            if let Some(i) = init {
                collect_lits_stmt(i, out, plan);
            }
            if let Some(c) = cond {
                handle_expr(c, out);
            }
            if let Some(p) = post {
                collect_lits_stmt(p, out, plan);
            }
            if let Some(r) = range_over {
                handle_expr(r, out);
            }
            collect_lits(body, out, plan);
        }
        Stmt::Switch { cond, cases, .. } => {
            if let Some(c) = cond {
                handle_expr(c, out);
            }
            for (guards, b) in cases {
                for g in guards {
                    handle_expr(g, out);
                }
                collect_lits(b, out, plan);
            }
        }
        Stmt::Select { cases, .. } => {
            for b in cases {
                collect_lits(b, out, plan);
            }
        }
        Stmt::Return { values, .. } => {
            for v in values {
                handle_expr(v, out);
            }
        }
        Stmt::Send { chan, value, .. } => {
            handle_expr(chan, out);
            handle_expr(value, out);
        }
        Stmt::IncDec { target, .. } => handle_expr(target, out),
        Stmt::Break(_) | Stmt::Continue(_) => {}
    }
}

fn collect_lits_expr(e: &Expr, out: &mut Vec<(NodeId, bool)>, plan: &TransformPlan) {
    match e {
        Expr::FuncLit { id, body, .. } => {
            let both = contains_node(body, plan.lock_node) && contains_node(body, plan.unlock_node);
            out.push((*id, both));
            collect_lits(body, out, plan);
        }
        Expr::Call { callee, args, .. } => {
            collect_lits_expr(callee, out, plan);
            for a in args {
                collect_lits_expr(a, out, plan);
            }
        }
        Expr::Selector { base, .. } => collect_lits_expr(base, out, plan),
        Expr::Index { base, index, .. } => {
            collect_lits_expr(base, out, plan);
            collect_lits_expr(index, out, plan);
        }
        Expr::Unary { operand, .. } => collect_lits_expr(operand, out, plan),
        Expr::Binary { left, right, .. } => {
            collect_lits_expr(left, out, plan);
            collect_lits_expr(right, out, plan);
        }
        Expr::Composite { elems, .. } => {
            for (_, v) in elems {
                collect_lits_expr(v, out, plan);
            }
        }
        _ => {}
    }
}

/// Inserts `decl` at the top of the body of the closure with literal node
/// `lit`; returns whether the closure was found.
fn insert_into_lit(b: &mut Block, lit: NodeId, decl: Stmt) -> bool {
    let mut decl_slot = Some(decl);
    insert_into_lit_block(b, lit, &mut decl_slot);
    decl_slot.is_none()
}

fn insert_into_lit_block(b: &mut Block, lit: NodeId, decl: &mut Option<Stmt>) {
    for s in &mut b.stmts {
        insert_into_lit_stmt(s, lit, decl);
        if decl.is_none() {
            return;
        }
    }
}

fn insert_into_lit_stmt(s: &mut Stmt, lit: NodeId, decl: &mut Option<Stmt>) {
    match s {
        Stmt::Expr(e) | Stmt::Defer { call: e, .. } | Stmt::Go { call: e, .. } => {
            insert_into_lit_expr(e, lit, decl);
        }
        Stmt::Var(vd) => {
            for v in &mut vd.values {
                insert_into_lit_expr(v, lit, decl);
            }
        }
        Stmt::Assign { lhs, rhs, .. } => {
            for e in lhs.iter_mut().chain(rhs.iter_mut()) {
                insert_into_lit_expr(e, lit, decl);
            }
        }
        Stmt::If {
            init,
            cond,
            then,
            els,
            ..
        } => {
            if let Some(i) = init {
                insert_into_lit_stmt(i, lit, decl);
            }
            insert_into_lit_expr(cond, lit, decl);
            insert_into_lit_block(then, lit, decl);
            if let Some(e) = els {
                insert_into_lit_stmt(e, lit, decl);
            }
        }
        Stmt::Block(b) => insert_into_lit_block(b, lit, decl),
        Stmt::For {
            init,
            cond,
            post,
            range_over,
            body,
            ..
        } => {
            if let Some(i) = init {
                insert_into_lit_stmt(i, lit, decl);
            }
            if let Some(c) = cond {
                insert_into_lit_expr(c, lit, decl);
            }
            if let Some(p) = post {
                insert_into_lit_stmt(p, lit, decl);
            }
            if let Some(r) = range_over {
                insert_into_lit_expr(r, lit, decl);
            }
            insert_into_lit_block(body, lit, decl);
        }
        Stmt::Switch { cond, cases, .. } => {
            if let Some(c) = cond {
                insert_into_lit_expr(c, lit, decl);
            }
            for (guards, b) in cases {
                for g in guards {
                    insert_into_lit_expr(g, lit, decl);
                }
                insert_into_lit_block(b, lit, decl);
            }
        }
        Stmt::Select { cases, .. } => {
            for b in cases {
                insert_into_lit_block(b, lit, decl);
            }
        }
        Stmt::Return { values, .. } => {
            for v in values {
                insert_into_lit_expr(v, lit, decl);
            }
        }
        Stmt::Send { chan, value, .. } => {
            insert_into_lit_expr(chan, lit, decl);
            insert_into_lit_expr(value, lit, decl);
        }
        Stmt::IncDec { target, .. } => insert_into_lit_expr(target, lit, decl),
        Stmt::Break(_) | Stmt::Continue(_) => {}
    }
}

fn insert_into_lit_expr(e: &mut Expr, lit: NodeId, decl: &mut Option<Stmt>) {
    match e {
        Expr::FuncLit { id, body, .. } => {
            if *id == lit {
                if let Some(d) = decl.take() {
                    body.stmts.insert(0, d);
                }
                return;
            }
            insert_into_lit_block(body, lit, decl);
        }
        Expr::Call { callee, args, .. } => {
            insert_into_lit_expr(callee, lit, decl);
            for a in args {
                insert_into_lit_expr(a, lit, decl);
            }
        }
        Expr::Selector { base, .. } => insert_into_lit_expr(base, lit, decl),
        Expr::Index { base, index, .. } => {
            insert_into_lit_expr(base, lit, decl);
            insert_into_lit_expr(index, lit, decl);
        }
        Expr::Unary { operand, .. } => insert_into_lit_expr(operand, lit, decl),
        Expr::Binary { left, right, .. } => {
            insert_into_lit_expr(left, lit, decl);
            insert_into_lit_expr(right, lit, decl);
        }
        Expr::Composite { elems, .. } => {
            for (_, v) in elems {
                insert_into_lit_expr(v, lit, decl);
            }
        }
        _ => {}
    }
}

/// Whether a block (including nested closures) contains a node with `id`.
fn contains_node(b: &Block, id: NodeId) -> bool {
    let mut found = false;
    for s in &b.stmts {
        stmt_nodes(s, &mut |n| {
            if n == id {
                found = true;
            }
        });
    }
    found
}

fn stmt_nodes(s: &Stmt, f: &mut impl FnMut(NodeId)) {
    match s {
        Stmt::Expr(e) | Stmt::Defer { call: e, .. } | Stmt::Go { call: e, .. } => expr_nodes(e, f),
        Stmt::Var(vd) => {
            for v in &vd.values {
                expr_nodes(v, f);
            }
        }
        Stmt::Assign { lhs, rhs, .. } => {
            for e in lhs.iter().chain(rhs.iter()) {
                expr_nodes(e, f);
            }
        }
        Stmt::If {
            init,
            cond,
            then,
            els,
            ..
        } => {
            if let Some(i) = init {
                stmt_nodes(i, f);
            }
            expr_nodes(cond, f);
            for st in &then.stmts {
                stmt_nodes(st, f);
            }
            if let Some(e) = els {
                stmt_nodes(e, f);
            }
        }
        Stmt::Block(b) => {
            for st in &b.stmts {
                stmt_nodes(st, f);
            }
        }
        Stmt::For {
            init,
            cond,
            post,
            range_over,
            body,
            ..
        } => {
            if let Some(i) = init {
                stmt_nodes(i, f);
            }
            if let Some(c) = cond {
                expr_nodes(c, f);
            }
            if let Some(p) = post {
                stmt_nodes(p, f);
            }
            if let Some(r) = range_over {
                expr_nodes(r, f);
            }
            for st in &body.stmts {
                stmt_nodes(st, f);
            }
        }
        Stmt::Switch { cond, cases, .. } => {
            if let Some(c) = cond {
                expr_nodes(c, f);
            }
            for (guards, b) in cases {
                for g in guards {
                    expr_nodes(g, f);
                }
                for st in &b.stmts {
                    stmt_nodes(st, f);
                }
            }
        }
        Stmt::Select { cases, .. } => {
            for b in cases {
                for st in &b.stmts {
                    stmt_nodes(st, f);
                }
            }
        }
        Stmt::Return { values, .. } => {
            for v in values {
                expr_nodes(v, f);
            }
        }
        Stmt::Send { chan, value, .. } => {
            expr_nodes(chan, f);
            expr_nodes(value, f);
        }
        Stmt::IncDec { target, .. } => expr_nodes(target, f),
        Stmt::Break(_) | Stmt::Continue(_) => {}
    }
}

fn expr_nodes(e: &Expr, f: &mut impl FnMut(NodeId)) {
    if let Some(id) = e.id() {
        f(id);
    }
    match e {
        Expr::Call { callee, args, .. } => {
            expr_nodes(callee, f);
            for a in args {
                expr_nodes(a, f);
            }
        }
        Expr::Selector { base, .. } => expr_nodes(base, f),
        Expr::Index { base, index, .. } => {
            expr_nodes(base, f);
            expr_nodes(index, f);
        }
        Expr::Unary { operand, .. } => expr_nodes(operand, f),
        Expr::Binary { left, right, .. } => {
            expr_nodes(left, f);
            expr_nodes(right, f);
        }
        Expr::Composite { elems, .. } => {
            for (_, v) in elems {
                expr_nodes(v, f);
            }
        }
        Expr::FuncLit { body, .. } => {
            for st in &body.stmts {
                stmt_nodes(st, f);
            }
        }
        _ => {}
    }
}
