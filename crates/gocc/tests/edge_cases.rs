//! Analyzer edge cases beyond the main listings: Appendix-A shapes,
//! points-to-driven decisions, opaque receivers, and transformer corners.

use gocc::{analyze_package, transform_file, AnalysisOptions, Package};
use golite::parser::parse_file;
use golite::printer::print_file;

fn report(src: &str) -> gocc::PackageReport {
    let mut pkg = Package::from_source(src).expect("parse");
    analyze_package(&mut pkg, &AnalysisOptions::default())
}

#[test]
fn listing16_cross_branch_lock_unlock_rejected() {
    // Appendix A, Listing 16: lock in one branch structure, unlock in a
    // later one — the lock's execution does not guarantee the unlock's.
    let src = r#"
package p

import "sync"

var m sync.Mutex
var n int

func f(cond1 bool, cond2 bool) {
	if cond1 {
		m.Lock()
	}
	n++
	if cond2 {
		m.Unlock()
	}
}
"#;
    let rep = report(src);
    assert_eq!(rep.funnel.transformed, 0, "funnel: {:?}", rep.funnel);
    assert!(rep.funnel.dominance_violations >= 1);
}

#[test]
fn different_global_mutexes_never_pair() {
    // Condition (1): L and U on provably different mutexes must not pair.
    let src = r#"
package p

import "sync"

var a sync.Mutex
var b sync.Mutex
var n int

func f() {
	a.Lock()
	n++
	b.Unlock()
}
"#;
    let rep = report(src);
    assert_eq!(rep.funnel.candidate_pairs, 0);
    assert_eq!(rep.funnel.transformed, 0);
}

#[test]
fn pointer_parameter_aliasing_contract() {
    // A lock and unlock through the *same* pointer parameter pair (the
    // parameter's synthesized points-to object intersects itself); lock
    // and unlock through *different* parameters do not — the analysis
    // cannot relate them, so it conservatively skips the pair, exactly
    // like Andersen over distinct unbound formals.
    let same = r#"
package p

import "sync"

func f(p *sync.Mutex, n *int) {
	p.Lock()
	*n = *n + 1
	p.Unlock()
}
"#;
    let rep = report(same);
    assert_eq!(
        rep.funnel.transformed, 1,
        "same-parameter pair: {:?}",
        rep.funnel
    );

    let different = r#"
package p

import "sync"

func f(p *sync.Mutex, q *sync.Mutex, n *int) {
	p.Lock()
	*n = *n + 1
	q.Unlock()
}
"#;
    let rep = report(different);
    assert_eq!(
        rep.funnel.transformed, 0,
        "distinct parameters: {:?}",
        rep.funnel
    );
}

#[test]
fn opaque_receiver_never_pairs() {
    // A lock obtained from a call cannot be named by the analysis; its
    // points-to set is a unique opaque object that intersects nothing.
    let src = r#"
package p

import "sync"

var m sync.Mutex

func getLock() *sync.Mutex {
	return &m
}

func f(n *int) {
	getLock().Lock()
	*n = *n + 1
	getLock().Unlock()
}
"#;
    let rep = report(src);
    assert_eq!(rep.funnel.transformed, 0, "funnel: {:?}", rep.funnel);
}

#[test]
fn rlock_paired_with_wrong_unlock_kind_rejected() {
    // RLock must pair with RUnlock, not Unlock.
    let src = r#"
package p

import "sync"

type C struct {
	rw sync.RWMutex
	n  int
}

func (c *C) Bad() int {
	c.rw.RLock()
	v := c.n
	c.rw.Unlock()
	return v
}
"#;
    let rep = report(src);
    assert_eq!(rep.funnel.candidate_pairs, 0, "funnel: {:?}", rep.funnel);
    assert_eq!(rep.funnel.transformed, 0);
}

#[test]
fn loop_carried_lock_does_not_pair_with_preloop_lock() {
    // A lock before the loop and unlocks inside it: nothing post-dominates.
    let src = r#"
package p

import "sync"

type C struct {
	mu sync.Mutex
	n  int
}

func (c *C) Weird(k int) {
	c.mu.Lock()
	for i := 0; i < k; i++ {
		c.n++
		if i == 2 {
			c.mu.Unlock()
		}
	}
}
"#;
    let rep = report(src);
    assert_eq!(rep.funnel.transformed, 0, "funnel: {:?}", rep.funnel);
}

#[test]
fn panic_in_section_is_unfit() {
    let src = r#"
package p

import "sync"

type C struct {
	mu sync.Mutex
	n  int
}

func (c *C) Checked(v int) {
	c.mu.Lock()
	if v < 0 {
		panic("negative")
	}
	c.n = v
	c.mu.Unlock()
}
"#;
    let rep = report(src);
    assert_eq!(rep.funnel.unfit_intra, 1, "funnel: {:?}", rep.funnel);
    assert_eq!(rep.funnel.transformed, 0);
}

#[test]
fn goroutine_launch_in_section_is_unfit() {
    let src = r#"
package p

import "sync"

type C struct {
	mu sync.Mutex
	n  int
}

func (c *C) Spawny() {
	c.mu.Lock()
	go helper()
	c.mu.Unlock()
}

func helper() {
}
"#;
    let rep = report(src);
    assert_eq!(rep.funnel.unfit_intra, 1, "funnel: {:?}", rep.funnel);
}

#[test]
fn deep_call_chain_io_detected() {
    // Condition (4) through a three-deep call chain.
    let src = r#"
package p

import "sync"

type C struct {
	mu sync.Mutex
	n  int
}

func (c *C) Top() {
	c.mu.Lock()
	c.mid()
	c.mu.Unlock()
}

func (c *C) mid() {
	c.deep()
}

func (c *C) deep() {
	fmt.Println(c.n)
}
"#;
    let rep = report(src);
    assert_eq!(rep.funnel.unfit_interproc, 1, "funnel: {:?}", rep.funnel);
}

#[test]
fn clean_call_chain_is_accepted() {
    let src = r#"
package p

import "sync"

type C struct {
	mu sync.Mutex
	n  int
}

func (c *C) Top() {
	c.mu.Lock()
	c.mid()
	c.mu.Unlock()
}

func (c *C) mid() {
	c.deep()
}

func (c *C) deep() {
	c.n++
}
"#;
    let rep = report(src);
    assert_eq!(rep.funnel.transformed, 1, "funnel: {:?}", rep.funnel);
}

#[test]
fn recursive_functions_do_not_hang_the_closure() {
    let src = r#"
package p

import "sync"

type C struct {
	mu sync.Mutex
	n  int
}

func (c *C) Top() {
	c.mu.Lock()
	c.rec(3)
	c.mu.Unlock()
}

func (c *C) rec(k int) {
	if k > 0 {
		c.rec(k - 1)
	}
}
"#;
    let rep = report(src);
    assert_eq!(rep.funnel.transformed, 1, "funnel: {:?}", rep.funnel);
}

#[test]
fn two_pairs_in_one_function_get_distinct_optilocks() {
    let src = r#"
package p

import "sync"

type C struct {
	a sync.Mutex
	b sync.Mutex
	n int
	m int
}

func (c *C) Both() {
	c.a.Lock()
	c.n++
	c.a.Unlock()
	c.b.Lock()
	c.m++
	c.b.Unlock()
}
"#;
    let mut pkg = Package::from_source(src).unwrap();
    let rep = analyze_package(&mut pkg, &AnalysisOptions::default());
    assert_eq!(rep.funnel.transformed, 2);
    let out = transform_file(&pkg.files[0], &pkg.info, 0, &rep.plans);
    let printed = print_file(&out);
    assert!(printed.contains("optiLock1"), "{printed}");
    assert!(printed.contains("optiLock2"), "{printed}");
    assert!(printed.contains("FastLock(&c.a)"));
    assert!(printed.contains("FastLock(&c.b)"));
    parse_file(&printed).expect("output reparses");
}

#[test]
fn value_receiver_method_mutex() {
    // Value receiver: the mutex is a field of a copied struct. GOCC still
    // transforms syntactically; Go's own semantics of locking a copied
    // mutex are the program's concern, not the transformer's.
    let src = r#"
package p

import "sync"

type C struct {
	mu *sync.Mutex
	n  int
}

func (c C) ViaPointerField() {
	c.mu.Lock()
	use(c.n)
	c.mu.Unlock()
}

func use(n int) {
}
"#;
    let mut pkg = Package::from_source(src).unwrap();
    let rep = analyze_package(&mut pkg, &AnalysisOptions::default());
    assert_eq!(rep.funnel.transformed, 1, "funnel: {:?}", rep.funnel);
    let out = transform_file(&pkg.files[0], &pkg.info, 0, &rep.plans);
    let printed = print_file(&out);
    // Pointer field passes as-is — no extra `&`.
    assert!(printed.contains("FastLock(c.mu)"), "{printed}");
}

#[test]
fn switch_sections_analyzed_per_case() {
    let src = r#"
package p

import "sync"

type C struct {
	mu sync.Mutex
	n  int
}

func (c *C) Classify(x int) {
	switch x {
	case 1:
		c.mu.Lock()
		c.n = 1
		c.mu.Unlock()
	case 2:
		c.mu.Lock()
		c.n = 2
		c.mu.Unlock()
	}
}
"#;
    let rep = report(src);
    assert_eq!(
        rep.funnel.transformed, 2,
        "both case bodies transform: {:?}",
        rep.funnel
    );
}
