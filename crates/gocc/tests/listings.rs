//! Analyzer and transformer behavior on the paper's listings (§5, App. A–C).

use gocc::{analyze_package, transform_file, unified_diff, AnalysisOptions, Package};
use gocc_profile::Profile;
use golite::printer::print_file;

fn report(src: &str) -> gocc::PackageReport {
    let mut pkg = Package::from_source(src).expect("parse");
    analyze_package(&mut pkg, &AnalysisOptions::default())
}

fn diff_of(src: &str) -> String {
    let mut pkg = Package::from_source(src).expect("parse");
    let rep = analyze_package(&mut pkg, &AnalysisOptions::default());
    let file = &pkg.files[0];
    let transformed = transform_file(file, &pkg.info, 0, &rep.plans);
    unified_diff("a.go", "b.go", &print_file(file), &print_file(&transformed))
}

const PRELUDE: &str = r#"
package p

import "sync"

type C struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}
"#;

#[test]
fn listing1_basic_pair_is_transformed() {
    let src = format!(
        "{PRELUDE}
func (c *C) Inc() {{
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}}
"
    );
    let rep = report(&src);
    assert_eq!(rep.funnel.lock_points, 1);
    assert_eq!(rep.funnel.unlock_points, 1);
    assert_eq!(rep.funnel.candidate_pairs, 1);
    assert_eq!(rep.funnel.transformed, 1);
    assert_eq!(rep.funnel.dominance_violations, 0);
}

#[test]
fn listing7_defer_unlock_is_paired_and_kept_deferred() {
    let src = format!(
        "{PRELUDE}
func (c *C) Inc() {{
	defer c.mu.Unlock()
	c.mu.Lock()
	c.n++
}}
"
    );
    let rep = report(&src);
    assert_eq!(rep.funnel.transformed, 1, "funnel: {:?}", rep.funnel);
    assert_eq!(rep.funnel.transformed_deferred, 1);
    assert!(rep.plans[0].deferred);
}

#[test]
fn defer_with_multiple_returns_is_paired() {
    let src = format!(
        "{PRELUDE}
func (c *C) Get(k int) int {{
	c.mu.Lock()
	defer c.mu.Unlock()
	if k > 0 {{
		return k
	}}
	return c.n
}}
"
    );
    let rep = report(&src);
    assert_eq!(rep.funnel.transformed, 1, "funnel: {:?}", rep.funnel);
}

#[test]
fn io_inside_section_is_unfit() {
    let src = format!(
        "{PRELUDE}
func (c *C) Log() {{
	c.mu.Lock()
	fmt.Println(c.n)
	c.mu.Unlock()
}}
"
    );
    let rep = report(&src);
    assert_eq!(rep.funnel.candidate_pairs, 1);
    assert_eq!(rep.funnel.unfit_intra, 1);
    assert_eq!(rep.funnel.transformed, 0);
}

#[test]
fn io_in_callee_is_unfit_interproc() {
    let src = format!(
        "{PRELUDE}
func (c *C) Outer() {{
	c.mu.Lock()
	c.log()
	c.mu.Unlock()
}}

func (c *C) log() {{
	fmt.Println(c.n)
}}
"
    );
    let rep = report(&src);
    assert_eq!(rep.funnel.candidate_pairs, 1);
    assert_eq!(rep.funnel.unfit_interproc, 1);
    assert_eq!(rep.funnel.transformed, 0);
}

#[test]
fn listing3_nested_disjoint_locks_both_transform() {
    let src = format!(
        "{PRELUDE}
type D struct {{
	mu sync.Mutex
	m  int
}}

func pair(a *C, b *D) {{
	a.mu.Lock()
	b.mu.Lock()
	b.m++
	b.mu.Unlock()
	a.mu.Unlock()
}}
"
    );
    let rep = report(&src);
    assert_eq!(rep.funnel.candidate_pairs, 2, "funnel: {:?}", rep.funnel);
    assert_eq!(rep.funnel.transformed, 2);
    assert_eq!(rep.funnel.nested_alias_intra, 0);
}

#[test]
fn nested_aliasing_locks_inner_transforms_outer_rejected() {
    // Both a and b are *C receivers: their `mu` fields share one abstract
    // object, so the outer pair sees aliasing LU-points inside (Listing 3
    // with aliasing pointers).
    let src = format!(
        "{PRELUDE}
func pair(a *C, b *C) {{
	a.mu.Lock()
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	a.mu.Unlock()
}}
"
    );
    let rep = report(&src);
    assert_eq!(rep.funnel.candidate_pairs, 2, "funnel: {:?}", rep.funnel);
    assert_eq!(rep.funnel.transformed, 1, "inner pair only");
    assert_eq!(rep.funnel.nested_alias_intra, 1, "outer pair rejected");
}

#[test]
fn listing5_hand_over_hand_inner_pair_mispaired_by_design() {
    // The traversal's inner region pairs b.Lock() with a.Unlock(); GOCC
    // transforms it deliberately and relies on the runtime mismatch
    // recovery (§5.2.3). The outer pair is rejected by condition (3).
    let src = r#"
package p

import "sync"

type Node struct {
	mu   sync.Mutex
	next *Node
	val  int
}

func traverse(head *Node) {
	a := head
	a.mu.Lock()
	for a.next != nil {
		b := a.next
		b.mu.Lock()
		a.mu.Unlock()
		a = b
	}
	a.mu.Unlock()
}
"#;
    let rep = report(src);
    assert_eq!(rep.funnel.transformed, 1, "funnel: {:?}", rep.funnel);
    // The transformed pair is lock=b.Lock, unlock=a.Unlock (the loop-body
    // pair); the outer a.Lock/final a.Unlock is rejected for aliasing.
    assert_eq!(rep.funnel.nested_alias_intra, 1);
}

#[test]
fn lock_without_unlock_on_some_path_violates_dominance() {
    let src = format!(
        "{PRELUDE}
func (c *C) Maybe(x int) {{
	c.mu.Lock()
	if x > 0 {{
		c.mu.Unlock()
	}}
}}
"
    );
    let rep = report(&src);
    assert_eq!(rep.funnel.transformed, 0, "funnel: {:?}", rep.funnel);
    assert!(rep.funnel.dominance_violations >= 1);
}

#[test]
fn branch_balanced_unlocks_do_not_pair_under_dom_pdom() {
    // Appendix A, Listing 15: locks in both branches, unlocks in both
    // branches — correct code, but no single L dominates a U, so GOCC
    // conservatively skips it.
    let src = format!(
        "{PRELUDE}
func (c *C) Branchy(cond1 bool, cond2 bool) {{
	if cond1 {{
		c.mu.Lock()
	}} else {{
		c.mu.Lock()
	}}
	if cond2 {{
		c.mu.Unlock()
	}} else {{
		c.mu.Unlock()
	}}
}}
"
    );
    let rep = report(&src);
    assert_eq!(rep.funnel.transformed, 0, "funnel: {:?}", rep.funnel);
    assert!(rep.funnel.dominance_violations > 0);
}

#[test]
fn rwmutex_read_pair_is_read_elision() {
    let src = format!(
        "{PRELUDE}
func (c *C) Read() int {{
	c.rw.RLock()
	v := c.n
	c.rw.RUnlock()
	return v
}}
"
    );
    let rep = report(&src);
    assert_eq!(rep.funnel.transformed, 1, "funnel: {:?}", rep.funnel);
    assert!(rep.plans[0].read_elision);
    assert!(rep.plans[0].rw);
}

#[test]
fn anonymous_goroutine_pair_transforms_inside_closure() {
    let src = format!(
        "{PRELUDE}
func (c *C) Par() {{
	go func() {{
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}}()
}}
"
    );
    let rep = report(&src);
    assert_eq!(rep.funnel.transformed, 1, "funnel: {:?}", rep.funnel);
    assert!(
        rep.plans[0].unit.contains('$'),
        "pair lives in the closure unit"
    );
    // The OptiLock declaration must land inside the closure (Listing 14).
    let d = diff_of(&src);
    assert!(d.contains("optiLock1 := optilib.OptiLock{}"), "diff:\n{d}");
    assert!(d.contains("optiLock1.FastLock(&c.mu)"), "diff:\n{d}");
}

#[test]
fn multiple_defer_unlocks_discard_function() {
    let src = format!(
        "{PRELUDE}
func (c *C) Bad() {{
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rw.Lock()
	defer c.rw.Unlock()
	c.n++
}}
"
    );
    let rep = report(&src);
    assert_eq!(rep.funnel.discarded_multi_defer, 1);
    assert_eq!(rep.funnel.transformed, 0);
}

#[test]
fn channel_ops_inside_section_are_unfit() {
    let src = format!(
        "{PRELUDE}
func (c *C) Send(ch chan int) {{
	c.mu.Lock()
	ch <- c.n
	c.mu.Unlock()
}}
"
    );
    let rep = report(&src);
    assert_eq!(rep.funnel.unfit_intra, 1);
}

#[test]
fn profile_filter_marks_cold_pairs() {
    let src = format!(
        "{PRELUDE}
func (c *C) Hot() {{
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}}

func (c *C) Cold() {{
	c.mu.Lock()
	c.n--
	c.mu.Unlock()
}}
"
    );
    let profile =
        Profile::parse("total 1000000\nfunc C.Hot 100 500000\nfunc C.Cold 1 100\n").unwrap();
    let mut pkg = Package::from_source(&src).unwrap();
    let rep = analyze_package(
        &mut pkg,
        &AnalysisOptions {
            profile: Some(profile),
            hot_threshold: None,
        },
    );
    assert_eq!(rep.funnel.transformed, 2);
    assert_eq!(
        rep.funnel.transformed_hot, 1,
        "only the hot pair survives the filter"
    );
    let hot: Vec<_> = rep.hot_plans();
    assert_eq!(hot.len(), 1);
    assert_eq!(hot[0].unit, "C.Hot");
}

#[test]
fn transform_value_mutex_takes_address() {
    let src = format!(
        "{PRELUDE}
func (c *C) Inc() {{
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}}
"
    );
    let d = diff_of(&src);
    assert!(d.contains("+\toptiLock1.FastLock(&c.mu)"), "diff:\n{d}");
    assert!(d.contains("+\toptiLock1.FastUnlock(&c.mu)"), "diff:\n{d}");
    assert!(d.contains("-\tc.mu.Lock()"), "diff:\n{d}");
    assert!(d.contains("optilib"), "import added:\n{d}");
}

#[test]
fn transform_pointer_mutex_passes_as_is() {
    let src = r#"
package p

import "sync"

func work(m *sync.Mutex, n *int) {
	m.Lock()
	*n = *n + 1
	m.Unlock()
}
"#;
    let d = diff_of(src);
    assert!(d.contains("optiLock1.FastLock(m)"), "diff:\n{d}");
    assert!(
        !d.contains("FastLock(&m)"),
        "pointer receiver must pass as-is:\n{d}"
    );
}

#[test]
fn transform_anonymous_mutex_suffixes_access_path() {
    let src = r#"
package p

import "sync"

type Astruct struct {
	sync.Mutex
	val int
}

func bump(a *Astruct) {
	a.Lock()
	a.val++
	a.Unlock()
}
"#;
    let d = diff_of(src);
    assert!(
        d.contains("optiLock1.FastLock(&a.Mutex)"),
        "Listing 12 shape, got:\n{d}"
    );
}

#[test]
fn transform_defer_keeps_defer_keyword() {
    let src = format!(
        "{PRELUDE}
func (c *C) Get() int {{
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}}
"
    );
    let d = diff_of(&src);
    assert!(
        d.contains("+\tdefer optiLock1.FastUnlock(&c.mu)"),
        "diff:\n{d}"
    );
}

#[test]
fn rwmutex_write_pair_uses_fastlock() {
    let src = format!(
        "{PRELUDE}
func (c *C) Write() {{
	c.rw.Lock()
	c.n++
	c.rw.Unlock()
}}
"
    );
    let rep = report(&src);
    assert_eq!(rep.funnel.transformed, 1, "funnel: {:?}", rep.funnel);
    assert!(rep.plans[0].rw);
    assert!(!rep.plans[0].read_elision);
}

#[test]
fn loop_body_pair_transforms() {
    let src = format!(
        "{PRELUDE}
func (c *C) Hammer(iters int) {{
	for i := 0; i < iters; i++ {{
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}}
}}
"
    );
    let rep = report(&src);
    assert_eq!(rep.funnel.transformed, 1, "funnel: {:?}", rep.funnel);
}

#[test]
fn interprocedural_nested_alias_rejected() {
    let src = format!(
        "{PRELUDE}
func (c *C) Outer() {{
	c.mu.Lock()
	c.inner()
	c.mu.Unlock()
}}

func (c *C) inner() {{
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}}
"
    );
    let rep = report(&src);
    // inner's own pair transforms; Outer's pair must be rejected because
    // the callee locks the same mutex (would self-abort under flat
    // nesting... and deadlock under locks).
    assert_eq!(
        rep.funnel.nested_alias_interproc, 1,
        "funnel: {:?}",
        rep.funnel
    );
    assert_eq!(rep.funnel.transformed, 1);
}

#[test]
fn straight_line_sequence_splices_into_two_pairs() {
    // Appendix B: two back-to-back pairs on different mutexes in
    // straight-line code must both match.
    let src = format!(
        "{PRELUDE}
func (c *C) Two() {{
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.rw.Lock()
	c.n--
	c.rw.Unlock()
}}
"
    );
    let rep = report(&src);
    assert_eq!(rep.funnel.candidate_pairs, 2, "funnel: {:?}", rep.funnel);
    assert_eq!(rep.funnel.transformed, 2);
}

#[test]
fn sequential_pairs_same_mutex_both_match() {
    // Appendix B figure: consecutive LU pairs on the SAME mutex in
    // straight-line code splice into separate innermost pairs.
    let src = format!(
        "{PRELUDE}
func (c *C) TwoSame() {{
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.mu.Lock()
	c.n--
	c.mu.Unlock()
}}
"
    );
    let rep = report(&src);
    assert_eq!(rep.funnel.candidate_pairs, 2, "funnel: {:?}", rep.funnel);
    assert_eq!(rep.funnel.transformed, 2);
}
