//! Abstract syntax tree for the Go subset.
//!
//! Nodes carry [`Span`]s so the analyzer can report positions and the
//! transformer can anchor its rewrites. Expression nodes also carry a
//! stable [`NodeId`] assigned by the parser; the analyzer keys facts (e.g.
//! "this call is a lock-point") by `NodeId`, and the transformer finds the
//! nodes again by the same id — the same role `go/ast` node identity plays
//! for GOCC.

use crate::token::Span;

/// A stable identity for an expression or statement node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// A parsed source file.
#[derive(Clone, Debug)]
pub struct File {
    /// `package` name.
    pub package: String,
    /// Import paths.
    pub imports: Vec<String>,
    /// Top-level declarations.
    pub decls: Vec<Decl>,
}

/// A top-level declaration.
#[derive(Clone, Debug)]
pub enum Decl {
    /// `func` declaration (possibly a method).
    Func(FuncDecl),
    /// `type Name struct {...}` declaration.
    TypeStruct(StructDecl),
    /// `var name T = expr` at package scope.
    Var(VarDecl),
    /// `const name = expr` at package scope.
    Const(VarDecl),
}

/// A struct type declaration.
#[derive(Clone, Debug)]
pub struct StructDecl {
    /// Type name.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<Field>,
    /// Source span of the declaration.
    pub span: Span,
}

/// One struct field (or parameter).
#[derive(Clone, Debug)]
pub struct Field {
    /// Field name; `None` for embedded (anonymous) fields, whose name is
    /// the base name of the type (`sync.Mutex` embeds as `Mutex`).
    pub name: Option<String>,
    /// Field type.
    pub ty: Type,
}

impl Field {
    /// The name the field is accessed by: explicit, or the embedded type's
    /// base name.
    #[must_use]
    pub fn access_name(&self) -> &str {
        match &self.name {
            Some(n) => n,
            None => self.ty.base_name(),
        }
    }

    /// Whether this is an embedded (anonymous) field.
    #[must_use]
    pub fn is_embedded(&self) -> bool {
        self.name.is_none()
    }
}

/// A package- or function-level `var`/`const` declaration.
#[derive(Clone, Debug)]
pub struct VarDecl {
    /// Declared names.
    pub names: Vec<String>,
    /// Declared type, if present.
    pub ty: Option<Type>,
    /// Initializer expressions, if present.
    pub values: Vec<Expr>,
    /// Source span.
    pub span: Span,
}

/// A function or method declaration.
#[derive(Clone, Debug)]
pub struct FuncDecl {
    /// Function name.
    pub name: String,
    /// Method receiver, if any.
    pub recv: Option<Receiver>,
    /// Parameters.
    pub params: Vec<Field>,
    /// Result types.
    pub results: Vec<Type>,
    /// Body block.
    pub body: Block,
    /// Source span of the whole declaration.
    pub span: Span,
}

/// A method receiver.
#[derive(Clone, Debug)]
pub struct Receiver {
    /// Receiver variable name.
    pub name: String,
    /// Receiver base type name.
    pub type_name: String,
    /// Whether the receiver is a pointer (`*T`).
    pub pointer: bool,
}

/// Types in the subset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Type {
    /// Named type, possibly qualified (`sync.Mutex`).
    Named { pkg: Option<String>, name: String },
    /// `*T`.
    Pointer(Box<Type>),
    /// `[]T`.
    Slice(Box<Type>),
    /// `[N]T` (length erased).
    Array(Box<Type>),
    /// `map[K]V`.
    Map(Box<Type>, Box<Type>),
    /// `chan T`.
    Chan(Box<Type>),
    /// `func(...) ...` (signature erased).
    Func,
    /// `interface{}` (erased).
    Interface,
    /// Inline `struct{...}` (fields erased; named structs are declared).
    Struct,
}

impl Type {
    /// The base identifier of a (possibly pointered) named type, used for
    /// embedded-field access names.
    #[must_use]
    pub fn base_name(&self) -> &str {
        match self {
            Type::Named { name, .. } => name,
            Type::Pointer(inner) => inner.base_name(),
            _ => "",
        }
    }

    /// Whether the type is `sync.Mutex` / `sync.RWMutex` (or a pointer to
    /// one).
    #[must_use]
    pub fn is_mutex(&self) -> bool {
        match self {
            Type::Named { pkg, name } => {
                pkg.as_deref() == Some("sync") && (name == "Mutex" || name == "RWMutex")
            }
            Type::Pointer(inner) => inner.is_mutex(),
            _ => false,
        }
    }

    /// Whether the type is `sync.RWMutex` (or a pointer to one).
    #[must_use]
    pub fn is_rwmutex(&self) -> bool {
        match self {
            Type::Named { pkg, name } => pkg.as_deref() == Some("sync") && name == "RWMutex",
            Type::Pointer(inner) => inner.is_rwmutex(),
            _ => false,
        }
    }
}

/// A `{}` block of statements.
#[derive(Clone, Debug)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Source span.
    pub span: Span,
}

/// Statements.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// Local `var` declaration.
    Var(VarDecl),
    /// `lhs := rhs` or `lhs = rhs` (also `+=` etc., operator erased to
    /// plain assignment for analysis purposes — the RHS keeps the reads).
    Assign {
        /// Left-hand sides.
        lhs: Vec<Expr>,
        /// Right-hand sides.
        rhs: Vec<Expr>,
        /// Whether this is a short variable declaration (`:=`).
        define: bool,
        /// Node identity.
        id: NodeId,
        /// Source span.
        span: Span,
    },
    /// A bare expression statement (usually a call).
    Expr(Expr),
    /// `x++` / `x--`.
    IncDec {
        /// Target expression.
        target: Expr,
        /// `true` for `++`.
        inc: bool,
        /// Source span.
        span: Span,
    },
    /// `if init; cond { } else { }`.
    If {
        /// Optional init statement.
        init: Option<Box<Stmt>>,
        /// Condition.
        cond: Expr,
        /// Then block.
        then: Block,
        /// Optional else branch (block or another `if`).
        els: Option<Box<Stmt>>,
        /// Source span.
        span: Span,
    },
    /// A bare `{ ... }` block.
    Block(Block),
    /// `for init; cond; post { }` (any part optional) or `for range`.
    For {
        /// Optional init statement.
        init: Option<Box<Stmt>>,
        /// Optional condition.
        cond: Option<Expr>,
        /// Optional post statement.
        post: Option<Box<Stmt>>,
        /// Optional `range` subject (`for k, v := range expr`).
        range_over: Option<Expr>,
        /// Range binding names, if a range loop.
        range_vars: Vec<String>,
        /// Loop body.
        body: Block,
        /// Source span.
        span: Span,
    },
    /// `switch cond { case ...: }` — cases flattened for analysis.
    Switch {
        /// Optional scrutinee.
        cond: Option<Expr>,
        /// Case bodies (conditions erased; every case is may-taken).
        cases: Vec<(Vec<Expr>, Block)>,
        /// Whether a `default:` case exists.
        has_default: bool,
        /// Source span.
        span: Span,
    },
    /// `select { ... }` — retained only as an HTM-unfriendly marker.
    Select {
        /// Case bodies.
        cases: Vec<Block>,
        /// Source span.
        span: Span,
    },
    /// `return exprs`.
    Return {
        /// Returned expressions.
        values: Vec<Expr>,
        /// Source span.
        span: Span,
    },
    /// `break`.
    Break(Span),
    /// `continue`.
    Continue(Span),
    /// `defer call`.
    Defer {
        /// The deferred call.
        call: Expr,
        /// Node identity (the defer site).
        id: NodeId,
        /// Source span.
        span: Span,
    },
    /// `go call` (goroutine launch).
    Go {
        /// The launched call.
        call: Expr,
        /// Source span.
        span: Span,
    },
    /// `ch <- v` (send) — HTM-unfriendly marker.
    Send {
        /// Channel expression.
        chan: Expr,
        /// Sent value.
        value: Expr,
        /// Source span.
        span: Span,
    },
}

impl Stmt {
    /// The statement's source span.
    #[must_use]
    pub fn span(&self) -> Span {
        match self {
            Stmt::Var(v) => v.span,
            Stmt::Assign { span, .. }
            | Stmt::IncDec { span, .. }
            | Stmt::If { span, .. }
            | Stmt::For { span, .. }
            | Stmt::Switch { span, .. }
            | Stmt::Select { span, .. }
            | Stmt::Return { span, .. }
            | Stmt::Defer { span, .. }
            | Stmt::Go { span, .. }
            | Stmt::Send { span, .. } => *span,
            Stmt::Expr(e) => e.span(),
            Stmt::Block(b) => b.span,
            Stmt::Break(s) | Stmt::Continue(s) => *s,
        }
    }
}

/// Expressions.
#[derive(Clone, Debug)]
pub enum Expr {
    /// Identifier.
    Ident {
        /// Name.
        name: String,
        /// Node identity.
        id: NodeId,
        /// Source span.
        span: Span,
    },
    /// Integer literal.
    Int {
        /// Value.
        value: i64,
        /// Source span.
        span: Span,
    },
    /// Float literal.
    Float {
        /// Value.
        value: f64,
        /// Source span.
        span: Span,
    },
    /// String literal.
    Str {
        /// Value.
        value: String,
        /// Source span.
        span: Span,
    },
    /// Bool literal (parsed from `true`/`false` idents at analysis level —
    /// kept as idents; this variant exists for completeness of printing).
    Bool {
        /// Value.
        value: bool,
        /// Source span.
        span: Span,
    },
    /// `base.field` selection.
    Selector {
        /// Base expression.
        base: Box<Expr>,
        /// Selected field/method name.
        field: String,
        /// Node identity.
        id: NodeId,
        /// Source span.
        span: Span,
    },
    /// `f(args...)`.
    Call {
        /// Callee (ident or selector, typically).
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
        /// Node identity — the analyzer keys lock/unlock points by this.
        id: NodeId,
        /// Source span.
        span: Span,
    },
    /// `base[index]`.
    Index {
        /// Base expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// Unary operation (`-x`, `!x`, `&x`, `*x`, `<-ch`).
    Unary {
        /// Operator lexeme.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
        /// Node identity.
        id: NodeId,
        /// Source span.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// Operator lexeme (as written, e.g. `+`, `&&`).
        op: String,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// Composite literal `T{elems...}`.
    Composite {
        /// The literal's type.
        ty: Type,
        /// Element expressions (`key: value` pairs flattened; keys kept).
        elems: Vec<(Option<String>, Expr)>,
        /// Node identity (an allocation site for points-to).
        id: NodeId,
        /// Source span.
        span: Span,
    },
    /// A type used in expression position (e.g. the first argument of
    /// `make(map[string]Item, n)`).
    TypeLit {
        /// The denoted type.
        ty: Type,
        /// Source span.
        span: Span,
    },
    /// Function literal (closure / anonymous function).
    FuncLit {
        /// Parameters.
        params: Vec<Field>,
        /// Result types.
        results: Vec<Type>,
        /// Body.
        body: Box<Block>,
        /// Node identity.
        id: NodeId,
        /// Source span.
        span: Span,
    },
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
    /// Address-of.
    Addr,
    /// Pointer dereference.
    Deref,
    /// Channel receive.
    Recv,
    /// Bitwise complement (`^x`).
    BitNot,
}

impl Expr {
    /// The expression's source span.
    #[must_use]
    pub fn span(&self) -> Span {
        match self {
            Expr::Ident { span, .. }
            | Expr::Int { span, .. }
            | Expr::Float { span, .. }
            | Expr::Str { span, .. }
            | Expr::Bool { span, .. }
            | Expr::Selector { span, .. }
            | Expr::Call { span, .. }
            | Expr::Index { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Composite { span, .. }
            | Expr::TypeLit { span, .. }
            | Expr::FuncLit { span, .. } => *span,
        }
    }

    /// The node id, for expression kinds that carry one.
    #[must_use]
    pub fn id(&self) -> Option<NodeId> {
        match self {
            Expr::Ident { id, .. }
            | Expr::Selector { id, .. }
            | Expr::Call { id, .. }
            | Expr::Unary { id, .. }
            | Expr::Composite { id, .. }
            | Expr::FuncLit { id, .. } => Some(*id),
            _ => None,
        }
    }

    /// If this is `recv.method(...)`, returns `(receiver-expr, method)`.
    #[must_use]
    pub fn as_method_call(&self) -> Option<(&Expr, &str)> {
        if let Expr::Call { callee, .. } = self {
            if let Expr::Selector { base, field, .. } = callee.as_ref() {
                return Some((base.as_ref(), field.as_str()));
            }
        }
        None
    }
}

/// File-level helpers.
impl File {
    /// Iterates over all function declarations (not closures).
    pub fn funcs(&self) -> impl Iterator<Item = &FuncDecl> {
        self.decls.iter().filter_map(|d| match d {
            Decl::Func(f) => Some(f),
            _ => None,
        })
    }

    /// Finds a struct declaration by name.
    #[must_use]
    pub fn find_struct(&self, name: &str) -> Option<&StructDecl> {
        self.decls.iter().find_map(|d| match d {
            Decl::TypeStruct(s) if s.name == name => Some(s),
            _ => None,
        })
    }
}
