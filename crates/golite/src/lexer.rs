//! Tokenizer with Go's automatic semicolon insertion.

use std::fmt;

use crate::token::{Span, Tok, Token};

/// A lexical error with its byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the source.
    pub offset: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Streaming tokenizer for the Go subset.
pub struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    last: Option<Tok>,
}

impl<'s> Lexer<'s> {
    /// Creates a lexer over `src`.
    #[must_use]
    pub fn new(src: &'s str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            last: None,
        }
    }

    /// Tokenizes the whole input, appending a final [`Tok::Eof`].
    pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
        let mut lexer = Lexer::new(src);
        let mut out = Vec::new();
        loop {
            let t = lexer.next_token()?;
            let done = t.tok == Tok::Eof;
            out.push(t);
            if done {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek();
        self.pos += 1;
        b
    }

    fn error(&self, message: impl Into<String>) -> LexError {
        LexError {
            message: message.into(),
            offset: self.pos as u32,
        }
    }

    /// Skips whitespace and comments; returns `true` if a newline (or a
    /// comment containing one) was crossed, for semicolon insertion.
    fn skip_trivia(&mut self) -> Result<bool, LexError> {
        let mut newline = false;
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' => {
                    self.pos += 1;
                }
                b'\n' => {
                    self.pos += 1;
                    newline = true;
                }
                b'/' if self.peek2() == b'/' => {
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        self.pos += 1;
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        if self.pos + 1 >= self.src.len() {
                            return Err(LexError {
                                message: "unterminated block comment".into(),
                                offset: start as u32,
                            });
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.pos += 2;
                            break;
                        }
                        if self.peek() == b'\n' {
                            newline = true;
                        }
                        self.pos += 1;
                    }
                }
                _ => return Ok(newline),
            }
        }
    }

    /// Produces the next token, applying automatic semicolon insertion.
    pub fn next_token(&mut self) -> Result<Token, LexError> {
        let before = self.pos;
        let newline = self.skip_trivia()?;
        if newline
            || (self.pos >= self.src.len() && before < self.pos || self.pos >= self.src.len())
        {
            // Insert a semicolon at a newline (or EOF) when the previous
            // token allows it.
            let eligible = self.last.as_ref().map(Tok::triggers_asi).unwrap_or(false);
            if eligible && (newline || self.pos >= self.src.len()) {
                self.last = Some(Tok::Semi);
                let at = self.pos as u32;
                return Ok(Token {
                    tok: Tok::Semi,
                    span: Span::new(at, at),
                });
            }
        }
        if self.pos >= self.src.len() {
            return Ok(Token {
                tok: Tok::Eof,
                span: Span::new(self.pos as u32, self.pos as u32),
            });
        }
        let start = self.pos as u32;
        let tok = self.scan()?;
        self.last = Some(tok.clone());
        Ok(Token {
            tok,
            span: Span::new(start, self.pos as u32),
        })
    }

    fn scan(&mut self) -> Result<Tok, LexError> {
        let c = self.peek();
        match c {
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => Ok(self.scan_word()),
            b'0'..=b'9' => self.scan_number(),
            b'"' => self.scan_string(),
            b'`' => self.scan_raw_string(),
            b'\'' => self.scan_rune(),
            _ => self.scan_operator(),
        }
    }

    fn scan_word(&mut self) -> Tok {
        let start = self.pos;
        while matches!(self.peek(), b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_') {
            self.pos += 1;
        }
        let word = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii word");
        Tok::from_word(word)
    }

    fn scan_number(&mut self) -> Result<Tok, LexError> {
        let start = self.pos;
        if self.peek() == b'0' && matches!(self.peek2(), b'x' | b'X') {
            self.pos += 2;
            let digits = self.pos;
            while self.peek().is_ascii_hexdigit() || self.peek() == b'_' {
                self.pos += 1;
            }
            let text: String = std::str::from_utf8(&self.src[digits..self.pos])
                .expect("ascii")
                .chars()
                .filter(|&ch| ch != '_')
                .collect();
            let v = i64::from_str_radix(&text, 16)
                .map_err(|e| self.error(format!("bad hex literal: {e}")))?;
            return Ok(Tok::Int(v));
        }
        while self.peek().is_ascii_digit() || self.peek() == b'_' {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == b'.' && self.peek2().is_ascii_digit() {
            is_float = true;
            self.pos += 1;
            while self.peek().is_ascii_digit() {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), b'e' | b'E') {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), b'+' | b'-') {
                self.pos += 1;
            }
            while self.peek().is_ascii_digit() {
                self.pos += 1;
            }
        }
        let text: String = std::str::from_utf8(&self.src[start..self.pos])
            .expect("ascii")
            .chars()
            .filter(|&ch| ch != '_')
            .collect();
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|e| self.error(format!("bad float: {e}")))?;
            Ok(Tok::Float(v))
        } else {
            let v: i64 = text
                .parse()
                .map_err(|e| self.error(format!("bad int: {e}")))?;
            Ok(Tok::Int(v))
        }
    }

    fn scan_string(&mut self) -> Result<Tok, LexError> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            if self.pos >= self.src.len() {
                return Err(LexError {
                    message: "unterminated string".into(),
                    offset: start as u32,
                });
            }
            match self.bump() {
                b'"' => return Ok(Tok::Str(out)),
                b'\\' => {
                    let esc = self.bump();
                    out.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        b'\\' => '\\',
                        b'"' => '"',
                        b'\'' => '\'',
                        b'0' => '\0',
                        other => {
                            return Err(self.error(format!("unknown escape \\{}", other as char)))
                        }
                    });
                }
                b'\n' => {
                    return Err(LexError {
                        message: "newline in string".into(),
                        offset: start as u32,
                    })
                }
                other => out.push(other as char),
            }
        }
    }

    fn scan_raw_string(&mut self) -> Result<Tok, LexError> {
        let start = self.pos;
        self.pos += 1; // backquote
        let begin = self.pos;
        while self.pos < self.src.len() && self.peek() != b'`' {
            self.pos += 1;
        }
        if self.pos >= self.src.len() {
            return Err(LexError {
                message: "unterminated raw string".into(),
                offset: start as u32,
            });
        }
        let text = std::str::from_utf8(&self.src[begin..self.pos])
            .map_err(|_| self.error("invalid utf-8 in raw string"))?
            .to_string();
        self.pos += 1; // closing backquote
        Ok(Tok::Str(text))
    }

    fn scan_rune(&mut self) -> Result<Tok, LexError> {
        self.pos += 1; // opening quote
        let c = match self.bump() {
            b'\\' => match self.bump() {
                b'n' => '\n',
                b't' => '\t',
                b'\\' => '\\',
                b'\'' => '\'',
                b'0' => '\0',
                other => return Err(self.error(format!("unknown rune escape \\{}", other as char))),
            },
            other => other as char,
        };
        if self.bump() != b'\'' {
            return Err(self.error("unterminated rune literal"));
        }
        Ok(Tok::Rune(c))
    }

    fn scan_operator(&mut self) -> Result<Tok, LexError> {
        macro_rules! two {
            ($second:literal, $long:expr, $short:expr) => {{
                self.pos += 1;
                if self.peek() == $second {
                    self.pos += 1;
                    $long
                } else {
                    $short
                }
            }};
        }
        let tok = match self.peek() {
            b'+' => {
                self.pos += 1;
                match self.peek() {
                    b'+' => {
                        self.pos += 1;
                        Tok::Inc
                    }
                    b'=' => {
                        self.pos += 1;
                        Tok::PlusEq
                    }
                    _ => Tok::Plus,
                }
            }
            b'-' => {
                self.pos += 1;
                match self.peek() {
                    b'-' => {
                        self.pos += 1;
                        Tok::Dec
                    }
                    b'=' => {
                        self.pos += 1;
                        Tok::MinusEq
                    }
                    _ => Tok::Minus,
                }
            }
            b'*' => two!(b'=', Tok::StarEq, Tok::Star),
            b'/' => two!(b'=', Tok::SlashEq, Tok::Slash),
            b'%' => two!(b'=', Tok::PercentEq, Tok::Percent),
            b'^' => two!(b'=', Tok::CaretEq, Tok::Caret),
            b'&' => {
                self.pos += 1;
                match self.peek() {
                    b'&' => {
                        self.pos += 1;
                        Tok::LAnd
                    }
                    b'=' => {
                        self.pos += 1;
                        Tok::AmpEq
                    }
                    b'^' => {
                        self.pos += 1;
                        if self.peek() == b'=' {
                            self.pos += 1;
                            Tok::AndNotEq
                        } else {
                            Tok::AndNot
                        }
                    }
                    _ => Tok::Amp,
                }
            }
            b'|' => {
                self.pos += 1;
                match self.peek() {
                    b'|' => {
                        self.pos += 1;
                        Tok::LOr
                    }
                    b'=' => {
                        self.pos += 1;
                        Tok::PipeEq
                    }
                    _ => Tok::Pipe,
                }
            }
            b'<' => {
                self.pos += 1;
                match self.peek() {
                    b'-' => {
                        self.pos += 1;
                        Tok::Arrow
                    }
                    b'=' => {
                        self.pos += 1;
                        Tok::Le
                    }
                    b'<' => {
                        self.pos += 1;
                        if self.peek() == b'=' {
                            self.pos += 1;
                            Tok::ShlEq
                        } else {
                            Tok::Shl
                        }
                    }
                    _ => Tok::Lt,
                }
            }
            b'>' => {
                self.pos += 1;
                match self.peek() {
                    b'=' => {
                        self.pos += 1;
                        Tok::Ge
                    }
                    b'>' => {
                        self.pos += 1;
                        if self.peek() == b'=' {
                            self.pos += 1;
                            Tok::ShrEq
                        } else {
                            Tok::Shr
                        }
                    }
                    _ => Tok::Gt,
                }
            }
            b'=' => two!(b'=', Tok::EqEq, Tok::Assign),
            b'!' => two!(b'=', Tok::NotEq, Tok::Not),
            b':' => two!(b'=', Tok::Define, Tok::Colon),
            b'.' => {
                self.pos += 1;
                if self.peek() == b'.' && self.peek2() == b'.' {
                    self.pos += 2;
                    Tok::Ellipsis
                } else {
                    Tok::Period
                }
            }
            b'(' => {
                self.pos += 1;
                Tok::LParen
            }
            b')' => {
                self.pos += 1;
                Tok::RParen
            }
            b'[' => {
                self.pos += 1;
                Tok::LBracket
            }
            b']' => {
                self.pos += 1;
                Tok::RBracket
            }
            b'{' => {
                self.pos += 1;
                Tok::LBrace
            }
            b'}' => {
                self.pos += 1;
                Tok::RBrace
            }
            b',' => {
                self.pos += 1;
                Tok::Comma
            }
            b';' => {
                self.pos += 1;
                Tok::Semi
            }
            other => return Err(self.error(format!("unexpected character {:?}", other as char))),
        };
        Ok(tok)
    }
}

/// Maps byte offsets to 1-based line numbers.
#[derive(Debug)]
pub struct LineMap {
    line_starts: Vec<u32>,
}

impl LineMap {
    /// Builds a line map for `src`.
    #[must_use]
    pub fn new(src: &str) -> Self {
        let mut line_starts = vec![0];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        LineMap { line_starts }
    }

    /// 1-based line containing byte `offset`.
    #[must_use]
    pub fn line_of(&self, offset: u32) -> u32 {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i as u32 + 1,
            Err(i) => i as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        Lexer::tokenize(src)
            .unwrap()
            .into_iter()
            .map(|t| t.tok)
            .collect()
    }

    #[test]
    fn lock_call_sequence() {
        assert_eq!(
            toks("m.Lock()"),
            vec![
                Tok::Ident("m".into()),
                Tok::Period,
                Tok::Ident("Lock".into()),
                Tok::LParen,
                Tok::RParen,
                Tok::Semi, // ASI at EOF
                Tok::Eof
            ]
        );
    }

    #[test]
    fn semicolon_insertion_at_newline() {
        let t = toks("x := 1\ny := 2\n");
        let semis = t.iter().filter(|t| **t == Tok::Semi).count();
        assert_eq!(semis, 2);
    }

    #[test]
    fn no_asi_after_operators() {
        // A binary expression split across lines must not get a semicolon.
        let t = toks("x := 1 +\n2\n");
        let idx_plus = t.iter().position(|t| *t == Tok::Plus).unwrap();
        assert_ne!(t[idx_plus + 1], Tok::Semi);
    }

    #[test]
    fn comments_are_skipped_but_newlines_count() {
        let t = toks("x := 1 // trailing\ny := 2");
        assert!(t.contains(&Tok::Semi));
        let t2 = toks("x := 1 /* block\ncomment */ \ny := 2");
        assert_eq!(t2.iter().filter(|t| **t == Tok::Semi).count(), 2);
    }

    #[test]
    fn string_escapes() {
        assert_eq!(toks(r#""a\nb""#)[0], Tok::Str("a\nb".into()));
        assert_eq!(toks("`raw\\n`")[0], Tok::Str("raw\\n".into()));
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42")[0], Tok::Int(42));
        assert_eq!(toks("0x1F")[0], Tok::Int(31));
        assert_eq!(toks("3.5")[0], Tok::Float(3.5));
        assert_eq!(toks("1_000")[0], Tok::Int(1000));
    }

    #[test]
    fn compound_operators() {
        assert_eq!(
            toks("a &^= b <<= <- ... :=")[..7],
            [
                Tok::Ident("a".into()),
                Tok::AndNotEq,
                Tok::Ident("b".into()),
                Tok::ShlEq,
                Tok::Arrow,
                Tok::Ellipsis,
                Tok::Define,
            ]
        );
    }

    #[test]
    fn line_map() {
        let lm = LineMap::new("a\nbb\nccc\n");
        assert_eq!(lm.line_of(0), 1);
        assert_eq!(lm.line_of(2), 2);
        assert_eq!(lm.line_of(3), 2);
        assert_eq!(lm.line_of(5), 3);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(Lexer::tokenize("\"abc").is_err());
        assert!(Lexer::tokenize("/* abc").is_err());
    }
}
