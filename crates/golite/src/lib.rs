//! `golite`: a from-scratch frontend for a representative subset of Go.
//!
//! GOCC consumes Go source, analyzes it (CFG/SSA-level) and emits a source
//! patch (AST-level). The original implementation leans on `go/ast`,
//! `go/types` and `golang.org/x/tools`; this crate rebuilds the pieces the
//! paper's analyses require:
//!
//! * [`lexer`] — tokenizer with Go's automatic semicolon insertion;
//! * [`ast`] + [`parser`] — positions-carrying syntax tree covering the
//!   constructs §5.2–§5.3 care about: methods with pointer/value receivers,
//!   structs with embedded (anonymous) fields, closures and anonymous
//!   goroutines, `defer`, `go`, channels and `select` (as HTM-unfriendly
//!   markers), `sync.Mutex`/`sync.RWMutex` usage in all syntactic forms;
//! * [`printer`] — a `gofmt`-flavored pretty printer so transformed files
//!   serialize back to reviewable source;
//! * [`types`] — a pragmatic type resolver: enough inference to answer the
//!   transformer's questions (is this receiver a Mutex value or pointer?
//!   is the mutex an anonymous field? what struct does this selector chain
//!   land in?).
//!
//! The subset excludes generics, full interface dispatch, and goroutine
//! scheduling semantics — none of which the paper's analysis depends on.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod token;
pub mod types;

pub use ast::File;
pub use lexer::{LexError, Lexer};
pub use parser::{parse_file, ParseError};
pub use printer::print_file;
pub use types::TypeInfo;
