//! Recursive-descent parser for the Go subset.

use std::fmt;

use crate::ast::{
    Block, Decl, Expr, Field, File, FuncDecl, NodeId, Receiver, Stmt, StructDecl, Type, UnaryOp,
    VarDecl,
};
use crate::lexer::Lexer;
use crate::token::{Span, Tok, Token};

/// A parse error with location.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the source.
    pub offset: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a whole source file.
pub fn parse_file(src: &str) -> Result<File, ParseError> {
    let tokens = Lexer::tokenize(src).map_err(|e| ParseError {
        message: e.message,
        offset: e.offset,
    })?;
    Parser::new(tokens).file()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_id: u32,
    /// Depth of contexts (if/for/switch headers) where a bare `{` starts a
    /// block, not a composite literal.
    no_lit_depth: u32,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            next_id: 0,
            no_lit_depth: 0,
        }
    }

    fn id(&mut self) -> NodeId {
        self.next_id += 1;
        NodeId(self.next_id)
    }

    fn peek(&self) -> &Tok {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].tok
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].tok
    }

    fn span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1).min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Tok) -> Result<Span, ParseError> {
        if self.peek() == tok {
            Ok(self.bump().span)
        } else {
            Err(self.error(format!("expected `{tok}`, found `{}`", self.peek())))
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.span().start,
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(self.error(format!("expected identifier, found `{other}`"))),
        }
    }

    fn skip_semis(&mut self) {
        while self.eat(&Tok::Semi) {}
    }

    // ----- file structure ---------------------------------------------

    fn file(&mut self) -> Result<File, ParseError> {
        self.skip_semis();
        self.expect(&Tok::Package)?;
        let package = self.ident()?;
        self.skip_semis();
        let mut imports = Vec::new();
        while self.peek() == &Tok::Import {
            self.bump();
            if self.eat(&Tok::LParen) {
                self.skip_semis();
                while self.peek() != &Tok::RParen {
                    // Optional import alias.
                    if matches!(self.peek(), Tok::Ident(_)) {
                        self.bump();
                    }
                    match self.bump().tok {
                        Tok::Str(path) => imports.push(path),
                        other => return Err(self.error(format!("bad import: `{other}`"))),
                    }
                    self.skip_semis();
                }
                self.expect(&Tok::RParen)?;
            } else {
                if matches!(self.peek(), Tok::Ident(_)) {
                    self.bump();
                }
                match self.bump().tok {
                    Tok::Str(path) => imports.push(path),
                    other => return Err(self.error(format!("bad import: `{other}`"))),
                }
            }
            self.skip_semis();
        }
        let mut decls = Vec::new();
        loop {
            self.skip_semis();
            match self.peek() {
                Tok::Eof => break,
                Tok::Func => decls.push(Decl::Func(self.func_decl()?)),
                Tok::Type => {
                    if let Some(s) = self.type_decl()? {
                        decls.push(Decl::TypeStruct(s));
                    }
                }
                Tok::Var => {
                    self.bump();
                    decls.push(Decl::Var(self.var_body()?));
                }
                Tok::Const => {
                    self.bump();
                    if self.eat(&Tok::LParen) {
                        self.skip_semis();
                        while self.peek() != &Tok::RParen {
                            decls.push(Decl::Const(self.var_body()?));
                            self.skip_semis();
                        }
                        self.expect(&Tok::RParen)?;
                    } else {
                        decls.push(Decl::Const(self.var_body()?));
                    }
                }
                other => return Err(self.error(format!("unexpected top-level token `{other}`"))),
            }
        }
        Ok(File {
            package,
            imports,
            decls,
        })
    }

    fn type_decl(&mut self) -> Result<Option<StructDecl>, ParseError> {
        let start = self.expect(&Tok::Type)?;
        let name = self.ident()?;
        if self.peek() == &Tok::Struct {
            self.bump();
            let fields = self.struct_fields()?;
            let span = start.merge(self.prev_span());
            return Ok(Some(StructDecl { name, fields, span }));
        }
        // Non-struct type aliases: parse and discard the underlying type.
        let _ = self.parse_type()?;
        Ok(None)
    }

    fn struct_fields(&mut self) -> Result<Vec<Field>, ParseError> {
        self.expect(&Tok::LBrace)?;
        let mut fields = Vec::new();
        self.skip_semis();
        while self.peek() != &Tok::RBrace {
            // Either `name1, name2 T` or an embedded type.
            let mut names = Vec::new();
            let embedded = if matches!(self.peek(), Tok::Ident(_))
                && !matches!(
                    self.peek2(),
                    Tok::Period | Tok::Semi | Tok::RBrace | Tok::Str(_)
                ) {
                // Named field(s).
                names.push(self.ident()?);
                while self.eat(&Tok::Comma) {
                    names.push(self.ident()?);
                }
                false
            } else {
                true
            };
            let ty = self.parse_type()?;
            // Optional struct tag.
            if matches!(self.peek(), Tok::Str(_)) {
                self.bump();
            }
            if embedded {
                fields.push(Field { name: None, ty });
            } else {
                for n in names {
                    fields.push(Field {
                        name: Some(n),
                        ty: ty.clone(),
                    });
                }
            }
            self.skip_semis();
        }
        self.expect(&Tok::RBrace)?;
        Ok(fields)
    }

    fn var_body(&mut self) -> Result<VarDecl, ParseError> {
        let start = self.span();
        let mut names = vec![self.ident()?];
        while self.eat(&Tok::Comma) {
            names.push(self.ident()?);
        }
        let ty = if !matches!(
            self.peek(),
            Tok::Assign | Tok::Semi | Tok::RParen | Tok::Eof
        ) {
            Some(self.parse_type()?)
        } else {
            None
        };
        let mut values = Vec::new();
        if self.eat(&Tok::Assign) {
            values.push(self.expr()?);
            while self.eat(&Tok::Comma) {
                values.push(self.expr()?);
            }
        }
        let span = start.merge(self.prev_span());
        Ok(VarDecl {
            names,
            ty,
            values,
            span,
        })
    }

    fn func_decl(&mut self) -> Result<FuncDecl, ParseError> {
        let start = self.expect(&Tok::Func)?;
        let recv = if self.peek() == &Tok::LParen {
            self.bump();
            let name = self.ident()?;
            let pointer = self.eat(&Tok::Star);
            let type_name = self.ident()?;
            self.expect(&Tok::RParen)?;
            Some(Receiver {
                name,
                type_name,
                pointer,
            })
        } else {
            None
        };
        let name = self.ident()?;
        let params = self.params()?;
        let results = self.results()?;
        let body = self.block()?;
        let span = start.merge(self.prev_span());
        Ok(FuncDecl {
            name,
            recv,
            params,
            results,
            body,
            span,
        })
    }

    fn params(&mut self) -> Result<Vec<Field>, ParseError> {
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        while self.peek() != &Tok::RParen {
            // `name T` or `name1, name2 T`; unnamed parameter types are
            // also accepted (e.g. in func types), in which case we invent
            // no name and record only the type.
            let mut names = Vec::new();
            loop {
                if matches!(self.peek(), Tok::Ident(_))
                    && matches!(
                        self.peek2(),
                        Tok::Comma
                            | Tok::Ident(_)
                            | Tok::Star
                            | Tok::LBracket
                            | Tok::Map
                            | Tok::Chan
                            | Tok::Func
                            | Tok::Interface
                            | Tok::Struct
                            | Tok::Ellipsis
                    )
                {
                    names.push(self.ident()?);
                    if self.eat(&Tok::Comma) {
                        continue;
                    }
                }
                break;
            }
            // Variadic marker.
            let _ = self.eat(&Tok::Ellipsis);
            let ty = self.parse_type()?;
            if names.is_empty() {
                params.push(Field { name: None, ty });
            } else {
                for n in names {
                    params.push(Field {
                        name: Some(n),
                        ty: ty.clone(),
                    });
                }
            }
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(params)
    }

    fn results(&mut self) -> Result<Vec<Type>, ParseError> {
        match self.peek() {
            Tok::LBrace | Tok::Semi | Tok::Eof => Ok(Vec::new()),
            Tok::LParen => {
                self.bump();
                let mut results = Vec::new();
                while self.peek() != &Tok::RParen {
                    // Accept `name T` result pairs by skipping the name.
                    if matches!(self.peek(), Tok::Ident(_))
                        && matches!(
                            self.peek2(),
                            Tok::Ident(_) | Tok::Star | Tok::LBracket | Tok::Map | Tok::Chan
                        )
                    {
                        self.bump();
                    }
                    results.push(self.parse_type()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::RParen)?;
                Ok(results)
            }
            _ => Ok(vec![self.parse_type()?]),
        }
    }

    // ----- types --------------------------------------------------------

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        match self.peek().clone() {
            Tok::Star => {
                self.bump();
                Ok(Type::Pointer(Box::new(self.parse_type()?)))
            }
            Tok::LBracket => {
                self.bump();
                if self.eat(&Tok::RBracket) {
                    Ok(Type::Slice(Box::new(self.parse_type()?)))
                } else {
                    // Array length expression: consume until `]`.
                    let mut depth = 0;
                    loop {
                        match self.peek() {
                            Tok::LBracket => depth += 1,
                            Tok::RBracket if depth == 0 => break,
                            Tok::RBracket => depth -= 1,
                            Tok::Eof => return Err(self.error("unterminated array type")),
                            _ => {}
                        }
                        self.bump();
                    }
                    self.expect(&Tok::RBracket)?;
                    Ok(Type::Array(Box::new(self.parse_type()?)))
                }
            }
            Tok::Map => {
                self.bump();
                self.expect(&Tok::LBracket)?;
                let k = self.parse_type()?;
                self.expect(&Tok::RBracket)?;
                let v = self.parse_type()?;
                Ok(Type::Map(Box::new(k), Box::new(v)))
            }
            Tok::Chan => {
                self.bump();
                let _ = self.eat(&Tok::Arrow);
                Ok(Type::Chan(Box::new(self.parse_type()?)))
            }
            Tok::Arrow => {
                self.bump();
                self.expect(&Tok::Chan)?;
                Ok(Type::Chan(Box::new(self.parse_type()?)))
            }
            Tok::Func => {
                self.bump();
                let _ = self.params()?;
                let _ = match self.peek() {
                    Tok::LBrace
                    | Tok::Semi
                    | Tok::RParen
                    | Tok::RBrace
                    | Tok::Comma
                    | Tok::Eof
                    | Tok::Str(_) => Vec::new(),
                    _ => self.results()?,
                };
                Ok(Type::Func)
            }
            Tok::Interface => {
                self.bump();
                self.expect(&Tok::LBrace)?;
                let mut depth = 1;
                while depth > 0 {
                    match self.bump().tok {
                        Tok::LBrace => depth += 1,
                        Tok::RBrace => depth -= 1,
                        Tok::Eof => return Err(self.error("unterminated interface type")),
                        _ => {}
                    }
                }
                Ok(Type::Interface)
            }
            Tok::Struct => {
                self.bump();
                let _ = self.struct_fields()?;
                Ok(Type::Struct)
            }
            Tok::Ident(first) => {
                self.bump();
                if self.peek() == &Tok::Period && matches!(self.peek2(), Tok::Ident(_)) {
                    self.bump();
                    let name = self.ident()?;
                    Ok(Type::Named {
                        pkg: Some(first),
                        name,
                    })
                } else {
                    Ok(Type::Named {
                        pkg: None,
                        name: first,
                    })
                }
            }
            other => Err(self.error(format!("expected type, found `{other}`"))),
        }
    }

    // ----- statements ---------------------------------------------------

    fn block(&mut self) -> Result<Block, ParseError> {
        let start = self.expect(&Tok::LBrace)?;
        // Inside braces, composite literals are unrestricted again.
        let saved = std::mem::take(&mut self.no_lit_depth);
        let mut stmts = Vec::new();
        self.skip_semis();
        while self.peek() != &Tok::RBrace {
            stmts.push(self.stmt()?);
            self.skip_semis();
        }
        let end = self.expect(&Tok::RBrace)?;
        self.no_lit_depth = saved;
        Ok(Block {
            stmts,
            span: start.merge(end),
        })
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            Tok::Var => {
                self.bump();
                Ok(Stmt::Var(self.var_body()?))
            }
            Tok::Const => {
                self.bump();
                Ok(Stmt::Var(self.var_body()?))
            }
            Tok::Return => {
                let start = self.bump().span;
                let mut values = Vec::new();
                if !matches!(self.peek(), Tok::Semi | Tok::RBrace) {
                    values.push(self.expr()?);
                    while self.eat(&Tok::Comma) {
                        values.push(self.expr()?);
                    }
                }
                Ok(Stmt::Return {
                    values,
                    span: start.merge(self.prev_span()),
                })
            }
            Tok::Break => {
                let s = self.bump().span;
                // Optional label.
                if matches!(self.peek(), Tok::Ident(_)) {
                    self.bump();
                }
                Ok(Stmt::Break(s))
            }
            Tok::Continue => {
                let s = self.bump().span;
                if matches!(self.peek(), Tok::Ident(_)) {
                    self.bump();
                }
                Ok(Stmt::Continue(s))
            }
            Tok::Defer => {
                let start = self.bump().span;
                let call = self.expr()?;
                let id = self.id();
                Ok(Stmt::Defer {
                    call,
                    id,
                    span: start.merge(self.prev_span()),
                })
            }
            Tok::Go => {
                let start = self.bump().span;
                let call = self.expr()?;
                Ok(Stmt::Go {
                    call,
                    span: start.merge(self.prev_span()),
                })
            }
            Tok::If => self.if_stmt(),
            Tok::For => self.for_stmt(),
            Tok::Switch => self.switch_stmt(),
            Tok::Select => self.select_stmt(),
            Tok::LBrace => Ok(Stmt::Block(self.block()?)),
            _ => self.simple_stmt(),
        }
    }

    fn simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.span();
        let first = self.expr()?;
        match self.peek().clone() {
            Tok::Inc | Tok::Dec => {
                let inc = self.bump().tok == Tok::Inc;
                Ok(Stmt::IncDec {
                    target: first,
                    inc,
                    span: start.merge(self.prev_span()),
                })
            }
            Tok::Arrow => {
                self.bump();
                let value = self.expr()?;
                Ok(Stmt::Send {
                    chan: first,
                    value,
                    span: start.merge(self.prev_span()),
                })
            }
            Tok::Define
            | Tok::Assign
            | Tok::PlusEq
            | Tok::MinusEq
            | Tok::StarEq
            | Tok::SlashEq
            | Tok::PercentEq
            | Tok::AmpEq
            | Tok::PipeEq
            | Tok::CaretEq
            | Tok::ShlEq
            | Tok::ShrEq
            | Tok::AndNotEq
            | Tok::Comma => {
                let mut lhs = vec![first];
                while self.eat(&Tok::Comma) {
                    lhs.push(self.expr()?);
                }
                let define = match self.bump().tok {
                    Tok::Define => true,
                    Tok::Assign
                    | Tok::PlusEq
                    | Tok::MinusEq
                    | Tok::StarEq
                    | Tok::SlashEq
                    | Tok::PercentEq
                    | Tok::AmpEq
                    | Tok::PipeEq
                    | Tok::CaretEq
                    | Tok::ShlEq
                    | Tok::ShrEq
                    | Tok::AndNotEq => false,
                    other => {
                        return Err(self.error(format!("expected assignment, found `{other}`")))
                    }
                };
                let mut rhs = vec![self.expr()?];
                while self.eat(&Tok::Comma) {
                    rhs.push(self.expr()?);
                }
                let id = self.id();
                Ok(Stmt::Assign {
                    lhs,
                    rhs,
                    define,
                    id,
                    span: start.merge(self.prev_span()),
                })
            }
            _ => Ok(Stmt::Expr(first)),
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.expect(&Tok::If)?;
        self.no_lit_depth += 1;
        let first = self.simple_stmt()?;
        let (init, cond) = if self.eat(&Tok::Semi) {
            let cond = self.expr()?;
            (Some(Box::new(first)), cond)
        } else {
            match first {
                Stmt::Expr(e) => (None, e),
                other => {
                    return Err(ParseError {
                        message: "if condition must be an expression".into(),
                        offset: other.span().start,
                    })
                }
            }
        };
        self.no_lit_depth -= 1;
        let then = self.block()?;
        let els = if self.eat(&Tok::Else) {
            if self.peek() == &Tok::If {
                Some(Box::new(self.if_stmt()?))
            } else {
                Some(Box::new(Stmt::Block(self.block()?)))
            }
        } else {
            None
        };
        Ok(Stmt::If {
            init,
            cond,
            then,
            els,
            span: start.merge(self.prev_span()),
        })
    }

    fn for_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.expect(&Tok::For)?;
        self.no_lit_depth += 1;
        // Infinite loop: `for { }`.
        if self.peek() == &Tok::LBrace {
            self.no_lit_depth -= 1;
            let body = self.block()?;
            return Ok(Stmt::For {
                init: None,
                cond: None,
                post: None,
                range_over: None,
                range_vars: Vec::new(),
                body,
                span: start.merge(self.prev_span()),
            });
        }
        // `for range expr` / `for k, v := range expr`.
        if self.peek() == &Tok::Range {
            self.bump();
            let over = self.expr()?;
            self.no_lit_depth -= 1;
            let body = self.block()?;
            return Ok(Stmt::For {
                init: None,
                cond: None,
                post: None,
                range_over: Some(over),
                range_vars: Vec::new(),
                body,
                span: start.merge(self.prev_span()),
            });
        }
        // Detect `k := range e` / `k, v := range e` by scanning ahead for
        // `range` after a define/assign.
        if let Some(range_stmt) = self.try_range_header()? {
            self.no_lit_depth -= 1;
            let body = self.block()?;
            let (range_vars, over) = range_stmt;
            return Ok(Stmt::For {
                init: None,
                cond: None,
                post: None,
                range_over: Some(over),
                range_vars,
                body,
                span: start.merge(self.prev_span()),
            });
        }
        let first = if self.peek() == &Tok::Semi {
            None
        } else {
            Some(self.simple_stmt()?)
        };
        if self.eat(&Tok::Semi) {
            // Three-clause for.
            let cond = if self.peek() == &Tok::Semi {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect(&Tok::Semi)?;
            let post = if self.peek() == &Tok::LBrace {
                None
            } else {
                Some(Box::new(self.simple_stmt()?))
            };
            self.no_lit_depth -= 1;
            let body = self.block()?;
            Ok(Stmt::For {
                init: first.map(Box::new),
                cond,
                post,
                range_over: None,
                range_vars: Vec::new(),
                body,
                span: start.merge(self.prev_span()),
            })
        } else {
            // Condition-only loop: `for cond { }`.
            let cond = match first {
                Some(Stmt::Expr(e)) => Some(e),
                None => None,
                Some(other) => {
                    return Err(ParseError {
                        message: "for condition must be an expression".into(),
                        offset: other.span().start,
                    })
                }
            };
            self.no_lit_depth -= 1;
            let body = self.block()?;
            Ok(Stmt::For {
                init: None,
                cond,
                post: None,
                range_over: None,
                range_vars: Vec::new(),
                body,
                span: start.merge(self.prev_span()),
            })
        }
    }

    /// Looks ahead for `ident [, ident] := range` and parses it if present.
    fn try_range_header(&mut self) -> Result<Option<(Vec<String>, Expr)>, ParseError> {
        let save = self.pos;
        let mut vars = Vec::new();
        loop {
            match self.peek().clone() {
                Tok::Ident(name) => {
                    self.bump();
                    vars.push(name);
                }
                _ => {
                    self.pos = save;
                    return Ok(None);
                }
            }
            if self.eat(&Tok::Comma) {
                continue;
            }
            break;
        }
        if !(self.eat(&Tok::Define) || self.eat(&Tok::Assign)) || self.peek() != &Tok::Range {
            self.pos = save;
            return Ok(None);
        }
        self.bump(); // range
        let over = self.expr()?;
        Ok(Some((vars, over)))
    }

    fn switch_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.expect(&Tok::Switch)?;
        self.no_lit_depth += 1;
        let cond = if self.peek() == &Tok::LBrace {
            None
        } else {
            Some(self.expr()?)
        };
        self.no_lit_depth -= 1;
        self.expect(&Tok::LBrace)?;
        let mut cases = Vec::new();
        let mut has_default = false;
        self.skip_semis();
        while self.peek() != &Tok::RBrace {
            let mut guards = Vec::new();
            if self.eat(&Tok::Case) {
                guards.push(self.expr()?);
                while self.eat(&Tok::Comma) {
                    guards.push(self.expr()?);
                }
            } else if self.eat(&Tok::Default) {
                has_default = true;
            } else {
                return Err(self.error("expected `case` or `default`"));
            }
            self.expect(&Tok::Colon)?;
            let mut stmts = Vec::new();
            self.skip_semis();
            while !matches!(self.peek(), Tok::Case | Tok::Default | Tok::RBrace) {
                stmts.push(self.stmt()?);
                self.skip_semis();
            }
            let span = stmts.first().map(Stmt::span).unwrap_or_else(|| self.span());
            cases.push((guards, Block { stmts, span }));
        }
        let end = self.expect(&Tok::RBrace)?;
        Ok(Stmt::Switch {
            cond,
            cases,
            has_default,
            span: start.merge(end),
        })
    }

    fn select_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.expect(&Tok::Select)?;
        self.expect(&Tok::LBrace)?;
        let mut cases = Vec::new();
        self.skip_semis();
        while self.peek() != &Tok::RBrace {
            if self.eat(&Tok::Case) {
                // Communication clause: a simple statement (send/receive).
                let _ = self.simple_stmt()?;
            } else if !self.eat(&Tok::Default) {
                return Err(self.error("expected `case` or `default` in select"));
            }
            self.expect(&Tok::Colon)?;
            let mut stmts = Vec::new();
            self.skip_semis();
            while !matches!(self.peek(), Tok::Case | Tok::Default | Tok::RBrace) {
                stmts.push(self.stmt()?);
                self.skip_semis();
            }
            let span = stmts.first().map(Stmt::span).unwrap_or_else(|| self.span());
            cases.push(Block { stmts, span });
        }
        let end = self.expect(&Tok::RBrace)?;
        Ok(Stmt::Select {
            cases,
            span: start.merge(end),
        })
    }

    // ----- expressions ---------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.binary_expr(0)
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut left = self.unary_expr()?;
        loop {
            let (prec, op) = match self.peek() {
                Tok::LOr => (1, "||"),
                Tok::LAnd => (2, "&&"),
                Tok::EqEq => (3, "=="),
                Tok::NotEq => (3, "!="),
                Tok::Lt => (3, "<"),
                Tok::Le => (3, "<="),
                Tok::Gt => (3, ">"),
                Tok::Ge => (3, ">="),
                Tok::Plus => (4, "+"),
                Tok::Minus => (4, "-"),
                Tok::Pipe => (4, "|"),
                Tok::Caret => (4, "^"),
                Tok::Star => (5, "*"),
                Tok::Slash => (5, "/"),
                Tok::Percent => (5, "%"),
                Tok::Shl => (5, "<<"),
                Tok::Shr => (5, ">>"),
                Tok::Amp => (5, "&"),
                Tok::AndNot => (5, "&^"),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let right = self.binary_expr(prec + 1)?;
            let span = left.span().merge(right.span());
            left = Expr::Binary {
                op: op.to_string(),
                left: Box::new(left),
                right: Box::new(right),
                span,
            };
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.span();
        let op = match self.peek() {
            Tok::Minus => Some(UnaryOp::Neg),
            Tok::Not => Some(UnaryOp::Not),
            Tok::Amp => Some(UnaryOp::Addr),
            Tok::Star => Some(UnaryOp::Deref),
            Tok::Arrow => Some(UnaryOp::Recv),
            Tok::Caret => Some(UnaryOp::BitNot),
            Tok::Plus => {
                self.bump();
                return self.unary_expr();
            }
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary_expr()?;
            let id = self.id();
            let span = start.merge(operand.span());
            return Ok(Expr::Unary {
                op,
                operand: Box::new(operand),
                id,
                span,
            });
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.operand()?;
        loop {
            match self.peek() {
                Tok::Period => {
                    self.bump();
                    let field = self.ident()?;
                    let id = self.id();
                    let span = expr.span().merge(self.prev_span());
                    expr = Expr::Selector {
                        base: Box::new(expr),
                        field,
                        id,
                        span,
                    };
                }
                Tok::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    while self.peek() != &Tok::RParen {
                        // Composite literals are fine inside call parens.
                        let saved = std::mem::take(&mut self.no_lit_depth);
                        let arg = self.expr();
                        self.no_lit_depth = saved;
                        args.push(arg?);
                        let _ = self.eat(&Tok::Ellipsis);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    let end = self.expect(&Tok::RParen)?;
                    let id = self.id();
                    let span = expr.span().merge(end);
                    expr = Expr::Call {
                        callee: Box::new(expr),
                        args,
                        id,
                        span,
                    };
                }
                Tok::LBracket => {
                    self.bump();
                    let saved = std::mem::take(&mut self.no_lit_depth);
                    // Index or slice expression a[lo:hi]; we flatten slices
                    // into Index on the low bound for analysis purposes.
                    let index = if self.peek() == &Tok::Colon {
                        Expr::Int {
                            value: 0,
                            span: self.span(),
                        }
                    } else {
                        self.expr()?
                    };
                    if self.eat(&Tok::Colon) {
                        if !matches!(self.peek(), Tok::RBracket) {
                            let _ = self.expr()?;
                        }
                        if self.eat(&Tok::Colon) && !matches!(self.peek(), Tok::RBracket) {
                            let _ = self.expr()?;
                        }
                    }
                    self.no_lit_depth = saved;
                    let end = self.expect(&Tok::RBracket)?;
                    let span = expr.span().merge(end);
                    expr = Expr::Index {
                        base: Box::new(expr),
                        index: Box::new(index),
                        span,
                    };
                }
                Tok::LBrace if self.no_lit_depth == 0 && is_type_expr(&expr) => {
                    // Composite literal of a named type.
                    let ty = expr_to_type(&expr);
                    let elems = self.composite_body()?;
                    let id = self.id();
                    let span = expr.span().merge(self.prev_span());
                    expr = Expr::Composite {
                        ty,
                        elems,
                        id,
                        span,
                    };
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn composite_body(&mut self) -> Result<Vec<(Option<String>, Expr)>, ParseError> {
        self.expect(&Tok::LBrace)?;
        let saved = std::mem::take(&mut self.no_lit_depth);
        let mut elems = Vec::new();
        self.skip_semis();
        while self.peek() != &Tok::RBrace {
            // `key: value` or bare value. Keys may be identifiers or
            // literal expressions (map literals); only ident keys are kept.
            let key = if matches!(self.peek(), Tok::Ident(_)) && self.peek2() == &Tok::Colon {
                let k = self.ident()?;
                self.expect(&Tok::Colon)?;
                Some(k)
            } else {
                let checkpoint = self.pos;
                let e = self.expr()?;
                if self.eat(&Tok::Colon) {
                    // Non-ident key (e.g. string); value follows.
                    let _ = e;
                    None
                } else {
                    self.pos = checkpoint;
                    None
                }
            };
            let value = if self.peek() == &Tok::LBrace {
                // Nested untyped composite element `{...}`.
                let elems = self.composite_body()?;
                let id = self.id();
                Expr::Composite {
                    ty: Type::Struct,
                    elems,
                    id,
                    span: self.prev_span(),
                }
            } else {
                self.expr()?
            };
            elems.push((key, value));
            self.skip_semis();
            if !self.eat(&Tok::Comma) {
                self.skip_semis();
                if self.peek() != &Tok::RBrace {
                    continue;
                }
                break;
            }
            self.skip_semis();
        }
        self.expect(&Tok::RBrace)?;
        self.no_lit_depth = saved;
        Ok(elems)
    }

    fn operand(&mut self) -> Result<Expr, ParseError> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                let id = self.id();
                match name.as_str() {
                    "true" => Ok(Expr::Bool { value: true, span }),
                    "false" => Ok(Expr::Bool { value: false, span }),
                    _ => Ok(Expr::Ident { name, id, span }),
                }
            }
            Tok::Int(value) => {
                self.bump();
                Ok(Expr::Int { value, span })
            }
            Tok::Float(value) => {
                self.bump();
                Ok(Expr::Float { value, span })
            }
            Tok::Str(value) => {
                self.bump();
                Ok(Expr::Str { value, span })
            }
            Tok::Rune(value) => {
                self.bump();
                Ok(Expr::Int {
                    value: value as i64,
                    span,
                })
            }
            Tok::LParen => {
                self.bump();
                let saved = std::mem::take(&mut self.no_lit_depth);
                let inner = self.expr()?;
                self.no_lit_depth = saved;
                self.expect(&Tok::RParen)?;
                Ok(inner)
            }
            Tok::Func => {
                self.bump();
                let params = self.params()?;
                let results = match self.peek() {
                    Tok::LBrace => Vec::new(),
                    _ => self.results()?,
                };
                let saved = std::mem::take(&mut self.no_lit_depth);
                let body = self.block()?;
                self.no_lit_depth = saved;
                let id = self.id();
                Ok(Expr::FuncLit {
                    params,
                    results,
                    body: Box::new(body),
                    id,
                    span: span.merge(self.prev_span()),
                })
            }
            Tok::LBracket | Tok::Map => {
                // Slice/map composite literal or conversion: `[]T{...}`.
                let ty = self.parse_type()?;
                if self.peek() == &Tok::LBrace {
                    let elems = self.composite_body()?;
                    let id = self.id();
                    Ok(Expr::Composite {
                        ty,
                        elems,
                        id,
                        span: span.merge(self.prev_span()),
                    })
                } else if self.peek() == &Tok::LParen {
                    // Conversion like []byte(s): treat as a call on a
                    // synthetic identifier.
                    self.bump();
                    let arg = self.expr()?;
                    let end = self.expect(&Tok::RParen)?;
                    let tid = self.id();
                    let id = self.id();
                    Ok(Expr::Call {
                        callee: Box::new(Expr::Ident {
                            name: "byteslice".into(),
                            id: tid,
                            span,
                        }),
                        args: vec![arg],
                        id,
                        span: span.merge(end),
                    })
                } else {
                    // A bare type in expression position (make/new args).
                    Ok(Expr::TypeLit {
                        ty,
                        span: span.merge(self.prev_span()),
                    })
                }
            }
            Tok::Chan => {
                let ty = self.parse_type()?;
                Ok(Expr::TypeLit {
                    ty,
                    span: span.merge(self.prev_span()),
                })
            }
            other => Err(self.error(format!("unexpected token `{other}` in expression"))),
        }
    }
}

/// Whether an expression can syntactically denote a type in a composite
/// literal head (identifier or qualified identifier).
fn is_type_expr(e: &Expr) -> bool {
    match e {
        Expr::Ident { name, .. } => name.chars().next().is_some_and(char::is_alphabetic),
        Expr::Selector { base, .. } => matches!(base.as_ref(), Expr::Ident { .. }),
        _ => false,
    }
}

fn expr_to_type(e: &Expr) -> Type {
    match e {
        Expr::Ident { name, .. } => Type::Named {
            pkg: None,
            name: name.clone(),
        },
        Expr::Selector { base, field, .. } => {
            if let Expr::Ident { name, .. } = base.as_ref() {
                Type::Named {
                    pkg: Some(name.clone()),
                    name: field.clone(),
                }
            } else {
                Type::Struct
            }
        }
        _ => Type::Struct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> File {
        parse_file(src).unwrap_or_else(|e| panic!("parse failed: {e}\nsource:\n{src}"))
    }

    #[test]
    fn minimal_file() {
        let f = parse("package main\n\nfunc main() {\n}\n");
        assert_eq!(f.package, "main");
        assert_eq!(f.funcs().count(), 1);
    }

    #[test]
    fn imports_single_and_grouped() {
        let f =
            parse("package p\nimport \"sync\"\nimport (\n\t\"fmt\"\n\tio \"os\"\n)\nfunc f() {}\n");
        assert_eq!(f.imports, vec!["sync", "fmt", "os"]);
    }

    #[test]
    fn struct_with_mutex_and_embedded() {
        let src = r#"
package p

import "sync"

type Counter struct {
	mu    sync.Mutex
	n     int
	cache map[string]int
}

type Anon struct {
	*sync.Mutex
	val int
}
"#;
        let f = parse(src);
        let c = f.find_struct("Counter").unwrap();
        assert_eq!(c.fields.len(), 3);
        assert!(c.fields[0].ty.is_mutex());
        assert!(!c.fields[0].is_embedded());
        let a = f.find_struct("Anon").unwrap();
        assert!(a.fields[0].is_embedded());
        assert_eq!(a.fields[0].access_name(), "Mutex");
        assert!(a.fields[0].ty.is_mutex());
    }

    #[test]
    fn method_with_lock_unlock() {
        let src = r#"
package p

import "sync"

type C struct {
	mu sync.Mutex
	n  int
}

func (c *C) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}
"#;
        let f = parse(src);
        let inc = f.funcs().find(|fd| fd.name == "Inc").unwrap();
        let recv = inc.recv.as_ref().unwrap();
        assert!(recv.pointer);
        assert_eq!(recv.type_name, "C");
        assert_eq!(inc.body.stmts.len(), 3);
        if let Stmt::Expr(call) = &inc.body.stmts[0] {
            let (base, method) = call.as_method_call().unwrap();
            assert_eq!(method, "Lock");
            assert!(matches!(base, Expr::Selector { field, .. } if field == "mu"));
        } else {
            panic!("expected expression statement");
        }
    }

    #[test]
    fn defer_unlock() {
        let src = "package p\nfunc f() {\n\tm.Lock()\n\tdefer m.Unlock()\n\twork()\n}\n";
        let f = parse(src);
        let fd = f.funcs().next().unwrap();
        assert!(matches!(fd.body.stmts[1], Stmt::Defer { .. }));
    }

    #[test]
    fn if_else_chain_and_init() {
        let src = r#"
package p
func f(x int) int {
	if v := g(); v > 0 {
		return v
	} else if x == 2 {
		return 2
	} else {
		return 0
	}
}
"#;
        let f = parse(src);
        let fd = f.funcs().next().unwrap();
        if let Stmt::If { init, els, .. } = &fd.body.stmts[0] {
            assert!(init.is_some());
            assert!(els.is_some());
        } else {
            panic!("expected if");
        }
    }

    #[test]
    fn for_forms() {
        let src = r#"
package p
func f(xs []int, m map[string]int) {
	for {
		break
	}
	for i := 0; i < 10; i++ {
		use(i)
	}
	for len(xs) > 0 {
		xs = xs[1:]
	}
	for k, v := range m {
		use2(k, v)
	}
	for range xs {
		tick()
	}
}
"#;
        let f = parse(src);
        let fd = f.funcs().next().unwrap();
        assert_eq!(fd.body.stmts.len(), 5);
        let ranges = fd
            .body
            .stmts
            .iter()
            .filter(|s| {
                matches!(
                    s,
                    Stmt::For {
                        range_over: Some(_),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(ranges, 2);
    }

    #[test]
    fn anonymous_goroutine() {
        let src = r#"
package p
func f() {
	go func() {
		m.Lock()
		n++
		m.Unlock()
	}()
}
"#;
        let f = parse(src);
        let fd = f.funcs().next().unwrap();
        if let Stmt::Go { call, .. } = &fd.body.stmts[0] {
            if let Expr::Call { callee, .. } = call {
                assert!(matches!(callee.as_ref(), Expr::FuncLit { .. }));
            } else {
                panic!("expected call of func literal");
            }
        } else {
            panic!("expected go statement");
        }
    }

    #[test]
    fn composite_literals() {
        let src = r#"
package p
func f() {
	a := Point{x: 1, y: 2}
	b := sync.Mutex{}
	c := []int{1, 2, 3}
	d := map[string]int{"k": 1}
	use(a, b, c, d)
}
"#;
        let f = parse(src);
        assert_eq!(f.funcs().count(), 1);
    }

    #[test]
    fn no_composite_lit_in_if_condition() {
        // `p == q` followed by a block: the `{` must open the block.
        let src = "package p\nfunc f(p int, q int) {\n\tif p == q {\n\t\twork()\n\t}\n}\n";
        parse(src);
    }

    #[test]
    fn switch_and_select() {
        let src = r#"
package p
func f(x int, ch chan int) {
	switch x {
	case 1, 2:
		one()
	default:
		other()
	}
	select {
	case v := <-ch:
		use(v)
	default:
		none()
	}
}
"#;
        let f = parse(src);
        let fd = f.funcs().next().unwrap();
        assert!(matches!(
            fd.body.stmts[0],
            Stmt::Switch {
                has_default: true,
                ..
            }
        ));
        assert!(matches!(fd.body.stmts[1], Stmt::Select { .. }));
    }

    #[test]
    fn hand_over_hand_shape() {
        let src = r#"
package p
func traverse(head *Node) {
	a := head
	a.mu.Lock()
	for a.next != nil {
		b := a.next
		b.mu.Lock()
		a.mu.Unlock()
		a = b
	}
	a.mu.Unlock()
}
"#;
        parse(src);
    }

    #[test]
    fn operator_precedence() {
        let src = "package p\nfunc f() int {\n\treturn 1 + 2*3\n}\n";
        let f = parse(src);
        let fd = f.funcs().next().unwrap();
        if let Stmt::Return { values, .. } = &fd.body.stmts[0] {
            if let Expr::Binary { op, right, .. } = &values[0] {
                assert_eq!(op, "+");
                assert!(matches!(right.as_ref(), Expr::Binary { op, .. } if op == "*"));
            } else {
                panic!("expected binary expression");
            }
        }
    }

    #[test]
    fn channel_ops() {
        let src = "package p\nfunc f(ch chan int) {\n\tch <- 1\n\tv := <-ch\n\tuse(v)\n}\n";
        let f = parse(src);
        let fd = f.funcs().next().unwrap();
        assert!(matches!(fd.body.stmts[0], Stmt::Send { .. }));
    }

    #[test]
    fn var_decls_and_consts() {
        let src = r#"
package p

var global int = 3

const (
	a = 1
	b = 2
)

var m sync.Mutex

func f() {
	var local, other string
	use(local, other)
}
"#;
        let f = parse(src);
        assert!(f.decls.iter().any(|d| matches!(d, Decl::Var(_))));
        assert!(f.decls.iter().any(|d| matches!(d, Decl::Const(_))));
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = parse_file("package p\nfunc f() { if }").unwrap_err();
        assert!(err.offset > 0);
    }
}
