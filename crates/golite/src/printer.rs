//! A `gofmt`-flavored pretty printer.
//!
//! The transformer rewrites the AST and serializes it back to source with
//! this printer, the way GOCC uses Go's `format` package (§5.3). Output is
//! deterministic: tabs for indentation, one statement per line, canonical
//! spacing — so diffs between the printed original and the printed
//! transformed file contain exactly the transformation.

use crate::ast::{
    Block, Decl, Expr, Field, File, FuncDecl, Stmt, StructDecl, Type, UnaryOp, VarDecl,
};

/// Prints a whole file.
#[must_use]
pub fn print_file(file: &File) -> String {
    let mut p = Printer::default();
    p.file(file);
    p.out
}

/// Prints a single statement (diagnostics, tests).
#[must_use]
pub fn print_stmt(stmt: &Stmt) -> String {
    let mut p = Printer::default();
    p.stmt(stmt);
    p.out.trim_end().to_string()
}

/// Prints a single expression.
#[must_use]
pub fn print_expr(expr: &Expr) -> String {
    let mut p = Printer::default();
    p.expr(expr);
    p.out
}

/// Prints a type.
#[must_use]
pub fn print_type(ty: &Type) -> String {
    let mut p = Printer::default();
    p.ty(ty);
    p.out
}

#[derive(Default)]
struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn nl(&mut self) {
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push('\t');
        }
    }

    fn file(&mut self, f: &File) {
        self.out.push_str("package ");
        self.out.push_str(&f.package);
        self.out.push('\n');
        if !f.imports.is_empty() {
            self.out.push('\n');
            if f.imports.len() == 1 {
                self.out.push_str(&format!("import \"{}\"\n", f.imports[0]));
            } else {
                self.out.push_str("import (\n");
                for imp in &f.imports {
                    self.out.push_str(&format!("\t\"{imp}\"\n"));
                }
                self.out.push_str(")\n");
            }
        }
        for d in &f.decls {
            self.out.push('\n');
            match d {
                Decl::Func(fd) => self.func_decl(fd),
                Decl::TypeStruct(sd) => self.struct_decl(sd),
                Decl::Var(vd) => {
                    self.out.push_str("var ");
                    self.var_body(vd);
                    self.out.push('\n');
                }
                Decl::Const(vd) => {
                    self.out.push_str("const ");
                    self.var_body(vd);
                    self.out.push('\n');
                }
            }
        }
    }

    fn struct_decl(&mut self, sd: &StructDecl) {
        self.out.push_str(&format!("type {} struct {{", sd.name));
        self.indent += 1;
        for field in &sd.fields {
            self.nl();
            if let Some(n) = &field.name {
                self.out.push_str(n);
                self.out.push(' ');
            }
            self.ty(&field.ty);
        }
        self.indent -= 1;
        self.nl();
        self.out.push_str("}\n");
    }

    fn var_body(&mut self, vd: &VarDecl) {
        self.out.push_str(&vd.names.join(", "));
        if let Some(ty) = &vd.ty {
            self.out.push(' ');
            self.ty(ty);
        }
        if !vd.values.is_empty() {
            self.out.push_str(" = ");
            for (i, v) in vd.values.iter().enumerate() {
                if i > 0 {
                    self.out.push_str(", ");
                }
                self.expr(v);
            }
        }
    }

    fn func_decl(&mut self, fd: &FuncDecl) {
        self.out.push_str("func ");
        if let Some(recv) = &fd.recv {
            self.out.push('(');
            self.out.push_str(&recv.name);
            self.out.push(' ');
            if recv.pointer {
                self.out.push('*');
            }
            self.out.push_str(&recv.type_name);
            self.out.push_str(") ");
        }
        self.out.push_str(&fd.name);
        self.params(&fd.params);
        self.results(&fd.results);
        self.out.push(' ');
        self.block(&fd.body);
        self.out.push('\n');
    }

    fn params(&mut self, params: &[Field]) {
        self.out.push('(');
        for (i, p) in params.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            if let Some(n) = &p.name {
                self.out.push_str(n);
                self.out.push(' ');
            }
            self.ty(&p.ty);
        }
        self.out.push(')');
    }

    fn results(&mut self, results: &[Type]) {
        match results {
            [] => {}
            [one] => {
                self.out.push(' ');
                self.ty(one);
            }
            many => {
                self.out.push_str(" (");
                for (i, t) in many.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.ty(t);
                }
                self.out.push(')');
            }
        }
    }

    fn ty(&mut self, ty: &Type) {
        match ty {
            Type::Named { pkg, name } => {
                if let Some(p) = pkg {
                    self.out.push_str(p);
                    self.out.push('.');
                }
                self.out.push_str(name);
            }
            Type::Pointer(inner) => {
                self.out.push('*');
                self.ty(inner);
            }
            Type::Slice(inner) => {
                self.out.push_str("[]");
                self.ty(inner);
            }
            Type::Array(inner) => {
                // Array lengths are erased in the subset's type model.
                self.out.push_str("[0]");
                self.ty(inner);
            }
            Type::Map(k, v) => {
                self.out.push_str("map[");
                self.ty(k);
                self.out.push(']');
                self.ty(v);
            }
            Type::Chan(inner) => {
                self.out.push_str("chan ");
                self.ty(inner);
            }
            Type::Func => self.out.push_str("func()"),
            Type::Interface => self.out.push_str("interface{}"),
            Type::Struct => self.out.push_str("struct{}"),
        }
    }

    fn block(&mut self, b: &Block) {
        self.out.push('{');
        self.indent += 1;
        for s in &b.stmts {
            self.nl();
            self.stmt(s);
        }
        self.indent -= 1;
        self.nl();
        self.out.push('}');
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Var(vd) => {
                self.out.push_str("var ");
                self.var_body(vd);
            }
            Stmt::Assign {
                lhs, rhs, define, ..
            } => {
                for (i, e) in lhs.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(e);
                }
                self.out.push_str(if *define { " := " } else { " = " });
                for (i, e) in rhs.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(e);
                }
            }
            Stmt::Expr(e) => self.expr(e),
            Stmt::IncDec { target, inc, .. } => {
                self.expr(target);
                self.out.push_str(if *inc { "++" } else { "--" });
            }
            Stmt::If {
                init,
                cond,
                then,
                els,
                ..
            } => {
                self.out.push_str("if ");
                if let Some(init) = init {
                    self.stmt(init);
                    self.out.push_str("; ");
                }
                self.expr(cond);
                self.out.push(' ');
                self.block(then);
                if let Some(e) = els {
                    self.out.push_str(" else ");
                    match e.as_ref() {
                        Stmt::Block(b) => self.block(b),
                        other => self.stmt(other),
                    }
                }
            }
            Stmt::Block(b) => self.block(b),
            Stmt::For {
                init,
                cond,
                post,
                range_over,
                range_vars,
                body,
                ..
            } => {
                self.out.push_str("for ");
                if let Some(over) = range_over {
                    if !range_vars.is_empty() {
                        self.out.push_str(&range_vars.join(", "));
                        self.out.push_str(" := ");
                    }
                    self.out.push_str("range ");
                    self.expr(over);
                    self.out.push(' ');
                } else if init.is_none() && post.is_none() {
                    if let Some(c) = cond {
                        self.expr(c);
                        self.out.push(' ');
                    }
                } else {
                    if let Some(i) = init {
                        self.stmt(i);
                    }
                    self.out.push_str("; ");
                    if let Some(c) = cond {
                        self.expr(c);
                    }
                    self.out.push_str("; ");
                    if let Some(p) = post {
                        self.stmt(p);
                    }
                    self.out.push(' ');
                }
                self.block(body);
            }
            Stmt::Switch {
                cond,
                cases,
                has_default,
                ..
            } => {
                self.out.push_str("switch ");
                if let Some(c) = cond {
                    self.expr(c);
                    self.out.push(' ');
                }
                self.out.push('{');
                for (guards, body) in cases {
                    self.nl();
                    if guards.is_empty() {
                        self.out.push_str("default:");
                    } else {
                        self.out.push_str("case ");
                        for (i, g) in guards.iter().enumerate() {
                            if i > 0 {
                                self.out.push_str(", ");
                            }
                            self.expr(g);
                        }
                        self.out.push(':');
                    }
                    self.indent += 1;
                    for st in &body.stmts {
                        self.nl();
                        self.stmt(st);
                    }
                    self.indent -= 1;
                }
                let _ = has_default;
                self.nl();
                self.out.push('}');
            }
            Stmt::Select { cases, .. } => {
                self.out.push_str("select {");
                for body in cases {
                    self.nl();
                    self.out.push_str("default:");
                    self.indent += 1;
                    for st in &body.stmts {
                        self.nl();
                        self.stmt(st);
                    }
                    self.indent -= 1;
                }
                self.nl();
                self.out.push('}');
            }
            Stmt::Return { values, .. } => {
                self.out.push_str("return");
                for (i, v) in values.iter().enumerate() {
                    self.out.push_str(if i == 0 { " " } else { ", " });
                    self.expr(v);
                }
            }
            Stmt::Break(_) => self.out.push_str("break"),
            Stmt::Continue(_) => self.out.push_str("continue"),
            Stmt::Defer { call, .. } => {
                self.out.push_str("defer ");
                self.expr(call);
            }
            Stmt::Go { call, .. } => {
                self.out.push_str("go ");
                self.expr(call);
            }
            Stmt::Send { chan, value, .. } => {
                self.expr(chan);
                self.out.push_str(" <- ");
                self.expr(value);
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Ident { name, .. } => self.out.push_str(name),
            Expr::Int { value, .. } => self.out.push_str(&value.to_string()),
            Expr::Float { value, .. } => self.out.push_str(&format!("{value:?}")),
            Expr::Str { value, .. } => self.out.push_str(&format!("{value:?}")),
            Expr::Bool { value, .. } => self.out.push_str(if *value { "true" } else { "false" }),
            Expr::Selector { base, field, .. } => {
                self.expr(base);
                self.out.push('.');
                self.out.push_str(field);
            }
            Expr::Call { callee, args, .. } => {
                self.expr(callee);
                self.out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(a);
                }
                self.out.push(')');
            }
            Expr::Index { base, index, .. } => {
                self.expr(base);
                self.out.push('[');
                self.expr(index);
                self.out.push(']');
            }
            Expr::Unary { op, operand, .. } => {
                self.out.push_str(match op {
                    UnaryOp::Neg => "-",
                    UnaryOp::Not => "!",
                    UnaryOp::Addr => "&",
                    UnaryOp::Deref => "*",
                    UnaryOp::Recv => "<-",
                    UnaryOp::BitNot => "^",
                });
                // Parenthesize nested binary operands for correctness.
                if matches!(operand.as_ref(), Expr::Binary { .. }) {
                    self.out.push('(');
                    self.expr(operand);
                    self.out.push(')');
                } else {
                    self.expr(operand);
                }
            }
            Expr::Binary {
                op, left, right, ..
            } => {
                self.binary_operand(left, op, false);
                self.out.push(' ');
                self.out.push_str(op);
                self.out.push(' ');
                self.binary_operand(right, op, true);
            }
            Expr::Composite { ty, elems, .. } => {
                self.ty(ty);
                self.out.push('{');
                for (i, (key, value)) in elems.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    if let Some(k) = key {
                        self.out.push_str(k);
                        self.out.push_str(": ");
                    }
                    self.expr(value);
                }
                self.out.push('}');
            }
            Expr::TypeLit { ty, .. } => self.ty(ty),
            Expr::FuncLit {
                params,
                results,
                body,
                ..
            } => {
                self.out.push_str("func");
                self.params(params);
                self.results(results);
                self.out.push(' ');
                self.block(body);
            }
        }
    }

    fn binary_operand(&mut self, operand: &Expr, parent_op: &str, is_right: bool) {
        let needs_parens = match operand {
            Expr::Binary { op, .. } => {
                let (po, co) = (prec(parent_op), prec(op));
                co < po || (co == po && is_right)
            }
            _ => false,
        };
        if needs_parens {
            self.out.push('(');
            self.expr(operand);
            self.out.push(')');
        } else {
            self.expr(operand);
        }
    }
}

fn prec(op: &str) -> u8 {
    match op {
        "||" => 1,
        "&&" => 2,
        "==" | "!=" | "<" | "<=" | ">" | ">=" => 3,
        "+" | "-" | "|" | "^" => 4,
        _ => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    /// Printing then re-parsing then re-printing must be a fixpoint.
    fn roundtrip(src: &str) {
        let f1 = parse_file(src).expect("initial parse");
        let p1 = print_file(&f1);
        let f2 = parse_file(&p1).unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{p1}"));
        let p2 = print_file(&f2);
        assert_eq!(p1, p2, "printer must be a fixpoint under reparse");
    }

    #[test]
    fn roundtrip_lock_method() {
        roundtrip(
            "package p\n\nimport \"sync\"\n\ntype C struct {\n\tmu sync.Mutex\n\tn int\n}\n\nfunc (c *C) Inc() {\n\tc.mu.Lock()\n\tc.n++\n\tc.mu.Unlock()\n}\n",
        );
    }

    #[test]
    fn roundtrip_control_flow() {
        roundtrip(
            r#"
package p

func f(x int, xs []int) int {
	if x > 0 {
		return x
	} else if x < -1 {
		return -x
	} else {
		x = 0
	}
	for i := 0; i < 10; i++ {
		x += i
	}
	for _, v := range xs {
		x += v
	}
	switch x {
	case 1, 2:
		x = 3
	default:
		x = 4
	}
	return x
}
"#,
        );
    }

    #[test]
    fn roundtrip_defer_and_goroutines() {
        roundtrip(
            r#"
package p

func f() {
	m.Lock()
	defer m.Unlock()
	go func() {
		n.Lock()
		work()
		n.Unlock()
	}()
}
"#,
        );
    }

    #[test]
    fn roundtrip_composites_and_closures() {
        roundtrip(
            r#"
package p

func f() {
	a := Point{x: 1, y: 2}
	c := []int{1, 2, 3}
	m := map[string]int{"k": 1}
	g := func(v int) int {
		return v * 2
	}
	use(a, c, m, g(2))
}
"#,
        );
    }

    #[test]
    fn precedence_preserved() {
        let f = parse_file("package p\nfunc f() int {\n\treturn (1 + 2) * 3\n}\n").unwrap();
        let printed = print_file(&f);
        assert!(printed.contains("(1 + 2) * 3"), "got: {printed}");
    }

    #[test]
    fn print_expr_snippets() {
        let f = parse_file("package p\nfunc f() {\n\tc.mu.Lock()\n}\n").unwrap();
        let fd = f.funcs().next().unwrap();
        if let crate::ast::Stmt::Expr(e) = &fd.body.stmts[0] {
            assert_eq!(print_expr(e), "c.mu.Lock()");
        } else {
            panic!("expected expr stmt");
        }
    }
}
