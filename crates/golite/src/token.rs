//! Token kinds and source positions.

use std::fmt;

/// A half-open byte range in the source text.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span covering `start..end`.
    #[must_use]
    pub fn new(start: u32, end: u32) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both operands.
    #[must_use]
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// Token kinds for the Go subset.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    // Literals and identifiers.
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Rune(char),

    // Keywords.
    Break,
    Case,
    Chan,
    Const,
    Continue,
    Default,
    Defer,
    Else,
    For,
    Func,
    Go,
    If,
    Import,
    Interface,
    Map,
    Package,
    Range,
    Return,
    Select,
    Struct,
    Switch,
    Type,
    Var,

    // Operators and punctuation.
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Shl,
    Shr,
    AndNot, // &^
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PercentEq,
    AmpEq,
    PipeEq,
    CaretEq,
    ShlEq,
    ShrEq,
    AndNotEq,
    LAnd,
    LOr,
    Arrow, // <-
    Inc,
    Dec,
    EqEq,
    Lt,
    Gt,
    Assign,
    Not,
    NotEq,
    Le,
    Ge,
    Define, // :=
    Ellipsis,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Period,
    Semi,
    Colon,

    /// End of input.
    Eof,
}

impl Tok {
    /// Looks up a keyword, or returns an identifier token.
    #[must_use]
    pub fn from_word(word: &str) -> Tok {
        match word {
            "break" => Tok::Break,
            "case" => Tok::Case,
            "chan" => Tok::Chan,
            "const" => Tok::Const,
            "continue" => Tok::Continue,
            "default" => Tok::Default,
            "defer" => Tok::Defer,
            "else" => Tok::Else,
            "for" => Tok::For,
            "func" => Tok::Func,
            "go" => Tok::Go,
            "if" => Tok::If,
            "import" => Tok::Import,
            "interface" => Tok::Interface,
            "map" => Tok::Map,
            "package" => Tok::Package,
            "range" => Tok::Range,
            "return" => Tok::Return,
            "select" => Tok::Select,
            "struct" => Tok::Struct,
            "switch" => Tok::Switch,
            "type" => Tok::Type,
            "var" => Tok::Var,
            _ => Tok::Ident(word.to_string()),
        }
    }

    /// Whether Go's automatic semicolon insertion fires after this token
    /// at a newline (Go spec, "Semicolons").
    #[must_use]
    pub fn triggers_asi(&self) -> bool {
        matches!(
            self,
            Tok::Ident(_)
                | Tok::Int(_)
                | Tok::Float(_)
                | Tok::Str(_)
                | Tok::Rune(_)
                | Tok::Break
                | Tok::Continue
                | Tok::Return
                | Tok::Inc
                | Tok::Dec
                | Tok::RParen
                | Tok::RBracket
                | Tok::RBrace
        )
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Tok::Ident(name) => return write!(f, "{name}"),
            Tok::Int(v) => return write!(f, "{v}"),
            Tok::Float(v) => return write!(f, "{v}"),
            Tok::Str(v) => return write!(f, "{v:?}"),
            Tok::Rune(v) => return write!(f, "'{v}'"),
            Tok::Break => "break",
            Tok::Case => "case",
            Tok::Chan => "chan",
            Tok::Const => "const",
            Tok::Continue => "continue",
            Tok::Default => "default",
            Tok::Defer => "defer",
            Tok::Else => "else",
            Tok::For => "for",
            Tok::Func => "func",
            Tok::Go => "go",
            Tok::If => "if",
            Tok::Import => "import",
            Tok::Interface => "interface",
            Tok::Map => "map",
            Tok::Package => "package",
            Tok::Range => "range",
            Tok::Return => "return",
            Tok::Select => "select",
            Tok::Struct => "struct",
            Tok::Switch => "switch",
            Tok::Type => "type",
            Tok::Var => "var",
            Tok::Plus => "+",
            Tok::Minus => "-",
            Tok::Star => "*",
            Tok::Slash => "/",
            Tok::Percent => "%",
            Tok::Amp => "&",
            Tok::Pipe => "|",
            Tok::Caret => "^",
            Tok::Shl => "<<",
            Tok::Shr => ">>",
            Tok::AndNot => "&^",
            Tok::PlusEq => "+=",
            Tok::MinusEq => "-=",
            Tok::StarEq => "*=",
            Tok::SlashEq => "/=",
            Tok::PercentEq => "%=",
            Tok::AmpEq => "&=",
            Tok::PipeEq => "|=",
            Tok::CaretEq => "^=",
            Tok::ShlEq => "<<=",
            Tok::ShrEq => ">>=",
            Tok::AndNotEq => "&^=",
            Tok::LAnd => "&&",
            Tok::LOr => "||",
            Tok::Arrow => "<-",
            Tok::Inc => "++",
            Tok::Dec => "--",
            Tok::EqEq => "==",
            Tok::Lt => "<",
            Tok::Gt => ">",
            Tok::Assign => "=",
            Tok::Not => "!",
            Tok::NotEq => "!=",
            Tok::Le => "<=",
            Tok::Ge => ">=",
            Tok::Define => ":=",
            Tok::Ellipsis => "...",
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::LBracket => "[",
            Tok::RBracket => "]",
            Tok::LBrace => "{",
            Tok::RBrace => "}",
            Tok::Comma => ",",
            Tok::Period => ".",
            Tok::Semi => ";",
            Tok::Colon => ":",
            Tok::Eof => "<eof>",
        };
        f.write_str(s)
    }
}

/// A token with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub tok: Tok,
    /// Source location.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(Tok::from_word("defer"), Tok::Defer);
        assert_eq!(Tok::from_word("mutex"), Tok::Ident("mutex".into()));
    }

    #[test]
    fn asi_rules() {
        assert!(Tok::Ident("x".into()).triggers_asi());
        assert!(Tok::RParen.triggers_asi());
        assert!(Tok::Return.triggers_asi());
        assert!(!Tok::Comma.triggers_asi());
        assert!(!Tok::LBrace.triggers_asi());
    }

    #[test]
    fn span_merge() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
    }
}
