//! A pragmatic type resolver for the Go subset.
//!
//! GOCC queries `go/types` for exactly three things (§5.3): whether a
//! lock receiver is a `Mutex` value or pointer, whether the operation goes
//! through an anonymous (embedded) mutex field, and what concrete struct a
//! method call dispatches on (for the call graph). This module answers
//! those questions with declared types plus single-pass local inference —
//! no unification, no interfaces, which the corpus does not need.

use std::collections::HashMap;

use crate::ast::{Block, Decl, Expr, Field, File, FuncDecl, Stmt, Type, UnaryOp, VarDecl};

/// How a lock operation reaches its mutex (§5.3's transformation cases).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MutexAccess {
    /// Whether the mutex is a `sync.RWMutex`.
    pub rw: bool,
    /// Whether the receiver expression denotes a pointer to the mutex
    /// (pass as-is) or the mutex value (needs `&`).
    pub pointer: bool,
    /// Whether the mutex is reached through an embedded (anonymous) field,
    /// i.e. the access path must be suffixed with the field name.
    pub anonymous: bool,
}

/// Package-level type information.
#[derive(Debug, Default)]
pub struct TypeInfo {
    /// Struct name → fields.
    structs: HashMap<String, Vec<Field>>,
    /// Function name → result types (methods keyed as `Type.Name`).
    func_results: HashMap<String, Vec<Type>>,
    /// Package-level variable types.
    globals: HashMap<String, Type>,
}

impl TypeInfo {
    /// Collects type information from the files of one package.
    #[must_use]
    pub fn new(files: &[&File]) -> Self {
        let mut info = TypeInfo::default();
        for file in files {
            for decl in &file.decls {
                match decl {
                    Decl::TypeStruct(sd) => {
                        info.structs.insert(sd.name.clone(), sd.fields.clone());
                    }
                    Decl::Func(fd) => {
                        let key = match &fd.recv {
                            Some(r) => format!("{}.{}", r.type_name, fd.name),
                            None => fd.name.clone(),
                        };
                        info.func_results.insert(key, fd.results.clone());
                    }
                    Decl::Var(vd) | Decl::Const(vd) => {
                        if let Some(ty) = &vd.ty {
                            for name in &vd.names {
                                info.globals.insert(name.clone(), ty.clone());
                            }
                        } else if vd.values.len() == vd.names.len() {
                            // Best-effort inference for `var x = expr`.
                            for (name, value) in vd.names.iter().zip(&vd.values) {
                                if let Some(ty) = literal_type(value) {
                                    info.globals.insert(name.clone(), ty);
                                }
                            }
                        }
                    }
                }
            }
        }
        info
    }

    /// The declared fields of a struct, if known.
    #[must_use]
    pub fn struct_fields(&self, name: &str) -> Option<&[Field]> {
        self.structs.get(name).map(Vec::as_slice)
    }

    /// Builds the local type environment of a function (receiver, params,
    /// `var` declarations, `:=` inference, closure params), flattened
    /// across blocks — shadowing collapses to the innermost declaration,
    /// which is sufficient for the mutex-classification queries.
    #[must_use]
    pub fn local_env(&self, f: &FuncDecl) -> HashMap<String, Type> {
        let mut env: HashMap<String, Type> = self.globals.clone();
        if let Some(recv) = &f.recv {
            let base = Type::Named {
                pkg: None,
                name: recv.type_name.clone(),
            };
            let ty = if recv.pointer {
                Type::Pointer(Box::new(base))
            } else {
                base
            };
            env.insert(recv.name.clone(), ty);
        }
        for p in &f.params {
            if let Some(n) = &p.name {
                env.insert(n.clone(), p.ty.clone());
            }
        }
        self.collect_block(&f.body, &mut env);
        env
    }

    fn collect_block(&self, block: &Block, env: &mut HashMap<String, Type>) {
        for stmt in &block.stmts {
            self.collect_stmt(stmt, env);
        }
    }

    fn collect_stmt(&self, stmt: &Stmt, env: &mut HashMap<String, Type>) {
        match stmt {
            Stmt::Var(vd) => self.collect_var(vd, env),
            Stmt::Assign {
                lhs, rhs, define, ..
            } => {
                if *define {
                    if lhs.len() == rhs.len() {
                        for (l, r) in lhs.iter().zip(rhs) {
                            if let Expr::Ident { name, .. } = l {
                                if let Some(ty) = self.infer(r, env) {
                                    env.insert(name.clone(), ty);
                                }
                            }
                        }
                    } else if let (1, [r]) = (lhs.len().min(2), rhs.as_slice()) {
                        // `v, ok := m[k]` style: infer the first binding.
                        if let Expr::Ident { name, .. } = &lhs[0] {
                            if let Some(ty) = self.infer(r, env) {
                                env.insert(name.clone(), ty);
                            }
                        }
                    }
                }
                for r in rhs {
                    self.collect_expr(r, env);
                }
            }
            Stmt::Expr(e) | Stmt::Defer { call: e, .. } | Stmt::Go { call: e, .. } => {
                self.collect_expr(e, env);
            }
            Stmt::If {
                init, then, els, ..
            } => {
                if let Some(i) = init {
                    self.collect_stmt(i, env);
                }
                self.collect_block(then, env);
                if let Some(e) = els {
                    self.collect_stmt(e, env);
                }
            }
            Stmt::Block(b) => self.collect_block(b, env),
            Stmt::For {
                init,
                post,
                body,
                range_over,
                range_vars,
                ..
            } => {
                if let Some(i) = init {
                    self.collect_stmt(i, env);
                }
                if let Some(p) = post {
                    self.collect_stmt(p, env);
                }
                if let (Some(over), [_, v_name]) = (range_over, range_vars.as_slice()) {
                    // `for k, v := range m`: bind v to the element type.
                    if let Some(Type::Map(_, v_ty)) = self.infer(over, env) {
                        env.insert(v_name.clone(), (*v_ty).clone());
                    } else if let Some(Type::Slice(elem)) = self.infer(over, env) {
                        env.insert(v_name.clone(), (*elem).clone());
                    }
                }
                self.collect_block(body, env);
            }
            Stmt::Switch { cases, .. } => {
                for (_, b) in cases {
                    self.collect_block(b, env);
                }
            }
            Stmt::Select { cases, .. } => {
                for b in cases {
                    self.collect_block(b, env);
                }
            }
            _ => {}
        }
    }

    fn collect_var(&self, vd: &VarDecl, env: &mut HashMap<String, Type>) {
        if let Some(ty) = &vd.ty {
            for n in &vd.names {
                env.insert(n.clone(), ty.clone());
            }
        } else if vd.names.len() == vd.values.len() {
            for (n, v) in vd.names.iter().zip(&vd.values) {
                if let Some(ty) = self.infer(v, env) {
                    env.insert(n.clone(), ty);
                }
            }
        }
    }

    /// Recurses into closures so their parameters land in the flat env.
    fn collect_expr(&self, e: &Expr, env: &mut HashMap<String, Type>) {
        match e {
            Expr::FuncLit { params, body, .. } => {
                for p in params {
                    if let Some(n) = &p.name {
                        env.insert(n.clone(), p.ty.clone());
                    }
                }
                self.collect_block(body, env);
            }
            Expr::Call { callee, args, .. } => {
                self.collect_expr(callee, env);
                for a in args {
                    self.collect_expr(a, env);
                }
            }
            Expr::Unary { operand, .. } => self.collect_expr(operand, env),
            Expr::Binary { left, right, .. } => {
                self.collect_expr(left, env);
                self.collect_expr(right, env);
            }
            Expr::Selector { base, .. } => self.collect_expr(base, env),
            Expr::Composite { elems, .. } => {
                for (_, v) in elems {
                    self.collect_expr(v, env);
                }
            }
            _ => {}
        }
    }

    /// Infers the type of an expression under `env`.
    #[must_use]
    pub fn infer(&self, e: &Expr, env: &HashMap<String, Type>) -> Option<Type> {
        match e {
            Expr::Ident { name, .. } => env.get(name).cloned(),
            Expr::Int { .. } => Some(Type::Named {
                pkg: None,
                name: "int".into(),
            }),
            Expr::Float { .. } => Some(Type::Named {
                pkg: None,
                name: "float64".into(),
            }),
            Expr::Str { .. } => Some(Type::Named {
                pkg: None,
                name: "string".into(),
            }),
            Expr::Bool { .. } => Some(Type::Named {
                pkg: None,
                name: "bool".into(),
            }),
            Expr::Unary {
                op: UnaryOp::Addr,
                operand,
                ..
            } => self.infer(operand, env).map(|t| Type::Pointer(Box::new(t))),
            Expr::Unary {
                op: UnaryOp::Deref,
                operand,
                ..
            } => match self.infer(operand, env)? {
                Type::Pointer(inner) => Some(*inner),
                _ => None,
            },
            Expr::Unary { operand, .. } => self.infer(operand, env),
            Expr::Selector { base, field, .. } => {
                // Package-qualified reference, e.g. `sync.Mutex` used as a
                // value expression: treat known-package selectors on
                // unknown idents as named types only when the base is not
                // a variable.
                if let Expr::Ident { name, .. } = base.as_ref() {
                    if !env.contains_key(name) {
                        return Some(Type::Named {
                            pkg: Some(name.clone()),
                            name: field.clone(),
                        });
                    }
                }
                let base_ty = self.infer(base, env)?;
                self.field_type(&base_ty, field)
            }
            Expr::Call { callee, .. } => {
                // make(T, ...) and new(T).
                if let Expr::Ident { name, .. } = callee.as_ref() {
                    match name.as_str() {
                        "len" | "cap" => {
                            return Some(Type::Named {
                                pkg: None,
                                name: "int".into(),
                            })
                        }
                        "make" | "new" => {
                            // The first argument names the constructed type.
                            if let Expr::Call { args, .. } = e {
                                if let Some(first) = args.first() {
                                    let t = self.infer(first, env);
                                    if name == "new" {
                                        return t.map(|t| Type::Pointer(Box::new(t)));
                                    }
                                    return t;
                                }
                            }
                        }
                        _ => {}
                    }
                    if let Some(results) = self.func_results.get(name) {
                        return results.first().cloned();
                    }
                }
                if let Expr::Selector { base, field, .. } = callee.as_ref() {
                    // Method call: resolve through the receiver struct.
                    if let Some(struct_name) = self.receiver_struct(base, env) {
                        let key = format!("{struct_name}.{field}");
                        if let Some(results) = self.func_results.get(&key) {
                            return results.first().cloned();
                        }
                    }
                }
                None
            }
            Expr::Index { base, .. } => match self.infer(base, env)? {
                Type::Slice(elem) | Type::Array(elem) => Some(*elem),
                Type::Map(_, v) => Some(*v),
                _ => None,
            },
            Expr::Binary { op, left, .. } => {
                if matches!(
                    op.as_str(),
                    "==" | "!=" | "<" | "<=" | ">" | ">=" | "&&" | "||"
                ) {
                    Some(Type::Named {
                        pkg: None,
                        name: "bool".into(),
                    })
                } else {
                    self.infer(left, env)
                }
            }
            Expr::Composite { ty, .. } => Some(ty.clone()),
            Expr::TypeLit { ty, .. } => Some(ty.clone()),
            Expr::FuncLit { .. } => Some(Type::Func),
        }
    }

    /// Looks up a field's type, digging through pointers and embedded
    /// fields (Go's field promotion).
    #[must_use]
    pub fn field_type(&self, base: &Type, field: &str) -> Option<Type> {
        let struct_name = match base {
            Type::Named { pkg: None, name } => name.clone(),
            Type::Pointer(inner) => return self.field_type(inner, field),
            _ => return None,
        };
        let fields = self.structs.get(&struct_name)?;
        for f in fields {
            if f.access_name() == field {
                return Some(f.ty.clone());
            }
        }
        // Field promotion through embedded structs.
        for f in fields {
            if f.is_embedded() {
                if let Some(t) = self.field_type(&f.ty, field) {
                    return Some(t);
                }
            }
        }
        None
    }

    /// The concrete struct a method-call receiver resolves to, if any.
    #[must_use]
    pub fn receiver_struct(&self, base: &Expr, env: &HashMap<String, Type>) -> Option<String> {
        match self.infer(base, env)? {
            Type::Named { pkg: None, name } if self.structs.contains_key(&name) => Some(name),
            Type::Pointer(inner) => match *inner {
                Type::Named { pkg: None, name } if self.structs.contains_key(&name) => Some(name),
                _ => None,
            },
            _ => None,
        }
    }

    /// Classifies the receiver of a `Lock`/`Unlock`/`RLock`/`RUnlock`
    /// call for the transformer (§5.3): value vs pointer, anonymous field
    /// or not, `Mutex` vs `RWMutex`.
    ///
    /// Returns `None` when the receiver is not a mutex in any supported
    /// form — the call is then an ordinary method call.
    #[must_use]
    pub fn classify_mutex(&self, recv: &Expr, env: &HashMap<String, Type>) -> Option<MutexAccess> {
        let ty = self.infer(recv, env)?;
        match &ty {
            t if t.is_mutex() => {
                let pointer = matches!(t, Type::Pointer(_));
                Some(MutexAccess {
                    rw: t.is_rwmutex(),
                    pointer,
                    anonymous: false,
                })
            }
            Type::Named { pkg: None, name } => {
                let embedded = self.embedded_mutex(name)?;
                Some(MutexAccess {
                    rw: embedded.is_rwmutex(),
                    pointer: matches!(embedded, Type::Pointer(_)),
                    anonymous: true,
                })
            }
            Type::Pointer(inner) => {
                if let Type::Named { pkg: None, name } = inner.as_ref() {
                    let embedded = self.embedded_mutex(name)?;
                    Some(MutexAccess {
                        rw: embedded.is_rwmutex(),
                        pointer: matches!(embedded, Type::Pointer(_)),
                        anonymous: true,
                    })
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// The type of a struct's embedded mutex field, if it has one.
    fn embedded_mutex(&self, struct_name: &str) -> Option<&Type> {
        let fields = self.structs.get(struct_name)?;
        fields
            .iter()
            .find(|f| f.is_embedded() && f.ty.is_mutex())
            .map(|f| &f.ty)
    }
}

fn literal_type(e: &Expr) -> Option<Type> {
    match e {
        Expr::Composite { ty, .. } => Some(ty.clone()),
        Expr::Int { .. } => Some(Type::Named {
            pkg: None,
            name: "int".into(),
        }),
        Expr::Str { .. } => Some(Type::Named {
            pkg: None,
            name: "string".into(),
        }),
        Expr::Bool { .. } => Some(Type::Named {
            pkg: None,
            name: "bool".into(),
        }),
        Expr::Unary {
            op: UnaryOp::Addr,
            operand,
            ..
        } => literal_type(operand).map(|t| Type::Pointer(Box::new(t))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn setup(src: &str) -> (File, TypeInfo) {
        let f = parse_file(src).expect("parse");
        let files = [&f];
        let info = TypeInfo::new(&files);
        (f.clone(), info)
    }

    const SRC: &str = r#"
package p

import "sync"

type Counter struct {
	mu sync.Mutex
	rw sync.RWMutex
	pm *sync.Mutex
	n  int
}

type Anon struct {
	sync.Mutex
	val int
}

type AnonPtr struct {
	*sync.RWMutex
	val int
}

var gmu sync.Mutex

func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func lockAll(a *Anon, ap *AnonPtr, local sync.Mutex) {
	a.Lock()
	ap.RLock()
	local.Lock()
	gmu.Lock()
	p := &gmu
	p.Lock()
}
"#;

    #[test]
    fn classify_struct_field_mutex_value() {
        let (f, info) = setup(SRC);
        let inc = f.funcs().find(|x| x.name == "Inc").unwrap();
        let env = info.local_env(inc);
        if let Stmt::Expr(call) = &inc.body.stmts[0] {
            let (recv, _) = call.as_method_call().unwrap();
            let access = info.classify_mutex(recv, &env).unwrap();
            assert_eq!(
                access,
                MutexAccess {
                    rw: false,
                    pointer: false,
                    anonymous: false
                }
            );
        } else {
            panic!("expected call");
        }
    }

    #[test]
    fn classify_anonymous_and_pointer_cases() {
        let (f, info) = setup(SRC);
        let la = f.funcs().find(|x| x.name == "lockAll").unwrap();
        let env = info.local_env(la);
        let receivers: Vec<_> = la
            .body
            .stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::Expr(call) => call.as_method_call().map(|(r, _)| r),
                _ => None,
            })
            .collect();
        // a.Lock(): embedded value mutex.
        let a = info.classify_mutex(receivers[0], &env).unwrap();
        assert_eq!(
            a,
            MutexAccess {
                rw: false,
                pointer: false,
                anonymous: true
            }
        );
        // ap.RLock(): embedded *RWMutex.
        let ap = info.classify_mutex(receivers[1], &env).unwrap();
        assert_eq!(
            ap,
            MutexAccess {
                rw: true,
                pointer: true,
                anonymous: true
            }
        );
        // local.Lock(): plain value parameter.
        let local = info.classify_mutex(receivers[2], &env).unwrap();
        assert_eq!(
            local,
            MutexAccess {
                rw: false,
                pointer: false,
                anonymous: false
            }
        );
        // gmu.Lock(): package-level value.
        let g = info.classify_mutex(receivers[3], &env).unwrap();
        assert_eq!(
            g,
            MutexAccess {
                rw: false,
                pointer: false,
                anonymous: false
            }
        );
        // p.Lock(): p := &gmu is a *Mutex.
        let p = info.classify_mutex(receivers[4], &env).unwrap();
        assert_eq!(
            p,
            MutexAccess {
                rw: false,
                pointer: true,
                anonymous: false
            }
        );
    }

    #[test]
    fn field_promotion_through_embedding() {
        let (_, info) = setup(SRC);
        let anon = Type::Named {
            pkg: None,
            name: "Anon".into(),
        };
        assert_eq!(
            info.field_type(&anon, "val"),
            Some(Type::Named {
                pkg: None,
                name: "int".into()
            })
        );
        assert!(info.field_type(&anon, "Mutex").unwrap().is_mutex());
    }

    #[test]
    fn receiver_struct_resolution() {
        let (f, info) = setup(SRC);
        let inc = f.funcs().find(|x| x.name == "Inc").unwrap();
        let env = info.local_env(inc);
        if let Stmt::Expr(call) = &inc.body.stmts[0] {
            if let Expr::Call { callee, .. } = call {
                if let Expr::Selector { base, .. } = callee.as_ref() {
                    // base = c.mu; its own base is `c` → Counter.
                    if let Expr::Selector { base: c, .. } = base.as_ref() {
                        assert_eq!(info.receiver_struct(c, &env).as_deref(), Some("Counter"));
                    }
                }
            }
        }
    }

    #[test]
    fn non_mutex_receiver_classifies_none() {
        let (f, info) = setup(SRC);
        let inc = f.funcs().find(|x| x.name == "Inc").unwrap();
        let env = info.local_env(inc);
        // `c.n` is an int field, not a mutex.
        let n_expr = Expr::Selector {
            base: Box::new(Expr::Ident {
                name: "c".into(),
                id: crate::ast::NodeId(9999),
                span: Default::default(),
            }),
            field: "n".into(),
            id: crate::ast::NodeId(10_000),
            span: Default::default(),
        };
        assert!(info.classify_mutex(&n_expr, &env).is_none());
    }
}
