//! Frontend round-trips over the bundled corpus: every corpus file must
//! parse, print, re-parse, and reach a printer fixpoint; the reprinted
//! form must preserve the structures the analyzer depends on.

use golite::parser::parse_file;
use golite::printer::print_file;
use golite::types::TypeInfo;

const PACKAGES: [&str; 5] = ["tally", "zap", "gocache", "fastcache", "set"];

fn corpus_src(name: &str) -> String {
    for root in ["corpus", "../../corpus"] {
        let p = format!("{root}/{name}/{name}.go");
        if let Ok(src) = std::fs::read_to_string(&p) {
            return src;
        }
    }
    panic!("corpus file for {name} not found");
}

#[test]
fn corpus_parses_and_reaches_print_fixpoint() {
    for name in PACKAGES {
        let src = corpus_src(name);
        let f1 = parse_file(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let p1 = print_file(&f1);
        let f2 = parse_file(&p1).unwrap_or_else(|e| panic!("{name} reparse: {e}\n{p1}"));
        let p2 = print_file(&f2);
        assert_eq!(p1, p2, "{name}: printer must be a fixpoint");
    }
}

#[test]
fn corpus_preserves_declaration_counts() {
    for name in PACKAGES {
        let src = corpus_src(name);
        let f1 = parse_file(&src).unwrap();
        let f2 = parse_file(&print_file(&f1)).unwrap();
        assert_eq!(f1.funcs().count(), f2.funcs().count(), "{name}: functions");
        assert_eq!(f1.decls.len(), f2.decls.len(), "{name}: declarations");
        assert_eq!(f1.imports, f2.imports, "{name}: imports");
    }
}

#[test]
fn corpus_type_info_survives_reprint() {
    for name in PACKAGES {
        let src = corpus_src(name);
        let f1 = parse_file(&src).unwrap();
        let f2 = parse_file(&print_file(&f1)).unwrap();
        let refs1 = [&f1];
        let refs2 = [&f2];
        let t1 = TypeInfo::new(&refs1);
        let t2 = TypeInfo::new(&refs2);
        // Mutex classification must agree for every method receiver chain.
        for (fd1, fd2) in f1.funcs().zip(f2.funcs()) {
            let (e1, e2) = (t1.local_env(fd1), t2.local_env(fd2));
            assert_eq!(e1.len(), e2.len(), "{name}/{}: env size", fd1.name);
        }
    }
}

#[test]
fn mini_listings_roundtrip() {
    // The paper's listings (as rendered in this repo's tests) round-trip.
    let snippets = [
        "package p\n\nfunc f() {\n\tm.Lock()\n\tcount++\n\tm.Unlock()\n}\n",
        "package p\n\nfunc f() {\n\tdefer m.Unlock()\n\tm.Lock()\n\tcount++\n}\n",
        "package p\n\nfunc f() {\n\ta.Lock()\n\tb.Lock()\n\tb.Unlock()\n\ta.Unlock()\n}\n",
        "package p\n\nfunc f() {\n\toptiLock1 := optilib.OptiLock{}\n\toptiLock1.FastLock(&m)\n\tcount++\n\toptiLock1.FastUnlock(&m)\n}\n",
    ];
    for s in snippets {
        let f = parse_file(s).unwrap();
        let printed = print_file(&f);
        let f2 = parse_file(&printed).unwrap();
        assert_eq!(printed, print_file(&f2));
    }
}
