//! Go-faithful synchronization primitives.
//!
//! The GOCC paper evaluates lock elision against Go's `sync.Mutex` and
//! `sync.RWMutex`, and several of its observed effects depend on the exact
//! semantics of those locks rather than on "a mutex" in the abstract:
//!
//! * the RWMutex read-path speedups (Figures 6–8) come from eliding the two
//!   contended atomic RMWs on `reader_count` that every `RLock`/`RUnlock`
//!   performs;
//! * the fastcache `CacheSetGet` anomaly (§6.1) comes from the mutex's
//!   *starvation mode*: once a waiter has been blocked for more than 1 ms,
//!   ownership is handed off FIFO and new arrivals stop barging.
//!
//! This crate therefore ports the algorithms of Go's `sync/mutex.go` and
//! `sync/rwmutex.go` (state word with locked/woken/starving bits and a
//! waiter count; reader count with the `MAX_READERS` offset trick),
//! including the runtime semaphore's LIFO/FIFO queueing and handoff.
//!
//! [`procs`] models `runtime.GOMAXPROCS`, which both the mutex spin
//! heuristic and the `optiLib` single-thread bypass consult.

mod mutex;
mod pairing;
mod procs;
mod rwmutex;
mod sema;

pub use mutex::{GoMutex, GoMutexGuard};
pub use pairing::{lock_id, LockLedger};
pub use procs::{procs, set_procs};
pub use rwmutex::{GoRwMutex, GoRwReadGuard, GoRwWriteGuard};
pub use sema::Semaphore;
