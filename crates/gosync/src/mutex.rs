//! A port of Go's `sync.Mutex`, including starvation mode.

use std::sync::atomic::{AtomicI32, Ordering};
use std::time::Instant;

use crate::procs::procs;
use crate::sema::Semaphore;

const MUTEX_LOCKED: i32 = 1;
const MUTEX_WOKEN: i32 = 2;
const MUTEX_STARVING: i32 = 4;
const MUTEX_WAITER_SHIFT: u32 = 3;

/// 1 ms, Go's `starvationThresholdNs`.
const STARVATION_THRESHOLD_NS: u128 = 1_000_000;

/// Iterations of active spinning before blocking (Go's `active_spin`).
const ACTIVE_SPIN: u32 = 4;
/// Pause instructions per spin iteration (Go's `active_spin_cnt`).
const ACTIVE_SPIN_CNT: u32 = 30;

/// Go's `sync.Mutex`: a barging mutex with a fairness (starvation) mode.
///
/// The state word packs a locked bit, a woken bit, a starving bit and a
/// waiter count; blocked acquirers park on a FIFO/LIFO runtime
/// [`Semaphore`]. In *normal* mode arriving lockers may barge ahead of
/// queued waiters (good throughput); once a waiter has been blocked for
/// more than 1 ms the mutex flips to *starvation* mode: unlocks hand the
/// mutex directly to the queue head and arrivals go to the back.
///
/// The starvation flip is load-bearing for reproducing the paper's
/// fastcache `CacheSetGet` benchmark (§6.1), where the Go runtime
/// "recognizes it as a starved mutex and takes away the time slice of some
/// of the goroutines".
#[derive(Default)]
pub struct GoMutex {
    state: AtomicI32,
    sema: Semaphore,
}

impl GoMutex {
    /// Creates an unlocked mutex.
    #[must_use]
    pub fn new() -> Self {
        GoMutex::default()
    }

    /// Whether the locked bit is currently set.
    ///
    /// This is the raw first-word inspection `optiLib`'s `FastLock` performs
    /// on a `sync.Mutex` ("simply de-references the first word of the Mutex
    /// pointer, which contains the lock status").
    #[must_use]
    pub fn is_locked(&self) -> bool {
        self.state.load(Ordering::Relaxed) & MUTEX_LOCKED != 0
    }

    /// Whether the mutex is currently in starvation mode.
    #[must_use]
    pub fn is_starving(&self) -> bool {
        self.state.load(Ordering::Relaxed) & MUTEX_STARVING != 0
    }

    /// Acquires the mutex, returning an RAII guard.
    pub fn lock(&self) -> GoMutexGuard<'_> {
        self.lock_raw();
        GoMutexGuard { mutex: self }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<GoMutexGuard<'_>> {
        let old = self.state.load(Ordering::Relaxed);
        if old & (MUTEX_LOCKED | MUTEX_STARVING) != 0 {
            return None;
        }
        self.state
            .compare_exchange(
                old,
                old | MUTEX_LOCKED,
                Ordering::Acquire,
                Ordering::Relaxed,
            )
            .ok()
            .map(|_| GoMutexGuard { mutex: self })
    }

    /// Acquires the mutex without producing a guard (Go's `Lock()`).
    ///
    /// Prefer [`GoMutex::lock`]; the raw form exists for `optiLib`, whose
    /// `FastLock`/`FastUnlock` calls do not nest lexically.
    pub fn lock_raw(&self) {
        // The state word is the contended line of a real sync.Mutex; the
        // coherence model charges each RMW on it (inert at 1 core).
        gocc_htm::contention::charge_shared_rmw();
        if self
            .state
            .compare_exchange(0, MUTEX_LOCKED, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            return;
        }
        self.lock_slow();
    }

    fn lock_slow(&self) {
        let mut wait_start: Option<Instant> = None;
        let mut starving = false;
        let mut awoke = false;
        let mut iter = 0u32;
        let mut old = self.state.load(Ordering::Relaxed);
        loop {
            // Active spinning while the mutex is locked, not starving, and
            // spinning is sensible (more than one processor).
            if old & (MUTEX_LOCKED | MUTEX_STARVING) == MUTEX_LOCKED && can_spin(iter) {
                if !awoke
                    && old & MUTEX_WOKEN == 0
                    && (old >> MUTEX_WAITER_SHIFT) != 0
                    && self
                        .state
                        .compare_exchange(
                            old,
                            old | MUTEX_WOKEN,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        )
                        .is_ok()
                {
                    awoke = true;
                }
                do_spin();
                iter += 1;
                old = self.state.load(Ordering::Relaxed);
                continue;
            }
            let mut new = old;
            // Don't try to acquire a starving mutex; arrivals must queue.
            if old & MUTEX_STARVING == 0 {
                new |= MUTEX_LOCKED;
            }
            if old & (MUTEX_LOCKED | MUTEX_STARVING) != 0 {
                new += 1 << MUTEX_WAITER_SHIFT;
            }
            if starving && old & MUTEX_LOCKED != 0 {
                new |= MUTEX_STARVING;
            }
            if awoke {
                debug_assert!(new & MUTEX_WOKEN != 0, "inconsistent woken state");
                new &= !MUTEX_WOKEN;
            }
            if self
                .state
                .compare_exchange(old, new, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                if old & (MUTEX_LOCKED | MUTEX_STARVING) == 0 {
                    return; // acquired with the CAS
                }
                // Waiters that already waited queue at the front.
                let queue_lifo = wait_start.is_some();
                let start = *wait_start.get_or_insert_with(Instant::now);
                self.sema.acquire(queue_lifo);
                starving = starving || start.elapsed().as_nanos() > STARVATION_THRESHOLD_NS;
                old = self.state.load(Ordering::Relaxed);
                if old & MUTEX_STARVING != 0 {
                    // Handoff: the unlocker left the mutex to us directly.
                    debug_assert!(
                        old & (MUTEX_LOCKED | MUTEX_WOKEN) == 0 && (old >> MUTEX_WAITER_SHIFT) > 0,
                        "inconsistent starvation handoff state"
                    );
                    let mut delta = MUTEX_LOCKED - (1 << MUTEX_WAITER_SHIFT);
                    if !starving || (old >> MUTEX_WAITER_SHIFT) == 1 {
                        // Exit starvation mode: we are no longer starving or
                        // we are the last waiter.
                        delta -= MUTEX_STARVING;
                    }
                    self.state.fetch_add(delta, Ordering::Acquire);
                    return;
                }
                awoke = true;
                iter = 0;
            } else {
                old = self.state.load(Ordering::Relaxed);
            }
        }
    }

    /// Releases the mutex (Go's `Unlock()`).
    ///
    /// # Panics
    ///
    /// Panics if the mutex is not locked, like Go's fatal error.
    pub fn unlock_raw(&self) {
        gocc_htm::contention::charge_shared_rmw();
        let new = self.state.fetch_add(-MUTEX_LOCKED, Ordering::Release) - MUTEX_LOCKED;
        if new != 0 {
            self.unlock_slow(new);
        }
    }

    fn unlock_slow(&self, mut new: i32) {
        assert!(
            (new + MUTEX_LOCKED) & MUTEX_LOCKED != 0,
            "gosync: unlock of unlocked mutex"
        );
        if new & MUTEX_STARVING == 0 {
            let mut old = new;
            loop {
                // Nothing to wake, or someone else is already active.
                if (old >> MUTEX_WAITER_SHIFT) == 0
                    || old & (MUTEX_LOCKED | MUTEX_WOKEN | MUTEX_STARVING) != 0
                {
                    return;
                }
                new = (old - (1 << MUTEX_WAITER_SHIFT)) | MUTEX_WOKEN;
                if self
                    .state
                    .compare_exchange(old, new, Ordering::Release, Ordering::Relaxed)
                    .is_ok()
                {
                    self.sema.release(false);
                    return;
                }
                old = self.state.load(Ordering::Relaxed);
            }
        } else {
            // Starving: hand the mutex to the queue head. The locked bit is
            // not set here; the waiter installs it on wake-up.
            self.sema.release(true);
        }
    }
}

fn can_spin(iter: u32) -> bool {
    iter < ACTIVE_SPIN && procs() > 1
}

fn do_spin() {
    for _ in 0..ACTIVE_SPIN_CNT {
        std::hint::spin_loop();
    }
}

impl std::fmt::Debug for GoMutex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.load(Ordering::Relaxed);
        f.debug_struct("GoMutex")
            .field("locked", &(s & MUTEX_LOCKED != 0))
            .field("starving", &(s & MUTEX_STARVING != 0))
            .field("waiters", &(s >> MUTEX_WAITER_SHIFT))
            .finish()
    }
}

/// RAII guard for [`GoMutex`].
#[must_use = "the mutex unlocks when the guard is dropped"]
#[derive(Debug)]
pub struct GoMutexGuard<'a> {
    mutex: &'a GoMutex,
}

impl Drop for GoMutexGuard<'_> {
    fn drop(&mut self) {
        self.mutex.unlock_raw();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn lock_unlock_single_thread() {
        let m = GoMutex::new();
        assert!(!m.is_locked());
        {
            let _g = m.lock();
            assert!(m.is_locked());
            assert!(m.try_lock().is_none());
        }
        assert!(!m.is_locked());
        assert!(m.try_lock().is_some());
    }

    #[test]
    #[should_panic(expected = "unlock of unlocked mutex")]
    fn unlock_unlocked_panics() {
        let m = GoMutex::new();
        // fetch_add drives state to -1; the slow path detects the
        // underflow and panics like Go's fatal error.
        m.unlock_raw();
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        let m = Arc::new(GoMutex::new());
        let counter = Arc::new(AtomicU64::new(0));
        const THREADS: usize = 8;
        const ITERS: u64 = 2_000;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let m = Arc::clone(&m);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for _ in 0..ITERS {
                        let _g = m.lock();
                        // Non-atomic increment pattern under the lock.
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), THREADS as u64 * ITERS);
    }

    #[test]
    fn starvation_mode_engages_under_hold() {
        let m = Arc::new(GoMutex::new());
        let m2 = Arc::clone(&m);
        let g = m.lock();
        let waiter = std::thread::spawn(move || {
            let _g = m2.lock();
        });
        // Hold the lock past the 1 ms starvation threshold while the
        // waiter blocks.
        std::thread::sleep(std::time::Duration::from_millis(5));
        drop(g);
        waiter.join().unwrap();
        // The waiter entered starvation mode and, being the last waiter,
        // exited it again on acquire; the mutex must be fully released.
        assert!(!m.is_locked());
        assert!(!m.is_starving());
    }
}
