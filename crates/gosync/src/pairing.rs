//! Lock/unlock pairing ledger.
//!
//! `optiLib`'s mutex-mismatch detection (Appendix C) catches mis-paired
//! `Lock`/`Unlock` sequences *inside an elided section*. This module is the
//! complementary check at the `gosync` layer: a [`LockLedger`] interposed in
//! front of raw `lock_raw`/`unlock_raw` calls verifies that every unlock
//! targets a lock that is actually held, without assuming LIFO nesting —
//! hand-over-hand locking (`Lock(a); Lock(b); Unlock(a); Unlock(b)`) is
//! legal Go and must pass.
//!
//! The ledger is a verification facility, not an enforcement one: a
//! mis-paired unlock is *recorded and reported* (the caller decides whether
//! to recover or abort), never silently swallowed. Fault-injection drivers
//! (see `gocc-faultplane`'s `PairingFaultPlan`) use it to assert that every
//! injected mispair is detected and nothing else is.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Stable identity for a lock: its address.
///
/// Matches how `optiLib` keys locks ("the first word of the Mutex
/// pointer"); two locks are the same iff they are the same object.
#[must_use]
pub fn lock_id<T>(lock: &T) -> usize {
    std::ptr::from_ref(lock) as usize
}

/// A multiset of currently-held lock identities with mispair detection.
///
/// Unlike a stack discipline, the ledger only requires that an unlock
/// target be *held*, not that it be the most recent acquisition — so
/// hand-over-hand traversals balance cleanly while a genuinely mis-paired
/// unlock (of a lock this ledger never saw locked, or already released)
/// is counted in [`LockLedger::mispairs`].
#[derive(Debug, Default)]
pub struct LockLedger {
    held: Mutex<HashMap<usize, u64>>,
    locks: AtomicU64,
    unlocks: AtomicU64,
    mispairs: AtomicU64,
}

impl LockLedger {
    /// Creates an empty ledger.
    #[must_use]
    pub fn new() -> Self {
        LockLedger::default()
    }

    /// Records an acquisition of the lock with identity `id`.
    pub fn note_lock(&self, id: usize) {
        self.locks.fetch_add(1, Ordering::Relaxed);
        *self.held.lock().unwrap().entry(id).or_insert(0) += 1;
    }

    /// Records a release of the lock with identity `id`.
    ///
    /// Returns `true` if the lock was held (a balanced unlock). Returns
    /// `false` — and counts a mispair — if it was not: the caller is
    /// unlocking something it never locked, or already released. The held
    /// multiset is left untouched in that case, so a subsequent correct
    /// unlock still balances.
    #[must_use]
    pub fn note_unlock(&self, id: usize) -> bool {
        let mut held = self.held.lock().unwrap();
        match held.get_mut(&id) {
            Some(n) if *n > 0 => {
                *n -= 1;
                if *n == 0 {
                    held.remove(&id);
                }
                self.unlocks.fetch_add(1, Ordering::Relaxed);
                true
            }
            _ => {
                self.mispairs.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Total acquisitions recorded.
    #[must_use]
    pub fn locks(&self) -> u64 {
        self.locks.load(Ordering::Relaxed)
    }

    /// Total *balanced* releases recorded (mispairs are not included).
    #[must_use]
    pub fn unlocks(&self) -> u64 {
        self.unlocks.load(Ordering::Relaxed)
    }

    /// Mis-paired unlocks detected.
    #[must_use]
    pub fn mispairs(&self) -> u64 {
        self.mispairs.load(Ordering::Relaxed)
    }

    /// Number of lock acquisitions currently outstanding (all identities).
    #[must_use]
    pub fn held_total(&self) -> u64 {
        self.held.lock().unwrap().values().sum()
    }

    /// Outstanding acquisitions of one identity.
    #[must_use]
    pub fn held(&self, id: usize) -> u64 {
        self.held.lock().unwrap().get(&id).copied().unwrap_or(0)
    }

    /// Whether every recorded lock has been released and no mispair was
    /// ever detected — the clean-run invariant drivers assert at the end.
    #[must_use]
    pub fn is_balanced(&self) -> bool {
        self.mispairs() == 0 && self.held_total() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GoMutex;

    #[test]
    fn lifo_and_hand_over_hand_both_balance() {
        let ledger = LockLedger::new();
        let a = GoMutex::new();
        let b = GoMutex::new();
        let (ia, ib) = (lock_id(&a), lock_id(&b));

        // LIFO nesting.
        ledger.note_lock(ia);
        ledger.note_lock(ib);
        assert!(ledger.note_unlock(ib));
        assert!(ledger.note_unlock(ia));

        // Hand-over-hand: unlock order matches lock order, not reverse.
        ledger.note_lock(ia);
        ledger.note_lock(ib);
        assert!(ledger.note_unlock(ia));
        assert!(ledger.note_unlock(ib));

        assert!(ledger.is_balanced());
        assert_eq!(ledger.locks(), 4);
        assert_eq!(ledger.unlocks(), 4);
    }

    #[test]
    fn mispaired_unlock_is_detected_and_recoverable() {
        let ledger = LockLedger::new();
        let a = GoMutex::new();
        let b = GoMutex::new();
        let (ia, ib) = (lock_id(&a), lock_id(&b));

        ledger.note_lock(ia);
        // Unlock of a lock that was never acquired: flagged, not applied.
        assert!(!ledger.note_unlock(ib));
        assert_eq!(ledger.mispairs(), 1);
        assert_eq!(ledger.held(ia), 1, "mispair must not disturb held state");
        // The correct unlock still balances afterwards.
        assert!(ledger.note_unlock(ia));
        assert_eq!(ledger.held_total(), 0);
        assert!(!ledger.is_balanced(), "a detected mispair is never clean");
    }

    #[test]
    fn reentrant_counts_are_per_identity() {
        let ledger = LockLedger::new();
        let a = GoMutex::new();
        let ia = lock_id(&a);
        ledger.note_lock(ia);
        ledger.note_lock(ia);
        assert_eq!(ledger.held(ia), 2);
        assert!(ledger.note_unlock(ia));
        assert!(ledger.note_unlock(ia));
        // Third release of the same identity is a mispair.
        assert!(!ledger.note_unlock(ia));
        assert_eq!(ledger.mispairs(), 1);
    }

    #[test]
    fn concurrent_ledger_counts_are_exact() {
        let ledger = LockLedger::new();
        let m = GoMutex::new();
        let id = lock_id(&m);
        const THREADS: u64 = 8;
        const ITERS: u64 = 500;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..ITERS {
                        let g = m.lock();
                        ledger.note_lock(id);
                        assert!(ledger.note_unlock(id));
                        drop(g);
                    }
                });
            }
        });
        assert!(ledger.is_balanced());
        assert_eq!(ledger.locks(), THREADS * ITERS);
        assert_eq!(ledger.unlocks(), THREADS * ITERS);
    }
}
