//! A model of `runtime.GOMAXPROCS`.

use std::sync::atomic::{AtomicUsize, Ordering};

static PROCS: AtomicUsize = AtomicUsize::new(0);

/// Returns the configured processor count (the `GOMAXPROCS(0)` query).
///
/// Defaults to [`std::thread::available_parallelism`] until overridden by
/// [`set_procs`]. The benchmark harness sets this to the simulated core
/// count of each sweep point; `optiLib` consults it for the single-thread
/// HTM bypass (§5.4.2) and the mutex uses it for its spin heuristic.
#[must_use]
pub fn procs() -> usize {
    let p = PROCS.load(Ordering::Relaxed);
    if p != 0 {
        return p;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Overrides the processor count, returning the previous override (0 means
/// "was defaulted").
pub fn set_procs(n: usize) -> usize {
    PROCS.swap(n, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_and_restore() {
        let prev = set_procs(4);
        assert_eq!(procs(), 4);
        set_procs(prev);
        assert!(procs() >= 1);
    }
}
