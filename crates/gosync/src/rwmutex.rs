//! A port of Go's `sync.RWMutex`.

use std::sync::atomic::{AtomicI32, Ordering};

use crate::mutex::GoMutex;
use crate::sema::Semaphore;

/// Go's `rwmutexMaxReaders`.
const MAX_READERS: i32 = 1 << 30;

/// Go's `sync.RWMutex`: a writer-preferring reader/writer lock.
///
/// Readers perform two atomic RMWs on the shared `reader_count` word per
/// `RLock`/`RUnlock` pair — under read-heavy contention those RMWs
/// serialize on the cache line and collapse scalability, which is exactly
/// the behavior the paper's Tally `HistogramExisting` and set `Len`
/// benchmarks expose and which lock elision removes (Figures 6 and 8).
///
/// A pending writer flips `reader_count` negative by `MAX_READERS`, making
/// new readers queue while it waits for the in-flight reader count
/// (`reader_wait`) to drain.
#[derive(Default)]
pub struct GoRwMutex {
    w: GoMutex,
    writer_sem: Semaphore,
    reader_sem: Semaphore,
    reader_count: AtomicI32,
    reader_wait: AtomicI32,
}

impl GoRwMutex {
    /// Creates an unlocked reader/writer mutex.
    #[must_use]
    pub fn new() -> Self {
        GoRwMutex::default()
    }

    /// Whether a writer currently holds or is acquiring the lock.
    ///
    /// This is the word `optiLib` inspects before eliding a write lock.
    #[must_use]
    pub fn is_write_locked(&self) -> bool {
        self.reader_count.load(Ordering::Relaxed) < 0
    }

    /// Acquires a read lock (Go's `RLock`).
    pub fn read(&self) -> GoRwReadGuard<'_> {
        self.rlock_raw();
        GoRwReadGuard { rw: self }
    }

    /// Acquires the write lock (Go's `Lock`).
    pub fn write(&self) -> GoRwWriteGuard<'_> {
        self.lock_raw();
        GoRwWriteGuard { rw: self }
    }

    /// Raw `RLock` for non-lexical call sites (`optiLib`).
    pub fn rlock_raw(&self) {
        // The reader-count RMW is the serialization point the paper's
        // read benchmarks collapse on; the coherence model charges it.
        gocc_htm::contention::charge_shared_rmw();
        if self.reader_count.fetch_add(1, Ordering::Acquire) + 1 < 0 {
            // A writer is pending; park until it finishes.
            self.reader_sem.acquire(false);
        }
    }

    /// Raw `RUnlock`.
    ///
    /// # Panics
    ///
    /// Panics on unlock of an unlocked RWMutex, like Go's fatal error.
    pub fn runlock_raw(&self) {
        gocc_htm::contention::charge_shared_rmw();
        let r = self.reader_count.fetch_add(-1, Ordering::Release) - 1;
        if r < 0 {
            self.runlock_slow(r);
        }
    }

    fn runlock_slow(&self, r: i32) {
        assert!(
            r + 1 != 0 && r + 1 != -MAX_READERS,
            "gosync: RUnlock of unlocked RWMutex"
        );
        // A writer is pending.
        if self.reader_wait.fetch_add(-1, Ordering::AcqRel) - 1 == 0 {
            // The last departing reader unblocks the writer.
            self.writer_sem.release(false);
        }
    }

    /// Raw write `Lock`.
    pub fn lock_raw(&self) {
        // Resolve competition with other writers first (`w.lock_raw`
        // carries its own charge).
        self.w.lock_raw();
        gocc_htm::contention::charge_shared_rmw();
        // Announce to readers that a writer is pending.
        let r = self.reader_count.fetch_add(-MAX_READERS, Ordering::AcqRel);
        // Wait for active readers to drain.
        if r != 0 && self.reader_wait.fetch_add(r, Ordering::AcqRel) + r != 0 {
            self.writer_sem.acquire(false);
        }
    }

    /// Raw write `Unlock`.
    ///
    /// # Panics
    ///
    /// Panics on unlock of an unlocked RWMutex.
    pub fn unlock_raw(&self) {
        // Announce that no writer is pending.
        gocc_htm::contention::charge_shared_rmw();
        let r = self.reader_count.fetch_add(MAX_READERS, Ordering::Release) + MAX_READERS;
        assert!(r < MAX_READERS, "gosync: Unlock of unlocked RWMutex");
        // Unblock readers that queued behind us.
        for _ in 0..r {
            self.reader_sem.release(false);
        }
        self.w.unlock_raw();
    }
}

impl std::fmt::Debug for GoRwMutex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GoRwMutex")
            .field("reader_count", &self.reader_count.load(Ordering::Relaxed))
            .field("write_locked", &self.is_write_locked())
            .finish()
    }
}

/// RAII read guard for [`GoRwMutex`].
#[must_use = "the read lock releases when the guard is dropped"]
#[derive(Debug)]
pub struct GoRwReadGuard<'a> {
    rw: &'a GoRwMutex,
}

impl Drop for GoRwReadGuard<'_> {
    fn drop(&mut self) {
        self.rw.runlock_raw();
    }
}

/// RAII write guard for [`GoRwMutex`].
#[must_use = "the write lock releases when the guard is dropped"]
#[derive(Debug)]
pub struct GoRwWriteGuard<'a> {
    rw: &'a GoRwMutex,
}

impl Drop for GoRwWriteGuard<'_> {
    fn drop(&mut self) {
        self.rw.unlock_raw();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn readers_are_concurrent() {
        let rw = GoRwMutex::new();
        let r1 = rw.read();
        let r2 = rw.read();
        drop(r1);
        drop(r2);
    }

    #[test]
    fn writer_excludes_readers() {
        let rw = Arc::new(GoRwMutex::new());
        let value = Arc::new(AtomicU64::new(0));
        let w = rw.write();
        let (rw2, value2) = (Arc::clone(&rw), Arc::clone(&value));
        let t = std::thread::spawn(move || {
            let _r = rw2.read();
            value2.load(Ordering::SeqCst)
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        value.store(42, Ordering::SeqCst);
        drop(w);
        assert_eq!(
            t.join().unwrap(),
            42,
            "reader must observe the writer's store"
        );
    }

    #[test]
    fn writer_waits_for_readers() {
        let rw = Arc::new(GoRwMutex::new());
        let value = Arc::new(AtomicU64::new(0));
        let r = rw.read();
        let (rw2, value2) = (Arc::clone(&rw), Arc::clone(&value));
        let t = std::thread::spawn(move || {
            let _w = rw2.write();
            value2.store(1, Ordering::SeqCst);
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(
            value.load(Ordering::SeqCst),
            0,
            "writer must wait for active reader"
        );
        drop(r);
        t.join().unwrap();
        assert_eq!(value.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn mixed_read_write_stress() {
        let rw = Arc::new(GoRwMutex::new());
        let value = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for i in 0..6 {
                let rw = Arc::clone(&rw);
                let value = Arc::clone(&value);
                s.spawn(move || {
                    for _ in 0..500 {
                        if i % 3 == 0 {
                            let _w = rw.write();
                            let v = value.load(Ordering::Relaxed);
                            value.store(v + 1, Ordering::Relaxed);
                        } else {
                            let _r = rw.read();
                            let _ = value.load(Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(value.load(Ordering::Relaxed), 2 * 500);
    }

    #[test]
    #[should_panic(expected = "RUnlock of unlocked RWMutex")]
    fn runlock_unlocked_panics() {
        let rw = GoRwMutex::new();
        rw.runlock_raw();
    }

    #[test]
    #[should_panic(expected = "Unlock of unlocked RWMutex")]
    fn unlock_unlocked_panics() {
        let rw = GoRwMutex::new();
        rw.unlock_raw();
    }
}
