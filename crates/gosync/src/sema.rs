//! A port of the Go runtime semaphore (`runtime_Semacquire*`).
//!
//! Go's mutexes block on a runtime semaphore that supports LIFO or FIFO
//! queueing of waiters and direct handoff. This implementation keeps the
//! waiter queue under a tiny internal lock and parks blocked threads with
//! [`std::thread::park`]; that internal lock plays the role of the futex
//! word the Go runtime uses and is never held across parking.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::Thread;

struct Waiter {
    thread: Thread,
    signaled: AtomicBool,
}

#[derive(Default)]
struct SemInner {
    permits: u64,
    queue: VecDeque<Arc<Waiter>>,
}

/// A counting semaphore with LIFO/FIFO waiter queueing.
///
/// Semantics follow the Go runtime's `semacquire1`/`semrelease1`: a release
/// wakes the queue head if any waiter exists, otherwise banks a permit; an
/// acquire consumes a banked permit or parks, queueing LIFO (barging
/// re-waiters) or FIFO (new waiters) as requested.
#[derive(Default)]
pub struct Semaphore {
    inner: Mutex<SemInner>,
}

impl Semaphore {
    /// Creates a semaphore with zero permits.
    #[must_use]
    pub fn new() -> Self {
        Semaphore::default()
    }

    /// Blocks until a permit is available.
    ///
    /// `lifo` queues this waiter at the head of the queue, which Go uses for
    /// waiters that already waited once (they keep their place in line).
    pub fn acquire(&self, lifo: bool) {
        let waiter = {
            let mut inner = self.inner.lock().expect("semaphore poisoned");
            if inner.permits > 0 {
                inner.permits -= 1;
                return;
            }
            let waiter = Arc::new(Waiter {
                thread: std::thread::current(),
                signaled: AtomicBool::new(false),
            });
            if lifo {
                inner.queue.push_front(Arc::clone(&waiter));
            } else {
                inner.queue.push_back(Arc::clone(&waiter));
            }
            waiter
        };
        while !waiter.signaled.load(Ordering::Acquire) {
            std::thread::park();
        }
    }

    /// Makes one permit available, waking the queue head if present.
    ///
    /// `handoff` is accepted for signature parity with the Go runtime; the
    /// ownership-handoff protocol itself lives in the mutex state machine
    /// (the woken waiter inspects the starving bit), so both flavors wake
    /// the head here.
    pub fn release(&self, handoff: bool) {
        let _ = handoff;
        let waiter = {
            let mut inner = self.inner.lock().expect("semaphore poisoned");
            match inner.queue.pop_front() {
                Some(w) => w,
                None => {
                    inner.permits += 1;
                    return;
                }
            }
        };
        waiter.signaled.store(true, Ordering::Release);
        waiter.thread.unpark();
    }

    /// Number of threads currently parked on this semaphore.
    #[must_use]
    pub fn waiters(&self) -> usize {
        self.inner.lock().expect("semaphore poisoned").queue.len()
    }
}

impl std::fmt::Debug for Semaphore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Semaphore")
            .field("waiters", &self.waiters())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn banked_permit_is_consumed() {
        let sem = Semaphore::new();
        sem.release(false);
        sem.acquire(false); // must not block
    }

    #[test]
    fn release_wakes_parked_waiter() {
        let sem = Arc::new(Semaphore::new());
        let woke = Arc::new(AtomicUsize::new(0));
        let (s, w) = (Arc::clone(&sem), Arc::clone(&woke));
        let t = std::thread::spawn(move || {
            s.acquire(false);
            w.fetch_add(1, Ordering::SeqCst);
        });
        while sem.waiters() == 0 {
            std::thread::yield_now();
        }
        assert_eq!(woke.load(Ordering::SeqCst), 0);
        sem.release(false);
        t.join().unwrap();
        assert_eq!(woke.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn fifo_order_of_waiters() {
        let sem = Arc::new(Semaphore::new());
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for i in 0..3 {
            let (s, o) = (Arc::clone(&sem), Arc::clone(&order));
            handles.push(std::thread::spawn(move || {
                s.acquire(false);
                o.lock().unwrap().push(i);
            }));
            // Serialize arrival so queue order is deterministic.
            while sem.waiters() != i + 1 {
                std::thread::yield_now();
            }
        }
        for _ in 0..3 {
            sem.release(false);
            std::thread::sleep(Duration::from_millis(10));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2]);
    }
}
