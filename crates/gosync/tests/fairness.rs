//! Starvation-mode fairness: once the mutex flips to starving, ownership
//! hands off FIFO and no waiter is barged past indefinitely.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use gocc_gosync::{set_procs, GoMutex};

#[test]
fn long_holds_flip_to_starvation_and_hand_off() {
    set_procs(8);
    let m = Arc::new(GoMutex::new());
    let order = Arc::new(Mutex::new(Vec::new()));
    let holder = m.lock();

    let mut handles = Vec::new();
    for i in 0..3 {
        let (m, order) = (Arc::clone(&m), Arc::clone(&order));
        handles.push(std::thread::spawn(move || {
            let _g = m.lock();
            order.lock().unwrap().push(i);
        }));
        // Serialize arrival so queue order is deterministic.
        std::thread::sleep(Duration::from_millis(5));
    }
    // Hold past the 1 ms starvation threshold: all three waiters starve.
    std::thread::sleep(Duration::from_millis(10));
    drop(holder);
    for h in handles {
        h.join().unwrap();
    }
    // Starvation mode hands off in FIFO order of arrival.
    assert_eq!(*order.lock().unwrap(), vec![0, 1, 2]);
    assert!(!m.is_starving(), "last waiter exits starvation mode");
}

#[test]
fn no_lost_wakeups_under_churn() {
    set_procs(8);
    let m = Arc::new(GoMutex::new());
    let acquisitions = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for _ in 0..6 {
            let (m, acq) = (Arc::clone(&m), Arc::clone(&acquisitions));
            s.spawn(move || {
                for i in 0..400u32 {
                    let _g = m.lock();
                    acq.fetch_add(1, Ordering::Relaxed);
                    if i % 64 == 0 {
                        // Occasionally hold long enough to trigger parking
                        // (and sometimes starvation) in the others.
                        std::thread::sleep(Duration::from_micros(300));
                    }
                }
            });
        }
    });
    assert_eq!(acquisitions.load(Ordering::Relaxed), 6 * 400);
    assert!(!m.is_locked());
}

#[test]
fn try_lock_never_steals_from_starving_queue() {
    set_procs(8);
    let m = Arc::new(GoMutex::new());
    let holder = m.lock();
    let m2 = Arc::clone(&m);
    let waiter = std::thread::spawn(move || {
        let _g = m2.lock();
    });
    std::thread::sleep(Duration::from_millis(5));
    // While the mutex is held (and a waiter starves), try_lock must fail
    // rather than barging.
    assert!(m.try_lock().is_none());
    drop(holder);
    waiter.join().unwrap();
    // Starving mode may persist briefly on the state word; try_lock
    // respects it either way (Go's TryLock also refuses starving mutexes).
    let _ = m.try_lock();
}
