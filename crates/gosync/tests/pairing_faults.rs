//! Seeded mis-pairing faults driven through real `GoMutex` sequences,
//! verified by the `LockLedger`: every injected mispair is detected,
//! nothing else is, and the same seed reproduces the same schedule.

use gocc_faultplane::PairingFaultPlan;
use gocc_gosync::{lock_id, GoMutex, LockLedger};

/// Runs `iters` hand-over-hand traversals over `(a, b)`. When the plan
/// injects a fault the driver attempts the *wrong* unlock first — the
/// ledger must flag it, after which the driver recovers with the correct
/// pairing so the mutexes themselves stay balanced.
fn drive(plan: &PairingFaultPlan, site: usize, iters: u64) -> (u64, u64) {
    let a = GoMutex::new();
    let b = GoMutex::new();
    let ledger = LockLedger::new();
    let (ia, ib) = (lock_id(&a), lock_id(&b));
    for _ in 0..iters {
        a.lock_raw();
        ledger.note_lock(ia);
        b.lock_raw();
        ledger.note_lock(ib);
        if plan.mispair(site) {
            // Mis-paired: release `a` but claim to release a lock that is
            // not held. Detection must not disturb the real held state.
            let phantom = lock_id(&ledger);
            assert!(
                !ledger.note_unlock(phantom),
                "phantom unlock must be flagged"
            );
        }
        assert!(ledger.note_unlock(ia));
        a.unlock_raw();
        assert!(ledger.note_unlock(ib));
        b.unlock_raw();
        assert!(!a.is_locked() && !b.is_locked());
    }
    (ledger.mispairs(), plan.count())
}

#[test]
fn injected_mispairs_are_detected_exactly() {
    let plan = PairingFaultPlan::new(99, 0.3);
    let (detected, injected) = drive(&plan, 7, 200);
    assert_eq!(detected, injected, "detect every injection, nothing more");
    assert!(
        injected > 20 && injected < 200,
        "rate 0.3 of 200: {injected}"
    );
}

#[test]
fn same_seed_reproduces_the_fault_schedule() {
    let first = drive(&PairingFaultPlan::new(41, 0.25), 3, 150);
    let second = drive(&PairingFaultPlan::new(41, 0.25), 3, 150);
    assert_eq!(first, second, "replay-by-seed contract");
    let other = drive(&PairingFaultPlan::new(42, 0.25), 3, 150);
    assert_ne!(first.1, other.1, "different seeds must diverge");
}

#[test]
fn zero_rate_injects_nothing() {
    let plan = PairingFaultPlan::new(5, 0.0);
    let (detected, injected) = drive(&plan, 1, 100);
    assert_eq!((detected, injected), (0, 0));
}
