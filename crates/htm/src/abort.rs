//! Transaction abort causes, mirroring the Intel TSX `EAX` status encoding.

use std::fmt;

/// Explicit-abort code used when the elided lock is observed held inside a
/// transaction (the `xabort(0xFF)` convention used by glibc lock elision).
pub const LOCK_HELD_CODE: u8 = 0xFF;

/// Explicit-abort code raised when `FastUnlock` is handed a different mutex
/// than the one memorized by `FastLock` (mis-paired LU-pair recovery, §5.2.3).
pub const MUTEX_MISMATCH_CODE: u8 = 0xFE;

/// Why a transaction aborted.
///
/// The variants mirror the Intel RTM abort-status bits reported in `EAX`
/// after a failed `xbegin`:
///
/// | TSX bit | Variant |
/// |---|---|
/// | bit 0 (XABORT) + imm8 | [`AbortCause::Explicit`] |
/// | bit 1 (may succeed on retry) | [`AbortCause::Retry`] |
/// | bit 2 (data conflict) | [`AbortCause::Conflict`] |
/// | bit 3 (internal buffer overflow) | [`AbortCause::Capacity`] |
/// | bit 4 (debug breakpoint) | [`AbortCause::Debug`] |
/// | bit 5 (abort during nested tx) | [`AbortCause::Nested`] |
/// | n/a (unfriendly instruction, e.g. syscall) | [`AbortCause::Unfriendly`] |
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AbortCause {
    /// The program requested the abort (`xabort imm8`). The payload is the
    /// 8-bit abort code; see [`LOCK_HELD_CODE`] and [`MUTEX_MISMATCH_CODE`].
    Explicit(u8),
    /// Transient failure that may succeed if retried (TSX sets this for
    /// e.g. cache evictions that were not capacity-fatal).
    Retry,
    /// Another agent conflicted with this transaction's read or write set.
    Conflict,
    /// The transaction overflowed the read- or write-set capacity.
    Capacity,
    /// A debug exception occurred inside the transaction.
    Debug,
    /// The abort happened while a nested transaction was active.
    Nested,
    /// The transaction executed an instruction that can never commit under
    /// HTM (IO, syscalls, privileged instructions). Modeled explicitly
    /// because the simulation cannot observe raw instructions.
    Unfriendly,
}

impl AbortCause {
    /// Whether retrying the transaction can plausibly succeed.
    ///
    /// This drives the retry policy in `optilock`: conflicts and transient
    /// failures are worth retrying; capacity overflows and unfriendly
    /// instructions are deterministic and are not.
    #[must_use]
    pub fn is_transient(self) -> bool {
        matches!(
            self,
            AbortCause::Retry | AbortCause::Conflict | AbortCause::Explicit(LOCK_HELD_CODE)
        )
    }

    /// A dense index for per-cause counters, matching the order of
    /// `gocc_telemetry::ABORT_CAUSE_NAMES` (explicit, retry, conflict,
    /// capacity, debug, nested, unfriendly). The explicit payload is not
    /// part of the index; attribution tables fold all explicit codes into
    /// one bucket.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            AbortCause::Explicit(_) => 0,
            AbortCause::Retry => 1,
            AbortCause::Conflict => 2,
            AbortCause::Capacity => 3,
            AbortCause::Debug => 4,
            AbortCause::Nested => 5,
            AbortCause::Unfriendly => 6,
        }
    }

    /// The synthetic TSX `EAX` status word for this cause.
    ///
    /// Useful for tests asserting bit-level compatibility with the RTM ABI.
    #[must_use]
    pub fn eax(self) -> u32 {
        match self {
            AbortCause::Explicit(code) => 0b1 | (u32::from(code) << 24) | 0b10,
            AbortCause::Retry => 0b10,
            AbortCause::Conflict => 0b110,
            AbortCause::Capacity => 0b1000,
            AbortCause::Debug => 0b1_0000,
            AbortCause::Nested => 0b10_0000,
            AbortCause::Unfriendly => 0,
        }
    }
}

impl fmt::Display for AbortCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortCause::Explicit(code) => write!(f, "explicit(0x{code:02X})"),
            AbortCause::Retry => f.write_str("retry"),
            AbortCause::Conflict => f.write_str("conflict"),
            AbortCause::Capacity => f.write_str("capacity"),
            AbortCause::Debug => f.write_str("debug"),
            AbortCause::Nested => f.write_str("nested"),
            AbortCause::Unfriendly => f.write_str("unfriendly"),
        }
    }
}

/// An in-flight transaction abort.
///
/// Hardware rolls back to `xbegin` via a non-local jump; the safe-Rust
/// rendering is an error value that the critical section propagates with
/// `?`. The retry loop in `optilock` catches it, rolls the transaction
/// back, and decides whether to retry on the fast path or fall back to the
/// lock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Abort {
    /// Why the transaction aborted.
    pub cause: AbortCause,
}

impl Abort {
    /// Creates an abort with the given cause.
    #[must_use]
    pub fn new(cause: AbortCause) -> Self {
        Abort { cause }
    }
}

impl fmt::Display for Abort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transaction aborted: {}", self.cause)
    }
}

impl std::error::Error for Abort {}

/// Result type used throughout transactional code.
pub type TxResult<T> = Result<T, Abort>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_causes() {
        assert!(AbortCause::Retry.is_transient());
        assert!(AbortCause::Conflict.is_transient());
        assert!(AbortCause::Explicit(LOCK_HELD_CODE).is_transient());
        assert!(!AbortCause::Capacity.is_transient());
        assert!(!AbortCause::Unfriendly.is_transient());
        assert!(!AbortCause::Explicit(MUTEX_MISMATCH_CODE).is_transient());
    }

    #[test]
    fn eax_encoding_matches_tsx_bits() {
        // XABORT sets bit 0, carries the code in bits 31:24, and sets the
        // retry bit.
        let eax = AbortCause::Explicit(0xAB).eax();
        assert_eq!(eax & 1, 1);
        assert_eq!(eax >> 24, 0xAB);
        // Conflict sets bit 2 and the retry bit.
        assert_eq!(AbortCause::Conflict.eax(), 0b110);
        // Capacity sets bit 3 only (not worth retrying).
        assert_eq!(AbortCause::Capacity.eax(), 0b1000);
    }

    #[test]
    fn index_order_matches_telemetry_names() {
        use gocc_telemetry::ABORT_CAUSE_NAMES;
        for (cause, name) in [
            (AbortCause::Explicit(0xFF), "explicit"),
            (AbortCause::Retry, "retry"),
            (AbortCause::Conflict, "conflict"),
            (AbortCause::Capacity, "capacity"),
            (AbortCause::Debug, "debug"),
            (AbortCause::Nested, "nested"),
            (AbortCause::Unfriendly, "unfriendly"),
        ] {
            assert_eq!(ABORT_CAUSE_NAMES[cause.index()], name);
        }
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(AbortCause::Explicit(0xFF).to_string(), "explicit(0xFF)");
        assert_eq!(
            Abort::new(AbortCause::Capacity).to_string(),
            "transaction aborted: capacity"
        );
    }
}
