//! The global version clock of the TL2 engine.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing global version clock.
///
/// Every committed writing transaction advances the clock by one and stamps
/// the stripes it wrote with the new value. Readers snapshot the clock at
/// begin time and treat any stripe newer than the snapshot as a potential
/// conflict (subject to read-set extension, see `Tx`).
#[derive(Debug, Default)]
pub struct VersionClock {
    now: AtomicU64,
}

impl VersionClock {
    /// Creates a clock starting at version 0.
    #[must_use]
    pub const fn new() -> Self {
        VersionClock {
            now: AtomicU64::new(0),
        }
    }

    /// Current clock value.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now.load(Ordering::Acquire)
    }

    /// Advances the clock and returns the *new* value, which the committing
    /// transaction uses as its write version.
    #[must_use]
    pub fn tick(&self) -> u64 {
        self.now.fetch_add(1, Ordering::AcqRel) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_is_monotonic() {
        let clock = VersionClock::new();
        assert_eq!(clock.now(), 0);
        assert_eq!(clock.tick(), 1);
        assert_eq!(clock.tick(), 2);
        assert_eq!(clock.now(), 2);
    }

    #[test]
    fn concurrent_ticks_are_unique() {
        let clock = VersionClock::new();
        let mut seen = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| (0..1000).map(|_| clock.tick()).collect::<Vec<_>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        });
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 4000);
    }
}
