//! Tunables for the simulated HTM.

use std::sync::Arc;

use gocc_faultplane::HtmFaultPlan;

/// Configuration of the simulated HTM's capacity and structure.
///
/// The defaults model an Intel Coffee Lake core (the paper's testbed): the
/// write set is bounded by the 32 KB 8-way L1D (512 distinct 64-byte lines),
/// the read set by a larger tracking structure (TSX tracks reads in the L3
/// to some extent; we use 4096 lines), and transaction nesting is capped at
/// 7 levels like TSX's `MAX_RTM_NEST_COUNT`.
#[derive(Clone, Debug)]
pub struct HtmConfig {
    /// Maximum number of distinct cache lines a transaction may write.
    pub max_write_lines: usize,
    /// Maximum number of read-set entries a transaction may record.
    pub max_read_entries: usize,
    /// Maximum transaction nesting depth before `AbortCause::Nested`.
    pub max_nesting_depth: usize,
    /// log2 of the number of version stripes. Stripes alias at
    /// `2^stripe_bits` lines; smaller tables increase false conflicts,
    /// which is occasionally useful in tests.
    pub stripe_bits: u32,
    /// Probability (in [0, 1]) that any given transactional read or write
    /// suffers a spurious transient abort, modeling the background abort
    /// rate real TSX exhibits even single-threaded (see the paper's §2,
    /// challenge 3). Zero by default for determinism.
    pub spurious_abort_rate: f64,
    /// Deterministic fault-injection plan. When set, each fast-path
    /// transaction attempt draws once from the plan (keyed by the call
    /// site installed via `Tx::set_fault_site`) and aborts with the drawn
    /// cause — the seeded chaos harness uses this to force every retry /
    /// fallback branch. `None` (the default) injects nothing.
    pub fault_plan: Option<Arc<HtmFaultPlan>>,
}

impl HtmConfig {
    /// Coffee-Lake-like defaults used throughout the evaluation.
    #[must_use]
    pub fn coffee_lake() -> Self {
        HtmConfig {
            max_write_lines: 512,
            max_read_entries: 4096,
            max_nesting_depth: 7,
            stripe_bits: 18,
            spurious_abort_rate: 0.0,
            fault_plan: None,
        }
    }

    /// A deliberately tiny configuration for exercising capacity aborts in
    /// tests without allocating large working sets.
    #[must_use]
    pub fn tiny() -> Self {
        HtmConfig {
            max_write_lines: 8,
            max_read_entries: 16,
            max_nesting_depth: 3,
            stripe_bits: 6,
            spurious_abort_rate: 0.0,
            fault_plan: None,
        }
    }
}

impl Default for HtmConfig {
    fn default() -> Self {
        HtmConfig::coffee_lake()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_model_l1d() {
        let cfg = HtmConfig::default();
        // 512 lines * 64 B = 32 KB, the Coffee Lake L1D size.
        assert_eq!(cfg.max_write_lines * 64, 32 * 1024);
        assert_eq!(cfg.max_nesting_depth, 7);
    }
}
