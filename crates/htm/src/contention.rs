//! The cache-coherence cost model.
//!
//! The paper's speedups are a multicore cache-coherence story: every
//! `RLock`/`RUnlock` performs an atomic RMW on the lock's cache line, and
//! under contention those RMWs serialize on line-ownership transfers —
//! that is what collapses the baseline in Figures 6–8, while elided
//! readers touch no shared line and scale. A one-CPU container has no
//! coherence fabric: contended RMWs cost the same as uncontended ones, so
//! wall-clock alone cannot reproduce the figures' shapes.
//!
//! This module makes the modeled cost explicit, in the same spirit as the
//! capacity model in [`HtmConfig`](crate::HtmConfig): when the benchmark
//! harness declares `N` simulated cores, every RMW on a *shared hot line*
//! (lock words, mutex state, committed write-backs) is charged an extra
//! `rmw_penalty_ns × (N − 1)` of busy-wait, approximating the line
//! transfer latency each additional contender induces. With the default
//! `N = 1` the model is inert: unit tests and single-machine use pay
//! nothing.
//!
//! Both executions are charged symmetrically for genuine ownership
//! transfers: the pessimistic path for its lock-word RMWs, the HTM path
//! for every cache line its commits write back. What the model
//! deliberately does *not* charge is read sharing (MESI shared state) —
//! which is precisely the asymmetry lock elision exploits.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Default modeled cost of one contended line transfer, per extra core.
/// ~60 ns approximates a cross-core L2-to-L2 transfer on the paper's
/// Coffee Lake class of machines. Override with `set_rmw_penalty_ns`.
pub const DEFAULT_RMW_PENALTY_NS: u64 = 60;

static SIM_CORES: AtomicUsize = AtomicUsize::new(1);
static RMW_PENALTY_NS: AtomicU64 = AtomicU64::new(DEFAULT_RMW_PENALTY_NS);

/// Sets the simulated core count (the benchmark's sweep parameter).
/// Returns the previous value. `1` disables the model.
pub fn set_sim_cores(n: usize) -> usize {
    SIM_CORES.swap(n.max(1), Ordering::Relaxed)
}

/// Current simulated core count.
#[must_use]
pub fn sim_cores() -> usize {
    SIM_CORES.load(Ordering::Relaxed)
}

/// Overrides the per-extra-core RMW penalty (nanoseconds).
pub fn set_rmw_penalty_ns(ns: u64) -> u64 {
    RMW_PENALTY_NS.swap(ns, Ordering::Relaxed)
}

/// Charges one contended-RMW line transfer under the current model.
///
/// Call sites are the places a real machine would bounce a cache line in
/// Modified state between cores: mutex/RWMutex state words, elidable lock
/// words, and transactional commit write-backs.
#[inline]
pub fn charge_shared_rmw() {
    let cores = SIM_CORES.load(Ordering::Relaxed);
    if cores <= 1 {
        return;
    }
    let ns = RMW_PENALTY_NS.load(Ordering::Relaxed) * (cores as u64 - 1);
    spin_ns(ns);
}

/// Busy-waits approximately `ns` nanoseconds (calibrated spin).
pub fn spin_ns(ns: u64) {
    let per_ns = *SPINS_PER_NS.get_or_init(calibrate);
    let iters = (ns as f64 * per_ns) as u64;
    for _ in 0..iters {
        std::hint::spin_loop();
    }
}

static SPINS_PER_NS: OnceLock<f64> = OnceLock::new();

fn calibrate() -> f64 {
    // Time a fixed spin burst; repeat and take the max rate to dodge
    // scheduler preemption during calibration.
    let mut best = 0.0f64;
    for _ in 0..3 {
        let iters = 2_000_000u64;
        let t0 = std::time::Instant::now();
        for _ in 0..iters {
            std::hint::spin_loop();
        }
        let ns = t0.elapsed().as_nanos().max(1) as f64;
        best = best.max(iters as f64 / ns);
    }
    best.max(0.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_at_one_core() {
        assert_eq!(sim_cores(), 1);
        let t0 = std::time::Instant::now();
        for _ in 0..10_000 {
            charge_shared_rmw();
        }
        assert!(
            t0.elapsed().as_millis() < 50,
            "model must be free when disabled"
        );
    }

    #[test]
    fn charges_scale_with_cores() {
        let prev = set_sim_cores(8);
        let t0 = std::time::Instant::now();
        for _ in 0..1_000 {
            charge_shared_rmw();
        }
        let charged = t0.elapsed();
        set_sim_cores(prev.max(1));
        // 1000 × 60ns × 7 ≈ 420µs of modeled transfer time.
        assert!(
            charged.as_micros() >= 200,
            "expected modeled cost, got {charged:?}"
        );
    }

    #[test]
    fn spin_ns_is_roughly_calibrated() {
        let t0 = std::time::Instant::now();
        spin_ns(200_000);
        let e = t0.elapsed().as_nanos();
        assert!(e >= 50_000, "spin far too short: {e}ns");
    }
}
