//! Reusable per-thread transaction contexts — the allocation-free hot
//! path.
//!
//! A hardware transaction costs nothing to *start*: `xbegin` checkpoints
//! registers, and the cache itself is the read/write set. The first
//! version of this engine paid a `HashMap` + `HashSet` + `Vec` heap
//! allocation per attempt instead, which dominated every uncontended
//! section (see `BENCH_hotpath.json`). This module replaces those with a
//! [`TxContext`]: one preallocated arena per OS thread, checked out by
//! [`acquire`] at `Tx::fast` and returned by [`release`] at
//! commit/rollback, so a steady-state section allocates nothing.
//!
//! Layout choices, and why:
//!
//! * **Write set**: an open-addressed table of [`WriteSlot`]s keyed by
//!   cell address ([`WRITE_TABLE_SLOTS`] slots, at most
//!   [`MAX_WRITE_ENTRIES`] live entries so the load factor stays ≤ 0.5
//!   and linear probes stay short). Write sets of ≤ 8 entries — the
//!   overwhelming majority of real sections — skip hashing entirely and
//!   linear-scan the insertion-order list.
//! * **Inline staged values**: each slot stores the staged value in a
//!   32-byte, 8-aligned buffer ([`INLINE_VALUE_BYTES`]) plus a
//!   monomorphized write-back function pointer, replacing the old
//!   `Box<dyn WriteSlot>` per write. Values that do not fit abort with
//!   `AbortCause::Capacity` — on hardware, too, unfriendly data aborts.
//! * **Epoch reset**: slots carry a generation tag; [`TxContext::reset`]
//!   bumps the context generation instead of touching 4096 slots, so
//!   reuse is O(live vectors), not O(table).
//! * **Commit order**: distinct write stripes are kept sorted (binary-
//!   search insertion at write time) in a preallocated buffer, so commit
//!   acquires stripe locks in deadlock-free order without the old
//!   collect-into-a-fresh-`Vec`-then-sort step.
//!
//! Capacities are *physical* bounds of the arena; the modeled HTM bounds
//! in [`HtmConfig`](crate::HtmConfig) are clamped to them. Overflowing a
//! physical bound maps to the paper's capacity-abort cause (which the
//! perceptron already learns from) and bumps a dedicated statistic so the
//! two are distinguishable in telemetry.

use std::cell::Cell;

use crate::gate::LockWord;
use crate::stripe::{StripeId, StripeSnapshot};

/// log2 of [`WRITE_TABLE_SLOTS`].
const WRITE_TABLE_BITS: u32 = 12;
/// Open-addressed write-table size (power of two).
pub(crate) const WRITE_TABLE_SLOTS: usize = 1 << WRITE_TABLE_BITS;
/// Hard cap on distinct staged writes (≤ 50% table load).
pub(crate) const MAX_WRITE_ENTRIES: usize = WRITE_TABLE_SLOTS / 2;
/// Hard cap on read-set entries.
pub(crate) const MAX_READ_ENTRIES: usize = 4096;
/// Hard cap on distinct written cache lines.
pub(crate) const MAX_WRITE_LINES: usize = 512;
/// Hard cap on lock-word subscriptions (nesting is capped at 7, so 16
/// leaves slack for mixed read/write elision in one flat transaction).
pub(crate) const MAX_SUBS: usize = 16;
/// Staged values are stored inline up to this many bytes…
pub(crate) const INLINE_VALUE_BYTES: usize = 32;
/// …with at most this alignment (the buffer is `[u64; 4]`).
pub(crate) const INLINE_VALUE_ALIGN: usize = 8;
const INLINE_VALUE_WORDS: usize = INLINE_VALUE_BYTES / 8;
/// Write sets at or below this size are probed by linear scan over the
/// insertion order instead of hashing.
const SMALL_WRITE_SCAN: usize = 8;

/// One validated read: the stripe and the snapshot it must still match.
pub(crate) struct ReadEntry {
    pub(crate) stripe: StripeId,
    pub(crate) seen: StripeSnapshot,
}

/// # Safety
///
/// Only used as the write-back for never-claimed slots; never invoked.
unsafe fn write_back_unset(_dst: *mut u8, _src: *const u8) {
    unreachable!("write-back of an unclaimed slot");
}

/// One staged write: target address, its stripe, the staged bytes and a
/// monomorphized write-back that knows the erased type.
pub(crate) struct WriteSlot {
    /// Slot is live iff this equals the owning context's generation.
    gen: u64,
    /// The target `TxVar`'s value address (the write-set key).
    pub(crate) addr: usize,
    /// Stripe covering `addr` (cached at insert).
    pub(crate) stripe: StripeId,
    /// Volatile-stores the staged bytes to the target under the stripe
    /// lock. Monomorphized per `T` by `Tx::write`.
    ///
    /// # Safety
    ///
    /// `dst` must be the `TxVar<T>` value pointer this slot was staged
    /// for and `src` must point at a valid staged `T` (the slot buffer).
    pub(crate) write_back: unsafe fn(dst: *mut u8, src: *const u8),
    /// Inline staged value storage (size ≤ 32, align ≤ 8).
    pub(crate) buf: [u64; INLINE_VALUE_WORDS],
}

/// A reusable transaction arena. See the module docs for layout.
///
/// The raw `LockWord` pointers in `subs` (and the raw addresses in the
/// write set) make this deliberately `!Send`/`!Sync`: a context belongs
/// to the thread that checked it out, like an HTM context belongs to a
/// core.
pub(crate) struct TxContext {
    /// Current generation; slots with a different tag are free.
    gen: u64,
    /// The open-addressed write table.
    pub(crate) slots: Box<[WriteSlot]>,
    /// Live slot indices in insertion order (write-back iteration and
    /// the small-set linear-scan path).
    pub(crate) order: Vec<u32>,
    /// The read set.
    pub(crate) reads: Vec<ReadEntry>,
    /// Distinct written cache lines, sorted (the modeled L1D bound).
    pub(crate) lines: Vec<usize>,
    /// Distinct write stripes, sorted — commit's lock-acquisition order.
    pub(crate) stripes: Vec<StripeId>,
    /// Commit-time scratch: stripes actually locked, with pre-lock
    /// snapshots, in `stripes` order (so it stays sorted).
    pub(crate) held: Vec<(StripeId, StripeSnapshot)>,
    /// Lock-word subscriptions (§5.4) as raw pointers: the context is
    /// thread-owned storage and carries no lifetime; `Tx<'a>` guarantees
    /// the words outlive every dereference.
    pub(crate) subs: Vec<(*const LockWord, u64)>,
}

impl TxContext {
    pub(crate) fn new() -> Box<TxContext> {
        let slots: Box<[WriteSlot]> = (0..WRITE_TABLE_SLOTS)
            .map(|_| WriteSlot {
                gen: 0,
                addr: 0,
                stripe: StripeId(0),
                write_back: write_back_unset,
                buf: [0; INLINE_VALUE_WORDS],
            })
            .collect();
        Box::new(TxContext {
            gen: 1,
            slots,
            order: Vec::with_capacity(MAX_WRITE_ENTRIES),
            reads: Vec::with_capacity(MAX_READ_ENTRIES),
            lines: Vec::with_capacity(MAX_WRITE_LINES),
            stripes: Vec::with_capacity(MAX_WRITE_LINES),
            held: Vec::with_capacity(MAX_WRITE_LINES),
            subs: Vec::with_capacity(MAX_SUBS),
        })
    }

    /// O(1) wipe: bump the generation (freeing every table slot) and
    /// clear the live vectors (`Copy` contents, so no drop work).
    pub(crate) fn reset(&mut self) {
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // A 2^64 generation wrap cannot happen in practice, but if it
            // did, stale slots tagged 0 would look live: hard-clear once.
            for s in self.slots.iter_mut() {
                s.gen = 0;
            }
            self.gen = 1;
        }
        self.order.clear();
        self.reads.clear();
        self.lines.clear();
        self.stripes.clear();
        self.held.clear();
        self.subs.clear();
    }

    /// Whether the context holds no transaction state (post-reset).
    pub(crate) fn is_clean(&self) -> bool {
        self.order.is_empty()
            && self.reads.is_empty()
            && self.lines.is_empty()
            && self.stripes.is_empty()
            && self.held.is_empty()
            && self.subs.is_empty()
    }

    #[inline]
    fn hash_probe(&self, addr: usize) -> (u32, bool) {
        // Fibonacci hash of the address; linear probe. Load ≤ 0.5 plus
        // no in-generation deletions guarantee termination at either the
        // entry or the first free slot.
        let mut i =
            ((addr as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - WRITE_TABLE_BITS)) as usize;
        loop {
            let slot = &self.slots[i];
            if slot.gen != self.gen {
                return (i as u32, false);
            }
            if slot.addr == addr {
                return (i as u32, true);
            }
            i = (i + 1) & (WRITE_TABLE_SLOTS - 1);
        }
    }

    /// Read-your-own-write lookup: `None` on a miss without probing the
    /// table when the write set is empty or small.
    #[inline]
    pub(crate) fn lookup(&self, addr: usize) -> Option<u32> {
        let n = self.order.len();
        if n == 0 {
            return None;
        }
        if n <= SMALL_WRITE_SCAN {
            return self
                .order
                .iter()
                .copied()
                .find(|&i| self.slots[i as usize].addr == addr);
        }
        let (idx, found) = self.hash_probe(addr);
        found.then_some(idx)
    }

    /// Write-path probe: `(slot index, found)`. On a miss the index is
    /// the vacant slot an insert must claim.
    #[inline]
    pub(crate) fn find_for_write(&self, addr: usize) -> (u32, bool) {
        if self.order.len() <= SMALL_WRITE_SCAN {
            for &i in &self.order {
                if self.slots[i as usize].addr == addr {
                    return (i, true);
                }
            }
            let (idx, found) = self.hash_probe(addr);
            debug_assert!(!found, "scan missed an entry the table has");
            return (idx, false);
        }
        self.hash_probe(addr)
    }

    /// Claims a vacant slot returned by [`Self::find_for_write`]. The
    /// caller writes the staged value into the returned slot's `buf`.
    #[inline]
    pub(crate) fn claim(
        &mut self,
        idx: u32,
        addr: usize,
        stripe: StripeId,
        write_back: unsafe fn(*mut u8, *const u8),
    ) -> &mut WriteSlot {
        debug_assert!(self.order.len() < MAX_WRITE_ENTRIES, "claim past cap");
        self.order.push(idx);
        let gen = self.gen;
        let slot = &mut self.slots[idx as usize];
        debug_assert!(slot.gen != gen, "claiming a live slot");
        slot.gen = gen;
        slot.addr = addr;
        slot.stripe = stripe;
        slot.write_back = write_back;
        slot
    }

    /// Records a written cache line against `limit` (the modeled L1D
    /// bound, already clamped to [`MAX_WRITE_LINES`]). `Ok(true)` = new
    /// line, `Ok(false)` = already tracked, `Err(())` = over budget.
    #[inline]
    pub(crate) fn note_write_line(&mut self, line: usize, limit: usize) -> Result<bool, ()> {
        match self.lines.binary_search(&line) {
            Ok(_) => Ok(false),
            Err(pos) => {
                if self.lines.len() >= limit {
                    return Err(());
                }
                self.lines.insert(pos, line);
                Ok(true)
            }
        }
    }

    /// Adds a write stripe to the sorted commit-order buffer (idempotent).
    #[inline]
    pub(crate) fn note_stripe(&mut self, stripe: StripeId) {
        if let Err(pos) = self.stripes.binary_search(&stripe) {
            self.stripes.insert(pos, stripe);
        }
    }
}

thread_local! {
    /// At most one cached context per thread. `const`-initialized so the
    /// first access performs no lazy-init bookkeeping.
    static CACHED: Cell<Option<Box<TxContext>>> = const { Cell::new(None) };
}

/// Checks out this thread's context (or builds one, first use only).
/// Returns `(context, reused)`.
pub(crate) fn acquire() -> (Box<TxContext>, bool) {
    match CACHED.try_with(Cell::take) {
        Ok(Some(ctx)) => {
            debug_assert!(ctx.is_clean(), "cached context not reset");
            (ctx, true)
        }
        // Slot empty (first use, or an overlapping transaction holds the
        // context) or TLS already destroyed: build a fresh arena.
        Ok(None) | Err(_) => (TxContext::new(), false),
    }
}

/// Resets `ctx` and caches it for this thread's next transaction. When
/// the slot is already occupied (overlapping transactions released out
/// of order) the extra context is simply dropped.
pub(crate) fn release(mut ctx: Box<TxContext>) {
    ctx.reset();
    let _ = CACHED.try_with(move |c| {
        let existing = c.take();
        if existing.is_none() {
            c.set(Some(ctx));
        } else {
            c.set(existing);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    unsafe fn wb_u64(dst: *mut u8, src: *const u8) {
        // SAFETY: test-only; caller passes matching u64 pointers.
        unsafe { dst.cast::<u64>().write(*src.cast::<u64>()) }
    }

    #[test]
    fn insert_lookup_roundtrip_across_the_small_scan_boundary() {
        let mut ctx = TxContext::new();
        // Addresses 8 apart (same line is fine here; lines are separate).
        let addrs: Vec<usize> = (0..64).map(|i| 0x10_0000 + i * 8).collect();
        for (n, &addr) in addrs.iter().enumerate() {
            let (idx, found) = ctx.find_for_write(addr);
            assert!(!found, "fresh addr reported found at n={n}");
            let slot = ctx.claim(idx, addr, StripeId(0), wb_u64);
            slot.buf[0] = addr as u64;
        }
        for &addr in &addrs {
            let idx = ctx.lookup(addr).expect("inserted addr must be found");
            assert_eq!(ctx.slots[idx as usize].buf[0], addr as u64);
            let (widx, found) = ctx.find_for_write(addr);
            assert!(found);
            assert_eq!(widx, idx);
        }
        assert_eq!(ctx.lookup(0xdead_0000), None);
        assert_eq!(ctx.order.len(), 64);
    }

    #[test]
    fn reset_frees_every_slot_without_touching_the_table() {
        let mut ctx = TxContext::new();
        for i in 0..100usize {
            let addr = 0x20_0000 + i * 8;
            let (idx, found) = ctx.find_for_write(addr);
            assert!(!found);
            ctx.claim(idx, addr, StripeId(0), wb_u64);
        }
        ctx.reads.push(ReadEntry {
            stripe: StripeId(1),
            seen: StripeSnapshot(0),
        });
        ctx.note_write_line(42, MAX_WRITE_LINES).unwrap();
        ctx.note_stripe(StripeId(7));
        ctx.reset();
        assert!(ctx.is_clean());
        for i in 0..100usize {
            assert_eq!(ctx.lookup(0x20_0000 + i * 8), None, "stale entry visible");
        }
    }

    #[test]
    fn lines_and_stripes_stay_sorted_and_deduped() {
        let mut ctx = TxContext::new();
        for line in [5usize, 1, 9, 5, 3, 1] {
            ctx.note_write_line(line, 4).unwrap();
        }
        assert_eq!(ctx.lines, vec![1, 3, 5, 9]);
        assert_eq!(ctx.note_write_line(7, 4), Err(()), "over the limit");
        assert_eq!(ctx.note_write_line(3, 4), Ok(false), "dup is still fine");
        for s in [8u32, 2, 8, 0, 2] {
            ctx.note_stripe(StripeId(s));
        }
        assert_eq!(ctx.stripes, vec![StripeId(0), StripeId(2), StripeId(8)]);
    }

    #[test]
    fn acquire_release_reuses_one_context_per_thread() {
        // Drain any context cached by other tests on this thread.
        let (first, _) = acquire();
        let first_ptr = &*first as *const TxContext as usize;
        release(first);
        let (second, reused) = acquire();
        assert!(reused, "released context must be reused");
        assert_eq!(&*second as *const TxContext as usize, first_ptr);
        // Overlapping acquire gets a fresh arena…
        let (third, reused) = acquire();
        assert!(!reused);
        release(second);
        // …and releasing it into an occupied slot drops it.
        release(third);
        let (fourth, reused) = acquire();
        assert!(reused);
        assert_eq!(&*fourth as *const TxContext as usize, first_ptr);
        release(fourth);
    }

    #[test]
    fn contexts_are_fresh_per_thread() {
        let (a, _) = acquire();
        let a_ptr = &*a as *const TxContext as usize;
        release(a);
        std::thread::spawn(move || {
            let (b, reused) = acquire();
            assert!(!reused, "new thread must not see another thread's arena");
            assert_ne!(&*b as *const TxContext as usize, a_ptr);
            release(b);
        })
        .join()
        .unwrap();
    }
}
