//! Lock-word subscription and slow-path/fast-path commit interoperation.
//!
//! The paper (§5.4) elides a lock by having the fast path *subscribe* to the
//! lock word: "the act of checking adds the lock word to the transaction
//! read-set, and hence, if a concurrent execution on the slowpath acquires
//! the same lock during the transaction, the fastpath immediately aborts".
//!
//! In the software simulation, a committing transaction's write-back is not
//! instantaneous the way a hardware commit is, so in addition to the
//! versioned lock word this module provides a *commit gate*: a slow-path
//! acquirer (writer **or** reader) waits for in-flight fast-path write-backs
//! on the same lock to drain before entering its critical section.
//! Fast-path commits that start after the slow path bumped the word fail
//! lock-word validation and abort, so slow-path owners always observe fully
//! committed state.
//!
//! The word also models `sync.RWMutex`: it carries a writer-held bit and a
//! slow-path reader count, because eliding a *read* lock must tolerate
//! concurrent slow readers (they do not conflict) while eliding a *write*
//! lock must abort if any slow reader is present.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Writer-held flag (bit 0).
const WRITER_BIT: u64 = 1;
/// One slow-path reader (bits 1..=20).
const READER_UNIT: u64 = 1 << 1;
/// Mask extracting the reader count.
const READER_MASK: u64 = ((1 << 20) - 1) << 1;
/// One version increment (bits 21..).
const VERSION_UNIT: u64 = 1 << 21;

/// The elidable lock word plus its commit gate.
///
/// Layout of `word`: bit 0 is the writer-held flag, bits 1..=20 count
/// slow-path readers, bits 63:21 are a version that changes on every
/// slow-path acquire and release, so transactional subscribers detect any
/// slow-path activity overlapping their execution — exactly like the lock's
/// cache line sitting in a hardware transaction's read set.
#[derive(Debug, Default)]
pub struct LockWord {
    word: AtomicU64,
    committers: AtomicUsize,
}

/// A commit gate handle; currently an alias-like view over [`LockWord`].
///
/// Kept as a distinct name so call sites document *why* they touch the
/// structure (gating write-backs vs. reading lock state).
pub type CommitGate = LockWord;

impl LockWord {
    /// Creates a released lock word at version 0.
    #[must_use]
    pub fn new() -> Self {
        LockWord::default()
    }

    /// Whether a slow-path writer currently holds the lock.
    #[must_use]
    pub fn is_write_held(&self) -> bool {
        self.word.load(Ordering::SeqCst) & WRITER_BIT != 0
    }

    /// Number of slow-path readers currently inside the lock.
    #[must_use]
    pub fn slow_readers(&self) -> u64 {
        (self.word.load(Ordering::SeqCst) & READER_MASK) >> 1
    }

    /// Snapshot of the raw word for transactional subscription.
    #[must_use]
    pub fn observe(&self) -> u64 {
        self.word.load(Ordering::SeqCst)
    }

    /// Whether a snapshot shows the lock unavailable to a *write* elision
    /// (writer held or slow readers present).
    #[must_use]
    pub fn snapshot_blocks_write(snapshot: u64) -> bool {
        snapshot & (WRITER_BIT | READER_MASK) != 0
    }

    /// Whether a snapshot shows the lock unavailable to a *read* elision
    /// (writer held; slow readers are compatible).
    #[must_use]
    pub fn snapshot_blocks_read(snapshot: u64) -> bool {
        snapshot & WRITER_BIT != 0
    }

    /// Validates that the word has not changed since `seen` was observed.
    #[must_use]
    pub fn validate(&self, seen: u64) -> bool {
        self.word.load(Ordering::SeqCst) == seen
    }

    /// Marks the lock held by a slow-path writer (after the real mutex was
    /// acquired) and drains in-flight fast-path commits.
    pub fn mark_held_and_drain(&self) {
        let prev = self
            .word
            .fetch_add(WRITER_BIT + VERSION_UNIT, Ordering::SeqCst);
        debug_assert_eq!(prev & WRITER_BIT, 0, "lock word already writer-held");
        self.drain();
    }

    /// Clears the writer-held bit on slow-path release (bumps the version).
    pub fn clear_held(&self) {
        let prev = self
            .word
            .fetch_add(VERSION_UNIT.wrapping_sub(WRITER_BIT), Ordering::SeqCst);
        debug_assert_eq!(prev & WRITER_BIT, WRITER_BIT, "releasing unheld lock word");
    }

    /// Registers a slow-path reader (after the real `RLock` succeeded) and
    /// drains in-flight fast-path commits, which may be writers.
    pub fn reader_enter_and_drain(&self) {
        self.word
            .fetch_add(READER_UNIT + VERSION_UNIT, Ordering::SeqCst);
        self.drain();
    }

    /// Deregisters a slow-path reader (bumps the version).
    pub fn reader_exit(&self) {
        let prev = self
            .word
            .fetch_add(VERSION_UNIT.wrapping_sub(READER_UNIT), Ordering::SeqCst);
        debug_assert!(prev & READER_MASK != 0, "reader_exit without reader");
    }

    fn drain(&self) {
        // Wait for fast-path write-backs that validated before our bump;
        // anything entering afterwards fails validation and aborts. Spin
        // briefly, then yield — on oversubscribed machines the committer
        // needs the CPU to finish its write-back.
        let mut spins = 0u32;
        while self.committers.load(Ordering::SeqCst) != 0 {
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Registers an in-flight fast-path commit write-back.
    pub fn committer_enter(&self) {
        self.committers.fetch_add(1, Ordering::SeqCst);
    }

    /// Deregisters a fast-path commit write-back.
    pub fn committer_exit(&self) {
        let prev = self.committers.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev > 0, "committer_exit without enter");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_cycle_bumps_version() {
        let lw = LockWord::new();
        assert!(!lw.is_write_held());
        let v0 = lw.observe();
        lw.mark_held_and_drain();
        assert!(lw.is_write_held());
        assert!(!lw.validate(v0));
        lw.clear_held();
        assert!(!lw.is_write_held());
        // Version moved twice (acquire + release), flags are clear.
        assert_eq!(lw.observe(), v0 + 2 * VERSION_UNIT);
    }

    #[test]
    fn reader_cycle_counts_and_bumps() {
        let lw = LockWord::new();
        let v0 = lw.observe();
        lw.reader_enter_and_drain();
        lw.reader_enter_and_drain();
        assert_eq!(lw.slow_readers(), 2);
        assert!(!lw.is_write_held());
        assert!(!lw.validate(v0), "reader entry must invalidate subscribers");
        lw.reader_exit();
        lw.reader_exit();
        assert_eq!(lw.slow_readers(), 0);
    }

    #[test]
    fn snapshot_compatibility_rules() {
        let lw = LockWord::new();
        let free = lw.observe();
        assert!(!LockWord::snapshot_blocks_read(free));
        assert!(!LockWord::snapshot_blocks_write(free));
        lw.reader_enter_and_drain();
        let with_reader = lw.observe();
        assert!(
            !LockWord::snapshot_blocks_read(with_reader),
            "readers tolerate slow readers"
        );
        assert!(
            LockWord::snapshot_blocks_write(with_reader),
            "writers must abort on readers"
        );
        lw.reader_exit();
        lw.mark_held_and_drain();
        let with_writer = lw.observe();
        assert!(LockWord::snapshot_blocks_read(with_writer));
        assert!(LockWord::snapshot_blocks_write(with_writer));
        lw.clear_held();
    }

    #[test]
    fn drain_waits_for_committers() {
        let lw = std::sync::Arc::new(LockWord::new());
        lw.committer_enter();
        let lw2 = lw.clone();
        let t = std::thread::spawn(move || {
            lw2.mark_held_and_drain();
            true
        });
        // Give the acquirer a chance to block on the drain loop.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(
            !t.is_finished(),
            "drain must wait while a committer is active"
        );
        lw.committer_exit();
        assert!(t.join().unwrap());
        assert!(lw.is_write_held());
    }

    #[test]
    fn subscription_sees_slow_acquire() {
        let lw = LockWord::new();
        let seen = lw.observe();
        lw.mark_held_and_drain();
        assert!(!lw.validate(seen));
        lw.clear_held();
        // Even after release the version differs — overlap is detected.
        assert!(!lw.validate(seen));
    }
}
