//! Software Hardware-Transactional-Memory emulation for GOCC.
//!
//! This crate is the substrate that stands in for Intel TSX/RTM, which the
//! paper "Optimistic Concurrency Control for Real-world Go Programs"
//! (USENIX ATC 2021) relies on but which is disabled on modern CPUs. It
//! provides optimistic, atomic, abortable code regions with the same
//! *observable contract* as RTM:
//!
//! * a region either commits entirely or rolls back with a machine-readable
//!   abort cause ([`AbortCause`]) mirroring the TSX `EAX` status bits;
//! * conflicts are detected at cache-line granularity — two variables that
//!   fall into the same 64-byte line share a version stripe, so false
//!   sharing causes real aborts, as on hardware;
//! * capacity is bounded: transactions that read or write too many distinct
//!   lines abort with [`AbortCause::Capacity`];
//! * nesting is flat (subsumption) with a depth cap, like TSX;
//! * "HTM-unfriendly" operations (IO, syscalls) abort the transaction via
//!   [`Tx::unfriendly`].
//!
//! The engine is a TL2-style software transactional memory: reads are
//! version-validated against a global clock, writes are buffered and
//! published at commit under per-stripe versioned locks. Transactional data
//! lives in [`TxVar`] cells; the same cells support a *direct* (slow-path)
//! mode used when the guarding mutex is actually held, so workload code is
//! written once and runs on both the fast path and the fall-back path.
//!
//! # Interoperability with lock slow paths
//!
//! [`CommitGate`] implements the elision hand-shake from §5.4 of the paper:
//! a fast-path transaction subscribes to the lock word (a [`LockWord`]) so
//! that a slow-path acquisition invalidates it, and a slow-path owner drains
//! in-flight commit write-backs before entering its critical section.
//!
//! # Safety model
//!
//! Shared data guarded by a mutex must only be accessed (a) inside
//! transactions eliding that mutex or (b) in direct mode while that mutex is
//! held. This is exactly the "properly synchronized program" precondition of
//! the paper; see [`TxVar`] for details.

pub mod contention;

mod abort;
mod clock;
mod config;
mod ctx;
mod gate;
mod runtime;
mod stats;
mod stripe;
mod tx;
mod txvar;

pub use abort::{Abort, AbortCause, TxResult, LOCK_HELD_CODE, MUTEX_MISMATCH_CODE};
pub use config::HtmConfig;
pub use gate::{CommitGate, LockWord};
pub use runtime::HtmRuntime;
pub use stats::{HtmStats, StatsSnapshot};
pub use stripe::{StripeId, StripeTable};
pub use tx::{Elision, Tx, TxMode};
pub use txvar::{Padded, TxVar};
