//! The shared state of one simulated HTM domain.

use std::sync::OnceLock;

use crate::clock::VersionClock;
use crate::config::HtmConfig;
use crate::stats::HtmStats;
use crate::stripe::StripeTable;

/// One simulated HTM domain: a stripe table, a version clock, statistics and
/// configuration.
///
/// Like a physical machine has one cache-coherence fabric, a process
/// normally uses the single [`HtmRuntime::global`] instance; tests create
/// private runtimes (e.g. with [`HtmConfig::tiny`]) to exercise capacity
/// and collision behavior deterministically.
///
/// Conflict detection only works between transactions that share a runtime;
/// all `TxVar`s of one data structure must be accessed through the same
/// runtime, which holds by construction when using [`HtmRuntime::global`].
#[derive(Debug)]
pub struct HtmRuntime {
    table: StripeTable,
    clock: VersionClock,
    stats: HtmStats,
    config: HtmConfig,
}

impl HtmRuntime {
    /// Creates a new, private HTM domain.
    #[must_use]
    pub fn new(config: HtmConfig) -> Self {
        HtmRuntime {
            table: StripeTable::new(config.stripe_bits),
            clock: VersionClock::new(),
            stats: HtmStats::new(),
            config,
        }
    }

    /// The process-wide HTM domain with [`HtmConfig::coffee_lake`] defaults.
    #[must_use]
    pub fn global() -> &'static HtmRuntime {
        static GLOBAL: OnceLock<HtmRuntime> = OnceLock::new();
        GLOBAL.get_or_init(|| HtmRuntime::new(HtmConfig::coffee_lake()))
    }

    /// The stripe table of this domain.
    #[must_use]
    pub fn table(&self) -> &StripeTable {
        &self.table
    }

    /// The version clock of this domain.
    #[must_use]
    pub(crate) fn clock(&self) -> &VersionClock {
        &self.clock
    }

    /// Current TL2 version-clock value — the logical timestamp the commit
    /// protocol orders by. Exposed for observability (flight-recorder HTM
    /// attempt spans carry it), not for transactional use.
    #[must_use]
    pub fn clock_now(&self) -> u64 {
        self.clock.now()
    }

    /// Statistics counters of this domain.
    #[must_use]
    pub fn stats(&self) -> &HtmStats {
        &self.stats
    }

    /// Configuration of this domain.
    #[must_use]
    pub fn config(&self) -> &HtmConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_is_singleton() {
        let a = HtmRuntime::global() as *const _;
        let b = HtmRuntime::global() as *const _;
        assert_eq!(a, b);
    }

    #[test]
    fn private_runtime_respects_config() {
        let rt = HtmRuntime::new(HtmConfig::tiny());
        assert_eq!(rt.table().len(), 64);
        assert_eq!(rt.config().max_write_lines, 8);
    }
}
