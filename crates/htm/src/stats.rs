//! Runtime-wide transaction statistics.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::abort::AbortCause;

/// Lock-free counters describing transactional behavior.
///
/// All counters are updated with relaxed ordering; they are diagnostics, not
/// synchronization. The paper's evaluation reasons about abort causes (e.g.
/// Flatten at 8 cores aborts on conflicts until the perceptron backs off),
/// and these counters are how the reproduction observes the same dynamics.
#[derive(Debug, Default)]
pub struct HtmStats {
    starts: AtomicU64,
    commits: AtomicU64,
    read_only_commits: AtomicU64,
    aborts_explicit: AtomicU64,
    aborts_retry: AtomicU64,
    aborts_conflict: AtomicU64,
    aborts_capacity: AtomicU64,
    aborts_debug: AtomicU64,
    aborts_nested: AtomicU64,
    aborts_unfriendly: AtomicU64,
    direct_sections: AtomicU64,
    ctx_fresh: AtomicU64,
    inline_overflows: AtomicU64,
}

/// A point-in-time copy of [`HtmStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Transactions started (fast path attempts).
    pub starts: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Committed transactions that wrote nothing.
    pub read_only_commits: u64,
    /// Aborts by cause.
    pub aborts_explicit: u64,
    /// Transient aborts.
    pub aborts_retry: u64,
    /// Data-conflict aborts.
    pub aborts_conflict: u64,
    /// Capacity-overflow aborts.
    pub aborts_capacity: u64,
    /// Debug aborts.
    pub aborts_debug: u64,
    /// Nesting-depth aborts.
    pub aborts_nested: u64,
    /// Unfriendly-instruction aborts.
    pub aborts_unfriendly: u64,
    /// Critical sections executed in direct (slow-path) mode.
    pub direct_sections: u64,
    /// Fast-path attempts that had to *allocate* their `TxContext` arena
    /// (first section on a thread, or overlapping transactions).
    pub ctx_fresh: u64,
    /// Fast-path attempts served by a cached thread-local arena. Derived:
    /// every fast start acquires exactly one context, so this is
    /// `starts - ctx_fresh`.
    pub ctx_reused: u64,
    /// Capacity aborts caused by a *physical* arena bound (inline write
    /// table, staged-value size, read/subscription capacity) rather than
    /// the modeled HTM capacity. A subset of `aborts_capacity`.
    pub inline_overflows: u64,
}

impl StatsSnapshot {
    /// Total aborts across all causes.
    #[must_use]
    pub fn total_aborts(&self) -> u64 {
        self.aborts_explicit
            + self.aborts_retry
            + self.aborts_conflict
            + self.aborts_capacity
            + self.aborts_debug
            + self.aborts_nested
            + self.aborts_unfriendly
    }

    /// Fraction of started transactions that committed, in [0, 1].
    ///
    /// Empty snapshots return 1.0 (vacuous success) — the same
    /// convention as `OptiStatsSnapshot::fast_ratio` in `gocc-optilock`.
    #[must_use]
    pub fn commit_ratio(&self) -> f64 {
        if self.starts == 0 {
            return 1.0;
        }
        self.commits as f64 / self.starts as f64
    }
}

impl HtmStats {
    /// Creates zeroed statistics.
    #[must_use]
    pub fn new() -> Self {
        HtmStats::default()
    }

    pub(crate) fn record_start(&self) {
        self.starts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_commit(&self, read_only: bool) {
        self.commits.fetch_add(1, Ordering::Relaxed);
        if read_only {
            self.read_only_commits.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_direct(&self) {
        self.direct_sections.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_ctx_fresh(&self) {
        self.ctx_fresh.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_inline_overflow(&self) {
        self.inline_overflows.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_abort(&self, cause: AbortCause) {
        let counter = match cause {
            AbortCause::Explicit(_) => &self.aborts_explicit,
            AbortCause::Retry => &self.aborts_retry,
            AbortCause::Conflict => &self.aborts_conflict,
            AbortCause::Capacity => &self.aborts_capacity,
            AbortCause::Debug => &self.aborts_debug,
            AbortCause::Nested => &self.aborts_nested,
            AbortCause::Unfriendly => &self.aborts_unfriendly,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot of the counters.
    #[must_use]
    pub fn snapshot(&self) -> StatsSnapshot {
        let starts = self.starts.load(Ordering::Relaxed);
        let ctx_fresh = self.ctx_fresh.load(Ordering::Relaxed);
        StatsSnapshot {
            starts,
            commits: self.commits.load(Ordering::Relaxed),
            read_only_commits: self.read_only_commits.load(Ordering::Relaxed),
            aborts_explicit: self.aborts_explicit.load(Ordering::Relaxed),
            aborts_retry: self.aborts_retry.load(Ordering::Relaxed),
            aborts_conflict: self.aborts_conflict.load(Ordering::Relaxed),
            aborts_capacity: self.aborts_capacity.load(Ordering::Relaxed),
            aborts_debug: self.aborts_debug.load(Ordering::Relaxed),
            aborts_nested: self.aborts_nested.load(Ordering::Relaxed),
            aborts_unfriendly: self.aborts_unfriendly.load(Ordering::Relaxed),
            direct_sections: self.direct_sections.load(Ordering::Relaxed),
            ctx_fresh,
            ctx_reused: starts.saturating_sub(ctx_fresh),
            inline_overflows: self.inline_overflows.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_records() {
        let s = HtmStats::new();
        s.record_start();
        s.record_start();
        s.record_commit(true);
        s.record_abort(AbortCause::Conflict);
        s.record_abort(AbortCause::Capacity);
        s.record_direct();
        let snap = s.snapshot();
        assert_eq!(snap.starts, 2);
        assert_eq!(snap.commits, 1);
        assert_eq!(snap.read_only_commits, 1);
        assert_eq!(snap.aborts_conflict, 1);
        assert_eq!(snap.aborts_capacity, 1);
        assert_eq!(snap.total_aborts(), 2);
        assert_eq!(snap.direct_sections, 1);
        assert!((snap.commit_ratio() - 0.5).abs() < f64::EPSILON);
    }

    #[test]
    fn empty_stats_commit_ratio_is_one() {
        assert!((StatsSnapshot::default().commit_ratio() - 1.0).abs() < f64::EPSILON);
    }
}
