//! Versioned-lock stripes at cache-line granularity.
//!
//! Each stripe is a 64-bit word: bit 0 is the lock bit, bits 63:1 hold the
//! version. A memory address maps to a stripe by hashing its cache-line
//! number, so two `TxVar`s in the same 64-byte line always share a stripe
//! (modeling false sharing), and unrelated lines may occasionally collide
//! (modeling a finite conflict-detection structure).

use std::sync::atomic::{AtomicU64, Ordering};

/// Cache-line size assumed by the address-to-stripe mapping.
pub const CACHE_LINE: usize = 64;

/// Index of a stripe within a [`StripeTable`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StripeId(pub(crate) u32);

/// A snapshot of a stripe word observed by a reader.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StripeSnapshot(pub(crate) u64);

impl StripeSnapshot {
    /// Whether the stripe was locked when observed.
    #[must_use]
    pub fn is_locked(self) -> bool {
        self.0 & 1 == 1
    }

    /// The version part of the snapshot.
    #[must_use]
    pub fn version(self) -> u64 {
        self.0 >> 1
    }
}

/// The table of versioned locks shared by all transactions of a runtime.
#[derive(Debug)]
pub struct StripeTable {
    stripes: Box<[AtomicU64]>,
    mask: usize,
}

impl StripeTable {
    /// Creates a table with `2^bits` stripes, all at version 0 and unlocked.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 30.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        assert!(bits > 0 && bits <= 30, "stripe_bits must be in 1..=30");
        let n = 1usize << bits;
        let stripes: Box<[AtomicU64]> = (0..n).map(|_| AtomicU64::new(0)).collect();
        StripeTable {
            stripes,
            mask: n - 1,
        }
    }

    /// Number of stripes in the table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.stripes.len()
    }

    /// Whether the table is empty (it never is).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stripes.is_empty()
    }

    /// Maps a memory address to its stripe.
    ///
    /// Addresses in the same cache line always map to the same stripe.
    /// A Fibonacci-hash of the line number spreads adjacent lines across
    /// the table so that sequential data does not alias pathologically.
    #[must_use]
    pub fn stripe_of_addr(&self, addr: usize) -> StripeId {
        let line = addr / CACHE_LINE;
        // Fibonacci hashing: multiply by 2^64/phi and take high-quality
        // upper bits folded into the table mask.
        let h = (line as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        StripeId(((h >> 32) as usize & self.mask) as u32)
    }

    fn word(&self, id: StripeId) -> &AtomicU64 {
        &self.stripes[id.0 as usize]
    }

    /// Reads the stripe word with `Acquire` ordering.
    #[must_use]
    pub fn load(&self, id: StripeId) -> StripeSnapshot {
        StripeSnapshot(self.word(id).load(Ordering::Acquire))
    }

    /// Attempts to lock the stripe, expecting it to hold `seen`.
    ///
    /// Returns `true` on success. Fails if the stripe is locked or its
    /// version changed since `seen` was observed.
    pub fn try_lock(&self, id: StripeId, seen: StripeSnapshot) -> bool {
        if seen.is_locked() {
            return false;
        }
        self.word(id)
            .compare_exchange(seen.0, seen.0 | 1, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
    }

    /// Attempts to lock the stripe at whatever version it currently holds.
    ///
    /// Returns the pre-lock snapshot on success, `None` if the stripe is
    /// already locked by someone else.
    pub fn try_lock_current(&self, id: StripeId) -> Option<StripeSnapshot> {
        let cur = self.word(id).load(Ordering::Acquire);
        if cur & 1 == 1 {
            return None;
        }
        self.word(id)
            .compare_exchange(cur, cur | 1, Ordering::AcqRel, Ordering::Relaxed)
            .ok()
            .map(StripeSnapshot)
    }

    /// Unlocks the stripe, installing `new_version`.
    ///
    /// The caller must hold the stripe lock (acquired via [`Self::try_lock`]
    /// or [`Self::try_lock_current`]); this is a plain release store, which
    /// is sound because the lock bit excludes concurrent writers.
    pub fn unlock_with_version(&self, id: StripeId, new_version: u64) {
        debug_assert!(
            self.word(id).load(Ordering::Relaxed) & 1 == 1,
            "unlocking unheld stripe"
        );
        self.word(id).store(new_version << 1, Ordering::Release);
    }

    /// Unlocks the stripe without changing its version (commit of a stripe
    /// that was locked but whose write was elided, or abort cleanup).
    pub fn unlock_restore(&self, id: StripeId, seen: StripeSnapshot) {
        debug_assert!(
            self.word(id).load(Ordering::Relaxed) & 1 == 1,
            "unlocking unheld stripe"
        );
        self.word(id).store(seen.0 & !1, Ordering::Release);
    }

    /// Validates that the stripe still matches the snapshot a reader took.
    ///
    /// Passes if the word is identical to the snapshot (same version,
    /// still unlocked). A stripe locked by the validating transaction
    /// itself must be checked via the caller's own write set instead.
    #[must_use]
    pub fn validate(&self, id: StripeId, seen: StripeSnapshot) -> bool {
        self.word(id).load(Ordering::Acquire) == seen.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_line_same_stripe() {
        let t = StripeTable::new(10);
        // Two addresses in the same 64-byte line must collide.
        assert_eq!(t.stripe_of_addr(0x1000), t.stripe_of_addr(0x103F));
        // Adjacent lines should (for this hash and table size) differ.
        assert_ne!(t.stripe_of_addr(0x1000), t.stripe_of_addr(0x1040));
    }

    #[test]
    fn lock_unlock_cycle() {
        let t = StripeTable::new(4);
        let id = t.stripe_of_addr(0x40);
        let snap = t.load(id);
        assert!(!snap.is_locked());
        assert_eq!(snap.version(), 0);
        assert!(t.try_lock(id, snap));
        // Second lock attempt fails while held.
        assert!(!t.try_lock(id, snap));
        assert!(t.try_lock_current(id).is_none());
        t.unlock_with_version(id, 7);
        let snap = t.load(id);
        assert!(!snap.is_locked());
        assert_eq!(snap.version(), 7);
    }

    #[test]
    fn validate_detects_version_change() {
        let t = StripeTable::new(4);
        let id = StripeId(3);
        let seen = t.load(id);
        assert!(t.validate(id, seen));
        let held = t.try_lock_current(id).unwrap();
        assert!(!t.validate(id, seen), "locked stripe must fail validation");
        t.unlock_with_version(id, held.version() + 1);
        assert!(!t.validate(id, seen), "bumped version must fail validation");
    }

    #[test]
    fn unlock_restore_preserves_version() {
        let t = StripeTable::new(4);
        let id = StripeId(1);
        t.try_lock_current(id).unwrap();
        t.unlock_with_version(id, 41);
        let seen = t.try_lock_current(id).unwrap();
        t.unlock_restore(id, seen);
        assert_eq!(t.load(id).version(), 41);
        assert!(!t.load(id).is_locked());
    }
}
