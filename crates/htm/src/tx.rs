//! Transaction contexts: the TL2-style speculation engine and the direct
//! (slow-path) execution mode.
//!
//! Per-attempt state lives in a reusable thread-local arena
//! ([`crate::ctx`]); a steady-state fast-path attempt performs no heap
//! allocation. See DESIGN.md §10 for the memory layout.

use crate::abort::{Abort, AbortCause, TxResult, LOCK_HELD_CODE};
use crate::ctx::{self, ReadEntry, TxContext};
use crate::gate::LockWord;
use crate::runtime::HtmRuntime;
use crate::stripe::{StripeId, StripeSnapshot, CACHE_LINE};
use crate::txvar::TxVar;

/// How a transaction context executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxMode {
    /// Speculative HTM execution: reads validated, writes buffered.
    Fast,
    /// Direct execution under the real mutex (the fall-back path).
    Direct,
}

/// What kind of lock acquisition a subscription elides.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Elision {
    /// Eliding a shared/read acquisition (`RLock`).
    Read,
    /// Eliding an exclusive acquisition (`Lock`).
    Write,
}

/// Bounded attempts when spinning on a stripe briefly held by a committer.
const STRIPE_SPIN_ATTEMPTS: usize = 64;

/// Monomorphized write-back: volatile-stores the staged `T` at `src`
/// (a slot buffer) to the `TxVar<T>` value pointer `dst`.
///
/// # Safety
///
/// `dst` must point at the `TxVar<T>` this write was staged for (with its
/// stripe lock held, per [`TxVar::store_locked`]'s contract) and `src` at
/// a valid `T` with at least `T`'s alignment.
unsafe fn write_back_erased<T: Copy>(dst: *mut u8, src: *const u8) {
    // SAFETY: per this function's contract; volatile mirrors
    // `TxVar::store_locked` so concurrent seqlock readers discard torn
    // copies.
    unsafe { std::ptr::write_volatile(dst.cast::<T>(), std::ptr::read(src.cast::<T>())) }
}

/// A transaction context.
///
/// Fast-path contexts ([`Tx::fast`]) speculate: reads are validated against
/// the global clock, writes are buffered and only published by
/// [`Tx::commit`]. Direct contexts ([`Tx::direct`]) access memory in place
/// and are used while the guarding mutex is held, so the same critical
/// section body runs on either path.
///
/// Once any operation returns an [`Abort`], the context is *doomed*: every
/// later operation (including commit) returns the same abort. This is the
/// safe-Rust rendering of the hardware rollback-to-`xbegin`.
pub struct Tx<'a> {
    rt: &'a HtmRuntime,
    mode: TxMode,
    /// Read version: clock snapshot the speculation is consistent with.
    rv: u64,
    /// The reusable arena (fast mode only; direct mode touches no
    /// transactional state and no thread-local).
    ctx: Option<Box<TxContext>>,
    /// Whether `ctx` came out of the thread-local cache.
    ctx_reused: bool,
    /// Sticky flag: a *physical* arena bound (not the modeled HTM
    /// capacity) forced a capacity abort.
    overflowed: bool,
    /// Modeled read-set bound, clamped to the arena's physical capacity.
    max_reads: usize,
    /// Modeled write-line bound, clamped to the arena's physical capacity.
    max_lines: usize,
    depth: usize,
    doomed: Option<AbortCause>,
    rng: u64,
    spurious_threshold: u64,
    /// Fault-injection key: the elided call site, installed by the layer
    /// above (`optilock`) right after `Tx::fast`. 0 = "unknown site".
    fault_site: usize,
    /// Whether this attempt already consumed its injection draw. One draw
    /// per attempt keeps the injected rate per-attempt (not per-op) and
    /// makes injected counts equal doomed-attempt counts.
    fault_pending: bool,
}

impl<'a> Tx<'a> {
    /// Begins a fast-path (speculative) transaction.
    #[must_use]
    pub fn fast(rt: &'a HtmRuntime) -> Self {
        rt.stats().record_start();
        let rv = rt.clock().now();
        let config = rt.config();
        let rate = config.spurious_abort_rate;
        let spurious_threshold = if rate > 0.0 {
            (rate.clamp(0.0, 1.0) * u64::MAX as f64) as u64
        } else {
            0
        };
        let (ctx, ctx_reused) = ctx::acquire();
        if !ctx_reused {
            rt.stats().record_ctx_fresh();
        }
        Tx {
            rt,
            mode: TxMode::Fast,
            rv,
            ctx: Some(ctx),
            ctx_reused,
            overflowed: false,
            max_reads: config.max_read_entries.min(ctx::MAX_READ_ENTRIES),
            max_lines: config.max_write_lines.min(ctx::MAX_WRITE_LINES),
            depth: 1,
            doomed: None,
            rng: rv.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0x9E37_79B9,
            spurious_threshold,
            fault_site: 0,
            fault_pending: config.fault_plan.is_some(),
        }
    }

    /// Begins a direct (slow-path) context. The caller must hold the real
    /// mutex guarding every `TxVar` the section accesses.
    #[must_use]
    pub fn direct(rt: &'a HtmRuntime) -> Self {
        rt.stats().record_direct();
        Tx {
            rt,
            mode: TxMode::Direct,
            rv: 0,
            ctx: None,
            ctx_reused: false,
            overflowed: false,
            max_reads: 0,
            max_lines: 0,
            depth: 1,
            doomed: None,
            rng: 0,
            spurious_threshold: 0,
            fault_site: 0,
            fault_pending: false,
        }
    }

    /// Installs the fault-injection key for this attempt (the elided call
    /// site). Must be called before the first transactional operation so
    /// the lazy injection draw is attributed to the right site.
    pub fn set_fault_site(&mut self, site: usize) {
        self.fault_site = site;
    }

    /// The execution mode of this context.
    #[must_use]
    pub fn mode(&self) -> TxMode {
        self.mode
    }

    /// Whether this context speculates (HTM fast path).
    #[must_use]
    pub fn is_fastpath(&self) -> bool {
        self.mode == TxMode::Fast
    }

    /// The runtime this transaction executes in.
    #[must_use]
    pub fn runtime(&self) -> &'a HtmRuntime {
        self.rt
    }

    /// Number of read-set entries recorded so far.
    #[must_use]
    pub fn read_set_len(&self) -> usize {
        self.ctx.as_ref().map_or(0, |c| c.reads.len())
    }

    /// Number of distinct cache lines staged for writing.
    #[must_use]
    pub fn write_set_lines(&self) -> usize {
        self.ctx.as_ref().map_or(0, |c| c.lines.len())
    }

    /// Whether this attempt checked its arena out of the thread-local
    /// cache (steady state) rather than allocating it (first section on
    /// this thread, or an overlapping transaction).
    #[must_use]
    pub fn ctx_reused(&self) -> bool {
        self.ctx_reused
    }

    /// Whether a *physical* arena bound (inline write table, staged-value
    /// size, read or subscription capacity) forced a capacity abort, as
    /// opposed to the modeled HTM capacity.
    #[must_use]
    pub fn inline_overflowed(&self) -> bool {
        self.overflowed
    }

    fn doom(&mut self, cause: AbortCause) -> Abort {
        if self.doomed.is_none() {
            self.doomed = Some(cause);
            self.rt.stats().record_abort(cause);
        }
        Abort::new(self.doomed.unwrap_or(cause))
    }

    /// Marks a physical-capacity overflow and dooms with the capacity
    /// cause the perceptron already learns from.
    fn doom_overflow(&mut self) -> Abort {
        if !self.overflowed {
            self.overflowed = true;
            self.rt.stats().record_inline_overflow();
        }
        self.doom(AbortCause::Capacity)
    }

    fn check_doomed(&self) -> TxResult<()> {
        match self.doomed {
            Some(cause) => Err(Abort::new(cause)),
            None => Ok(()),
        }
    }

    fn maybe_spurious(&mut self) -> TxResult<()> {
        if self.spurious_threshold == 0 {
            return Ok(());
        }
        // xorshift64*: cheap, deterministic per transaction.
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        if self.rng.wrapping_mul(0x2545_F491_4F6C_DD1D) < self.spurious_threshold {
            return Err(self.doom(AbortCause::Retry));
        }
        Ok(())
    }

    /// Draws this attempt's injected fault, if a plan is configured.
    ///
    /// Lazy (first fault-checkable operation) so the call site set by the
    /// layer above is already installed; at most one draw per attempt.
    fn maybe_injected(&mut self) -> TxResult<()> {
        if !self.fault_pending {
            return Ok(());
        }
        self.fault_pending = false;
        let Some(plan) = self.rt.config().fault_plan.as_deref() else {
            return Ok(());
        };
        use gocc_faultplane::InjectedAbort;
        match plan.draw(self.fault_site) {
            None => Ok(()),
            Some(inj) => {
                let cause = match inj {
                    InjectedAbort::Conflict => AbortCause::Conflict,
                    InjectedAbort::Capacity => AbortCause::Capacity,
                    InjectedAbort::LockHeld => AbortCause::Explicit(LOCK_HELD_CODE),
                    InjectedAbort::Spurious => AbortCause::Retry,
                };
                Err(self.doom(cause))
            }
        }
    }

    /// Revalidates the read set against the current clock and, on success,
    /// extends the read version (TL2 timestamp extension).
    fn extend(&mut self) -> TxResult<()> {
        let now = self.rt.clock().now();
        let ctx = self.ctx.as_ref().expect("fast tx has a context");
        for r in &ctx.reads {
            if !self.rt.table().validate(r.stripe, r.seen) {
                return Err(Abort::new(AbortCause::Conflict));
            }
        }
        self.rv = now;
        Ok(())
    }

    /// Reads a transactional cell.
    ///
    /// On the fast path the read is recorded for commit-time validation; on
    /// the direct path it is a plain load (the mutex is held).
    pub fn read<T: Copy>(&mut self, var: &'a TxVar<T>) -> TxResult<T> {
        self.check_doomed()?;
        self.maybe_injected()?;
        self.maybe_spurious()?;
        if self.mode == TxMode::Direct {
            // SAFETY: direct mode runs with the guarding mutex held; no
            // same-mutex fast path can commit concurrently (commit gate),
            // so no writer races with this load under the access protocol.
            return Ok(unsafe { var.load_racy() });
        }
        let rt = self.rt;
        let addr = var.addr();
        {
            let ctx = self.ctx.as_ref().expect("fast tx has a context");
            if let Some(idx) = ctx.lookup(addr) {
                // Read-your-own-write: the key is the cell address, so the
                // staged payload is a `T` by construction (one address, one
                // `TxVar<T>`), 8-aligned per the inline-buffer contract.
                let slot = &ctx.slots[idx as usize];
                return Ok(unsafe { std::ptr::read(slot.buf.as_ptr().cast::<T>()) });
            }
        }
        let stripe = rt.table().stripe_of_addr(addr);
        for attempt in 0..STRIPE_SPIN_ATTEMPTS {
            let s1 = rt.table().load(stripe);
            if s1.is_locked() {
                // A committer holds the stripe; brief, so spin (and let it
                // run when the machine is oversubscribed).
                if attempt % 16 == 15 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
                continue;
            }
            if s1.version() > self.rv {
                // Newer than our snapshot: try a timestamp extension.
                if let Err(abort) = self.extend() {
                    return Err(self.doom(abort.cause));
                }
                continue;
            }
            // SAFETY: torn copies are discarded when `s2 != s1` below.
            let val = unsafe { var.load_racy() };
            let s2 = rt.table().load(stripe);
            if s2 != s1 {
                continue;
            }
            let reads = self.ctx.as_ref().map_or(0, |c| c.reads.len());
            if reads >= self.max_reads {
                if reads >= ctx::MAX_READ_ENTRIES {
                    return Err(self.doom_overflow());
                }
                return Err(self.doom(AbortCause::Capacity));
            }
            self.ctx
                .as_mut()
                .expect("fast tx has a context")
                .reads
                .push(ReadEntry { stripe, seen: s1 });
            return Ok(val);
        }
        Err(self.doom(AbortCause::Conflict))
    }

    /// Writes a transactional cell.
    ///
    /// Fast path: the write is buffered in the arena's inline write set;
    /// direct path: written in place under the cell's stripe lock so
    /// overlapping speculative readers observe the version change.
    pub fn write<T: Copy>(&mut self, var: &'a TxVar<T>, val: T) -> TxResult<()> {
        self.check_doomed()?;
        self.maybe_injected()?;
        self.maybe_spurious()?;
        let addr = var.addr();
        if self.mode == TxMode::Direct {
            let stripe = self.rt.table().stripe_of_addr(addr);
            let table = self.rt.table();
            // Spin: stripe locks are only held across short write-backs.
            let mut spins = 0u32;
            let held = loop {
                if let Some(snap) = table.try_lock_current(stripe) {
                    break snap;
                }
                spins += 1;
                if spins.is_multiple_of(64) {
                    // A committer holding the stripe may need the CPU.
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            };
            crate::contention::charge_shared_rmw();
            // SAFETY: we hold the stripe lock.
            unsafe { var.store_locked(val) };
            // Advance the global clock and stamp the stripe with the new
            // value: stripe versions must never exceed the clock, or
            // speculative readers could never extend past this write and
            // would spin to a spurious abort.
            let wv = self.rt.clock().tick();
            table.unlock_with_version(stripe, wv.max(held.version() + 1));
            return Ok(());
        }
        // Values that do not fit the inline slot buffer cannot be staged:
        // physical capacity abort (hardware aborts on unfriendly data too).
        if std::mem::size_of::<T>() > ctx::INLINE_VALUE_BYTES
            || std::mem::align_of::<T>() > ctx::INLINE_VALUE_ALIGN
        {
            return Err(self.doom_overflow());
        }
        let rt = self.rt;
        let max_lines = self.max_lines;
        let ctx = self.ctx.as_mut().expect("fast tx has a context");
        let (idx, found) = ctx.find_for_write(addr);
        if found {
            let slot = &mut ctx.slots[idx as usize];
            // SAFETY: same address ⇒ same `TxVar<T>` ⇒ same `T`; size and
            // alignment were checked above.
            unsafe { std::ptr::write(slot.buf.as_mut_ptr().cast::<T>(), val) };
            return Ok(());
        }
        if ctx.order.len() >= ctx::MAX_WRITE_ENTRIES {
            return Err(self.doom_overflow());
        }
        let line = addr / CACHE_LINE;
        match ctx.note_write_line(line, max_lines) {
            Ok(_new_line) => {}
            Err(()) => {
                if max_lines >= ctx::MAX_WRITE_LINES {
                    return Err(self.doom_overflow());
                }
                return Err(self.doom(AbortCause::Capacity));
            }
        }
        let stripe = rt.table().stripe_of_addr(addr);
        ctx.note_stripe(stripe);
        let slot = ctx.claim(idx, addr, stripe, write_back_erased::<T>);
        // SAFETY: size/align checked above; the slot buffer is 8-aligned.
        unsafe { std::ptr::write(slot.buf.as_mut_ptr().cast::<T>(), val) };
        Ok(())
    }

    /// Subscribes the transaction to an elidable lock's word (§5.4): aborts
    /// immediately if the lock is unavailable to this elision kind,
    /// otherwise adds the word to the validation set so any slow-path
    /// activity on the lock aborts this transaction.
    ///
    /// A [`Elision::Write`] subscription aborts if a slow-path writer holds
    /// the lock *or* slow-path readers are inside it; an [`Elision::Read`]
    /// subscription only aborts on a writer (slow readers are compatible
    /// with speculative readers).
    pub fn subscribe_lock(&mut self, lock: &'a LockWord, kind: Elision) -> TxResult<()> {
        self.check_doomed()?;
        if self.mode == TxMode::Direct {
            return Ok(());
        }
        self.maybe_injected()?;
        let seen = lock.observe();
        let blocked = match kind {
            Elision::Read => LockWord::snapshot_blocks_read(seen),
            Elision::Write => LockWord::snapshot_blocks_write(seen),
        };
        if blocked {
            return Err(self.doom(AbortCause::Explicit(LOCK_HELD_CODE)));
        }
        let ctx = self.ctx.as_mut().expect("fast tx has a context");
        if ctx.subs.len() >= ctx::MAX_SUBS {
            return Err(self.doom_overflow());
        }
        ctx.subs.push((lock as *const LockWord, seen));
        Ok(())
    }

    /// Marks execution of an HTM-unfriendly operation (IO, syscall).
    ///
    /// Fast-path transactions abort with [`AbortCause::Unfriendly`]; direct
    /// mode proceeds (locks tolerate such operations).
    pub fn unfriendly(&mut self) -> TxResult<()> {
        self.check_doomed()?;
        if self.mode == TxMode::Fast {
            return Err(self.doom(AbortCause::Unfriendly));
        }
        Ok(())
    }

    /// Requests an explicit abort with an 8-bit code (`xabort imm8`).
    pub fn explicit_abort(&mut self, code: u8) -> Abort {
        if self.mode == TxMode::Direct {
            // Direct mode cannot roll back; the caller decides. We still
            // surface the request as an abort value without dooming.
            return Abort::new(AbortCause::Explicit(code));
        }
        self.doom(AbortCause::Explicit(code))
    }

    /// Enters a nested transactional scope (flat nesting, like TSX).
    pub fn enter_nested(&mut self) -> TxResult<()> {
        self.check_doomed()?;
        self.depth += 1;
        if self.mode == TxMode::Fast && self.depth > self.rt.config().max_nesting_depth {
            return Err(self.doom(AbortCause::Nested));
        }
        Ok(())
    }

    /// Leaves a nested transactional scope.
    pub fn exit_nested(&mut self) {
        debug_assert!(self.depth > 1, "exit_nested at outermost depth");
        self.depth = self.depth.saturating_sub(1);
    }

    /// Current nesting depth (1 = outermost).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Attempts to commit.
    ///
    /// Direct-mode contexts always commit (their effects are already
    /// published). Fast-path contexts validate their read set and lock
    /// subscriptions, publish buffered writes under stripe locks, and
    /// advance the global clock.
    pub fn commit(mut self) -> TxResult<()> {
        if let Some(cause) = self.doomed {
            return Err(Abort::new(cause));
        }
        if self.mode == TxMode::Direct {
            return Ok(());
        }
        let mut ctx = self.ctx.take().expect("fast tx has a context");
        let result = commit_ctx(self.rt, &mut ctx);
        ctx::release(ctx);
        match result {
            Ok(read_only) => {
                self.rt.stats().record_commit(read_only);
                Ok(())
            }
            Err(cause) => {
                self.rt.stats().record_abort(cause);
                Err(Abort::new(cause))
            }
        }
    }

    /// Discards the transaction: buffered writes are dropped.
    ///
    /// Equivalent to letting the context fall out of scope; provided for
    /// call sites that want to make the roll-back explicit.
    pub fn rollback(self) {
        drop(self);
    }
}

impl Drop for Tx<'_> {
    fn drop(&mut self) {
        // Roll back: return the arena (reset) to the thread-local cache.
        // `commit` takes the context out first, so this only fires for
        // dropped/rolled-back transactions.
        if let Some(ctx) = self.ctx.take() {
            ctx::release(ctx);
        }
    }
}

/// Commits a fast-path transaction's context. Returns `Ok(read_only)` or
/// the abort cause; the caller records statistics and releases the arena.
fn commit_ctx(rt: &HtmRuntime, ctx: &mut TxContext) -> Result<bool, AbortCause> {
    let table = rt.table();
    if ctx.order.is_empty() {
        // Read-only: validate subscriptions and the read set; nothing to
        // publish, no clock tick (TL2's read-only fast path).
        for &(lock, seen) in &ctx.subs {
            // SAFETY: subscription pointers come from `&'a LockWord`s that
            // outlive the `Tx<'a>` driving this commit.
            if !unsafe { &*lock }.validate(seen) {
                return Err(AbortCause::Explicit(LOCK_HELD_CODE));
            }
        }
        for r in &ctx.reads {
            if !table.validate(r.stripe, r.seen) {
                return Err(AbortCause::Conflict);
            }
        }
        return Ok(true);
    }
    // Lock write stripes in sorted order (deadlock freedom): `stripes`
    // was kept sorted and deduped at write time, so `held` — pushed in
    // the same order — stays sorted for the binary searches below.
    debug_assert!(ctx.held.is_empty());
    {
        let stripes = &ctx.stripes;
        let held = &mut ctx.held;
        for &s in stripes {
            let mut locked = None;
            for attempt in 0..STRIPE_SPIN_ATTEMPTS {
                if let Some(snap) = table.try_lock_current(s) {
                    locked = Some(snap);
                    break;
                }
                if attempt % 16 == 15 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
            match locked {
                Some(snap) => held.push((s, snap)),
                None => {
                    release_held(rt, held, None);
                    held.clear();
                    return Err(AbortCause::Conflict);
                }
            }
        }
    }
    // Enter the commit gates *before* the final lock-word validation so
    // a slow-path acquirer marking the word held either fails us here
    // or waits for our write-back to drain.
    for &(lock, _) in &ctx.subs {
        // SAFETY: see the read-only path above.
        unsafe { &*lock }.committer_enter();
    }
    let mut fail: Option<AbortCause> = None;
    for &(lock, seen) in &ctx.subs {
        // SAFETY: see the read-only path above.
        if !unsafe { &*lock }.validate(seen) {
            fail = Some(AbortCause::Explicit(LOCK_HELD_CODE));
            break;
        }
    }
    if fail.is_none() {
        // Validate the read set: untouched stripes must match their
        // snapshots; stripes we hold must not have changed before we
        // locked them.
        for r in &ctx.reads {
            let ours = ctx.held.binary_search_by_key(&r.stripe, |&(s, _)| s);
            let ok = match ours {
                Ok(i) => ctx.held[i].1 == r.seen,
                Err(_) => table.validate(r.stripe, r.seen),
            };
            if !ok {
                fail = Some(AbortCause::Conflict);
                break;
            }
        }
    }
    if let Some(cause) = fail {
        exit_gates(ctx);
        release_held(rt, &ctx.held, None);
        ctx.held.clear();
        return Err(cause);
    }
    let wv = rt.clock().tick();
    // Model the coherence cost of taking ownership of each written
    // line (symmetric with the slow path's per-write charges).
    for _ in &ctx.held {
        crate::contention::charge_shared_rmw();
    }
    for &idx in &ctx.order {
        let slot = &ctx.slots[idx as usize];
        // SAFETY: `addr` is the staged `TxVar<T>`'s value pointer, its
        // stripe is locked (held above), and `buf` holds a valid `T` —
        // `write_back` is the `T`-monomorphized eraser.
        unsafe { (slot.write_back)(slot.addr as *mut u8, slot.buf.as_ptr().cast()) };
    }
    release_held(rt, &ctx.held, Some(wv));
    ctx.held.clear();
    exit_gates(ctx);
    Ok(false)
}

fn exit_gates(ctx: &TxContext) {
    for &(lock, _) in &ctx.subs {
        // SAFETY: see `commit_ctx`.
        unsafe { &*lock }.committer_exit();
    }
}

fn release_held(rt: &HtmRuntime, held: &[(StripeId, StripeSnapshot)], new_version: Option<u64>) {
    let table = rt.table();
    for &(s, snap) in held {
        match new_version {
            Some(v) => table.unlock_with_version(s, v),
            None => table.unlock_restore(s, snap),
        }
    }
}

impl std::fmt::Debug for Tx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tx")
            .field("mode", &self.mode)
            .field("rv", &self.rv)
            .field("reads", &self.read_set_len())
            .field("write_lines", &self.write_set_lines())
            .field("depth", &self.depth)
            .field("doomed", &self.doomed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HtmConfig;

    fn rt() -> HtmRuntime {
        HtmRuntime::new(HtmConfig::coffee_lake())
    }

    #[test]
    fn fast_path_read_write_commit() {
        let rt = rt();
        let v = TxVar::new(1u64);
        let mut tx = Tx::fast(&rt);
        assert_eq!(tx.read(&v).unwrap(), 1);
        tx.write(&v, 2).unwrap();
        assert_eq!(tx.read(&v).unwrap(), 2, "read-your-own-write");
        tx.commit().unwrap();
        let mut check = Tx::fast(&rt);
        assert_eq!(check.read(&v).unwrap(), 2);
        check.commit().unwrap();
    }

    #[test]
    fn rollback_discards_buffered_writes() {
        let rt = rt();
        let v = TxVar::new(10u64);
        let mut tx = Tx::fast(&rt);
        tx.write(&v, 99).unwrap();
        tx.rollback();
        let mut check = Tx::fast(&rt);
        assert_eq!(check.read(&v).unwrap(), 10);
        check.commit().unwrap();
    }

    #[test]
    fn doomed_tx_stays_doomed() {
        let rt = rt();
        let v = TxVar::new(0u32);
        let mut tx = Tx::fast(&rt);
        let abort = tx.explicit_abort(0x42);
        assert_eq!(abort.cause, AbortCause::Explicit(0x42));
        assert_eq!(tx.read(&v).unwrap_err().cause, AbortCause::Explicit(0x42));
        assert_eq!(tx.commit().unwrap_err().cause, AbortCause::Explicit(0x42));
    }

    #[test]
    fn write_capacity_aborts() {
        let rt = HtmRuntime::new(HtmConfig::tiny());
        // Heap-allocate cells so they land on distinct lines.
        let cells: Vec<Box<TxVar<u64>>> = (0..64).map(|_| Box::new(TxVar::new(0))).collect();
        let mut tx = Tx::fast(&rt);
        let mut aborted = None;
        for c in &cells {
            if let Err(a) = tx.write(c, 1) {
                aborted = Some(a);
                break;
            }
        }
        assert_eq!(aborted.expect("must abort").cause, AbortCause::Capacity);
        // The modeled (configured) bound fired, not the physical arena.
        assert!(!tx.inline_overflowed());
        assert_eq!(rt.stats().snapshot().inline_overflows, 0);
    }

    #[test]
    fn read_capacity_aborts() {
        let rt = HtmRuntime::new(HtmConfig::tiny());
        let cells: Vec<Box<TxVar<u64>>> = (0..64).map(|_| Box::new(TxVar::new(0))).collect();
        let mut tx = Tx::fast(&rt);
        let mut aborted = None;
        for c in &cells {
            if let Err(a) = tx.read(c) {
                aborted = Some(a);
                break;
            }
        }
        assert_eq!(aborted.expect("must abort").cause, AbortCause::Capacity);
        assert!(!tx.inline_overflowed());
    }

    #[test]
    fn oversized_staged_value_overflows_the_inline_slot() {
        let rt = rt();
        // 40 bytes > the 32-byte inline buffer.
        let v = TxVar::new([0u64; 5]);
        let mut tx = Tx::fast(&rt);
        assert_eq!(
            tx.write(&v, [1; 5]).unwrap_err().cause,
            AbortCause::Capacity
        );
        assert!(tx.inline_overflowed(), "physical bound, not modeled one");
        assert_eq!(rt.stats().snapshot().inline_overflows, 1);
        // Reads of the cell still work on the direct path.
        drop(tx);
        let mut slow = Tx::direct(&rt);
        assert_eq!(slow.read(&v).unwrap(), [0; 5]);
        slow.commit().unwrap();
    }

    #[test]
    fn nesting_depth_aborts() {
        let rt = HtmRuntime::new(HtmConfig::tiny());
        let mut tx = Tx::fast(&rt);
        tx.enter_nested().unwrap(); // depth 2
        tx.enter_nested().unwrap(); // depth 3
        let err = tx.enter_nested().unwrap_err(); // depth 4 > 3
        assert_eq!(err.cause, AbortCause::Nested);
    }

    #[test]
    fn conflict_detected_between_transactions() {
        let rt = rt();
        let v = TxVar::new(0u64);
        let mut a = Tx::fast(&rt);
        let mut b = Tx::fast(&rt);
        assert_eq!(a.read(&v).unwrap(), 0);
        b.write(&v, 5).unwrap();
        b.commit().unwrap();
        let err = a.commit().unwrap_err();
        assert_eq!(err.cause, AbortCause::Conflict);
    }

    #[test]
    fn disjoint_transactions_both_commit() {
        let rt = rt();
        let x = Box::new(TxVar::new(0u64));
        let y = Box::new(TxVar::new(0u64));
        let mut a = Tx::fast(&rt);
        let mut b = Tx::fast(&rt);
        a.write(&*x, 1).unwrap();
        b.write(&*y, 2).unwrap();
        a.commit().unwrap();
        b.commit().unwrap();
        let mut check = Tx::direct(&rt);
        assert_eq!(check.read(&x).unwrap(), 1);
        assert_eq!(check.read(&y).unwrap(), 2);
        check.commit().unwrap();
    }

    #[test]
    fn lock_subscription_aborts_when_held() {
        let rt = rt();
        let lw = LockWord::new();
        lw.mark_held_and_drain();
        let mut tx = Tx::fast(&rt);
        let err = tx.subscribe_lock(&lw, Elision::Write).unwrap_err();
        assert_eq!(err.cause, AbortCause::Explicit(LOCK_HELD_CODE));
    }

    #[test]
    fn lock_acquired_mid_tx_aborts_at_commit() {
        let rt = rt();
        let lw = LockWord::new();
        let v = TxVar::new(0u64);
        let mut tx = Tx::fast(&rt);
        tx.subscribe_lock(&lw, Elision::Write).unwrap();
        tx.write(&v, 1).unwrap();
        lw.mark_held_and_drain();
        let err = tx.commit().unwrap_err();
        assert_eq!(err.cause, AbortCause::Explicit(LOCK_HELD_CODE));
        lw.clear_held();
    }

    #[test]
    fn subscription_capacity_overflows() {
        let rt = rt();
        let words: Vec<Box<LockWord>> = (0..32).map(|_| Box::new(LockWord::new())).collect();
        let mut tx = Tx::fast(&rt);
        let mut aborted = None;
        for w in &words {
            if let Err(a) = tx.subscribe_lock(w, Elision::Write) {
                aborted = Some(a);
                break;
            }
        }
        assert_eq!(aborted.expect("must abort").cause, AbortCause::Capacity);
        assert!(tx.inline_overflowed());
    }

    #[test]
    fn direct_write_aborts_overlapping_reader() {
        let rt = rt();
        let v = TxVar::new(0u64);
        let mut reader = Tx::fast(&rt);
        assert_eq!(reader.read(&v).unwrap(), 0);
        let mut slow = Tx::direct(&rt);
        slow.write(&v, 7).unwrap();
        slow.commit().unwrap();
        assert_eq!(reader.commit().unwrap_err().cause, AbortCause::Conflict);
    }

    #[test]
    fn unfriendly_only_aborts_fast_path() {
        let rt = rt();
        let mut fast = Tx::fast(&rt);
        assert_eq!(fast.unfriendly().unwrap_err().cause, AbortCause::Unfriendly);
        let mut slow = Tx::direct(&rt);
        slow.unfriendly().unwrap();
        slow.commit().unwrap();
    }

    #[test]
    fn spurious_aborts_fire_at_rate_one() {
        let mut cfg = HtmConfig::coffee_lake();
        cfg.spurious_abort_rate = 1.0;
        let rt = HtmRuntime::new(cfg);
        let v = TxVar::new(0u64);
        let mut tx = Tx::fast(&rt);
        assert_eq!(tx.read(&v).unwrap_err().cause, AbortCause::Retry);
    }

    #[test]
    fn injected_faults_doom_fast_transactions() {
        use gocc_faultplane::{AbortMix, HtmFaultPlan, InjectedAbort};
        use std::sync::Arc;
        for (inj, want) in [
            (InjectedAbort::Conflict, AbortCause::Conflict),
            (InjectedAbort::Capacity, AbortCause::Capacity),
            (
                InjectedAbort::LockHeld,
                AbortCause::Explicit(LOCK_HELD_CODE),
            ),
            (InjectedAbort::Spurious, AbortCause::Retry),
        ] {
            let mut mix = AbortMix::default();
            match inj {
                InjectedAbort::Conflict => mix.conflict = 1.0,
                InjectedAbort::Capacity => mix.capacity = 1.0,
                InjectedAbort::LockHeld => mix.lock_held = 1.0,
                InjectedAbort::Spurious => mix.spurious = 1.0,
            }
            let plan = Arc::new(HtmFaultPlan::new(7, mix));
            let mut cfg = HtmConfig::coffee_lake();
            cfg.fault_plan = Some(Arc::clone(&plan));
            let rt = HtmRuntime::new(cfg);
            let v = TxVar::new(0u64);
            let mut tx = Tx::fast(&rt);
            tx.set_fault_site(99);
            assert_eq!(tx.read(&v).unwrap_err().cause, want, "{inj:?}");
            // Exactly one draw per attempt, charged to the installed site.
            assert_eq!(plan.total_injected(), 1);
            // Direct mode never draws.
            let mut slow = Tx::direct(&rt);
            slow.write(&v, 1).unwrap();
            slow.commit().unwrap();
            assert_eq!(plan.total_injected(), 1);
        }
    }

    #[test]
    fn injection_draw_happens_once_per_attempt() {
        use gocc_faultplane::{AbortMix, HtmFaultPlan};
        use std::sync::Arc;
        // Rate zero: the plan is consulted but never fires; a multi-op
        // transaction must still commit and draw exactly once.
        let plan = Arc::new(HtmFaultPlan::new(
            3,
            AbortMix {
                conflict: 0.0,
                ..AbortMix::default()
            },
        ));
        let mut cfg = HtmConfig::coffee_lake();
        cfg.fault_plan = Some(Arc::clone(&plan));
        let rt = HtmRuntime::new(cfg);
        let v = TxVar::new(0u64);
        let mut tx = Tx::fast(&rt);
        tx.set_fault_site(5);
        for i in 0..10 {
            tx.write(&v, i).unwrap();
            let _ = tx.read(&v).unwrap();
        }
        tx.commit().unwrap();
        assert_eq!(plan.total_injected(), 0);
    }

    #[test]
    fn stats_track_commits_and_aborts() {
        let rt = rt();
        let v = TxVar::new(0u64);
        let mut ok = Tx::fast(&rt);
        ok.write(&v, 1).unwrap();
        ok.commit().unwrap();
        let mut ro = Tx::fast(&rt);
        let _ = ro.read(&v).unwrap();
        ro.commit().unwrap();
        let mut bad = Tx::fast(&rt);
        let _ = bad.explicit_abort(1);
        bad.rollback();
        let snap = rt.stats().snapshot();
        assert_eq!(snap.starts, 3);
        assert_eq!(snap.commits, 2);
        assert_eq!(snap.read_only_commits, 1);
        assert_eq!(snap.aborts_explicit, 1);
    }

    #[test]
    fn stats_track_context_reuse() {
        let rt = rt();
        let v = TxVar::new(0u64);
        std::thread::spawn(move || {
            // A dedicated thread so this test owns its context cache.
            for i in 0..5u64 {
                let mut tx = Tx::fast(&rt);
                tx.write(&v, i).unwrap();
                assert_eq!(tx.ctx_reused(), i > 0, "iteration {i}");
                tx.commit().unwrap();
            }
            let snap = rt.stats().snapshot();
            assert_eq!(snap.ctx_fresh, 1, "one allocation on first use");
            assert_eq!(snap.ctx_reused, 4, "every later attempt reuses");
        })
        .join()
        .unwrap();
    }

    #[test]
    fn timestamp_extension_allows_read_after_unrelated_commit() {
        let rt = rt();
        let x = Box::new(TxVar::new(0u64));
        let y = Box::new(TxVar::new(0u64));
        let mut a = Tx::fast(&rt); // rv snapshot taken now
                                   // An unrelated commit advances the clock and bumps y's stripe.
        let mut b = Tx::fast(&rt);
        b.write(&*y, 9).unwrap();
        b.commit().unwrap();
        // `a` now reads y: version is newer than rv, extension succeeds
        // because a's (empty) read set is trivially valid.
        assert_eq!(a.read(&y).unwrap(), 9);
        assert_eq!(a.read(&x).unwrap(), 0);
        a.commit().unwrap();
    }

    #[test]
    fn large_write_sets_cross_the_hash_path_and_commit() {
        let rt = rt();
        // 256 distinct addresses: far past the linear-scan threshold, so
        // lookups and inserts exercise the open-addressed table.
        let cells: Vec<TxVar<u64>> = (0..256).map(|_| TxVar::new(0)).collect();
        let mut tx = Tx::fast(&rt);
        for (i, c) in cells.iter().enumerate() {
            tx.write(c, i as u64).unwrap();
        }
        // Read-your-own-write through the hash path, then overwrite.
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(tx.read(c).unwrap(), i as u64);
            tx.write(c, i as u64 * 2).unwrap();
        }
        tx.commit().unwrap();
        let mut check = Tx::direct(&rt);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(check.read(c).unwrap(), i as u64 * 2);
        }
        check.commit().unwrap();
    }

    #[test]
    fn reused_context_carries_no_state_between_attempts() {
        let rt = rt();
        std::thread::spawn(move || {
            let v = TxVar::new(1u64);
            let w = TxVar::new(2u64);
            let mut a = Tx::fast(&rt);
            a.write(&v, 99).unwrap();
            a.rollback();
            // Same thread, so `b` reuses `a`'s arena: it must not see the
            // rolled-back staged write, and committing must not publish it.
            let mut b = Tx::fast(&rt);
            assert!(b.ctx_reused());
            assert_eq!(b.read(&v).unwrap(), 1, "stale staged write visible");
            b.write(&w, 3).unwrap();
            b.commit().unwrap();
            let mut check = Tx::direct(&rt);
            assert_eq!(check.read(&v).unwrap(), 1);
            assert_eq!(check.read(&w).unwrap(), 3);
            check.commit().unwrap();
        })
        .join()
        .unwrap();
    }
}

#[cfg(test)]
mod direct_interop_tests {
    use super::*;
    use crate::config::HtmConfig;
    use crate::runtime::HtmRuntime;
    use crate::txvar::TxVar;

    /// Regression: direct-mode writes must keep stripe versions within the
    /// global clock, or every later speculative read of the touched lines
    /// spins through failed extensions and aborts.
    #[test]
    fn fast_reads_succeed_after_direct_writes() {
        let rt = HtmRuntime::new(HtmConfig::coffee_lake());
        let cells: Vec<TxVar<u64>> = (0..64).map(TxVar::new).collect();
        let mut slow = Tx::direct(&rt);
        for (i, c) in cells.iter().enumerate() {
            slow.write(c, i as u64 + 100).unwrap();
        }
        slow.commit().unwrap();
        // A fresh fast transaction must read every cell and commit.
        let mut fast = Tx::fast(&rt);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(fast.read(c).unwrap(), i as u64 + 100);
        }
        fast.commit()
            .expect("read-only tx after direct writes must commit");
        let snap = rt.stats().snapshot();
        assert_eq!(snap.aborts_conflict, 0, "no spurious conflicts: {snap:?}");
    }
}
