//! Transactional memory cells.

use std::cell::UnsafeCell;
use std::fmt;

/// A word of transactional memory.
///
/// A `TxVar<T>` is the unit of data the simulated HTM versions. Hardware
/// transactional memory works on raw memory; a software simulation cannot
/// intercept arbitrary loads and stores, so shared state that should be
/// covered by elided critical sections is declared as `TxVar`s and accessed
/// through a [`Tx`](crate::Tx) context. The context is either in fast-path
/// (speculative, validated) or direct (slow-path, mutex-held) mode, so the
/// same data-structure code serves both executions.
///
/// `T: Copy` because speculative readers use the seqlock pattern: read the
/// stripe version, copy the value with a volatile read, and re-check the
/// version. A torn copy is discarded before it is ever inspected, which is
/// only sound for plain-old-data; structured values should be boxed into
/// arenas and referenced by `Copy` handles (see `gocc-txds`).
///
/// # Access protocol (the safety contract)
///
/// Data guarded by a mutex must only be accessed:
///
/// 1. inside fast-path transactions that subscribed to that mutex's
///    [`LockWord`](crate::LockWord), or
/// 2. in direct mode while that mutex is actually held, or
/// 3. via `&mut self` methods (exclusive access).
///
/// This mirrors the paper's precondition that input programs are properly
/// synchronized; GOCC never creates new data races, and neither does this
/// simulation as long as the protocol is followed.
#[derive(Default)]
pub struct TxVar<T> {
    value: UnsafeCell<T>,
}

// SAFETY: `TxVar` is shared across threads, but every access path is
// mediated by `Tx`: speculative reads are validated seqlock copies, commit
// write-backs and direct-mode writes hold the stripe lock, and the access
// protocol above excludes same-location races between slow-path owners and
// committed fast paths. `T: Send` is required because values move across
// threads; `T: Copy` bounds on the accessors keep torn reads free of
// ownership (no drop, no pointers invalidated by tearing).
unsafe impl<T: Copy + Send> Sync for TxVar<T> {}
// SAFETY: sending the cell itself only moves the owned `T`.
unsafe impl<T: Send> Send for TxVar<T> {}

impl<T> TxVar<T> {
    /// Creates a cell holding `value`.
    #[must_use]
    pub fn new(value: T) -> Self {
        TxVar {
            value: UnsafeCell::new(value),
        }
    }

    /// The address used for stripe mapping and write-set keying.
    #[must_use]
    pub fn addr(&self) -> usize {
        self.value.get() as usize
    }

    /// Exclusive access to the value; no transaction machinery involved.
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }

    /// Consumes the cell, returning the value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T: Copy> TxVar<T> {
    /// Racy volatile load used by the engine under the seqlock protocol.
    ///
    /// # Safety
    ///
    /// The caller must either hold exclusive access, or be prepared to
    /// discard the result if the surrounding stripe validation fails (a
    /// concurrent committer may be storing to the cell; the copy may be
    /// torn). `T: Copy` guarantees discarding a torn copy is harmless.
    pub(crate) unsafe fn load_racy(&self) -> T {
        // SAFETY: per this function's contract, torn values are discarded
        // after stripe re-validation; volatile prevents the compiler from
        // caching or splitting the access in surprising ways. This is the
        // seqlock idiom also used by crossbeam's `AtomicCell` for oversized
        // types.
        unsafe { std::ptr::read_volatile(self.value.get()) }
    }

    /// Store used by commit write-back and direct mode, both of which hold
    /// the cell's stripe lock.
    ///
    /// # Safety
    ///
    /// The caller must hold the stripe lock covering this cell's address
    /// (or exclusive access), so no other thread is storing concurrently.
    pub(crate) unsafe fn store_locked(&self, value: T) {
        // SAFETY: stripe lock excludes concurrent writers; concurrent
        // speculative readers discard torn copies per `load_racy`.
        unsafe { std::ptr::write_volatile(self.value.get(), value) }
    }
}

impl<T: Copy + fmt::Debug> fmt::Debug for TxVar<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Debug output is inherently racy but only used for diagnostics.
        // SAFETY: value is discarded after formatting; `T: Copy`.
        let v = unsafe { self.load_racy() };
        f.debug_tuple("TxVar").field(&v).finish()
    }
}

/// A cache-line-padded wrapper to opt data *out* of false sharing.
///
/// `TxVar`s placed contiguously share stripes (and abort each other) exactly
/// like fields sharing a cache line do on hardware; wrap elements in
/// `Padded` where the modeled data structure would be padded too.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct Padded<T>(pub T);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_mut_and_into_inner() {
        let mut v = TxVar::new(41);
        *v.get_mut() += 1;
        assert_eq!(v.into_inner(), 42);
    }

    #[test]
    fn addr_is_stable() {
        let v = TxVar::new(0u64);
        assert_eq!(v.addr(), v.addr());
    }

    #[test]
    fn padded_is_line_aligned() {
        assert_eq!(std::mem::align_of::<Padded<TxVar<u8>>>(), 64);
        let arr = [Padded(TxVar::new(0u8)), Padded(TxVar::new(0u8))];
        assert!(arr[1].0.addr() - arr[0].0.addr() >= 64);
    }
}
