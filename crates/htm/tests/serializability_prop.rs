//! Property: interleaved transactional histories are serializable — a
//! sequence of transactions (some aborted) applied against `TxVar`s must
//! leave exactly the state a sequential model produces from the committed
//! subset.

use gocc_htm::{HtmConfig, HtmRuntime, Tx, TxVar};
use proptest::prelude::*;

const CELLS: usize = 8;

#[derive(Clone, Debug)]
enum Step {
    Read(u8),
    Add(u8, u8),
    Copy(u8, u8),
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        any::<u8>().prop_map(Step::Read),
        (any::<u8>(), any::<u8>()).prop_map(|(a, d)| Step::Add(a, d)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Step::Copy(a, b)),
    ]
}

#[derive(Clone, Debug)]
struct TxSpec {
    steps: Vec<Step>,
    abort: bool,
}

fn tx_spec() -> impl Strategy<Value = TxSpec> {
    (proptest::collection::vec(step(), 1..12), any::<bool>())
        .prop_map(|(steps, abort)| TxSpec { steps, abort })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn committed_transactions_apply_exactly_once(specs in proptest::collection::vec(tx_spec(), 1..24)) {
        let rt = HtmRuntime::new(HtmConfig::coffee_lake());
        let cells: Vec<TxVar<u64>> = (0..CELLS).map(|i| TxVar::new(i as u64)).collect();
        let mut model: Vec<u64> = (0..CELLS as u64).collect();

        for spec in &specs {
            let mut tx = Tx::fast(&rt);
            let mut shadow = model.clone();
            let mut ok = true;
            for s in &spec.steps {
                match s {
                    Step::Read(a) => {
                        let i = *a as usize % CELLS;
                        let got = tx.read(&cells[i]);
                        match got {
                            Ok(v) => prop_assert_eq!(v, shadow[i], "read sees model state"),
                            Err(_) => { ok = false; break; }
                        }
                    }
                    Step::Add(a, d) => {
                        let i = *a as usize % CELLS;
                        let cur = match tx.read(&cells[i]) {
                            Ok(v) => v,
                            Err(_) => { ok = false; break; }
                        };
                        if tx.write(&cells[i], cur.wrapping_add(u64::from(*d))).is_err() {
                            ok = false; break;
                        }
                        shadow[i] = shadow[i].wrapping_add(u64::from(*d));
                    }
                    Step::Copy(a, b) => {
                        let (i, j) = (*a as usize % CELLS, *b as usize % CELLS);
                        let v = match tx.read(&cells[i]) {
                            Ok(v) => v,
                            Err(_) => { ok = false; break; }
                        };
                        let shadow_v = shadow[i];
                        if tx.write(&cells[j], v).is_err() { ok = false; break; }
                        shadow[j] = shadow_v;
                    }
                }
            }
            if spec.abort || !ok {
                tx.rollback();
                // Model unchanged: aborted transactions leave no trace.
            } else {
                prop_assert!(tx.commit().is_ok(), "single-threaded commit succeeds");
                model = shadow;
            }
            // Cross-check live state against the model after every tx.
            let mut check = Tx::direct(&rt);
            for (i, cell) in cells.iter().enumerate() {
                prop_assert_eq!(check.read(cell).unwrap(), model[i], "cell {}", i);
            }
            check.commit().unwrap();
        }
    }

    #[test]
    fn capacity_limits_are_exact(writes in 1usize..40) {
        let rt = HtmRuntime::new(HtmConfig::tiny()); // 8 write lines
        let cells: Vec<Box<TxVar<u64>>> = (0..writes).map(|_| Box::new(TxVar::new(0))).collect();
        let mut tx = Tx::fast(&rt);
        let mut failed_at = None;
        for (i, c) in cells.iter().enumerate() {
            if tx.write(c, 1).is_err() {
                failed_at = Some(i);
                break;
            }
        }
        // Heap boxes may share cache lines, so the abort index is at least
        // the modeled line capacity (8), never before it.
        match failed_at {
            Some(i) => prop_assert!(i >= 8, "aborted before the modeled capacity: {}", i),
            None => prop_assert!(writes <= 16, "never aborted with {} writes", writes),
        }
    }
}
