//! Property: interleaved transactional histories are serializable — a
//! sequence of transactions (some aborted) applied against `TxVar`s must
//! leave exactly the state a sequential model produces from the committed
//! subset.
//!
//! Random cases come from a seeded [`SplitMix64`] stream so the suite is
//! fully deterministic and needs no external crates; a failing case is
//! reproduced by its printed seed.

use gocc_htm::{HtmConfig, HtmRuntime, Tx, TxVar};
use gocc_telemetry::SplitMix64;

const CELLS: usize = 8;

#[derive(Clone, Debug)]
enum Step {
    Read(u8),
    Add(u8, u8),
    Copy(u8, u8),
}

fn random_step(rng: &mut SplitMix64) -> Step {
    match rng.below(3) {
        0 => Step::Read(rng.next_u64() as u8),
        1 => Step::Add(rng.next_u64() as u8, rng.next_u64() as u8),
        _ => Step::Copy(rng.next_u64() as u8, rng.next_u64() as u8),
    }
}

#[derive(Clone, Debug)]
struct TxSpec {
    steps: Vec<Step>,
    abort: bool,
}

fn random_tx_spec(rng: &mut SplitMix64) -> TxSpec {
    let steps = (0..rng.range(1, 12)).map(|_| random_step(rng)).collect();
    TxSpec {
        steps,
        abort: rng.flip(),
    }
}

#[test]
fn committed_transactions_apply_exactly_once() {
    for case in 0..96u64 {
        let mut rng = SplitMix64::new(0x5E71A110 + case);
        let specs: Vec<TxSpec> = (0..rng.range(1, 24))
            .map(|_| random_tx_spec(&mut rng))
            .collect();

        let rt = HtmRuntime::new(HtmConfig::coffee_lake());
        let cells: Vec<TxVar<u64>> = (0..CELLS).map(|i| TxVar::new(i as u64)).collect();
        let mut model: Vec<u64> = (0..CELLS as u64).collect();

        for spec in &specs {
            let mut tx = Tx::fast(&rt);
            let mut shadow = model.clone();
            let mut ok = true;
            for s in &spec.steps {
                match s {
                    Step::Read(a) => {
                        let i = *a as usize % CELLS;
                        match tx.read(&cells[i]) {
                            Ok(v) => assert_eq!(v, shadow[i], "case {case}: read sees model"),
                            Err(_) => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    Step::Add(a, d) => {
                        let i = *a as usize % CELLS;
                        let cur = match tx.read(&cells[i]) {
                            Ok(v) => v,
                            Err(_) => {
                                ok = false;
                                break;
                            }
                        };
                        if tx
                            .write(&cells[i], cur.wrapping_add(u64::from(*d)))
                            .is_err()
                        {
                            ok = false;
                            break;
                        }
                        shadow[i] = shadow[i].wrapping_add(u64::from(*d));
                    }
                    Step::Copy(a, b) => {
                        let (i, j) = (*a as usize % CELLS, *b as usize % CELLS);
                        let v = match tx.read(&cells[i]) {
                            Ok(v) => v,
                            Err(_) => {
                                ok = false;
                                break;
                            }
                        };
                        let shadow_v = shadow[i];
                        if tx.write(&cells[j], v).is_err() {
                            ok = false;
                            break;
                        }
                        shadow[j] = shadow_v;
                    }
                }
            }
            if spec.abort || !ok {
                tx.rollback();
                // Model unchanged: aborted transactions leave no trace.
            } else {
                assert!(tx.commit().is_ok(), "case {case}: single-threaded commit");
                model = shadow;
            }
            // Cross-check live state against the model after every tx.
            let mut check = Tx::direct(&rt);
            for (i, cell) in cells.iter().enumerate() {
                assert_eq!(check.read(cell).unwrap(), model[i], "case {case} cell {i}");
            }
            check.commit().unwrap();
        }
    }
}

#[test]
fn capacity_limits_are_exact() {
    // Exhaustive over the old proptest range 1..40.
    for writes in 1usize..40 {
        let rt = HtmRuntime::new(HtmConfig::tiny()); // 8 write lines
        let cells: Vec<Box<TxVar<u64>>> = (0..writes).map(|_| Box::new(TxVar::new(0))).collect();
        let mut tx = Tx::fast(&rt);
        let mut failed_at = None;
        for (i, c) in cells.iter().enumerate() {
            if tx.write(c, 1).is_err() {
                failed_at = Some(i);
                break;
            }
        }
        // Heap boxes may share cache lines, so the abort index is at least
        // the modeled line capacity (8), never before it.
        match failed_at {
            Some(i) => assert!(i >= 8, "aborted before the modeled capacity: {i}"),
            None => assert!(writes <= 16, "never aborted with {writes} writes"),
        }
    }
}
