//! `auto_failover_soak` — SIGKILL the primary under seeded transport
//! faults and let the cluster heal itself: **no operator promote
//! anywhere in this harness**. The replicas' failure detectors, the
//! quorum election and the epoch fencing must do everything.
//!
//! Topology per mode: one `goccd` child process as the primary
//! (WAL-backed, `--repl-accept --repl-min-acks 2`) and two in-process
//! replicas with `repl_auto_promote`, each with its own data dir, so the
//! replica-side WAL is in the acked path. Oracle, each a hard failure:
//!
//! 1. **No acked write is lost.** Sequential SET/DEL writer with a
//!    per-key post-state history; after the self-elected primary takes
//!    over, every key must read back as an issued state at or after its
//!    last acked one.
//! 2. **Exactly one new primary per epoch.** A monitor thread polls both
//!    replicas' in-process state every few milliseconds for the whole
//!    run: two simultaneous primaries is split brain. At the end the
//!    loser must follow the winner at the winner's epoch.
//! 3. **Read-your-writes is never violated.** A session writer drives
//!    `SET_S`, pockets the `(shard, version)` tokens, and immediately
//!    session-reads each key back through the cluster (floor-carrying
//!    `GET_S`, `Behind` rotates). Every successful session read must
//!    return a state at or after the session's last acked write.
//! 4. **Detection + promotion is bounded.** From SIGKILL to the first
//!    replica reporting role=primary must be under `--detect-deadline-ms`
//!    (default 5000); the artifact records detection, promotion and
//!    write-unavailability separately.
//! 5. **A deposed primary's stale epoch is fenced.** The killed primary
//!    is restarted from its own data dir (it boots believing it is a
//!    primary, at epoch 0). It must refuse writes (lease fencing: no
//!    live subscribers), and a replica deliberately repointed at it must
//!    reject its stream (`stale_epoch_rejects` climbs) without applying
//!    a single batch, then reconverge once repointed back at the winner.
//!
//! Emits `BENCH_failover.json` with the detection/promotion/
//! unavailability numbers per mode.
//!
//! Exit codes: 1 = harness error, 2 = liveness watchdog, 4 = an oracle
//! violation.
//!
//! ```console
//! $ auto_failover_soak --seed 2026 --mode both --load-ops 1200
//! ```

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read};
use std::net::{Ipv4Addr, SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gocc_faultplane::{TransportFaultPlan, TransportMix};
use gocc_loadgen::{ClientConfig, ClusterClient, ResilientClient, Session};
use gocc_server::{mode_name, parse_mode, spawn, Mode, ServerConfig, ServerHandle, ServerState};
use gocc_telemetry::{JsonWriter, SplitMix64};
use gocc_wire::{
    decode_response, encode_repl_request, encode_request, read_frame, write_frame, ReplRequest,
    Request, Response,
};

// ---------------------------------------------------------------- args --

struct Args {
    seed: u64,
    /// None = both modes.
    mode: Option<Mode>,
    /// Sequential writer ops per mode (the kill fires halfway).
    load_ops: u64,
    /// Distinct plain-oracle keys.
    keys: u64,
    /// Per-op fault probability on the replication streams (0 = off).
    fault_rate: f64,
    /// SIGKILL → first replica reporting role=primary.
    detect_deadline: Duration,
    /// Bound on the loser reconverging after the rejoin phase.
    converge_deadline: Duration,
    goccd: String,
    stall_secs: u64,
}

fn usage() -> String {
    "usage: auto_failover_soak [--seed N] [--mode lock|gocc|both] [--load-ops N] [--keys N] \
     [--fault-rate F] [--detect-deadline-ms N] [--converge-deadline-ms N] [--goccd PATH] \
     [--stall-secs N]"
        .to_string()
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut args = Args {
        seed: 2026,
        mode: None,
        load_ops: 1200,
        keys: 24,
        fault_rate: 0.02,
        detect_deadline: Duration::from_secs(5),
        converge_deadline: Duration::from_secs(3),
        goccd: "./target/release/goccd".to_string(),
        stall_secs: 60,
    };
    let mut it = raw.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        fn num<T: std::str::FromStr>(name: &str, v: &str) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            v.parse().map_err(|e| format!("{name}: {e}"))
        }
        match flag.as_str() {
            "--seed" => args.seed = num("--seed", &value("--seed")?)?,
            "--mode" => {
                let v = value("--mode")?;
                args.mode = if v == "both" {
                    None
                } else {
                    Some(parse_mode(&v)?)
                };
            }
            "--load-ops" => args.load_ops = num("--load-ops", &value("--load-ops")?)?,
            "--keys" => args.keys = num("--keys", &value("--keys")?)?,
            "--fault-rate" => args.fault_rate = num("--fault-rate", &value("--fault-rate")?)?,
            "--detect-deadline-ms" => {
                args.detect_deadline = Duration::from_millis(num(
                    "--detect-deadline-ms",
                    &value("--detect-deadline-ms")?,
                )?);
            }
            "--converge-deadline-ms" => {
                args.converge_deadline = Duration::from_millis(num(
                    "--converge-deadline-ms",
                    &value("--converge-deadline-ms")?,
                )?);
            }
            "--goccd" => args.goccd = value("--goccd")?,
            "--stall-secs" => args.stall_secs = num("--stall-secs", &value("--stall-secs")?)?,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    if args.load_ops < 100 || args.keys == 0 {
        return Err("--load-ops must be >= 100 and --keys >= 1".into());
    }
    Ok(args)
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gocc-autofailover-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A guarantee violation (exit 4), distinct from a broken harness.
fn violation(msg: String) -> String {
    format!("VIOLATION: {msg}")
}

// ---------------------------------------------------- liveness watchdog --

struct Liveness {
    beats: AtomicU64,
    done: AtomicBool,
}

fn start_liveness_monitor(stall: Duration) -> Arc<Liveness> {
    let live = Arc::new(Liveness {
        beats: AtomicU64::new(0),
        done: AtomicBool::new(false),
    });
    let monitor = Arc::clone(&live);
    std::thread::Builder::new()
        .name("autofailover-liveness".into())
        .spawn(move || {
            let mut last = monitor.beats.load(Ordering::Relaxed);
            let mut last_change = Instant::now();
            loop {
                std::thread::sleep(Duration::from_millis(200));
                if monitor.done.load(Ordering::Relaxed) {
                    return;
                }
                let now = monitor.beats.load(Ordering::Relaxed);
                if now != last {
                    last = now;
                    last_change = Instant::now();
                } else if last_change.elapsed() > stall {
                    eprintln!(
                        "auto_failover_soak: LIVENESS WATCHDOG: no progress for {}s",
                        stall.as_secs()
                    );
                    std::process::exit(2);
                }
            }
        })
        .expect("spawn liveness monitor");
    live
}

// ------------------------------------------------------- per-key oracle --

/// Post-state history of one key under the sequential writer (SET/DEL
/// only — post-states are history-independent).
#[derive(Default)]
struct KeyHist {
    states: Vec<Option<u64>>,
    acked: Option<usize>,
}

impl KeyHist {
    fn admits(&self, got: Option<u64>) -> bool {
        match self.acked {
            Some(ai) => self.states[ai..].contains(&got),
            None => got.is_none() || self.states.contains(&got),
        }
    }
}

type Oracle = HashMap<String, KeyHist>;

// --------------------------------------------------------- child primary --

struct Daemon {
    child: std::process::Child,
    port: u16,
}

fn spawn_primary(args: &Args, mode: Mode, dir: &std::path::Path) -> Result<Daemon, String> {
    let mut cmd = std::process::Command::new(&args.goccd);
    cmd.args([
        "--mode",
        mode_name(mode),
        "--port",
        "0",
        "--workers",
        "2",
        "--shards",
        "2",
        "--repl-accept",
        "--repl-min-acks",
        "2",
        "--repl-lease-ms",
        "400",
        "--repl-ack-timeout-ms",
        "2000",
    ])
    .arg("--data-dir")
    .arg(dir)
    .args(["--wal-sync", "group", "--fsync-wait-us", "100"])
    .stdout(std::process::Stdio::piped())
    .stderr(std::process::Stdio::null());
    let mut child = cmd
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", args.goccd))?;
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut port = None;
    let mut line = String::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                if let Some(p) = line.strip_prefix("LISTENING ") {
                    port = p.trim().parse().ok();
                    break;
                }
            }
            Err(e) => return Err(format!("reading goccd stdout: {e}")),
        }
    }
    let Some(port) = port else {
        let _ = child.kill();
        let _ = child.wait();
        return Err("goccd never printed LISTENING".into());
    };
    std::thread::spawn(move || {
        let mut sink = [0u8; 4096];
        while matches!(reader.read(&mut sink), Ok(n) if n > 0) {}
    });
    Ok(Daemon { child, port })
}

fn spawn_replica(
    args: &Args,
    mode: Mode,
    primary_port: u16,
    salt: u64,
    dir: &std::path::Path,
) -> Result<ServerHandle, String> {
    let fault_plan = (args.fault_rate > 0.0).then(|| {
        Arc::new(TransportFaultPlan::new(
            args.seed ^ (salt + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            TransportMix::uniform(args.fault_rate),
        ))
    });
    spawn(ServerConfig {
        mode,
        port: 0,
        workers: 2,
        shards: 2,
        capacity_per_shard: 4096,
        replica_of: Some(format!("127.0.0.1:{primary_port}")),
        repl_fault_plan: fault_plan,
        // Distinct per-replica seeds stagger the suspicion jitter.
        repl_seed: args.seed ^ salt.wrapping_mul(0xD1B5_4A32_D192_ED03),
        repl_auto_promote: true,
        repl_suspect: Duration::from_millis(300),
        data_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    })
    .map_err(|e| format!("spawn replica: {e}"))
}

// --------------------------------------------------------- wire helpers --

fn repl_call(port: u16, req: &ReplRequest<'_>) -> Result<(), String> {
    let addr = SocketAddr::from((Ipv4Addr::LOCALHOST, port));
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))
        .map_err(|e| format!("connect {port}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    let mut frame = Vec::new();
    encode_repl_request(req, &mut frame);
    write_frame(&mut stream, &frame).map_err(|e| format!("send: {e}"))?;
    let mut resp = Vec::new();
    if !read_frame(&mut stream, &mut resp).map_err(|e| format!("recv: {e}"))? {
        return Err("connection closed".into());
    }
    match decode_response(&resp).map_err(|e| format!("decode: {e}"))? {
        Response::Done => Ok(()),
        other => Err(format!("REPL verb answered {other:?}")),
    }
}

/// One request over a fresh connection (for probing the rejoined,
/// possibly-fenced old primary without retry machinery in the way).
fn call_once(port: u16, req: &Request<'_>) -> Result<Vec<u8>, String> {
    let addr = SocketAddr::from((Ipv4Addr::LOCALHOST, port));
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))
        .map_err(|e| format!("connect {port}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    let mut frame = Vec::new();
    encode_request(req, &mut frame);
    write_frame(&mut stream, &frame).map_err(|e| format!("send: {e}"))?;
    let mut resp = Vec::new();
    if !read_frame(&mut stream, &mut resp).map_err(|e| format!("recv: {e}"))? {
        return Err("connection closed".into());
    }
    Ok(resp)
}

fn get_value(client: &mut ResilientClient, key: &str) -> Result<Option<u64>, String> {
    let mut resp = Vec::new();
    client
        .call(
            &Request::Get {
                key: key.as_bytes(),
            },
            &mut resp,
        )
        .map_err(|e| format!("GET {key}: {e}"))?;
    match decode_response(&resp).map_err(|e| format!("decode GET: {e}"))? {
        Response::Value { found, value } => Ok(found.then_some(value)),
        other => Err(format!("GET answered {other:?}")),
    }
}

// ------------------------------------------------------ failover monitor --

/// What the in-process poller measured around the kill.
#[derive(Default)]
struct FailoverTimes {
    /// SIGKILL → first suspicion counted on either replica.
    detection: Option<Duration>,
    /// SIGKILL → first replica holding role=primary.
    promotion: Option<Duration>,
    /// Both replicas primary at once (split brain) observed.
    split_brain: bool,
}

/// Polls both replicas' in-process state every ~3 ms from the moment of
/// the kill: first suspicion = detection, first promotion = promotion,
/// and a continuous exactly-one-primary check.
fn monitor_failover(
    r1: &Arc<ServerState>,
    r2: &Arc<ServerState>,
    t_kill: Instant,
    deadline: Duration,
    live: &Liveness,
) -> FailoverTimes {
    let base = r1.repl_suspicions() + r2.repl_suspicions();
    let mut times = FailoverTimes::default();
    while t_kill.elapsed() < deadline {
        if times.detection.is_none() && r1.repl_suspicions() + r2.repl_suspicions() > base {
            times.detection = Some(t_kill.elapsed());
        }
        let (p1, p2) = (!r1.is_replica(), !r2.is_replica());
        if p1 && p2 {
            times.split_brain = true;
            return times;
        }
        if times.promotion.is_none() && (p1 || p2) {
            // A suspicion necessarily preceded the promotion; if the
            // poll missed the counter flip, pin detection here.
            if times.detection.is_none() {
                times.detection = Some(t_kill.elapsed());
            }
            times.promotion = Some(t_kill.elapsed());
            return times;
        }
        live.beats.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(3));
    }
    times
}

// --------------------------------------------------------- per-mode run --

/// Everything the artifact wants from one mode's run.
struct ModeResult {
    mode: Mode,
    detection: Duration,
    promotion: Duration,
    unavailability: Duration,
    epoch: u64,
    suspicions: u64,
    elections: u64,
    stale_epoch_rejects: u64,
    acked_keys: u64,
    session_reads: u64,
    behind_rotations: u64,
}

#[allow(clippy::too_many_lines)]
fn run_mode(args: &Args, mode: Mode, live: &Liveness) -> Result<ModeResult, String> {
    let pdir = tmp(&format!("primary-{}", mode_name(mode)));
    let r1dir = tmp(&format!("replica1-{}", mode_name(mode)));
    let r2dir = tmp(&format!("replica2-{}", mode_name(mode)));
    let primary = spawn_primary(args, mode, &pdir)?;
    let r1 = spawn_replica(args, mode, primary.port, 1, &r1dir)?;
    let r2 = spawn_replica(args, mode, primary.port, 2, &r2dir)?;
    r1.state().set_repl_peers(vec![
        format!("127.0.0.1:{}", r2.port()),
        format!("127.0.0.1:{}", primary.port),
    ]);
    r2.state().set_repl_peers(vec![
        format!("127.0.0.1:{}", r1.port()),
        format!("127.0.0.1:{}", primary.port),
    ]);
    let (s1, s2) = (r1.state_arc(), r2.state_arc());
    let all_ports = vec![primary.port, r1.port(), r2.port()];

    // min_acks = 2: wait out the boot fence by probing an actual write.
    let mut probe = ResilientClient::new(primary.port, ClientConfig::default(), args.seed ^ 0xB0);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut resp = Vec::new();
        if probe
            .call(
                &Request::Set {
                    key: b"boot-probe",
                    value: 1,
                    ttl: 0,
                },
                &mut resp,
            )
            .is_ok()
            && matches!(decode_response(&resp), Ok(Response::Done))
        {
            break;
        }
        if Instant::now() > deadline {
            return Err("primary never unfenced (replicas did not subscribe)".into());
        }
        std::thread::sleep(Duration::from_millis(20));
        live.beats.fetch_add(1, Ordering::Relaxed);
    }
    drop(probe);

    // Sequential controller: plain oracle writes + a RYW session, with
    // the SIGKILL halfway and the in-process failover monitor at the
    // kill. No promote call anywhere.
    let mut cluster = ClusterClient::new(&all_ports, ClientConfig::chaos(), args.seed ^ 0xF417);
    let mut rng = SplitMix64::new(args.seed ^ 0xFA11_07E6);
    let mut oracle = Oracle::new();
    let mut session = Session::new();
    let mut session_hist: HashMap<String, KeyHist> = HashMap::new();
    let mut session_reads = 0u64;
    let kill_at = args.load_ops / 2;
    let mut primary_corpse = Some(primary.child);
    let mut times = FailoverTimes::default();
    let mut t_kill: Option<Instant> = None;
    let mut unavailability: Option<Duration> = None;

    for i in 0..args.load_ops {
        live.beats.fetch_add(1, Ordering::Relaxed);
        if i == kill_at {
            primary_corpse
                .as_mut()
                .expect("killed exactly once")
                .kill()
                .map_err(|e| format!("kill primary: {e}"))?;
            let t0 = Instant::now();
            t_kill = Some(t0);
            times = monitor_failover(&s1, &s2, t0, args.detect_deadline, live);
            if times.split_brain {
                return Err(violation(
                    "split brain: both replicas promoted themselves".to_string(),
                ));
            }
            let Some(promotion) = times.promotion else {
                return Err(violation(format!(
                    "no replica auto-promoted itself within {:?} \
                     (suspicions observed: {})",
                    args.detect_deadline,
                    s1.repl_suspicions() + s2.repl_suspicions(),
                )));
            };
            if promotion > args.detect_deadline {
                return Err(violation(format!(
                    "detection+promotion took {promotion:?}, deadline {:?}",
                    args.detect_deadline
                )));
            }
        }

        // Plain oracle op.
        let key = format!("ak-{}", rng.below(args.keys));
        let hist = oracle.entry(key.clone()).or_default();
        let req = if rng.below(100) < 85 {
            let value = rng.next_u64() >> 1;
            hist.states.push(Some(value));
            Request::Set {
                key: key.as_bytes(),
                value,
                ttl: 0,
            }
        } else {
            hist.states.push(None);
            Request::Del {
                key: key.as_bytes(),
            }
        };
        let mut resp = Vec::new();
        let acked = match cluster.write(&req, &mut resp) {
            Err(_) => false,
            Ok(()) => !matches!(
                decode_response(&resp),
                Ok(Response::Error { .. })
                    | Ok(Response::Overloaded { .. })
                    | Ok(Response::DeadlineExceeded)
                    | Err(_)
            ),
        };
        if acked {
            hist.acked = Some(hist.states.len() - 1);
            if let (Some(t0), None) = (t_kill, unavailability) {
                unavailability = Some(t0.elapsed());
            }
        }

        // RYW session op every few iterations: write, then read back
        // through the cluster and hold it to the session's floor.
        if i % 4 == 0 {
            let skey = format!("ryw-{}", i % 8);
            let shist = session_hist.entry(skey.clone()).or_default();
            shist.states.push(Some(i));
            let mut resp = Vec::new();
            let ok = cluster
                .write_session(&mut session, skey.as_bytes(), i, 0, &mut resp)
                .is_ok();
            if ok && matches!(decode_response(&resp), Ok(Response::DoneAt { .. })) {
                shist.acked = Some(shist.states.len() - 1);
            }
            match cluster.read_session(&session, skey.as_bytes(), &mut resp) {
                Err(_) => {
                    // A session read may fail outright only while no
                    // node is reachable; with two live replicas serving
                    // floor-checked reads this must not happen.
                    return Err(violation(format!(
                        "session read of {skey} found no endpoint satisfying the floor \
                         (op {i})"
                    )));
                }
                Ok(()) => {
                    session_reads += 1;
                    let got = match decode_response(&resp) {
                        Ok(Response::Value { found, value }) => found.then_some(value),
                        Ok(other) => {
                            return Err(format!("session read answered {other:?}"));
                        }
                        Err(e) => return Err(format!("mis-framed session read: {e}")),
                    };
                    if !shist.admits(got) {
                        return Err(violation(format!(
                            "read-your-writes violated on {skey}: got {got:?}, acked \
                             index {:?} of {} issued (op {i})",
                            shist.acked,
                            shist.states.len()
                        )));
                    }
                }
            }
        }
    }
    if let Some(mut child) = primary_corpse {
        let _ = child.wait();
    }
    let unavailability = unavailability
        .ok_or_else(|| violation("no write was ever acknowledged after the kill".to_string()))?;

    // Epoch oracle: exactly one primary, the loser follows it at the
    // same epoch.
    let (winner, loser, wstate, lstate) = if !s1.is_replica() {
        (&r1, &r2, &s1, &s2)
    } else if !s2.is_replica() {
        (&r2, &r1, &s2, &s1)
    } else {
        return Err(violation(
            "promotion observed during the run but no replica is primary now".to_string(),
        ));
    };
    if !lstate.is_replica() {
        return Err(violation(
            "split brain at end of load: both replicas primary".to_string(),
        ));
    }
    let epoch = wstate.epoch();
    if epoch == 0 {
        return Err(violation("promotion did not advance the epoch".to_string()));
    }
    let deadline = Instant::now() + args.converge_deadline;
    loop {
        if lstate.epoch() == epoch
            && lstate.upstream_hint() == format!("127.0.0.1:{}", winner.port())
        {
            break;
        }
        if Instant::now() > deadline {
            return Err(violation(format!(
                "loser never adopted epoch {epoch} / repointed at the winner \
                 (epoch {}, upstream {:?})",
                lstate.epoch(),
                lstate.upstream_hint()
            )));
        }
        std::thread::sleep(Duration::from_millis(10));
        live.beats.fetch_add(1, Ordering::Relaxed);
    }

    // No-acked-write-lost oracle against the self-elected primary.
    let acked_keys = oracle.values().filter(|h| h.acked.is_some()).count() as u64;
    if acked_keys == 0 {
        return Err("no key ever got an acked write — the oracle verified nothing".into());
    }
    let mut wclient = ResilientClient::new(winner.port(), ClientConfig::default(), args.seed);
    for (key, hist) in &oracle {
        let got = get_value(&mut wclient, key)?;
        if !hist.admits(got) {
            return Err(violation(format!(
                "mode {}: key {key} on the self-elected primary is {got:?}, not an \
                 issued state at or after acked index {:?} ({} issued)",
                mode_name(mode),
                hist.acked,
                hist.states.len()
            )));
        }
    }

    // Rejoin phase: the deposed primary comes back from its own data dir,
    // believing it is a primary at epoch 0.
    let rejoined = spawn_primary(args, mode, &pdir)?;
    // Lease fencing half: no live subscribers, so it must refuse writes.
    let resp = call_once(
        rejoined.port,
        &Request::Set {
            key: b"poison",
            value: 666,
            ttl: 0,
        },
    )?;
    match decode_response(&resp).map_err(|e| format!("decode rejoin probe: {e}"))? {
        Response::Error { .. } => {}
        other => {
            return Err(violation(format!(
                "rejoined deposed primary acked a write with no live replicas: {other:?}"
            )));
        }
    }
    // Epoch fencing half: a replica pointed at the stale primary must
    // reject its stream without applying anything.
    let stale_base = lstate.repl_stale_epoch_rejects();
    let old_upstream = format!("127.0.0.1:{}", rejoined.port);
    repl_call(
        loser.port(),
        &ReplRequest::Promote {
            upstream: old_upstream.as_bytes(),
        },
    )
    .map_err(|e| format!("repoint loser at deposed primary: {e}"))?;
    let deadline = Instant::now() + Duration::from_secs(5);
    while lstate.repl_stale_epoch_rejects() == stale_base {
        if Instant::now() > deadline {
            return Err(violation(
                "replica never rejected the deposed primary's stale epoch".to_string(),
            ));
        }
        std::thread::sleep(Duration::from_millis(10));
        live.beats.fetch_add(1, Ordering::Relaxed);
    }
    if lstate.epoch() != epoch {
        return Err(violation(format!(
            "replica's epoch moved ({} -> {}) while following a stale primary",
            epoch,
            lstate.epoch()
        )));
    }
    // Repoint home and prove the loser still converges to the winner.
    let winner_addr = format!("127.0.0.1:{}", winner.port());
    repl_call(
        loser.port(),
        &ReplRequest::Promote {
            upstream: winner_addr.as_bytes(),
        },
    )
    .map_err(|e| format!("repoint loser at winner: {e}"))?;
    let mut resp = Vec::new();
    wclient
        .call(
            &Request::Set {
                key: b"rejoin-sentinel",
                value: 4242,
                ttl: 0,
            },
            &mut resp,
        )
        .map_err(|e| format!("sentinel write: {e}"))?;
    let mut lclient = ResilientClient::new(loser.port(), ClientConfig::default(), args.seed);
    let deadline = Instant::now() + args.converge_deadline;
    while get_value(&mut lclient, "rejoin-sentinel")? != Some(4242) {
        if Instant::now() > deadline {
            return Err(violation(format!(
                "loser did not reconverge to the winner within {:?} after the rejoin \
                 detour",
                args.converge_deadline
            )));
        }
        std::thread::sleep(Duration::from_millis(10));
        live.beats.fetch_add(1, Ordering::Relaxed);
    }

    // Teardown.
    let mut rejoined = rejoined;
    let _ = rejoined.child.kill();
    let _ = rejoined.child.wait();
    let suspicions = s1.repl_suspicions() + s2.repl_suspicions();
    let elections = s1.repl_elections() + s2.repl_elections();
    let stale_epoch_rejects = s1.repl_stale_epoch_rejects() + s2.repl_stale_epoch_rejects();
    r1.request_shutdown();
    r2.request_shutdown();
    let _ = r1.join();
    let _ = r2.join();
    for d in [&pdir, &r1dir, &r2dir] {
        let _ = std::fs::remove_dir_all(d);
    }

    let result = ModeResult {
        mode,
        detection: times.detection.expect("promotion implies detection"),
        promotion: times.promotion.expect("checked at kill"),
        unavailability,
        epoch,
        suspicions,
        elections,
        stale_epoch_rejects,
        acked_keys,
        session_reads,
        behind_rotations: cluster.behind_rotations(),
    };
    println!(
        "auto_failover ({:<4})  OK  detection={:?} promotion={:?} unavailability={:?} \
         epoch={} elections={} stale_epoch_rejects={} session_reads={}",
        mode_name(mode),
        result.detection,
        result.promotion,
        result.unavailability,
        result.epoch,
        result.elections,
        result.stale_epoch_rejects,
        result.session_reads,
    );
    Ok(result)
}

// ------------------------------------------------------------- artifact --

fn render_artifact(seed: u64, results: &[ModeResult]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("seed").u64(seed);
    w.key("results").begin_array();
    for r in results {
        w.begin_object();
        w.key("mode").string(mode_name(r.mode));
        w.key("detection_ms").f64(r.detection.as_secs_f64() * 1e3);
        w.key("promotion_ms").f64(r.promotion.as_secs_f64() * 1e3);
        w.key("unavailability_ms")
            .f64(r.unavailability.as_secs_f64() * 1e3);
        w.key("epoch").u64(r.epoch);
        w.key("suspicions").u64(r.suspicions);
        w.key("elections").u64(r.elections);
        w.key("stale_epoch_rejects").u64(r.stale_epoch_rejects);
        w.key("acked_keys").u64(r.acked_keys);
        w.key("session_reads").u64(r.session_reads);
        w.key("behind_rotations").u64(r.behind_rotations);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

// ---------------------------------------------------------------- main --

fn run(args: &Args) -> Result<(), String> {
    if !std::path::Path::new(&args.goccd).exists() {
        return Err(format!(
            "goccd binary not found at {} (build release first)",
            args.goccd
        ));
    }
    let modes: Vec<Mode> = match args.mode {
        Some(m) => vec![m],
        None => vec![Mode::Lock, Mode::Gocc],
    };
    let live = start_liveness_monitor(Duration::from_secs(args.stall_secs.max(5)));
    let t0 = Instant::now();
    let mut results = Vec::new();
    for &mode in &modes {
        results.push(run_mode(args, mode, &live)?);
    }
    live.done.store(true, Ordering::Relaxed);
    gocc_bench::write_artifact("failover", &render_artifact(args.seed, &results));
    println!(
        "auto_failover_soak PASS  seed={} load_ops={} fault_rate={} {:?}",
        args.seed,
        args.load_ops,
        args.fault_rate,
        t0.elapsed()
    );
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    gocc_gosync::set_procs(8);
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("auto_failover_soak: FAIL: {msg}");
            if msg.starts_with("VIOLATION:") {
                ExitCode::from(4)
            } else {
                ExitCode::FAILURE
            }
        }
    }
}
