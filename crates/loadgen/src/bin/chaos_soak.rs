//! `chaos_soak` — combined fault-schedule soak for the whole GOCC stack.
//!
//! Runs the three fault planes of `gocc-faultplane` against the layers
//! that consume them and checks the degradation guarantees the paper's
//! safety argument rests on (§5.4):
//!
//! 1. **Replay** — the same seed reproduces the *identical* fault
//!    schedule: same HTM abort draws, same mis-pairing decisions, same
//!    transport faults, byte for byte. Verified by running a fixed
//!    single-threaded driver twice and comparing fingerprints.
//! 2. **Degradation** — under elevated HTM abort injection a
//!    multithreaded cache workload must stay exactly correct versus a
//!    sequential oracle; a pathological retry policy must be bounded by
//!    the livelock watchdog (visible in telemetry); injected Lock/Unlock
//!    mis-pairings must all be detected and recovered.
//! 3. **Transport** — a real `goccd` with fault-injected sockets, driven
//!    by resilient clients, must converge on a fully correct store with
//!    zero malformed frames: faults cost connections, never data.
//!
//! A liveness watchdog thread aborts the process (exit 2) if no worker
//! makes progress for `--stall-secs`, so a deadlock or livelock fails the
//! run instead of hanging CI. Any correctness divergence exits 1.
//!
//! ```console
//! $ chaos_soak --seed 7 --sections 300 --abort-rate 0.2 --transport-rate 0.2
//! ```

use std::collections::HashMap;
use std::io::{Cursor, Read, Write};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gocc_faultplane::{AbortMix, FaultPlane, FaultPlaneConfig, TransportMix};
use gocc_gosync::{lock_id, LockLedger};
use gocc_htm::{Tx, TxVar};
use gocc_loadgen::{ClientConfig, ResilientClient};
use gocc_optilock::{
    call_site, critical_mutex, ElidableMutex, GoccConfig, GoccRuntime, HtmScope, LockRef, OptiLock,
};
use gocc_server::{mode_name, parse_mode, spawn, Mode, ServerConfig};
use gocc_telemetry::{JsonValue, SplitMix64};
use gocc_wire::{decode_response, FaultyStream, Request, Response};
use gocc_workloads::gocache::Cache;
use gocc_workloads::Engine;

// ---------------------------------------------------------------- args --

struct Args {
    seed: u64,
    /// None = both modes.
    mode: Option<Mode>,
    /// Sections (phase 2) / iterations (phase 1) per thread.
    sections: u64,
    threads: usize,
    abort_rate: f64,
    pairing_rate: f64,
    transport_rate: f64,
    /// Keys per client in the networked phase.
    net_keys: u64,
    net_clients: usize,
    stall_secs: u64,
    /// Prefix for the per-mode Chrome trace dumps written after the
    /// networked phase; `None` disables them.
    trace_out: Option<String>,
}

fn usage() -> String {
    "usage: chaos_soak [--seed N] [--mode lock|gocc|both] [--sections N] [--threads N] \
     [--abort-rate F] [--pairing-rate F] [--transport-rate F] \
     [--net-keys N] [--net-clients N] [--stall-secs N] [--trace-out PREFIX|none]"
        .to_string()
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut args = Args {
        seed: 2026,
        mode: None,
        sections: 300,
        threads: 4,
        abort_rate: 0.2,
        pairing_rate: 0.2,
        transport_rate: 0.2,
        net_keys: 48,
        net_clients: 3,
        stall_secs: 60,
        trace_out: Some("TRACE_chaos".to_string()),
    };
    let mut it = raw.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        fn num<T: std::str::FromStr>(name: &str, v: &str) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            v.parse().map_err(|e| format!("{name}: {e}"))
        }
        match flag.as_str() {
            "--seed" => args.seed = num("--seed", &value("--seed")?)?,
            "--mode" => {
                let v = value("--mode")?;
                args.mode = if v == "both" {
                    None
                } else {
                    Some(parse_mode(&v)?)
                };
            }
            "--sections" => args.sections = num("--sections", &value("--sections")?)?,
            "--threads" => args.threads = num("--threads", &value("--threads")?)?,
            "--abort-rate" => args.abort_rate = num("--abort-rate", &value("--abort-rate")?)?,
            "--pairing-rate" => {
                args.pairing_rate = num("--pairing-rate", &value("--pairing-rate")?)?;
            }
            "--transport-rate" => {
                args.transport_rate = num("--transport-rate", &value("--transport-rate")?)?;
            }
            "--net-keys" => args.net_keys = num("--net-keys", &value("--net-keys")?)?,
            "--net-clients" => args.net_clients = num("--net-clients", &value("--net-clients")?)?,
            "--stall-secs" => args.stall_secs = num("--stall-secs", &value("--stall-secs")?)?,
            "--trace-out" => {
                let v = value("--trace-out")?;
                args.trace_out = (v != "none").then_some(v);
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    if args.sections == 0 || args.threads == 0 || args.net_clients == 0 {
        return Err("--sections/--threads/--net-clients must be >= 1".into());
    }
    Ok(args)
}

fn plane_config(args: &Args) -> FaultPlaneConfig {
    FaultPlaneConfig {
        abort_mix: AbortMix::uniform(args.abort_rate),
        pairing_rate: args.pairing_rate,
        transport_mix: TransportMix::uniform(args.transport_rate),
    }
}

// ---------------------------------------------------- liveness watchdog --

/// Progress heartbeat shared by every worker: the monitor thread aborts
/// the whole process if the beat counter stops moving — a deadlock or
/// livelock becomes a fast, loud failure instead of a hung CI job.
struct Liveness {
    beats: AtomicU64,
    done: AtomicBool,
}

impl Liveness {
    fn beat(&self) {
        self.beats.fetch_add(1, Ordering::Relaxed);
    }
}

fn start_liveness_monitor(stall: Duration) -> Arc<Liveness> {
    let live = Arc::new(Liveness {
        beats: AtomicU64::new(0),
        done: AtomicBool::new(false),
    });
    let monitor = Arc::clone(&live);
    std::thread::Builder::new()
        .name("chaos-liveness".into())
        .spawn(move || {
            let mut last = monitor.beats.load(Ordering::Relaxed);
            let mut last_change = Instant::now();
            loop {
                std::thread::sleep(Duration::from_millis(200));
                if monitor.done.load(Ordering::Relaxed) {
                    return;
                }
                let now = monitor.beats.load(Ordering::Relaxed);
                if now != last {
                    last = now;
                    last_change = Instant::now();
                } else if last_change.elapsed() > stall {
                    eprintln!(
                        "chaos_soak: LIVENESS WATCHDOG: no progress for {}s — \
                         deadlock or livelock",
                        stall.as_secs()
                    );
                    std::process::exit(2);
                }
            }
        })
        .expect("spawn liveness monitor");
    live
}

// --------------------------------------------- phase 1: replay by seed --

/// One deterministic single-threaded pass over all three fault planes.
/// Everything observable lands in the fingerprint; two passes with the
/// same seed must produce identical fingerprints.
///
/// The drivers use a fixed synthetic call-site id rather than
/// `call_site!()`: fault draws are keyed by site, and a `static`'s
/// address moves under ASLR, which would keep replay within a process
/// but break it across invocations.
const REPLAY_SITE: usize = 0x517E_0001;

fn replay_fingerprint(seed: u64, cfg: FaultPlaneConfig, iters: u64) -> (String, Vec<u64>) {
    let plane = FaultPlane::new(seed, cfg);
    let mut fp: Vec<u64> = Vec::new();

    // HTM: seeded abort injection through the full optiLock retry loop.
    let mut gc = GoccConfig::no_perceptron();
    gc.htm.fault_plan = Some(Arc::clone(&plane.htm));
    let rt = GoccRuntime::new(gc);
    let m = ElidableMutex::new();
    let v = TxVar::new(0u64);
    let site = REPLAY_SITE;
    for _ in 0..iters {
        critical_mutex(&rt, site, &m, |tx| {
            let cur = tx.read(&v)?;
            tx.write(&v, cur + 1)
        });
    }
    let mut check = Tx::direct(rt.htm());
    assert_eq!(check.read(&v).unwrap(), iters, "lost updates in replay run");
    let snap = rt.stats().snapshot();
    fp.extend([
        snap.htm_attempts,
        snap.fast_commits,
        snap.slow_sections,
        snap.watchdog_forced,
    ]);

    // Pairing: the plan decides when the driver emits a phantom unlock;
    // the ledger must flag exactly those.
    let ledger = LockLedger::default();
    let (a, b, phantom) = (0u8, 0u8, 0u8);
    let (ida, idb, idp) = (lock_id(&a), lock_id(&b), lock_id(&phantom));
    for _ in 0..iters {
        ledger.note_lock(ida);
        ledger.note_lock(idb);
        if plane.pairing.mispair(site) {
            assert!(
                !ledger.note_unlock(idp),
                "phantom unlock must be flagged as a mispair"
            );
        }
        assert!(ledger.note_unlock(ida));
        assert!(ledger.note_unlock(idb));
    }
    assert_eq!(ledger.held_total(), 0, "ledger must balance after recovery");
    assert_eq!(ledger.mispairs(), plane.pairing.count());
    fp.extend([ledger.locks(), ledger.unlocks(), ledger.mispairs()]);

    // Transport: the same plan, the same stream, the same faults — every
    // read/write outcome becomes part of the fingerprint.
    let payload = vec![0xA5u8; 4096];
    let mut rd = FaultyStream::new(Cursor::new(payload), Arc::clone(&plane.transport));
    let mut buf = [0u8; 32];
    for _ in 0..iters.min(96) {
        fp.push(match rd.read(&mut buf) {
            Ok(n) => n as u64,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => 1_000,
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => 1_001,
            Err(_) => 1_002,
        });
    }
    let mut wr = FaultyStream::new(Vec::new(), Arc::clone(&plane.transport));
    for _ in 0..iters.min(96) {
        fp.push(match wr.write(&buf) {
            Ok(n) => n as u64,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => 2_000,
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => 2_001,
            Err(_) => 2_002,
        });
    }

    (plane.report().to_json(), fp)
}

fn phase1_replay(args: &Args) -> Result<(), String> {
    let cfg = plane_config(args);
    let first = replay_fingerprint(args.seed, cfg, args.sections);
    let second = replay_fingerprint(args.seed, cfg, args.sections);
    if first != second {
        return Err(format!(
            "same seed produced different fault schedules:\n  {}\n  {}",
            first.0, second.0
        ));
    }
    let other = replay_fingerprint(args.seed ^ 0x5DEE_CE66, cfg, args.sections);
    if first == other {
        return Err("different seeds produced identical schedules".into());
    }
    println!("phase 1 replay       OK  report={}", first.0);
    Ok(())
}

// -------------------------------------- phase 2: degradation vs oracle --

/// Multithreaded cache soak under HTM abort injection, checked op-by-op
/// against per-thread sequential oracles over disjoint key partitions
/// (disjointness makes the final state interleaving-independent).
fn phase2_cache_soak(args: &Args, mode: Mode, live: &Liveness) -> Result<(), String> {
    const KEYS_PER_THREAD: u64 = 32;
    let plane = FaultPlane::new(args.seed.wrapping_add(0x2A), plane_config(args));
    let mut gc = GoccConfig::with_telemetry();
    gc.htm.fault_plan = Some(Arc::clone(&plane.htm));
    let rt = GoccRuntime::new(gc);
    let capacity = (args.threads as u64 * KEYS_PER_THREAD * 4).next_power_of_two() as usize;
    let cache = Cache::with_capacity(capacity);

    let results: Vec<Result<u64, String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..args.threads)
            .map(|t| {
                let (rt, cache, live) = (&rt, &cache, &live);
                s.spawn(move || -> Result<u64, String> {
                    let engine = Engine::new(rt, mode);
                    let mut rng = SplitMix64::new(args.seed ^ (t as u64).wrapping_mul(0x9E37_79B9));
                    let mut oracle: HashMap<u64, u64> = HashMap::new();
                    let base = t as u64 * KEYS_PER_THREAD + 1;
                    let key_of = |rng: &mut SplitMix64| base + rng.below(KEYS_PER_THREAD);
                    let mut ops = 0u64;
                    for _ in 0..args.sections {
                        match rng.below(100) {
                            0..=39 => {
                                let (k, val) = (key_of(&mut rng), rng.next_u64() >> 1);
                                cache.set(&engine, k, val, 0);
                                oracle.insert(k, val);
                            }
                            40..=69 => {
                                let (k, d) = (key_of(&mut rng), rng.below(1000));
                                let new = cache.incr(&engine, k, d);
                                let entry = oracle.entry(k).or_insert(0);
                                *entry = entry.wrapping_add(d);
                                if new != *entry {
                                    return Err(format!(
                                        "thread {t}: incr({k}) => {new}, oracle {entry}"
                                    ));
                                }
                            }
                            70..=79 => {
                                let k = key_of(&mut rng);
                                let existed = cache.delete(&engine, k);
                                if existed != oracle.remove(&k).is_some() {
                                    return Err(format!("thread {t}: delete({k}) diverged"));
                                }
                            }
                            80..=94 => {
                                let k = key_of(&mut rng);
                                if cache.get(&engine, k) != oracle.get(&k).copied() {
                                    return Err(format!("thread {t}: get({k}) diverged"));
                                }
                            }
                            _ => {
                                // Large read set: the capacity-abort generator.
                                let _ = cache.scan(&engine, 16);
                            }
                        }
                        ops += 1;
                        live.beat();
                    }
                    // Final readback: the whole partition must match.
                    for k in base..base + KEYS_PER_THREAD {
                        if cache.get(&engine, k) != oracle.get(&k).copied() {
                            return Err(format!("thread {t}: final state of {k} diverged"));
                        }
                    }
                    Ok(ops)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("worker panicked".into())))
            .collect()
    });
    let mut total_ops = 0u64;
    for r in results {
        total_ops += r?;
    }

    let snap = rt.stats().snapshot();
    let injected = plane.report().htm_injected.iter().sum::<u64>();
    // Lock mode never attempts HTM, so only the elided mode can (and
    // must) see injected aborts.
    if mode == Mode::Gocc && args.abort_rate > 0.0 && injected == 0 {
        return Err("abort injection never fired during the cache soak".into());
    }
    println!(
        "phase 2 soak ({:<4})  OK  ops={total_ops} injected_aborts={injected} \
         fast={} slow={} watchdog={}",
        mode_name(mode),
        snap.fast_commits,
        snap.slow_sections,
        snap.watchdog_forced,
    );
    Ok(())
}

/// A pathological retry policy (unbounded budget, 100% transient aborts)
/// is a livelock machine; the watchdog must bound every section and the
/// guarantee must be visible in telemetry.
fn phase2_watchdog(args: &Args, live: &Liveness) -> Result<(), String> {
    const BOUND: u32 = 16;
    let plane = FaultPlane::new(
        args.seed.wrapping_add(0x77),
        FaultPlaneConfig {
            abort_mix: AbortMix {
                conflict: 1.0,
                ..AbortMix::default()
            },
            ..FaultPlaneConfig::default()
        },
    );
    let mut gc = GoccConfig::no_perceptron();
    gc.htm.fault_plan = Some(Arc::clone(&plane.htm));
    gc.policy.max_attempts = u32::MAX;
    gc.policy.watchdog_abort_bound = BOUND;
    gc.telemetry_enabled = true;
    let rt = GoccRuntime::new(gc);
    let m = ElidableMutex::new();
    let v = TxVar::new(0u64);
    let site = call_site!();
    let per_thread = args.sections.max(2) / 2;
    let total = per_thread * 2;
    std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                for _ in 0..per_thread {
                    critical_mutex(&rt, site, &m, |tx| {
                        let cur = tx.read(&v)?;
                        tx.write(&v, cur + 1)
                    });
                    live.beat();
                }
            });
        }
    });
    let mut check = Tx::direct(rt.htm());
    let count = check.read(&v).unwrap();
    if count != total {
        return Err(format!("watchdog run lost updates: {count} != {total}"));
    }
    let snap = rt.stats().snapshot();
    if snap.watchdog_forced != total || snap.slow_sections != total {
        return Err(format!(
            "watchdog must force every livelocked section to the lock: \
             forced={} slow={} of {total}",
            snap.watchdog_forced, snap.slow_sections
        ));
    }
    if snap.htm_attempts != total * u64::from(BOUND) {
        return Err(format!(
            "each section must burn exactly {BOUND} fast attempts, saw {} for {total}",
            snap.htm_attempts
        ));
    }
    let report = rt.telemetry().expect("telemetry on").report();
    if report.watchdog_forced != total {
        return Err("the watchdog guarantee must be visible in telemetry".into());
    }
    println!(
        "phase 2 watchdog     OK  sections={total} forced={} attempts={}",
        snap.watchdog_forced, snap.htm_attempts
    );
    Ok(())
}

/// Injected Lock/Unlock mis-pairings through the real `OptiLock`
/// fast-path: every one must be detected, recovered, and counted.
fn phase2_pairing(args: &Args, live: &Liveness) -> Result<(), String> {
    // No perceptron: a trained predictor would route mispaired iterations
    // to the slow path, which has no mismatch check to exercise.
    let plane = FaultPlane::new(args.seed.wrapping_add(0x9), plane_config(args));
    let rt = GoccRuntime::new(GoccConfig::no_perceptron());
    let a = ElidableMutex::new();
    let b = ElidableMutex::new();
    let v = TxVar::new(0u64);
    // Fixed site id: one mispair draw per iteration, so the injected
    // count is reproducible across invocations (see REPLAY_SITE).
    let site = REPLAY_SITE + 1;
    for _ in 0..args.sections {
        if plane.pairing.mispair(site) {
            // Mis-paired: FastLock(b) … FastUnlock(a), with a raw-held.
            let mut ol = OptiLock::new(site);
            a.lock_raw();
            loop {
                let mut scope = HtmScope::new(&rt);
                if ol.fast_lock(&mut scope, LockRef::Mutex(&b)).is_err() {
                    continue;
                }
                let write_ok = (|| {
                    let cur = scope.tx().read(&v)?;
                    scope.tx().write(&v, cur + 1)
                })();
                if write_ok.is_err() {
                    scope.abort_restart();
                    continue;
                }
                match ol.fast_unlock(&mut scope, LockRef::Mutex(&a)) {
                    Ok(()) => break,
                    Err(_) => {
                        if scope.is_active() {
                            scope.abort_restart();
                        }
                    }
                }
            }
            b.unlock_raw();
        } else {
            critical_mutex(&rt, site, &b, |tx| {
                let cur = tx.read(&v)?;
                tx.write(&v, cur + 1)
            });
        }
        if a.is_locked() || b.is_locked() {
            return Err("locks failed to balance after a mispaired iteration".into());
        }
        live.beat();
    }
    let injected = plane.pairing.count();
    let recovered = rt.stats().snapshot().mismatch_recoveries;
    if recovered != injected {
        return Err(format!(
            "every injected mispair must be detected (and nothing else): \
             injected={injected} recovered={recovered}"
        ));
    }
    let mut check = Tx::direct(rt.htm());
    let count = check.read(&v).unwrap();
    if count != args.sections {
        return Err(format!(
            "mispair recovery lost updates: {count} != {}",
            args.sections
        ));
    }
    println!("phase 2 pairing      OK  injected={injected} recovered={recovered}");
    Ok(())
}

// ------------------------------------------ phase 3: networked chaos --

/// A real `goccd` with transport faults on every accepted connection,
/// driven by resilient clients over disjoint key ranges. Idempotent verbs
/// only, so replay-on-failure is always safe; the store must end exactly
/// correct and the server must never see a malformed frame.
fn phase3_networked(args: &Args, mode: Mode, live: &Liveness) -> Result<(), String> {
    let plane = FaultPlane::new(args.seed.wrapping_add(0x3), plane_config(args));
    let handle = spawn(ServerConfig {
        mode,
        port: 0,
        workers: 2,
        shards: 4,
        capacity_per_shard: 1 << 14,
        write_timeout: Duration::from_secs(5),
        fault_plan: (args.transport_rate > 0.0).then(|| Arc::clone(&plane.transport)),
        ..ServerConfig::default()
    })
    .map_err(|e| format!("spawn goccd: {e}"))?;
    let port = handle.port();

    let results: Vec<Result<(u64, u64), String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..args.net_clients)
            .map(|t| {
                let live = &live;
                s.spawn(move || -> Result<(u64, u64), String> {
                    let mut client = ResilientClient::new(
                        port,
                        ClientConfig::chaos(),
                        args.seed ^ (t as u64 + 1).wrapping_mul(0xA076_1D64),
                    );
                    let io = |e: std::io::Error| format!("client {t}: {e}");
                    let value_of = |i: u64| (t as u64).wrapping_mul(1_000_003) + i * 7;
                    // Pipelined seeding: SETs go out in bursts of 8 and
                    // the whole burst replays on an I/O fault (idempotent
                    // verbs only, so batch replay stays safe under chaos).
                    const BATCH: u64 = 8;
                    let mut resps: Vec<Vec<u8>> = Vec::new();
                    let mut start = 0u64;
                    while start < args.net_keys {
                        let end = (start + BATCH).min(args.net_keys);
                        let keys: Vec<String> = (start..end).map(|i| format!("c{t}-{i}")).collect();
                        let reqs: Vec<Request<'_>> = keys
                            .iter()
                            .zip(start..end)
                            .map(|(key, i)| Request::Set {
                                key: key.as_bytes(),
                                value: value_of(i),
                                ttl: 0,
                            })
                            .collect();
                        client.call_pipelined(&reqs, &mut resps).map_err(io)?;
                        for (body, key) in resps.iter().zip(&keys) {
                            if decode_response(body).map_err(|e| format!("client {t}: {e}"))?
                                != Response::Done
                            {
                                return Err(format!("client {t}: SET {key} not acknowledged"));
                            }
                        }
                        live.beat();
                        start = end;
                    }
                    // Verify phase, also pipelined: each key's DEL (every
                    // fifth) rides in the same burst as its GET; FIFO
                    // order on one connection keeps them serialized.
                    let mut start = 0u64;
                    while start < args.net_keys {
                        let end = (start + BATCH).min(args.net_keys);
                        let keys: Vec<String> = (start..end).map(|i| format!("c{t}-{i}")).collect();
                        let mut reqs: Vec<Request<'_>> = Vec::new();
                        let mut expect: Vec<Option<Response<'_>>> = Vec::new();
                        for (key, i) in keys.iter().zip(start..end) {
                            let deleted = i % 5 == 4;
                            if deleted {
                                reqs.push(Request::Del {
                                    key: key.as_bytes(),
                                });
                                expect.push(None); // any Deleted shape is fine
                            }
                            reqs.push(Request::Get {
                                key: key.as_bytes(),
                            });
                            expect.push(Some(Response::Value {
                                found: !deleted,
                                value: if deleted { 0 } else { value_of(i) },
                            }));
                        }
                        client.call_pipelined(&reqs, &mut resps).map_err(io)?;
                        for (body, want) in resps.iter().zip(&expect) {
                            let got =
                                decode_response(body).map_err(|e| format!("client {t}: {e}"))?;
                            match want {
                                None => {
                                    if !matches!(got, Response::Deleted { .. }) {
                                        return Err(format!("client {t}: DEL answered {got:?}"));
                                    }
                                }
                                Some(want) => {
                                    if got != *want {
                                        return Err(format!(
                                            "client {t}: key diverged under transport \
                                             faults: got {got:?}, want {want:?}"
                                        ));
                                    }
                                }
                            }
                        }
                        live.beat();
                        start = end;
                    }
                    Ok((client.reconnects(), client.replays()))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("client panicked".into())))
            .collect()
    });
    let (mut reconnects, mut replays) = (0u64, 0u64);
    for r in results {
        let (rc, rp) = r?;
        reconnects += rc;
        replays += rp;
    }

    // STATS must stay serveable under faults (replay-safe verb).
    let mut control = ResilientClient::new(port, ClientConfig::chaos(), args.seed ^ 0x57A7);
    let mut resp = Vec::new();
    control
        .call(&Request::Stats, &mut resp)
        .map_err(|e| format!("STATS under faults: {e}"))?;
    let Response::Stats { json } =
        decode_response(&resp).map_err(|e| format!("bad stats response: {e}"))?
    else {
        return Err("STATS returned a non-stats response".into());
    };
    let doc = JsonValue::parse(json).map_err(|e| format!("STATS JSON must parse: {e}"))?;
    match doc.get("mode").and_then(|m| m.as_str()) {
        Some(m) if m == mode_name(mode) => {}
        other => return Err(format!("server reports mode {other:?}")),
    }

    let state = handle.state_arc();
    handle.request_shutdown();
    let summary = handle.join();
    if let Some(prefix) = &args.trace_out {
        // The flight recorder's surviving spans, as a Chrome trace-event
        // document. Validated before it lands: a dump that does not parse
        // is a bug, not an artifact.
        let dump = state.chrome_trace_json();
        JsonValue::parse(&dump).map_err(|e| format!("chrome trace dump does not parse: {e}"))?;
        let path = format!("{prefix}_{}.json", mode_name(mode));
        std::fs::write(&path, &dump).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    if summary.malformed_frames != 0 {
        return Err(format!(
            "transport faults must never corrupt frames: {} malformed",
            summary.malformed_frames
        ));
    }
    let injected = plane.transport.total_injected();
    if args.transport_rate >= 0.05 {
        if injected == 0 {
            return Err("transport injection never fired".into());
        }
        if reconnects + replays == 0 {
            return Err("clients never exercised resilience despite injected faults".into());
        }
    }
    println!(
        "phase 3 net ({:<4})   OK  injected={injected} reconnects={reconnects} \
         replays={replays} requests={}",
        mode_name(mode),
        summary.requests,
    );
    Ok(())
}

// ---------------------------------------------------------------- main --

fn run(args: &Args) -> Result<(), String> {
    let modes: Vec<Mode> = match args.mode {
        Some(m) => vec![m],
        None => vec![Mode::Lock, Mode::Gocc],
    };
    let live = start_liveness_monitor(Duration::from_secs(args.stall_secs.max(5)));
    let t0 = Instant::now();

    phase1_replay(args)?;
    for &mode in &modes {
        phase2_cache_soak(args, mode, &live)?;
    }
    phase2_watchdog(args, &live)?;
    phase2_pairing(args, &live)?;
    for &mode in &modes {
        phase3_networked(args, mode, &live)?;
    }

    live.done.store(true, Ordering::Relaxed);
    println!(
        "chaos_soak PASS  seed={} sections={} threads={} rates=({:.2},{:.2},{:.2}) {:?}",
        args.seed,
        args.sections,
        args.threads,
        args.abort_rate,
        args.pairing_rate,
        args.transport_rate,
        t0.elapsed(),
    );
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    gocc_gosync::set_procs(8);
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("chaos_soak: FAIL: {msg}");
            ExitCode::FAILURE
        }
    }
}
