//! `crash_soak` — seeded crash/recovery soak for the durability
//! subsystem.
//!
//! Two phases attack the same invariant — **no acknowledged write is
//! ever lost, no unacknowledged write is ever half-applied** — at two
//! different altitudes:
//!
//! 1. **Sim matrix** (in-process): the full write path — `Engine` →
//!    `ShardedStore::execute_durable` → `Wal` — over the simulated
//!    durable-prefix backend, with concurrent writers on disjoint key
//!    partitions and a per-key sequential oracle. Seeded crash draws
//!    kill the log at a reproducible byte (torn records, short fsyncs
//!    included); recovery into a fresh store must agree with the oracle
//!    in **both** execution modes (lock and gocc).
//! 2. **Process kill** (end-to-end): a real `goccd` child with
//!    `--wal-fault-seed`, driven over a real socket until the Abort
//!    backend tears an append onto disk and `abort()`s the daemon.
//!    A fault-free restart on the same `--data-dir` must serve every
//!    acknowledged write back; a final graceful restart must match the
//!    client's state exactly.
//!
//! Per-key correctness model: a sequential writer (per key) records the
//! post-state of every *issued* op and the index of the last *acked*
//! op. Recovery replays, per key, the surviving record with the highest
//! commit sequence — survival is prefix-ordered per shard — so the
//! recovered state must be one of the issued post-states at or after
//! the last acked one. Anything else is a lost ack or an invented
//! write.
//!
//! ```console
//! $ crash_soak --seed 2026 --mode both --sim-runs 6 --kill-cycles 2
//! ```

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gocc_faultplane::{StorageFaultPlan, StorageMix};
use gocc_loadgen::{connect_with_retry, ClientConfig};
use gocc_optilock::{GoccConfig, GoccRuntime};
use gocc_server::{mode_name, parse_mode, Mode, ShardedStore};
use gocc_telemetry::{JsonValue, SplitMix64};
use gocc_wal::{SyncPolicy, Wal, WalBackend, WalConfig};
use gocc_wire::{decode_response, encode_request, read_frame, write_frame, Request, Response};
use gocc_workloads::Engine;

// ---------------------------------------------------------------- args --

struct Args {
    seed: u64,
    /// None = both modes.
    mode: Option<Mode>,
    /// Seeds swept in the sim matrix (per mode).
    sim_runs: u64,
    /// Ops per writer thread in one sim run.
    sim_ops: u64,
    sim_threads: usize,
    /// Kill/recover cycles per mode in the end-to-end phase.
    kill_cycles: u64,
    /// Op cap per cycle (a cycle that never crashes shuts down cleanly).
    cycle_ops: u64,
    /// Per-append crash probability handed to the fault plan.
    crash_rate: f64,
    /// Path to the goccd binary; "none" skips the end-to-end phase.
    goccd: Option<String>,
    stall_secs: u64,
}

fn usage() -> String {
    "usage: crash_soak [--seed N] [--mode lock|gocc|both] [--sim-runs N] [--sim-ops N] \
     [--sim-threads N] [--kill-cycles N] [--cycle-ops N] [--crash-rate F] \
     [--goccd PATH|none] [--stall-secs N]"
        .to_string()
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut args = Args {
        seed: 2026,
        mode: None,
        sim_runs: 8,
        sim_ops: 400,
        sim_threads: 3,
        kill_cycles: 2,
        cycle_ops: 4000,
        crash_rate: 0.004,
        goccd: Some("./target/release/goccd".to_string()),
        stall_secs: 60,
    };
    let mut it = raw.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        fn num<T: std::str::FromStr>(name: &str, v: &str) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            v.parse().map_err(|e| format!("{name}: {e}"))
        }
        match flag.as_str() {
            "--seed" => args.seed = num("--seed", &value("--seed")?)?,
            "--mode" => {
                let v = value("--mode")?;
                args.mode = if v == "both" {
                    None
                } else {
                    Some(parse_mode(&v)?)
                };
            }
            "--sim-runs" => args.sim_runs = num("--sim-runs", &value("--sim-runs")?)?,
            "--sim-ops" => args.sim_ops = num("--sim-ops", &value("--sim-ops")?)?,
            "--sim-threads" => args.sim_threads = num("--sim-threads", &value("--sim-threads")?)?,
            "--kill-cycles" => args.kill_cycles = num("--kill-cycles", &value("--kill-cycles")?)?,
            "--cycle-ops" => args.cycle_ops = num("--cycle-ops", &value("--cycle-ops")?)?,
            "--crash-rate" => args.crash_rate = num("--crash-rate", &value("--crash-rate")?)?,
            "--goccd" => {
                let v = value("--goccd")?;
                args.goccd = (v != "none").then_some(v);
            }
            "--stall-secs" => args.stall_secs = num("--stall-secs", &value("--stall-secs")?)?,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    if args.sim_threads == 0 || args.sim_ops == 0 {
        return Err("--sim-threads/--sim-ops must be >= 1".into());
    }
    Ok(args)
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gocc-crashsoak-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ------------------------------------------------------- per-key oracle --

/// Post-state history of one key under a sequential (per-key) writer.
#[derive(Default)]
struct KeyHist {
    /// Post-state after each issued op: `Some(v)` or `None` (deleted).
    states: Vec<Option<u64>>,
    /// Index into `states` of the last acknowledged op.
    acked: Option<usize>,
}

impl KeyHist {
    /// Current client-visible state (last issued).
    fn current(&self) -> Option<u64> {
        self.states.last().copied().flatten()
    }

    /// Whether a recovered state is legal: the acked state or any later
    /// *issued* state (an unacked successor that reached disk); with no
    /// ack yet, also the initial absence.
    fn admits(&self, got: Option<u64>) -> bool {
        match self.acked {
            Some(ai) => self.states[ai..].contains(&got),
            None => got.is_none() || self.states.contains(&got),
        }
    }
}

type Oracle = HashMap<String, KeyHist>;

/// Draws the next write op for `key` and appends its issued post-state.
/// Returns the request to send; the caller marks the ack.
fn issue_op<'k>(rng: &mut SplitMix64, key: &'k str, hist: &mut KeyHist) -> Request<'k> {
    match rng.below(100) {
        0..=59 => {
            let value = rng.next_u64() >> 1;
            hist.states.push(Some(value));
            Request::Set {
                key: key.as_bytes(),
                value,
                ttl: 0,
            }
        }
        60..=84 => {
            let delta = rng.below(1000) + 1;
            let new = hist.current().unwrap_or(0).wrapping_add(delta);
            hist.states.push(Some(new));
            Request::Incr {
                key: key.as_bytes(),
                delta,
            }
        }
        _ => {
            hist.states.push(None);
            Request::Del {
                key: key.as_bytes(),
            }
        }
    }
}

// ---------------------------------------------------- liveness watchdog --

struct Liveness {
    beats: AtomicU64,
    done: AtomicBool,
}

fn start_liveness_monitor(stall: Duration) -> Arc<Liveness> {
    let live = Arc::new(Liveness {
        beats: AtomicU64::new(0),
        done: AtomicBool::new(false),
    });
    let monitor = Arc::clone(&live);
    std::thread::Builder::new()
        .name("crash-liveness".into())
        .spawn(move || {
            let mut last = monitor.beats.load(Ordering::Relaxed);
            let mut last_change = Instant::now();
            loop {
                std::thread::sleep(Duration::from_millis(200));
                if monitor.done.load(Ordering::Relaxed) {
                    return;
                }
                let now = monitor.beats.load(Ordering::Relaxed);
                if now != last {
                    last = now;
                    last_change = Instant::now();
                } else if last_change.elapsed() > stall {
                    eprintln!(
                        "crash_soak: LIVENESS WATCHDOG: no progress for {}s",
                        stall.as_secs()
                    );
                    std::process::exit(2);
                }
            }
        })
        .expect("spawn liveness monitor");
    live
}

// ----------------------------------------------- phase 1: sim matrix --

const SIM_SHARDS: usize = 2;
const SIM_KEYS_PER_THREAD: u64 = 16;

fn sim_wal_cfg(backend: WalBackend) -> WalConfig {
    WalConfig {
        sync: SyncPolicy::Group,
        fsync_batch_size: 8,
        fsync_wait_us: 20,
        checkpoint_every: 0,
        backend,
    }
}

/// One seeded run: concurrent writers through the real durable write
/// path over the sim backend, then recovery into a fresh store checked
/// key-by-key against the oracle. Returns whether the seed crashed.
fn sim_run(seed: u64, mode: Mode, args: &Args, live: &Liveness) -> Result<bool, String> {
    let dir = tmp(&format!("sim-{seed}-{}", mode_name(mode)));
    let plan = Arc::new(StorageFaultPlan::new(
        seed,
        StorageMix {
            crash_per_append: args.crash_rate,
            torn_given_crash: 0.5,
            short_fsync: 0.2,
            ckpt_crash: 0.0,
        },
    ));
    let (wal, _) = Wal::open(&dir, SIM_SHARDS, sim_wal_cfg(WalBackend::Sim(plan)))
        .map_err(|e| format!("seed {seed}: open wal: {e}"))?;
    let store = ShardedStore::new(SIM_SHARDS, 4096);
    let rt = GoccRuntime::new(GoccConfig::with_telemetry());
    let stop = AtomicBool::new(false);

    let results: Vec<Result<(Oracle, bool), String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..args.sim_threads)
            .map(|t| {
                let (wal, store, rt, stop, live) = (&wal, &store, &rt, &stop, &live);
                s.spawn(move || -> Result<(Oracle, bool), String> {
                    let engine = Engine::new(rt, mode);
                    let mut rng = SplitMix64::new(seed ^ (t as u64 + 1).wrapping_mul(0x9E37_79B9));
                    let mut oracle = Oracle::new();
                    let mut crashed = false;
                    'ops: for i in 0..args.sim_ops {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let key = format!("t{t}-k{}", rng.below(SIM_KEYS_PER_THREAD));
                        let hist = oracle.entry(key.clone()).or_default();
                        let req = issue_op(&mut rng, &key, hist);
                        let (resp, ticket) = store.execute_durable(&engine, &req, wal);
                        // Client-side Incr model must match the store's
                        // post-image exactly, or the oracle is junk.
                        if let (Request::Incr { .. }, Response::Counter { value }) = (&req, &resp) {
                            if hist.states.last() != Some(&Some(*value)) {
                                return Err(format!(
                                    "seed {seed} t{t} op {i}: incr oracle diverged \
                                     ({:?} vs store {value})",
                                    hist.states.last()
                                ));
                            }
                        }
                        match ticket {
                            Some((ticket, _staged)) => match wal.wait(ticket) {
                                Ok(()) => hist.acked = Some(hist.states.len() - 1),
                                Err(_) => {
                                    crashed = true;
                                    stop.store(true, Ordering::Relaxed);
                                    break 'ops;
                                }
                            },
                            None => return Err(format!("seed {seed}: write verb had no ticket")),
                        }
                        live.beats.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok((oracle, crashed))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("writer panicked".into())))
            .collect()
    });
    wal.shutdown();
    let mut oracle = Oracle::new();
    let mut crashed = false;
    for r in results {
        let (part, c) = r?;
        crashed |= c;
        oracle.extend(part); // key partitions are disjoint by prefix
    }

    // Recovery: reopen the materialized files fault-free, restore into a
    // brand-new store under a brand-new runtime, read back every key.
    let (wal2, recovered) = Wal::open(&dir, SIM_SHARDS, sim_wal_cfg(WalBackend::Real))
        .map_err(|e| format!("seed {seed}: reopen wal: {e}"))?;
    let store2 = ShardedStore::new(SIM_SHARDS, 4096);
    let rt2 = GoccRuntime::new(GoccConfig::with_telemetry());
    store2.restore_all(rt2.htm(), &recovered.shards);
    let engine2 = Engine::new(&rt2, mode);
    for (key, hist) in &oracle {
        let got = match store2.execute(
            &engine2,
            &Request::Get {
                key: key.as_bytes(),
            },
        ) {
            Response::Value { found, value } => found.then_some(value),
            other => return Err(format!("seed {seed}: GET answered {other:?}")),
        };
        if !hist.admits(got) {
            return Err(format!(
                "seed {seed} mode {} (crashed={crashed}): key {key} recovered to {got:?}, \
                 acked index {:?} of {} issued states",
                mode_name(mode),
                hist.acked,
                hist.states.len()
            ));
        }
    }
    wal2.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    Ok(crashed)
}

fn phase1_sim(args: &Args, mode: Mode, live: &Liveness) -> Result<(), String> {
    let mut crashes = 0u64;
    for s in 0..args.sim_runs {
        if sim_run(args.seed.wrapping_add(s), mode, args, live)? {
            crashes += 1;
        }
    }
    if args.sim_runs >= 4 && crashes == 0 {
        return Err(format!(
            "the fault schedule never crashed a sim run in {} attempts — \
             the matrix verified nothing",
            args.sim_runs
        ));
    }
    println!(
        "phase 1 sim ({:<4})   OK  runs={} crashed={crashes}",
        mode_name(mode),
        args.sim_runs
    );
    Ok(())
}

// ------------------------------------------ phase 2: process kill --

/// A live goccd child plus the reader for its LISTENING line.
struct Daemon {
    child: std::process::Child,
    port: u16,
}

fn spawn_goccd(
    bin: &str,
    mode: Mode,
    dir: &std::path::Path,
    fault: Option<(u64, f64)>,
) -> Result<Daemon, String> {
    let mut cmd = std::process::Command::new(bin);
    cmd.args([
        "--mode",
        mode_name(mode),
        "--port",
        "0",
        "--workers",
        "2",
        "--shards",
        "2",
    ])
    .arg("--data-dir")
    .arg(dir)
    .args(["--wal-sync", "group", "--fsync-wait-us", "100"])
    .stdout(std::process::Stdio::piped())
    .stderr(std::process::Stdio::null());
    if let Some((seed, rate)) = fault {
        cmd.args(["--wal-fault-seed", &seed.to_string()])
            .args(["--wal-fault-crash", &rate.to_string()]);
    }
    let mut child = cmd.spawn().map_err(|e| format!("spawn {bin}: {e}"))?;
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut port = None;
    let mut line = String::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break, // child died before listening
            Ok(_) => {
                if let Some(p) = line.strip_prefix("LISTENING ") {
                    port = p.trim().parse().ok();
                    break;
                }
            }
            Err(e) => return Err(format!("reading goccd stdout: {e}")),
        }
    }
    let Some(port) = port else {
        let _ = child.kill();
        let _ = child.wait();
        return Err("goccd never printed LISTENING".into());
    };
    // Drain the rest of the child's stdout so it can never block on a
    // full pipe, however chatty shutdown gets.
    std::thread::spawn(move || {
        let mut sink = [0u8; 4096];
        while matches!(reader.read(&mut sink), Ok(n) if n > 0) {}
    });
    Ok(Daemon { child, port })
}

/// Fallible request/response: an Err means the daemon died mid-call —
/// exactly what a seeded abort looks like from the client side.
struct SoakClient {
    stream: TcpStream,
    wirebuf: Vec<u8>,
    respbuf: Vec<u8>,
}

impl SoakClient {
    fn connect(port: u16) -> Result<SoakClient, String> {
        // The daemon may take a beat between LISTENING and accept, so the
        // refused budget is generous — this is startup, not a dead daemon.
        let cfg = ClientConfig {
            read_timeout: Duration::from_secs(10),
            connect_attempts: 50,
            refused_attempts: 50,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(25),
            ..ClientConfig::default()
        };
        let mut rng = SplitMix64::new(0xC4A5_4150 ^ u64::from(port));
        let stream = connect_with_retry(port, &cfg, &mut rng)
            .map_err(|e| format!("connect 127.0.0.1:{port}: {e}"))?;
        Ok(SoakClient {
            stream,
            wirebuf: Vec::new(),
            respbuf: Vec::new(),
        })
    }

    fn call(&mut self, req: &Request<'_>) -> Result<Response<'_>, String> {
        self.wirebuf.clear();
        encode_request(req, &mut self.wirebuf);
        write_frame(&mut self.stream, &self.wirebuf).map_err(|e| format!("send: {e}"))?;
        match read_frame(&mut self.stream, &mut self.respbuf) {
            Ok(true) => decode_response(&self.respbuf).map_err(|e| format!("decode: {e}")),
            Ok(false) => Err("connection closed".into()),
            Err(e) => Err(format!("recv: {e}")),
        }
    }
}

/// Boots a fault-free goccd on `dir` and checks every oracle key, then
/// rebaselines the oracle on what recovery actually kept (that state is
/// durable — it is the truth the next cycle builds on). Leaves the
/// daemon running and returns it with a connected client.
fn verify_recovery(
    bin: &str,
    mode: Mode,
    dir: &std::path::Path,
    oracle: &mut Oracle,
    after: &str,
) -> Result<(Daemon, SoakClient), String> {
    let daemon = spawn_goccd(bin, mode, dir, None)?;
    let mut client = SoakClient::connect(daemon.port)?;
    for (key, hist) in oracle.iter_mut() {
        let got = match client.call(&Request::Get {
            key: key.as_bytes(),
        })? {
            Response::Value { found, value } => found.then_some(value),
            other => return Err(format!("GET after {after}: {other:?}")),
        };
        if !hist.admits(got) {
            return Err(format!(
                "mode {}: key {key} after {after} recovered to {got:?}, acked index {:?} \
                 of {} issued states",
                mode_name(mode),
                hist.acked,
                hist.states.len()
            ));
        }
        *hist = KeyHist {
            states: vec![got],
            acked: Some(0),
        };
    }
    // The recovery counters must be visible to operators, not only to
    // this harness.
    let Response::Stats { json } = client.call(&Request::Stats)? else {
        return Err("STATS after recovery failed".into());
    };
    let doc = JsonValue::parse(json).map_err(|e| format!("STATS JSON: {e}"))?;
    let rec = doc
        .get("wal")
        .and_then(|w| w.get("recovery"))
        .ok_or("STATS lacks wal.recovery after a restart")?;
    let restored = rec
        .get("recovery_replayed")
        .and_then(JsonValue::as_f64)
        .unwrap_or(0.0)
        + rec
            .get("checkpoint_entries")
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0);
    if !oracle.is_empty() && oracle.values().any(|h| h.current().is_some()) && restored == 0.0 {
        return Err(format!(
            "live keys exist but STATS reports nothing restored after {after}"
        ));
    }
    Ok((daemon, client))
}

fn shutdown_daemon(mut daemon: Daemon, client: &mut SoakClient) -> Result<(), String> {
    match client.call(&Request::Shutdown)? {
        Response::Bye => {}
        other => return Err(format!("SHUTDOWN answered {other:?}")),
    }
    let status = daemon.child.wait().map_err(|e| format!("wait: {e}"))?;
    if !status.success() {
        return Err(format!("goccd did not shut down cleanly: {status}"));
    }
    Ok(())
}

fn phase2_kill(args: &Args, bin: &str, mode: Mode, live: &Liveness) -> Result<(), String> {
    let dir = tmp(&format!("kill-{}", mode_name(mode)));
    let mut oracle = Oracle::new();
    let mut rng = SplitMix64::new(args.seed ^ 0xC4A5_4B0A);
    let mut kills = 0u64;

    for cycle in 0..args.kill_cycles {
        let fault_seed = args.seed.wrapping_add(cycle).wrapping_mul(0x2545_F491);
        let daemon = spawn_goccd(bin, mode, &dir, Some((fault_seed, args.crash_rate)))?;
        let mut client = SoakClient::connect(daemon.port)?;
        let mut died = false;
        for _ in 0..args.cycle_ops {
            let key = format!("bk-{}", rng.below(24));
            let hist = oracle.entry(key.clone()).or_default();
            let req = issue_op(&mut rng, &key, hist);
            match client.call(&req) {
                Ok(Response::Error { message }) => {
                    return Err(format!("cycle {cycle}: server error: {message}"));
                }
                Ok(_) => hist.acked = Some(hist.states.len() - 1),
                Err(_) => {
                    // The abort fired mid-call: the in-flight op stays
                    // issued-but-unacked. Reap the corpse.
                    died = true;
                    break;
                }
            }
            live.beats.fetch_add(1, Ordering::Relaxed);
        }
        if died {
            let mut d = daemon;
            let deadline = Instant::now() + Duration::from_secs(30);
            loop {
                match d.child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    _ => {
                        let _ = d.child.kill();
                        let _ = d.child.wait();
                        break;
                    }
                }
            }
            kills += 1;
            let (daemon, mut client) =
                verify_recovery(bin, mode, &dir, &mut oracle, &format!("kill {kills}"))?;
            shutdown_daemon(daemon, &mut client)?;
        } else {
            // The schedule never fired this cycle; end it gracefully so
            // the next cycle's seed gets its chance.
            shutdown_daemon(daemon, &mut client)?;
        }
        live.beats.fetch_add(1, Ordering::Relaxed);
    }
    if kills == 0 {
        return Err(format!(
            "no seeded kill fired in {} cycles of {} ops — the end-to-end phase \
             verified nothing (raise --crash-rate or --cycle-ops)",
            args.kill_cycles, args.cycle_ops
        ));
    }

    // Final exactness: a fault-free run of acked writes, FLUSH, graceful
    // shutdown, restart — now nothing is in flight, so recovery must
    // match the client state *exactly*, not merely admit it.
    let (daemon, mut client) = verify_recovery(bin, mode, &dir, &mut oracle, "final recovery")?;
    for i in 0..64u64 {
        let key = format!("bk-{}", i % 24);
        let hist = oracle.entry(key.clone()).or_default();
        let req = issue_op(&mut rng, &key, hist);
        match client.call(&req) {
            Ok(Response::Error { message }) => {
                return Err(format!("final writes: server error: {message}"))
            }
            Ok(_) => hist.acked = Some(hist.states.len() - 1),
            Err(e) => return Err(format!("final writes: {e}")),
        }
    }
    match client.call(&Request::Flush)? {
        Response::Flushed { durable_lsn } if durable_lsn > 0 => {}
        other => return Err(format!("FLUSH answered {other:?}")),
    }
    shutdown_daemon(daemon, &mut client)?;
    let daemon = spawn_goccd(bin, mode, &dir, None)?;
    let mut client = SoakClient::connect(daemon.port)?;
    for (key, hist) in &oracle {
        let got = match client.call(&Request::Get {
            key: key.as_bytes(),
        })? {
            Response::Value { found, value } => found.then_some(value),
            other => return Err(format!("final GET: {other:?}")),
        };
        if got != hist.current() {
            return Err(format!(
                "mode {}: graceful restart diverged on {key}: got {got:?}, want {:?}",
                mode_name(mode),
                hist.current()
            ));
        }
    }
    shutdown_daemon(daemon, &mut client)?;
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "phase 2 kill ({:<4})  OK  cycles={} kills={kills} keys={}",
        mode_name(mode),
        args.kill_cycles,
        oracle.len()
    );
    Ok(())
}

// ---------------------------------------------------------------- main --

fn run(args: &Args) -> Result<(), String> {
    let modes: Vec<Mode> = match args.mode {
        Some(m) => vec![m],
        None => vec![Mode::Lock, Mode::Gocc],
    };
    let live = start_liveness_monitor(Duration::from_secs(args.stall_secs.max(5)));
    let t0 = Instant::now();

    for &mode in &modes {
        phase1_sim(args, mode, &live)?;
    }
    match &args.goccd {
        Some(bin) if std::path::Path::new(bin).exists() => {
            for &mode in &modes {
                phase2_kill(args, bin, mode, &live)?;
            }
        }
        Some(bin) => {
            return Err(format!(
                "goccd binary not found at {bin} (build release first)"
            ))
        }
        None => println!("phase 2 kill        SKIP (--goccd none)"),
    }

    live.done.store(true, Ordering::Relaxed);
    println!(
        "crash_soak PASS  seed={} sim_runs={} kill_cycles={} crash_rate={} {:?}",
        args.seed,
        args.sim_runs,
        args.kill_cycles,
        args.crash_rate,
        t0.elapsed(),
    );
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    gocc_gosync::set_procs(8);
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("crash_soak: FAIL: {msg}");
            ExitCode::FAILURE
        }
    }
}
