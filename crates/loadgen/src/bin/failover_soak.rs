//! `failover_soak` — kill the primary mid-load, promote a replica, and
//! prove the replication guarantees end to end.
//!
//! Topology per mode: one real `goccd` **child process** as the primary
//! (WAL-backed, `--repl-accept --repl-min-acks 2`, optional seeded
//! transport faults on the replication stream) plus two **in-process**
//! replicas following it. Three claims are checked, each a hard failure:
//!
//! 1. **No acked write is lost.** A sequential writer drives SET/DEL
//!    through a [`ClusterClient`] and records, per key, every issued
//!    post-state and the index of the last acknowledged one. Mid-load the
//!    primary is SIGKILLed; by default the replicas' failure detectors
//!    and quorum election produce the successor on their own, while
//!    `--manual` keeps the operator path covered (the highest-version
//!    replica is promoted over the wire with `REPL_PROMOTE` and the
//!    other repointed at it). With `min_acks = 2` an ack means both replicas
//!    applied the write, so whichever is promoted must still serve it:
//!    every key read back from the new primary must be an issued state at
//!    or after its last acked one. (The load is SET/DEL only — their
//!    post-states are history-independent, so a write the failover window
//!    swallowed client-side cannot poison the predictions that follow,
//!    unlike INCR, whose end-to-end story `crash_soak` already covers.)
//! 2. **Reads stay available and staleness is bounded.** Reader threads
//!    round-robin GETs across all endpoints for the whole run; they must
//!    keep succeeding *during* the primary outage (replicas serve reads),
//!    and after failover the repointed replica must converge to the new
//!    primary's exact state within a deadline.
//! 3. **Recovery is bounded.** The first acked write after the kill must
//!    land within `--recovery-deadline-ms`, via redirects alone — the
//!    writer is never told where the new primary is.
//!
//! A separate fencing phase checks the split-brain guard: a
//! `min_acks = 1` primary whose only replica is shut down must stop
//! acknowledging within its lease (writes fail "fenced", on the
//! primary's own clock — no coordinator tells it), and must resume once
//! a fresh replica attaches and resyncs.
//!
//! Exit codes: 1 = harness error, 2 = liveness watchdog, 4 = a
//! replication guarantee was violated.
//!
//! ```console
//! $ failover_soak --seed 2026 --mode both --load-ops 1200
//! ```

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read};
use std::net::{Ipv4Addr, SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gocc_faultplane::{TransportFaultPlan, TransportMix};
use gocc_loadgen::{fetch_stats, ClientConfig, ClusterClient, ResilientClient};
use gocc_server::{mode_name, parse_mode, spawn, Mode, ServerConfig, ServerHandle};
use gocc_telemetry::{JsonValue, SplitMix64};
use gocc_wire::{
    decode_response, encode_repl_request, read_frame, write_frame, ReplRequest, Request, Response,
};

// ---------------------------------------------------------------- args --

struct Args {
    seed: u64,
    /// None = both modes.
    mode: Option<Mode>,
    /// Sequential writer ops per mode (the kill fires halfway).
    load_ops: u64,
    /// Distinct keys the writer cycles over.
    keys: u64,
    /// Per-op fault probability on the replication streams (0 = off).
    fault_rate: f64,
    /// How long the controller waits between the kill and the promotion:
    /// a deliberate primary-less window in which replicas alone must
    /// carry reads.
    outage_hold: Duration,
    /// Kill → first-acked-write bound.
    recovery_deadline: Duration,
    /// Bound on the repointed replica converging after failover.
    converge_deadline: Duration,
    /// Path to the goccd binary.
    goccd: String,
    stall_secs: u64,
    /// Promote over the wire (the operator path) instead of letting the
    /// replicas' failure detectors elect a successor on their own.
    manual: bool,
}

fn usage() -> String {
    "usage: failover_soak [--seed N] [--mode lock|gocc|both] [--load-ops N] [--keys N] \
     [--fault-rate F] [--outage-hold-ms N] [--recovery-deadline-ms N] \
     [--converge-deadline-ms N] [--goccd PATH] [--stall-secs N] [--manual]"
        .to_string()
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut args = Args {
        seed: 2026,
        mode: None,
        load_ops: 1200,
        keys: 24,
        fault_rate: 0.02,
        outage_hold: Duration::from_millis(250),
        recovery_deadline: Duration::from_secs(5),
        converge_deadline: Duration::from_secs(3),
        goccd: "./target/release/goccd".to_string(),
        stall_secs: 60,
        manual: false,
    };
    let mut it = raw.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        fn num<T: std::str::FromStr>(name: &str, v: &str) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            v.parse().map_err(|e| format!("{name}: {e}"))
        }
        match flag.as_str() {
            "--seed" => args.seed = num("--seed", &value("--seed")?)?,
            "--mode" => {
                let v = value("--mode")?;
                args.mode = if v == "both" {
                    None
                } else {
                    Some(parse_mode(&v)?)
                };
            }
            "--load-ops" => args.load_ops = num("--load-ops", &value("--load-ops")?)?,
            "--keys" => args.keys = num("--keys", &value("--keys")?)?,
            "--fault-rate" => args.fault_rate = num("--fault-rate", &value("--fault-rate")?)?,
            "--outage-hold-ms" => {
                args.outage_hold =
                    Duration::from_millis(num("--outage-hold-ms", &value("--outage-hold-ms")?)?);
            }
            "--recovery-deadline-ms" => {
                args.recovery_deadline = Duration::from_millis(num(
                    "--recovery-deadline-ms",
                    &value("--recovery-deadline-ms")?,
                )?);
            }
            "--converge-deadline-ms" => {
                args.converge_deadline = Duration::from_millis(num(
                    "--converge-deadline-ms",
                    &value("--converge-deadline-ms")?,
                )?);
            }
            "--goccd" => args.goccd = value("--goccd")?,
            "--stall-secs" => args.stall_secs = num("--stall-secs", &value("--stall-secs")?)?,
            "--manual" => args.manual = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    if args.load_ops < 100 || args.keys == 0 {
        return Err("--load-ops must be >= 100 and --keys >= 1".into());
    }
    Ok(args)
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gocc-failover-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A guarantee violation (exit 4), distinct from a broken harness.
fn violation(msg: String) -> String {
    format!("VIOLATION: {msg}")
}

// ---------------------------------------------------- liveness watchdog --

struct Liveness {
    beats: AtomicU64,
    done: AtomicBool,
}

fn start_liveness_monitor(stall: Duration) -> Arc<Liveness> {
    let live = Arc::new(Liveness {
        beats: AtomicU64::new(0),
        done: AtomicBool::new(false),
    });
    let monitor = Arc::clone(&live);
    std::thread::Builder::new()
        .name("failover-liveness".into())
        .spawn(move || {
            let mut last = monitor.beats.load(Ordering::Relaxed);
            let mut last_change = Instant::now();
            loop {
                std::thread::sleep(Duration::from_millis(200));
                if monitor.done.load(Ordering::Relaxed) {
                    return;
                }
                let now = monitor.beats.load(Ordering::Relaxed);
                if now != last {
                    last = now;
                    last_change = Instant::now();
                } else if last_change.elapsed() > stall {
                    eprintln!(
                        "failover_soak: LIVENESS WATCHDOG: no progress for {}s",
                        stall.as_secs()
                    );
                    std::process::exit(2);
                }
            }
        })
        .expect("spawn liveness monitor");
    live
}

// ------------------------------------------------------- per-key oracle --

/// Post-state history of one key under the sequential writer. SET/DEL
/// only, so every predicted post-state is independent of whether earlier
/// ops actually executed.
#[derive(Default)]
struct KeyHist {
    states: Vec<Option<u64>>,
    acked: Option<usize>,
}

impl KeyHist {
    fn current(&self) -> Option<u64> {
        self.states.last().copied().flatten()
    }

    /// Whether `got` is the acked state or any later issued state.
    fn admits(&self, got: Option<u64>) -> bool {
        match self.acked {
            Some(ai) => self.states[ai..].contains(&got),
            None => got.is_none() || self.states.contains(&got),
        }
    }
}

type Oracle = HashMap<String, KeyHist>;

fn issue_op<'k>(rng: &mut SplitMix64, key: &'k str, hist: &mut KeyHist) -> Request<'k> {
    if rng.below(100) < 85 {
        let value = rng.next_u64() >> 1;
        hist.states.push(Some(value));
        Request::Set {
            key: key.as_bytes(),
            value,
            ttl: 0,
        }
    } else {
        hist.states.push(None);
        Request::Del {
            key: key.as_bytes(),
        }
    }
}

// --------------------------------------------------------- child primary --

struct Daemon {
    child: std::process::Child,
    port: u16,
}

fn spawn_primary(args: &Args, mode: Mode, dir: &std::path::Path) -> Result<Daemon, String> {
    let mut cmd = std::process::Command::new(&args.goccd);
    cmd.args([
        "--mode",
        mode_name(mode),
        "--port",
        "0",
        "--workers",
        "2",
        "--shards",
        "2",
        "--repl-accept",
        "--repl-min-acks",
        "2",
        "--repl-lease-ms",
        "400",
        "--repl-ack-timeout-ms",
        "2000",
    ])
    .arg("--data-dir")
    .arg(dir)
    .args(["--wal-sync", "group", "--fsync-wait-us", "100"])
    .stdout(std::process::Stdio::piped())
    .stderr(std::process::Stdio::null());
    let mut child = cmd
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", args.goccd))?;
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut port = None;
    let mut line = String::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                if let Some(p) = line.strip_prefix("LISTENING ") {
                    port = p.trim().parse().ok();
                    break;
                }
            }
            Err(e) => return Err(format!("reading goccd stdout: {e}")),
        }
    }
    let Some(port) = port else {
        let _ = child.kill();
        let _ = child.wait();
        return Err("goccd never printed LISTENING".into());
    };
    // Keep the child's stdout drained so it can never block on the pipe.
    std::thread::spawn(move || {
        let mut sink = [0u8; 4096];
        while matches!(reader.read(&mut sink), Ok(n) if n > 0) {}
    });
    Ok(Daemon { child, port })
}

fn spawn_replica(
    args: &Args,
    mode: Mode,
    primary_port: u16,
    salt: u64,
) -> Result<ServerHandle, String> {
    spawn_replica_cfg(args, mode, primary_port, salt, false)
}

fn spawn_replica_cfg(
    args: &Args,
    mode: Mode,
    primary_port: u16,
    salt: u64,
    auto_promote: bool,
) -> Result<ServerHandle, String> {
    let fault_plan = (args.fault_rate > 0.0).then(|| {
        Arc::new(TransportFaultPlan::new(
            args.seed ^ (salt + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            TransportMix::uniform(args.fault_rate),
        ))
    });
    spawn(ServerConfig {
        mode,
        port: 0,
        workers: 2,
        shards: 2,
        capacity_per_shard: 4096,
        replica_of: Some(format!("127.0.0.1:{primary_port}")),
        repl_fault_plan: fault_plan,
        // Distinct per-replica seed: the suspicion jitter staggers the
        // detectors so simultaneous candidacies resolve quickly.
        repl_seed: args.seed ^ salt.wrapping_mul(0xD1B5_4A32_D192_ED03),
        repl_auto_promote: auto_promote,
        repl_suspect: Duration::from_millis(300),
        ..ServerConfig::default()
    })
    .map_err(|e| format!("spawn replica: {e}"))
}

// --------------------------------------------------------- wire helpers --

/// One REPL verb over a fresh connection; returns the decoded-and-owned
/// outcome (`Ok` for `Done`).
fn repl_call(port: u16, req: &ReplRequest<'_>) -> Result<(), String> {
    let addr = SocketAddr::from((Ipv4Addr::LOCALHOST, port));
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))
        .map_err(|e| format!("connect {port}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    let mut frame = Vec::new();
    encode_repl_request(req, &mut frame);
    write_frame(&mut stream, &frame).map_err(|e| format!("send: {e}"))?;
    let mut resp = Vec::new();
    if !read_frame(&mut stream, &mut resp).map_err(|e| format!("recv: {e}"))? {
        return Err("connection closed".into());
    }
    match decode_response(&resp).map_err(|e| format!("decode: {e}"))? {
        Response::Done => Ok(()),
        other => Err(format!("REPL verb answered {other:?}")),
    }
}

/// The `repl` object from a node's STATS.
fn repl_stats(port: u16) -> Result<JsonValue, String> {
    let doc = fetch_stats(port)?;
    doc.parsed
        .get("repl")
        .cloned()
        .ok_or_else(|| "STATS lacks a repl object".to_string())
}

fn repl_u64(repl: &JsonValue, field: &str) -> u64 {
    repl.get(field).and_then(JsonValue::as_f64).unwrap_or(0.0) as u64
}

/// Sum of a node's per-shard replicated versions.
fn version_sum(repl: &JsonValue) -> u64 {
    repl.get("versions")
        .and_then(JsonValue::as_array)
        .map(|a| {
            a.iter()
                .filter_map(JsonValue::as_f64)
                .map(|v| v as u64)
                .sum()
        })
        .unwrap_or(0)
}

/// GET through a resilient single-node client.
fn get_value(client: &mut ResilientClient, key: &str) -> Result<Option<u64>, String> {
    let mut resp = Vec::new();
    client
        .call(
            &Request::Get {
                key: key.as_bytes(),
            },
            &mut resp,
        )
        .map_err(|e| format!("GET {key}: {e}"))?;
    match decode_response(&resp).map_err(|e| format!("decode GET: {e}"))? {
        Response::Value { found, value } => Ok(found.then_some(value)),
        other => Err(format!("GET answered {other:?}")),
    }
}

// ------------------------------------------------------- reader threads --

struct ReadTallies {
    ok: AtomicU64,
    err: AtomicU64,
    during_outage: AtomicU64,
}

// ------------------------------------------------------ failover phase --

/// How one write attempt resolved, as far as the oracle is concerned.
enum WriteOutcome {
    Acked,
    Unacked,
}

fn write_once(cluster: &mut ClusterClient, req: &Request<'_>) -> Result<WriteOutcome, String> {
    let mut resp = Vec::new();
    match cluster.write(req, &mut resp) {
        Err(_) => Ok(WriteOutcome::Unacked),
        Ok(()) => match decode_response(&resp) {
            // Fenced/timed-out/shed answers are honest non-acks; anything
            // else positive acknowledges the write.
            Ok(Response::Error { .. })
            | Ok(Response::Overloaded { .. })
            | Ok(Response::DeadlineExceeded) => Ok(WriteOutcome::Unacked),
            Ok(_) => Ok(WriteOutcome::Acked),
            Err(e) => Err(format!("mis-framed write response: {e}")),
        },
    }
}

#[allow(clippy::too_many_lines)]
fn failover_phase(args: &Args, mode: Mode, live: &Liveness) -> Result<(), String> {
    let dir = tmp(&format!("primary-{}", mode_name(mode)));
    let primary = spawn_primary(args, mode, &dir)?;
    let auto = !args.manual;
    let r1 = spawn_replica_cfg(args, mode, primary.port, 1, auto)?;
    let r2 = spawn_replica_cfg(args, mode, primary.port, 2, auto)?;
    if auto {
        // Electorate per replica: the other replica plus the (doomed)
        // primary. Majority of 3 is 2, reachable once the survivors
        // vote for one of themselves.
        r1.state().set_repl_peers(vec![
            format!("127.0.0.1:{}", r2.port()),
            format!("127.0.0.1:{}", primary.port),
        ]);
        r2.state().set_repl_peers(vec![
            format!("127.0.0.1:{}", r1.port()),
            format!("127.0.0.1:{}", primary.port),
        ]);
    }
    let replica_ports = [r1.port(), r2.port()];
    let all_ports = vec![primary.port, r1.port(), r2.port()];

    // min_acks = 2: the primary is fenced until both replicas subscribe.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let repl = repl_stats(primary.port)?;
        if repl_u64(&repl, "subscribers") >= 2 {
            break;
        }
        if Instant::now() > deadline {
            return Err("replicas never subscribed to the primary".into());
        }
        std::thread::sleep(Duration::from_millis(20));
        live.beats.fetch_add(1, Ordering::Relaxed);
    }

    // Readers: round-robin GETs across every endpoint, all phases.
    let stop = AtomicBool::new(false);
    let outage = AtomicBool::new(false);
    let tallies = ReadTallies {
        ok: AtomicU64::new(0),
        err: AtomicU64::new(0),
        during_outage: AtomicU64::new(0),
    };

    let result: Result<(Oracle, Duration, u16), String> = std::thread::scope(|s| {
        for t in 0..2u64 {
            let (stop, outage, tallies, live, ports) =
                (&stop, &outage, &tallies, &live, &all_ports);
            let seed = args.seed ^ (t + 1).wrapping_mul(0xD1B5_4A32_D192_ED03);
            s.spawn(move || {
                let mut cluster = ClusterClient::new(ports, ClientConfig::chaos(), seed);
                let mut rng = SplitMix64::new(seed);
                let mut resp = Vec::new();
                let mut keybuf = String::new();
                while !stop.load(Ordering::Relaxed) {
                    use std::fmt::Write as _;
                    keybuf.clear();
                    let _ = write!(keybuf, "fk-{}", rng.below(64));
                    match cluster.read(
                        &Request::Get {
                            key: keybuf.as_bytes(),
                        },
                        &mut resp,
                    ) {
                        Ok(()) => {
                            tallies.ok.fetch_add(1, Ordering::Relaxed);
                            if outage.load(Ordering::Relaxed) {
                                tallies.during_outage.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(_) => {
                            tallies.err.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    live.beats.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // The sequential oracle writer (this thread).
        let run = || -> Result<(Oracle, Duration, u16), String> {
            let mut cluster =
                ClusterClient::new(&all_ports, ClientConfig::chaos(), args.seed ^ 0xF417);
            let mut rng = SplitMix64::new(args.seed ^ 0xFA11_07E6);
            let mut oracle = Oracle::new();
            let kill_at = args.load_ops / 2;
            let mut primary_corpse = Some(primary.child);
            let mut t_kill: Option<Instant> = None;
            let mut recovery: Option<Duration> = None;
            let mut new_primary_port: Option<u16> = None;
            let mut fault_evidence = 0u64;

            for i in 0..args.load_ops {
                live.beats.fetch_add(1, Ordering::Relaxed);
                if i == kill_at {
                    // SIGKILL mid-load: no drain, no goodbye.
                    primary_corpse
                        .as_mut()
                        .expect("child killed exactly once")
                        .kill()
                        .map_err(|e| format!("kill primary: {e}"))?;
                    t_kill = Some(Instant::now());
                    outage.store(true, Ordering::Relaxed);

                    // Hold the primary-less window open: replicas alone
                    // carry reads here, which is the availability claim
                    // the reader tallies prove.
                    let hold_until = Instant::now() + args.outage_hold;
                    while Instant::now() < hold_until {
                        std::thread::sleep(Duration::from_millis(10));
                        live.beats.fetch_add(1, Ordering::Relaxed);
                    }

                    for &port in &replica_ports {
                        let repl = repl_stats(port)?;
                        fault_evidence += repl_u64(&repl, "reconnects")
                            + repl_u64(&repl, "naks_sent")
                            + repl_u64(&repl, "snap_resyncs");
                    }
                    if args.manual {
                        // Controller: promote the replica with the
                        // highest replicated version, repoint the other.
                        let mut best = (0usize, 0u64);
                        for (idx, &port) in replica_ports.iter().enumerate() {
                            let sum = version_sum(&repl_stats(port)?);
                            if sum >= best.1 {
                                best = (idx, sum);
                            }
                        }
                        let winner = replica_ports[best.0];
                        let loser = replica_ports[1 - best.0];
                        repl_call(winner, &ReplRequest::Promote { upstream: b"" })
                            .map_err(|e| format!("promote {winner}: {e}"))?;
                        let upstream = format!("127.0.0.1:{winner}");
                        repl_call(
                            loser,
                            &ReplRequest::Promote {
                                upstream: upstream.as_bytes(),
                            },
                        )
                        .map_err(|e| format!("repoint {loser}: {e}"))?;
                        new_primary_port = Some(winner);
                    } else {
                        // No controller: the failure detectors + quorum
                        // election must produce exactly one new primary
                        // on their own.
                        let deadline = Instant::now() + args.recovery_deadline;
                        let winner = loop {
                            let mut promoted = Vec::new();
                            for &port in &replica_ports {
                                let repl = repl_stats(port)?;
                                if repl.get("role").and_then(JsonValue::as_str) == Some("primary") {
                                    promoted.push(port);
                                }
                            }
                            if promoted.len() > 1 {
                                return Err(violation(format!(
                                    "split brain: replicas {promoted:?} both promoted \
                                     themselves"
                                )));
                            }
                            if let Some(&w) = promoted.first() {
                                break w;
                            }
                            if Instant::now() > deadline {
                                return Err(violation(format!(
                                    "no replica auto-promoted itself within {:?}",
                                    args.recovery_deadline
                                )));
                            }
                            std::thread::sleep(Duration::from_millis(10));
                            live.beats.fetch_add(1, Ordering::Relaxed);
                        };
                        new_primary_port = Some(winner);
                    }
                }

                let key = format!("fk-{}", rng.below(args.keys));
                let hist = oracle.entry(key.clone()).or_default();
                let req = issue_op(&mut rng, &key, hist);
                match write_once(&mut cluster, &req)? {
                    WriteOutcome::Acked => {
                        hist.acked = Some(hist.states.len() - 1);
                        if let (Some(t0), None) = (t_kill, recovery) {
                            recovery = Some(t0.elapsed());
                            outage.store(false, Ordering::Relaxed);
                        }
                    }
                    WriteOutcome::Unacked => {}
                }
            }

            // Reap the corpse.
            if let Some(mut child) = primary_corpse {
                let _ = child.wait();
            }
            if args.fault_rate > 0.0 && fault_evidence == 0 {
                return Err(format!(
                    "fault rate {} injected on the replication streams but no reconnect, \
                     NAK or snapshot resync was ever observed — the faults verified nothing",
                    args.fault_rate
                ));
            }
            let recovery = recovery.ok_or_else(|| {
                violation(format!(
                    "no write was ever acknowledged after the kill ({} attempts)",
                    args.load_ops - kill_at
                ))
            })?;
            if recovery > args.recovery_deadline {
                return Err(violation(format!(
                    "recovery took {recovery:?}, deadline {:?}",
                    args.recovery_deadline
                )));
            }
            Ok((oracle, recovery, new_primary_port.expect("set at kill_at")))
        };
        let r = run();
        stop.store(true, Ordering::Relaxed);
        r
    });
    let (mut oracle, recovery, new_primary) = result?;
    let repointed = *replica_ports
        .iter()
        .find(|&&p| p != new_primary)
        .expect("two replicas");

    // Claim 1: no acked write lost. Every key on the new primary must be
    // an issued state at or after its last acked one.
    let acked_keys = oracle.values().filter(|h| h.acked.is_some()).count();
    if acked_keys == 0 {
        return Err("no key ever got an acked write — the oracle verified nothing".into());
    }
    let mut client = ResilientClient::new(new_primary, ClientConfig::default(), args.seed);
    for (key, hist) in oracle.iter_mut() {
        let got = get_value(&mut client, key)?;
        if !hist.admits(got) {
            return Err(violation(format!(
                "mode {}: key {key} on the promoted primary is {got:?}, not an issued \
                 state at or after acked index {:?} ({} issued)",
                mode_name(mode),
                hist.acked,
                hist.states.len()
            )));
        }
        // Rebaseline on what survived: it is the truth going forward.
        *hist = KeyHist {
            states: vec![got],
            acked: Some(0),
        };
    }

    // The new primary must identify as one, and the old role is gone.
    let repl = repl_stats(new_primary)?;
    if repl.get("role").and_then(JsonValue::as_str) != Some("primary") {
        return Err(violation(format!(
            "promoted node {new_primary} does not report role=primary"
        )));
    }

    // Claim 2b: bounded staleness after failover — a final round of acked
    // writes on the new primary must appear on the repointed replica
    // within the convergence deadline.
    let mut rng = SplitMix64::new(args.seed ^ 0xC0_4E_56_E9);
    for i in 0..64u64 {
        let key = format!("fk-{}", i % args.keys);
        let hist = oracle.entry(key.clone()).or_default();
        let req = issue_op(&mut rng, &key, hist);
        match write_once_single(&mut client, &req)? {
            WriteOutcome::Acked => hist.acked = Some(hist.states.len() - 1),
            WriteOutcome::Unacked => {
                return Err(format!("post-failover write on {key} was not acked"))
            }
        }
        live.beats.fetch_add(1, Ordering::Relaxed);
    }
    let mut replica_client = ResilientClient::new(repointed, ClientConfig::default(), args.seed);
    let deadline = Instant::now() + args.converge_deadline;
    'converge: loop {
        live.beats.fetch_add(1, Ordering::Relaxed);
        let mut lagging = None;
        for (key, hist) in &oracle {
            if get_value(&mut replica_client, key)? != hist.current() {
                lagging = Some(key.clone());
                break;
            }
        }
        match lagging {
            None => break 'converge,
            Some(key) if Instant::now() > deadline => {
                return Err(violation(format!(
                    "repointed replica did not converge within {:?} (key {key} still stale)",
                    args.converge_deadline
                )));
            }
            Some(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    let repl = repl_stats(repointed)?;
    let upstream = repl.get("upstream").and_then(JsonValue::as_str);
    if upstream != Some(&format!("127.0.0.1:{new_primary}")) {
        return Err(violation(format!(
            "repointed replica follows {upstream:?}, expected the promoted primary"
        )));
    }

    // Claim 2a: reads kept flowing while the primary was down.
    let reads_ok = tallies.ok.load(Ordering::Relaxed);
    let reads_err = tallies.err.load(Ordering::Relaxed);
    let reads_outage = tallies.during_outage.load(Ordering::Relaxed);
    if reads_outage == 0 {
        return Err(violation(
            "no read succeeded during the primary outage — replicas did not carry reads"
                .to_string(),
        ));
    }
    if reads_err > reads_ok / 100 {
        return Err(violation(format!(
            "reader error rate too high: {reads_err} errors vs {reads_ok} successes"
        )));
    }

    // Teardown: both in-process nodes (promoted primary included) shut
    // down cleanly.
    r1.request_shutdown();
    r2.request_shutdown();
    let _ = r1.join();
    let _ = r2.join();
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "failover ({:<4})  OK  recovery={recovery:?} acked_keys={acked_keys} \
         reads_during_outage={reads_outage} reads={reads_ok}",
        mode_name(mode),
    );
    Ok(())
}

/// `write_once` against a single node instead of a cluster view.
fn write_once_single(
    client: &mut ResilientClient,
    req: &Request<'_>,
) -> Result<WriteOutcome, String> {
    let mut resp = Vec::new();
    match client.call_no_replay(req, &mut resp) {
        Err(_) => Ok(WriteOutcome::Unacked),
        Ok(()) => match decode_response(&resp) {
            Ok(Response::Error { .. })
            | Ok(Response::Overloaded { .. })
            | Ok(Response::DeadlineExceeded) => Ok(WriteOutcome::Unacked),
            Ok(_) => Ok(WriteOutcome::Acked),
            Err(e) => Err(format!("mis-framed write response: {e}")),
        },
    }
}

// -------------------------------------------------------- fencing phase --

/// The split-brain guard, timed on the primary's own clock: with
/// `min_acks = 1` and its only replica gone, the primary must stop
/// acknowledging within the lease, keep refusing while partitioned, and
/// resume once a fresh replica attaches.
fn fencing_phase(args: &Args, mode: Mode, live: &Liveness) -> Result<(), String> {
    const LEASE: Duration = Duration::from_millis(200);
    let primary = spawn(ServerConfig {
        mode,
        port: 0,
        workers: 2,
        shards: 2,
        capacity_per_shard: 4096,
        repl_accept: true,
        repl_min_acks: 1,
        repl_lease: LEASE,
        repl_ack_timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    })
    .map_err(|e| format!("spawn fencing primary: {e}"))?;
    let pport = primary.port();
    let mut client = ResilientClient::new(pport, ClientConfig::default(), args.seed ^ 0xFE);

    let fenced_now = |client: &mut ResilientClient| -> Result<bool, String> {
        let mut resp = Vec::new();
        client
            .call(
                &Request::Set {
                    key: b"fence-probe",
                    value: 7,
                    ttl: 0,
                },
                &mut resp,
            )
            .map_err(|e| format!("fence probe: {e}"))?;
        match decode_response(&resp).map_err(|e| format!("decode: {e}"))? {
            Response::Error { message } if message.contains("fenced") => Ok(true),
            Response::Done => Ok(false),
            other => Err(format!("fence probe answered {other:?}")),
        }
    };

    // Boot state: no replica has ever acked, so the primary starts fenced.
    if !fenced_now(&mut client)? {
        return Err(violation(
            "a min_acks=1 primary with no replica acked a write at boot".to_string(),
        ));
    }

    // Attach a replica: writes must start flowing.
    let r1 = spawn_replica(args, mode, pport, 3)?;
    let deadline = Instant::now() + Duration::from_secs(5);
    while fenced_now(&mut client)? {
        if Instant::now() > deadline {
            return Err(violation(
                "primary stayed fenced after its replica subscribed".to_string(),
            ));
        }
        std::thread::sleep(Duration::from_millis(10));
        live.beats.fetch_add(1, Ordering::Relaxed);
    }
    for i in 0..50u64 {
        let mut resp = Vec::new();
        client
            .call(
                &Request::Set {
                    key: format!("fz-{}", i % 8).as_bytes(),
                    value: i,
                    ttl: 0,
                },
                &mut resp,
            )
            .map_err(|e| format!("steady write: {e}"))?;
        live.beats.fetch_add(1, Ordering::Relaxed);
    }

    // Partition: the only replica goes away. The primary must fence
    // itself within the lease window — nobody tells it.
    r1.request_shutdown();
    let _ = r1.join();
    let t0 = Instant::now();
    let deadline = t0 + LEASE * 10;
    while !fenced_now(&mut client)? {
        if Instant::now() > deadline {
            return Err(violation(format!(
                "primary kept acking {:?} after losing its only replica (lease {LEASE:?})",
                t0.elapsed()
            )));
        }
        std::thread::sleep(Duration::from_millis(10));
        live.beats.fetch_add(1, Ordering::Relaxed);
    }
    // And it must *stay* fenced while the partition lasts.
    let hold = Instant::now() + LEASE * 3;
    while Instant::now() < hold {
        if !fenced_now(&mut client)? {
            return Err(violation(
                "primary acked a write while partitioned from every replica".to_string(),
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
        live.beats.fetch_add(1, Ordering::Relaxed);
    }
    let repl = repl_stats(pport)?;
    if !matches!(repl.get("fenced"), Some(JsonValue::Bool(true))) {
        return Err(violation("STATS does not report fenced=true".to_string()));
    }
    if repl_u64(&repl, "fenced_rejects") == 0 {
        return Err(violation(
            "no fenced_rejects counted during the partition".to_string(),
        ));
    }

    // Heal: a fresh replica attaches, resyncs from snapshot, and the
    // primary resumes.
    let r2 = spawn_replica(args, mode, pport, 4)?;
    let deadline = Instant::now() + Duration::from_secs(5);
    while fenced_now(&mut client)? {
        if Instant::now() > deadline {
            return Err(violation(
                "primary stayed fenced after a fresh replica attached".to_string(),
            ));
        }
        std::thread::sleep(Duration::from_millis(10));
        live.beats.fetch_add(1, Ordering::Relaxed);
    }
    // The late joiner must have actually resynced the pre-partition data.
    let mut rclient = ResilientClient::new(r2.port(), ClientConfig::default(), args.seed);
    let deadline = Instant::now() + Duration::from_secs(3);
    while get_value(&mut rclient, "fz-7")? != Some(47) {
        if Instant::now() > deadline {
            return Err(violation(
                "late replica never served the pre-partition writes".to_string(),
            ));
        }
        std::thread::sleep(Duration::from_millis(10));
        live.beats.fetch_add(1, Ordering::Relaxed);
    }

    r2.request_shutdown();
    let _ = r2.join();
    primary.request_shutdown();
    let _ = primary.join();
    println!("fencing  ({:<4})  OK  lease={LEASE:?}", mode_name(mode));
    Ok(())
}

// ---------------------------------------------------------------- main --

fn run(args: &Args) -> Result<(), String> {
    if !std::path::Path::new(&args.goccd).exists() {
        return Err(format!(
            "goccd binary not found at {} (build release first)",
            args.goccd
        ));
    }
    let modes: Vec<Mode> = match args.mode {
        Some(m) => vec![m],
        None => vec![Mode::Lock, Mode::Gocc],
    };
    let live = start_liveness_monitor(Duration::from_secs(args.stall_secs.max(5)));
    let t0 = Instant::now();
    for &mode in &modes {
        failover_phase(args, mode, &live)?;
        fencing_phase(args, mode, &live)?;
    }
    live.done.store(true, Ordering::Relaxed);
    println!(
        "failover_soak PASS  seed={} load_ops={} fault_rate={} promotion={} {:?}",
        args.seed,
        args.load_ops,
        args.fault_rate,
        if args.manual { "manual" } else { "auto" },
        t0.elapsed()
    );
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    gocc_gosync::set_procs(8);
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("failover_soak: FAIL: {msg}");
            if msg.starts_with("VIOLATION:") {
                ExitCode::from(4)
            } else {
                ExitCode::FAILURE
            }
        }
    }
}
