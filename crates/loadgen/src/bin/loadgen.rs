//! `loadgen` — closed-loop load generator for `goccd`.
//!
//! Two ways to run it:
//!
//! * **Self-hosted sweep** (default): for each worker count in a
//!   power-of-two sweep up to `--workers`, spawn a fresh in-process
//!   `goccd` on an ephemeral loopback port per mode, drive it, capture
//!   client and server metrics, and write `BENCH_server.json`.
//!
//!   ```console
//!   $ loadgen --mode both --workers 4
//!   ```
//!
//! * **External target** (`--addr 127.0.0.1:PORT`): drive one already
//!   running server at a single worker count — the smoke-test shape used
//!   by `scripts/ci.sh`. `--mode` must match the server's mode (verified
//!   against its STATS document); `--shutdown` sends SHUTDOWN afterwards.
//!
//! Exit status is nonzero on any setup failure, a mode mismatch, or a
//! window that completed zero operations.

use std::process::ExitCode;
use std::time::Duration;

use gocc_loadgen::{
    bench_server_json, fetch_stats, fetch_trace, run_point, send_shutdown, sweep_counts,
    LoadConfig, ModeResult, SweepRow,
};
use gocc_server::{mode_name, parse_mode, spawn, Mode, ServerConfig};

struct Args {
    /// None = both modes.
    mode: Option<Mode>,
    workers: usize,
    addr: Option<String>,
    shutdown: bool,
    /// Drain up to N flight-recorder spans after the window (0 = server
    /// default cap) and print the TRACE document. External targets only.
    trace: Option<u32>,
    /// Depth for external runs; restricts the sweep's depth axis when
    /// given. `None` = depth 1 externally, the [1, 8, 32] axis in sweeps.
    pipeline: Option<usize>,
    /// Minimum ops/sec ratio (deepest depth vs depth 1, at 1 worker)
    /// each swept mode must reach; violation exits with code 4.
    pipeline_gate: Option<f64>,
    out: Option<String>,
    server_workers: usize,
    shards: usize,
    capacity: usize,
    load: LoadConfig,
}

fn usage() -> String {
    "usage: loadgen [--mode lock|gocc|both] [--workers N] [--addr 127.0.0.1:PORT] \
     [--shutdown] [--trace N] [--pipeline N] [--pipeline-gate X] [--out PATH|none] \
     [--server-workers N] [--shards N] [--capacity N] [--warmup-ms N] [--window-ms N] \
     [--keyspace N] [--read-frac F] [--zipf S] [--scan-every N] [--seed N]"
        .to_string()
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut args = Args {
        mode: None,
        workers: 4,
        addr: None,
        shutdown: false,
        trace: None,
        pipeline: None,
        pipeline_gate: None,
        out: None,
        server_workers: 2,
        shards: 4,
        capacity: 1 << 14,
        load: LoadConfig::default(),
    };
    let mut out_given = false;
    let mut it = raw.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        fn num<T: std::str::FromStr>(name: &str, v: &str) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            v.parse().map_err(|e| format!("{name}: {e}"))
        }
        match flag.as_str() {
            "--mode" => {
                let v = value("--mode")?;
                args.mode = if v == "both" {
                    None
                } else {
                    Some(parse_mode(&v)?)
                };
            }
            "--workers" => {
                args.workers = num("--workers", &value("--workers")?)?;
                if args.workers == 0 {
                    return Err("--workers must be >= 1".into());
                }
            }
            "--addr" => args.addr = Some(value("--addr")?),
            "--shutdown" => args.shutdown = true,
            "--trace" => args.trace = Some(num("--trace", &value("--trace")?)?),
            "--pipeline" => {
                let d: usize = num("--pipeline", &value("--pipeline")?)?;
                if d == 0 {
                    return Err("--pipeline must be >= 1".into());
                }
                args.pipeline = Some(d);
            }
            "--pipeline-gate" => {
                args.pipeline_gate = Some(num("--pipeline-gate", &value("--pipeline-gate")?)?);
            }
            "--out" => {
                let v = value("--out")?;
                args.out = (v != "none").then_some(v);
                out_given = true;
            }
            "--server-workers" => {
                args.server_workers = num("--server-workers", &value("--server-workers")?)?;
            }
            "--shards" => args.shards = num("--shards", &value("--shards")?)?,
            "--capacity" => args.capacity = num("--capacity", &value("--capacity")?)?,
            "--warmup-ms" => {
                args.load.warmup =
                    Duration::from_millis(num("--warmup-ms", &value("--warmup-ms")?)?);
            }
            "--window-ms" => {
                args.load.window =
                    Duration::from_millis(num("--window-ms", &value("--window-ms")?)?);
            }
            "--keyspace" => {
                args.load.keyspace = num("--keyspace", &value("--keyspace")?)?;
                if args.load.keyspace == 0 {
                    return Err("--keyspace must be >= 1".into());
                }
            }
            "--read-frac" => args.load.read_frac = num("--read-frac", &value("--read-frac")?)?,
            "--zipf" => args.load.zipf_s = num("--zipf", &value("--zipf")?)?,
            "--scan-every" => args.load.scan_every = num("--scan-every", &value("--scan-every")?)?,
            "--seed" => args.load.seed = num("--seed", &value("--seed")?)?,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    if args.addr.is_some() && args.mode.is_none() {
        return Err("--addr drives one server with one mode; pick --mode lock or gocc".into());
    }
    if args.trace.is_some() && args.addr.is_none() {
        return Err("--trace drains a live daemon; it needs --addr".into());
    }
    if args.pipeline_gate.is_some() && args.addr.is_some() {
        return Err("--pipeline-gate compares sweep depths; it conflicts with --addr".into());
    }
    if !out_given {
        // Sweeps produce the artifact by default; smoke runs against an
        // external server don't unless asked.
        args.out = args.addr.is_none().then(|| "BENCH_server.json".to_string());
    }
    Ok(args)
}

/// Extracts the port from a loopback `HOST:PORT` address.
fn loopback_port(addr: &str) -> Result<u16, String> {
    let (host, port) = addr
        .rsplit_once(':')
        .ok_or_else(|| format!("--addr {addr:?} is not HOST:PORT"))?;
    if host != "127.0.0.1" && host != "localhost" {
        return Err(format!("--addr host {host:?} is not loopback"));
    }
    port.parse().map_err(|e| format!("--addr port: {e}"))
}

/// Drives one `(mode, workers)` point against a live server at `port` and
/// returns it paired with the server's post-window stats.
fn measure(
    port: u16,
    expect_mode: Mode,
    workers: usize,
    load: &LoadConfig,
) -> Result<ModeResult, String> {
    let point = run_point(port, workers, load).map_err(|e| format!("load loop: {e}"))?;
    if point.ops == 0 {
        return Err(format!(
            "measurement window completed zero operations \
             ({} client errors)",
            point.client_errors
        ));
    }
    let stats = fetch_stats(port)?;
    match stats.mode() {
        Some(m) if m == mode_name(expect_mode) => {}
        other => {
            return Err(format!(
                "server reports mode {other:?}, expected {:?}",
                mode_name(expect_mode)
            ))
        }
    }
    Ok(ModeResult {
        point,
        stats_raw: stats.raw,
    })
}

fn print_row(mode: Mode, depth: usize, m: &ModeResult) {
    let p = &m.point;
    println!(
        "{:>7}  {:>4}  {:<4}  {:>9}  {:>11.0}  {:>9}  {:>9}  {:>5}",
        p.workers,
        depth,
        mode_name(mode),
        p.ops,
        p.ops_per_sec(),
        p.latency.quantile(0.5),
        p.latency.quantile(0.99),
        p.client_errors + p.server_errors,
    );
    if p.client_errors > 0 {
        eprintln!(
            "warning: {} client-side errors at {} workers ({})",
            p.client_errors,
            p.workers,
            mode_name(mode)
        );
    }
}

fn run(args: &Args) -> Result<ExitCode, String> {
    let modes: Vec<Mode> = match args.mode {
        Some(m) => vec![m],
        None => vec![Mode::Lock, Mode::Gocc],
    };
    let depths: Vec<usize> = match args.pipeline {
        Some(d) => vec![d],
        None if args.addr.is_some() => vec![1],
        None => vec![1, 8, 32],
    };
    println!(
        "{:>7}  {:>4}  {:<4}  {:>9}  {:>11}  {:>9}  {:>9}  {:>5}",
        "workers", "pipe", "mode", "ops", "ops/s", "p50(ns)", "p99(ns)", "errs"
    );

    let mut rows = Vec::new();
    if let Some(addr) = &args.addr {
        // External server: one point, no sweep, caller owns the lifecycle.
        let port = loopback_port(addr)?;
        let mode = args.mode.expect("checked in parse_args");
        let mut load = args.load.clone();
        load.pipeline = depths[0];
        let m = measure(port, mode, args.workers, &load)?;
        print_row(mode, depths[0], &m);
        let mut row = SweepRow {
            workers: args.workers,
            pipeline: depths[0],
            ..SweepRow::default()
        };
        match mode {
            Mode::Lock => row.lock = Some(m),
            Mode::Gocc => row.gocc = Some(m),
        }
        rows.push(row);
        if let Some(max) = args.trace {
            // Drained before SHUTDOWN: TRACE against a dead server is
            // just a connection error.
            println!("{}", fetch_trace(port, max)?.raw);
        }
        if args.shutdown {
            send_shutdown(port)?;
        }
    } else {
        for wc in sweep_counts(args.workers) {
            for &depth in &depths {
                let mut row = SweepRow {
                    workers: wc,
                    pipeline: depth,
                    ..SweepRow::default()
                };
                let mut load = args.load.clone();
                load.pipeline = depth;
                for &mode in &modes {
                    // A fresh server per point: no cross-point warmup
                    // bleed, and each mode's telemetry covers exactly one
                    // window.
                    let handle = spawn(ServerConfig {
                        mode,
                        port: 0,
                        workers: args.server_workers,
                        shards: args.shards,
                        capacity_per_shard: args.capacity,
                        write_timeout: Duration::from_secs(5),
                        ..ServerConfig::default()
                    })
                    .map_err(|e| format!("spawn goccd: {e}"))?;
                    let result = measure(handle.port(), mode, wc, &load);
                    let shutdown = send_shutdown(handle.port());
                    let summary = handle.join();
                    let m = result?;
                    shutdown?;
                    if summary.slow_client_drops > 0 {
                        eprintln!(
                            "warning: server dropped {} slow clients",
                            summary.slow_client_drops
                        );
                    }
                    print_row(mode, depth, &m);
                    match mode {
                        Mode::Lock => row.lock = Some(m),
                        Mode::Gocc => row.gocc = Some(m),
                    }
                }
                if let Some(s) = row.speedup_pct() {
                    println!(
                        "{:>7}  {:>4}  gocc vs lock: {s:+.1}%",
                        row.workers, row.pipeline
                    );
                }
                rows.push(row);
            }
        }
    }

    if let Some(path) = &args.out {
        let json =
            gocc_bench::with_header("server", &bench_server_json(&args.load, &depths, &rows));
        std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }

    if let Some(min_ratio) = args.pipeline_gate {
        return pipeline_gate(&rows, &depths, min_ratio);
    }
    Ok(ExitCode::SUCCESS)
}

/// Checks the pipelining payoff: at 1 worker, the deepest depth must
/// deliver at least `min_ratio`× the ops/sec of depth 1, for every mode
/// that was swept. Returns exit code 4 on a violation (the soak-gate
/// convention: distinguishable from setup failures).
fn pipeline_gate(rows: &[SweepRow], depths: &[usize], min_ratio: f64) -> Result<ExitCode, String> {
    let deepest = *depths.iter().max().expect("at least one depth");
    if depths.len() < 2 || deepest < 2 {
        return Err("--pipeline-gate needs a sweep covering depth 1 and a deeper depth".into());
    }
    let point = |depth: usize| {
        rows.iter()
            .find(|r| r.workers == 1 && r.pipeline == depth)
            .ok_or_else(|| format!("gate point (1 worker, depth {depth}) missing from sweep"))
    };
    let (base, deep) = (point(1)?, point(deepest)?);
    let mut violated = false;
    for (name, pick) in [
        (
            "lock",
            &(|r: &SweepRow| r.lock.clone()) as &dyn Fn(&SweepRow) -> Option<ModeResult>,
        ),
        ("gocc", &|r: &SweepRow| r.gocc.clone()),
    ] {
        let (Some(b), Some(d)) = (pick(base), pick(deep)) else {
            continue;
        };
        let ratio = d.point.ops_per_sec() / b.point.ops_per_sec().max(1e-9);
        let verdict = if ratio >= min_ratio {
            "ok"
        } else {
            "VIOLATION"
        };
        println!(
            "pipeline gate [{name}]: depth {deepest} vs 1 at 1 worker: \
             {ratio:.1}x (need >= {min_ratio:.1}x) {verdict}"
        );
        violated |= ratio < min_ratio;
    }
    if violated {
        return Ok(ExitCode::from(4));
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    gocc_gosync::set_procs(8);
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("loadgen: {msg}");
            ExitCode::FAILURE
        }
    }
}
