//! `overload_soak` — open-loop saturation harness for `goccd`'s overload
//! protection.
//!
//! For each mode (lock, gocc) the soak:
//!
//! 1. spawns an in-process `goccd` with a seeded [`LoadFaultPlan`]
//!    (worker stalls + slow store calls) so the latency signal that
//!    drives the brownout controller is deterministic and guaranteed;
//! 2. **calibrates** capacity with a short closed-loop run;
//! 3. proves the deadline guarantee with a zero-budget probe: the SET is
//!    answered `DeadlineExceeded` and the key must NOT exist afterwards —
//!    an expired request never executes against the engine;
//! 4. drives **open-loop** arrivals at 2× the calibrated capacity with
//!    per-request deadline budgets, past saturation by construction;
//! 5. after removing the load, polls HEALTH until the server walks back
//!    to `healthy`, and requires it within 5 seconds;
//! 6. checks the overload gates from the server's own counters:
//!    admitted-request p99 ≤ `OVERLOAD_GATE_P99_MS` (default 100), mean
//!    shed cost < 10 µs server-side, bounded per-worker queue depth, at
//!    least one brownout escalation, zero executed-but-expired requests.
//!
//! Everything lands in `BENCH_overload.json`. Exit codes: 0 all gates
//! pass, 1 setup/driver failure, 4 one or more overload gates violated
//! (distinct so CI can tell a broken harness from a broken guarantee).
//!
//! ```console
//! $ OVERLOAD_GATE_P99_MS=150 overload_soak --quick --seed 7
//! ```

use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gocc_faultplane::{LoadFaultPlan, LoadMix};
use gocc_loadgen::{
    fetch_health, run_open_loop, run_point, LoadConfig, OpenLoopConfig, OpenLoopResult,
};
use gocc_server::{mode_name, parse_mode, spawn, HealthState, Mode, ServerConfig, ServerSummary};
use gocc_telemetry::{JsonValue, JsonWriter};
use gocc_wire::{decode_response, encode_request_v2, read_frame, write_frame, Request, Response};

/// Setup/driver failure (server died, IO, malformed stats).
const EXIT_SETUP: u8 = 1;
/// One or more overload gates violated.
const EXIT_GATE: u8 = 4;

/// Mean server-side cost of a shed request must stay under this.
const SHED_COST_GATE_NS: f64 = 10_000.0;
/// The server must walk Shedding → Healthy within this after the load
/// stops.
const RECOVERY_GATE: Duration = Duration::from_secs(5);
/// Server-internal cap on frames decoded per pump pass (`conn.rs`); the
/// queue-depth gauge is bounded by it times the connections a worker owns.
const MAX_FRAMES_PER_PUMP: u64 = 256;

struct Args {
    seed: u64,
    /// None = both modes.
    mode: Option<Mode>,
    quick: bool,
    out: Option<String>,
    conns: usize,
    server_workers: usize,
    gate_p99_ms: f64,
}

fn usage() -> String {
    "usage: overload_soak [--seed N] [--mode lock|gocc|both] [--quick] \
     [--out PATH|none] [--conns N] [--server-workers N] [--gate-p99-ms F]\n\
     env: OVERLOAD_GATE_P99_MS overrides the default p99 gate (ms)"
        .to_string()
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let env_gate = std::env::var("OVERLOAD_GATE_P99_MS")
        .ok()
        .map(|v| {
            v.parse::<f64>()
                .map_err(|e| format!("OVERLOAD_GATE_P99_MS: {e}"))
        })
        .transpose()?;
    let mut args = Args {
        seed: 2026,
        mode: None,
        quick: false,
        out: Some("BENCH_overload.json".to_string()),
        conns: 8,
        server_workers: 2,
        gate_p99_ms: env_gate.unwrap_or(100.0),
    };
    let mut it = raw.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        fn num<T: std::str::FromStr>(name: &str, v: &str) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            v.parse().map_err(|e| format!("{name}: {e}"))
        }
        match flag.as_str() {
            "--seed" => args.seed = num("--seed", &value("--seed")?)?,
            "--mode" => {
                let v = value("--mode")?;
                args.mode = if v == "both" {
                    None
                } else {
                    Some(parse_mode(&v)?)
                };
            }
            "--quick" => args.quick = true,
            "--out" => {
                let v = value("--out")?;
                args.out = (v != "none").then_some(v);
            }
            "--conns" => {
                args.conns = num("--conns", &value("--conns")?)?;
                if args.conns == 0 {
                    return Err("--conns must be >= 1".into());
                }
            }
            "--server-workers" => {
                args.server_workers = num("--server-workers", &value("--server-workers")?)?;
            }
            "--gate-p99-ms" => {
                args.gate_p99_ms = num("--gate-p99-ms", &value("--gate-p99-ms")?)?;
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    if args.gate_p99_ms <= 0.0 {
        return Err("the p99 gate must be positive".into());
    }
    Ok(args)
}

/// One gate's verdict, reported in the artifact and on stderr.
struct Gate {
    name: &'static str,
    pass: bool,
    detail: String,
}

fn gate(name: &'static str, pass: bool, detail: String) -> Gate {
    Gate { name, pass, detail }
}

/// Server-side overload counters pulled out of the final STATS document.
struct ServerOverload {
    shed_total: u64,
    shed_ns_total: u64,
    shed_ns_max: u64,
    deadline_pre: u64,
    deadline_post: u64,
    healthy_to_degraded: u64,
    shedding_to_degraded: u64,
    degraded_to_healthy: u64,
    queue_depth_max: u64,
    workers: u64,
}

fn parse_server_overload(stats_json: &str) -> Result<ServerOverload, String> {
    let v = JsonValue::parse(stats_json).map_err(|e| format!("final STATS does not parse: {e}"))?;
    let num = |node: &JsonValue, key: &str| -> Result<u64, String> {
        node.get(key)
            .and_then(JsonValue::as_f64)
            .map(|f| f as u64)
            .ok_or_else(|| format!("STATS missing {key:?}"))
    };
    let o = v.get("overload").ok_or("STATS missing \"overload\"")?;
    let t = o.get("transitions").ok_or("STATS missing transitions")?;
    let workers = v
        .get("per_worker")
        .and_then(JsonValue::as_array)
        .ok_or("STATS missing per_worker")?;
    let queue_depth_max = workers
        .iter()
        .map(|w| num(w, "queue_depth_max"))
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .max()
        .unwrap_or(0);
    Ok(ServerOverload {
        shed_total: num(o, "shed_total")?,
        shed_ns_total: num(o, "shed_ns_total")?,
        shed_ns_max: num(o, "shed_ns_max")?,
        deadline_pre: num(o, "deadline_pre")?,
        deadline_post: num(o, "deadline_post")?,
        healthy_to_degraded: num(t, "healthy_to_degraded")?,
        shedding_to_degraded: num(t, "shedding_to_degraded")?,
        degraded_to_healthy: num(t, "degraded_to_healthy")?,
        queue_depth_max,
        workers: workers.len() as u64,
    })
}

/// Proves an already-expired request never reaches the engine: a SET with
/// a zero deadline budget must come back `DeadlineExceeded`, and the key
/// must not exist afterwards.
fn deadline_probe(port: u16, key: &str) -> Result<(), String> {
    let mut stream =
        TcpStream::connect(("127.0.0.1", port)).map_err(|e| format!("probe connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    let mut call = |req: &Request<'_>, deadline: Option<u32>| -> Result<Vec<u8>, String> {
        let mut wire = Vec::new();
        encode_request_v2(req, deadline, &mut wire);
        write_frame(&mut stream, &wire).map_err(|e| format!("probe send: {e}"))?;
        let mut resp = Vec::new();
        if !read_frame(&mut stream, &mut resp).map_err(|e| format!("probe recv: {e}"))? {
            return Err("server closed on the probe connection".into());
        }
        Ok(resp)
    };
    let resp = call(
        &Request::Set {
            key: key.as_bytes(),
            value: 0xDEAD,
            ttl: 0,
        },
        Some(0),
    )?;
    match decode_response(&resp).map_err(|e| e.to_string())? {
        Response::DeadlineExceeded => {}
        other => return Err(format!("zero-budget SET answered {other:?}")),
    }
    let resp = call(
        &Request::Get {
            key: key.as_bytes(),
        },
        None,
    )?;
    match decode_response(&resp).map_err(|e| e.to_string())? {
        Response::Value { found: false, .. } => Ok(()),
        Response::Value { found: true, .. } => {
            Err("expired SET was executed against the engine".into())
        }
        other => Err(format!("probe GET answered {other:?}")),
    }
}

struct ModeOutcome {
    mode: Mode,
    capacity_ops_per_sec: f64,
    open: OpenLoopResult,
    recovery_ms: u64,
    server: ServerOverload,
    summary: ServerSummary,
    gates: Vec<Gate>,
    /// Chrome trace-event dump of the flight recorder's surviving spans,
    /// drained after shutdown.
    chrome_trace: String,
}

fn soak_mode(args: &Args, mode: Mode) -> Result<ModeOutcome, String> {
    // Fault mix: enough slow-store draws that the latency EWMA crosses
    // the (lowered) brownout thresholds under saturation, deterministic
    // per seed so reruns see the same schedule.
    let plan = Arc::new(LoadFaultPlan::new(
        args.seed,
        LoadMix {
            stall: 0.05,
            stall_for: Duration::from_millis(1),
            slow_store: 0.25,
            slow_store_for: Duration::from_millis(2),
        },
    ));
    let mut cfg = ServerConfig {
        mode,
        port: 0,
        workers: args.server_workers,
        shards: 4,
        capacity_per_shard: 1 << 14,
        queue_limit: 64,
        load_plan: Some(Arc::clone(&plan)),
        ..ServerConfig::default()
    };
    // Thresholds matched to the injected fault mix: ~25% of requests at
    // +2ms puts the latency EWMA well over latency_high once saturated,
    // and well under latency_low once the load is gone.
    cfg.brownout.alpha = 0.3;
    cfg.brownout.depth_high = 16.0;
    cfg.brownout.depth_low = 2.0;
    cfg.brownout.latency_high = Duration::from_micros(400);
    cfg.brownout.latency_low = Duration::from_micros(150);
    cfg.brownout.recover_obs = 8;
    let handle = spawn(cfg).map_err(|e| format!("spawn goccd: {e}"))?;
    let port = handle.port();

    // Phase 1: the deadline guarantee, proven while the server is calm.
    deadline_probe(port, &format!("soak-probe-{}", args.seed))?;

    // Phase 2: closed-loop calibration. The closed loop cannot overload
    // the server (it waits for every response), so its throughput is a
    // fair capacity estimate that already includes the injected faults.
    let (cal_window, open_window) = if args.quick {
        (Duration::from_millis(300), Duration::from_millis(1_000))
    } else {
        (Duration::from_millis(600), Duration::from_millis(3_000))
    };
    let cal = run_point(
        port,
        4,
        &LoadConfig {
            warmup: Duration::from_millis(150),
            window: cal_window,
            scan_every: 0,
            seed: args.seed,
            ..LoadConfig::default()
        },
    )
    .map_err(|e| format!("calibration: {e}"))?;
    if cal.ops == 0 {
        return Err("calibration completed zero operations".into());
    }
    let capacity = cal.ops_per_sec();

    // Phase 3: open-loop arrivals at 2× capacity — past saturation by
    // construction — with a per-request deadline budget at the p99 gate.
    let deadline_us = (args.gate_p99_ms * 1_000.0) as u32;
    let open_cfg = OpenLoopConfig {
        conns: args.conns,
        rate_per_conn: (2.0 * capacity / args.conns as f64).max(50.0),
        warmup: Duration::from_millis(200),
        duration: open_window,
        deadline_us: Some(deadline_us),
        seed: args.seed ^ 0x0516,
        max_inflight: 256,
        breaker: None, // adversarial client: keeps offering while shed
        drain_grace: Duration::from_secs(3),
        ..OpenLoopConfig::default()
    };
    let open = run_open_loop(port, &open_cfg).map_err(|e| format!("open loop: {e}"))?;

    // Phase 4: load removed — the server must walk back to Healthy.
    let t0 = Instant::now();
    let recovery_ms = loop {
        let (state, _, _) = fetch_health(port)?;
        if HealthState::from_u8(state) == HealthState::Healthy {
            break t0.elapsed().as_millis() as u64;
        }
        if t0.elapsed() > RECOVERY_GATE + Duration::from_secs(1) {
            break u64::MAX; // recorded; the gate below fails loudly
        }
        std::thread::sleep(Duration::from_millis(25));
    };

    let state = handle.state_arc();
    handle.request_shutdown();
    let summary = handle.join();
    let server = parse_server_overload(&summary.stats_json)?;
    let chrome_trace = state.chrome_trace_json();
    JsonValue::parse(&chrome_trace)
        .map_err(|e| format!("chrome trace dump does not parse: {e}"))?;

    // The gates, each verified from the artifact's own counters.
    let p99_ns = open.latency.quantile(0.99);
    let gate_ns = (args.gate_p99_ms * 1e6) as u64;
    let shed_mean_ns = if server.shed_total > 0 {
        server.shed_ns_total as f64 / server.shed_total as f64
    } else {
        0.0
    };
    // `queue_depth` counts every frame a pump pass sees (shed ones too),
    // so its bound is frames-per-pump-pass × the connections one worker
    // owns, not `queue_limit`.
    let depth_bound = MAX_FRAMES_PER_PUMP * (args.conns as u64).div_ceil(server.workers.max(1));
    let gates = vec![
        gate(
            "saturated",
            open.overloaded > 0 && server.shed_total > 0,
            format!(
                "server shed {} requests ({} observed client-side) at 2x capacity",
                server.shed_total, open.overloaded
            ),
        ),
        gate(
            "admitted_p99",
            open.ok > 0 && p99_ns <= gate_ns,
            format!(
                "admitted p99 {:.2}ms vs gate {:.2}ms over {} admitted",
                p99_ns as f64 / 1e6,
                args.gate_p99_ms,
                open.ok
            ),
        ),
        gate(
            "shed_cost",
            server.shed_total > 0 && shed_mean_ns < SHED_COST_GATE_NS,
            format!(
                "mean shed cost {shed_mean_ns:.0}ns (max {}ns) vs gate {SHED_COST_GATE_NS:.0}ns",
                server.shed_ns_max
            ),
        ),
        gate(
            "no_expired_executed",
            server.deadline_pre > 0,
            format!(
                "{} expired requests rejected pre-engine, {} post (probe proved none executed)",
                server.deadline_pre, server.deadline_post
            ),
        ),
        gate(
            "brownout_engaged",
            server.healthy_to_degraded >= 1,
            format!(
                "{} healthy->degraded escalations",
                server.healthy_to_degraded
            ),
        ),
        gate(
            "recovers",
            recovery_ms != u64::MAX
                && Duration::from_millis(recovery_ms) <= RECOVERY_GATE
                && server.degraded_to_healthy >= 1,
            format!(
                "healthy {recovery_ms}ms after load removal \
                 ({} shedding->degraded, {} degraded->healthy edges)",
                server.shedding_to_degraded, server.degraded_to_healthy
            ),
        ),
        gate(
            "bounded_memory",
            server.queue_depth_max <= depth_bound,
            format!(
                "peak queue depth {} vs bound {depth_bound}",
                server.queue_depth_max
            ),
        ),
    ];

    Ok(ModeOutcome {
        mode,
        capacity_ops_per_sec: capacity,
        open,
        recovery_ms,
        server,
        summary,
        gates,
        chrome_trace,
    })
}

fn mode_json(w: &mut JsonWriter, m: &ModeOutcome) {
    let o = &m.open;
    let h = &o.latency;
    w.begin_object()
        .field_f64("capacity_ops_per_sec", m.capacity_ops_per_sec)
        .field_f64("target_rate", o.target_rate)
        .key("open_loop")
        .begin_object()
        .field_u64("offered", o.offered)
        .field_u64("sent", o.sent)
        .field_u64("completed", o.completed)
        .field_u64("ok", o.ok)
        .field_u64("overloaded", o.overloaded)
        .field_u64("deadline_exceeded", o.deadline_exceeded)
        .field_u64("server_errors", o.server_errors)
        .field_u64("client_errors", o.client_errors)
        .field_u64("dropped_inflight", o.dropped_inflight)
        .field_f64("goodput_ops_per_sec", o.goodput())
        .key("admitted_latency")
        .begin_object()
        .field_f64("mean_ns", h.mean())
        .field_u64("p50_ns", h.quantile(0.5))
        .field_u64("p99_ns", h.quantile(0.99))
        .field_u64("max_ns", h.max)
        .field_u64("samples", h.count)
        .end_object()
        .end_object()
        .field_u64("recovery_ms", m.recovery_ms)
        .field_u64("shed_total", m.server.shed_total)
        .field_u64("deadline_misses", m.summary.deadline_misses)
        .key("gates")
        .begin_array();
    for g in &m.gates {
        w.begin_object()
            .field_str("name", g.name)
            .field_bool("pass", g.pass)
            .field_str("detail", &g.detail)
            .end_object();
    }
    w.end_array()
        .field_raw("server_stats", &m.summary.stats_json)
        .end_object();
}

fn run(args: &Args) -> Result<Vec<ModeOutcome>, String> {
    let modes: Vec<Mode> = match args.mode {
        Some(m) => vec![m],
        None => vec![Mode::Lock, Mode::Gocc],
    };
    let mut outcomes = Vec::new();
    for mode in modes {
        println!("== overload soak: {} mode ==", mode_name(mode));
        let m = soak_mode(args, mode)?;
        println!(
            "   capacity {:.0} ops/s, offered {:.0}/s open-loop; \
             {} ok, {} shed, {} deadline-missed, recovered in {}ms",
            m.capacity_ops_per_sec,
            m.open.target_rate,
            m.open.ok,
            m.server.shed_total,
            m.summary.deadline_misses,
            m.recovery_ms,
        );
        for g in &m.gates {
            println!(
                "   [{}] {:<20} {}",
                if g.pass { "pass" } else { "FAIL" },
                g.name,
                g.detail
            );
        }
        outcomes.push(m);
    }
    Ok(outcomes)
}

fn artifact_json(args: &Args, outcomes: &[ModeOutcome]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object()
        .field_str("figure", "overload")
        .key("config")
        .begin_object()
        .field_u64("seed", args.seed)
        .field_bool("quick", args.quick)
        .field_f64("gate_p99_ms", args.gate_p99_ms)
        .field_u64("conns", args.conns as u64)
        .field_u64("server_workers", args.server_workers as u64)
        .field_f64("overload_factor", 2.0)
        .end_object()
        .key("modes")
        .begin_object();
    for m in outcomes {
        w.key(mode_name(m.mode));
        mode_json(&mut w, m);
    }
    w.end_object().end_object();
    w.finish()
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(EXIT_SETUP);
        }
    };
    gocc_gosync::set_procs(8);
    let outcomes = match run(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("overload_soak: {msg}");
            return ExitCode::from(EXIT_SETUP);
        }
    };
    if let Some(path) = &args.out {
        let json = gocc_bench::with_header("overload", &artifact_json(&args, &outcomes));
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("overload_soak: writing {path}: {e}");
            return ExitCode::from(EXIT_SETUP);
        }
        println!("wrote {path}");
        // Each mode's flight-recorder dump rides along, loadable straight
        // into chrome://tracing or Perfetto.
        for m in &outcomes {
            let trace_path = format!("TRACE_overload_{}.json", mode_name(m.mode));
            if let Err(e) = std::fs::write(&trace_path, &m.chrome_trace) {
                eprintln!("overload_soak: writing {trace_path}: {e}");
                return ExitCode::from(EXIT_SETUP);
            }
            println!("wrote {trace_path}");
        }
    }
    let failed: Vec<&Gate> = outcomes
        .iter()
        .flat_map(|m| m.gates.iter())
        .filter(|g| !g.pass)
        .collect();
    if failed.is_empty() {
        println!("overload_soak: all gates passed");
        ExitCode::SUCCESS
    } else {
        eprintln!("overload_soak: {} gate(s) violated", failed.len());
        ExitCode::from(EXIT_GATE)
    }
}
