//! `repl_bench` — read throughput versus replica count.
//!
//! The serving-capacity story of replication: replicas serve
//! version-checked GETs, so a read-heavy workload can spread across the
//! whole group instead of queueing on the primary. Each cell boots an
//! in-process primary (`repl_accept`, asynchronous — `min_acks = 0`)
//! plus 0, 1 or 2 replicas, preloads the keyspace, waits for every
//! replica to reach the primary's replicated version, then drives
//! closed-loop GET clients pinned round-robin across the endpoints and
//! reports aggregate kops/s per cell, in both execution modes.
//!
//! **A 1-CPU caveat**, same as the other benches (see EXPERIMENTS.md):
//! this container gives every node the same single core, so replicas add
//! *serving endpoints* but no compute — wall-clock scaling appears on
//! real hardware, not here. The artifact still records the scaling ratio
//! for machines that have cores to show it; the `--gate` bounds enforce
//! what is meaningful on any box:
//!
//! * the **replication tax** — aggregate read throughput with two
//!   replicas attached (and the primary streaming to them) must stay
//!   within `REPL_GATE_SCALE_X` of the replica-free baseline, and
//! * **real distribution** — replicas must serve at least
//!   `REPL_GATE_SHARE_PCT`% of the reads in the two-replica cell, so the
//!   scaling claim is exercised rather than simulated.
//!
//! A third cell per mode measures the **read-your-writes tax**: the
//! same topology as the 2-replica cell, but every client drives
//! floor-carrying session reads (`GET_S` via [`ClusterClient`]) against
//! a private [`Session`] it keeps fresh with periodic `SET_S` writes, so
//! replicas genuinely answer `Behind` and force rotations. The artifact
//! records session kops/s, the `Behind` rotation count and the tax as a
//! ratio against the plain 2-replica read throughput (`ryw_tax_x`).
//!
//! Emits `BENCH_replication.json` (common artifact header).
//!
//! ```console
//! $ repl_bench --window-ms 300 --gate
//! ```

use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use gocc_loadgen::{connect_with_retry, fetch_stats, ClientConfig, ClusterClient, Session};
use gocc_server::{mode_name, spawn, Mode, ServerConfig, ServerHandle};
use gocc_telemetry::{JsonValue, JsonWriter, SplitMix64};
use gocc_wire::{decode_response, encode_request, read_frame, write_frame, Request, Response};

const KEYS: u64 = 2048;
const SHARDS: usize = 4;
const REPLICA_COUNTS: [usize; 3] = [0, 1, 2];
/// Private session keys per client in the session-read cell.
const SESSION_KEYS: u64 = 64;
/// One `SET_S` floor refresh per this many session ops, so the floors
/// keep advancing and replicas genuinely lag them.
const SESSION_WRITE_EVERY: u64 = 8;

struct Args {
    window: Duration,
    /// Closed-loop GET clients, assigned endpoint `i % endpoints`.
    clients: usize,
    /// Best-of-N repeats per cell (one-sided noise, same as wal_bench).
    repeats: usize,
    gate: bool,
}

fn usage() -> String {
    "usage: repl_bench [--window-ms N] [--clients N] [--repeats N] [--gate]".to_string()
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut args = Args {
        window: Duration::from_millis(300),
        clients: 6,
        repeats: 2,
        gate: false,
    };
    let mut it = raw.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--window-ms" => {
                args.window = Duration::from_millis(
                    value("--window-ms")?
                        .parse()
                        .map_err(|e| format!("--window-ms: {e}"))?,
                );
            }
            "--clients" => {
                args.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?;
                if args.clients == 0 {
                    return Err("--clients must be >= 1".into());
                }
            }
            "--repeats" => {
                args.repeats = value("--repeats")?
                    .parse()
                    .map_err(|e| format!("--repeats: {e}"))?;
                if args.repeats == 0 {
                    return Err("--repeats must be >= 1".into());
                }
            }
            "--gate" => args.gate = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    Ok(args)
}

struct CellResult {
    kops: f64,
    primary_reads: u64,
    replica_reads: u64,
}

impl CellResult {
    fn replica_share_pct(&self) -> f64 {
        let total = self.primary_reads + self.replica_reads;
        if total == 0 {
            0.0
        } else {
            self.replica_reads as f64 / total as f64 * 100.0
        }
    }
}

fn version_sum(port: u16) -> Result<u64, String> {
    let doc = fetch_stats(port)?;
    let repl = doc
        .get_repl()
        .ok_or_else(|| format!("node {port} STATS lacks a repl object"))?;
    Ok(repl
        .get("versions")
        .and_then(JsonValue::as_array)
        .map(|a| {
            a.iter()
                .filter_map(JsonValue::as_f64)
                .map(|v| v as u64)
                .sum()
        })
        .unwrap_or(0))
}

/// A plain blocking call over an existing stream.
fn call<'b>(
    stream: &mut TcpStream,
    req: &Request<'_>,
    wirebuf: &mut Vec<u8>,
    respbuf: &'b mut Vec<u8>,
) -> Result<Response<'b>, String> {
    wirebuf.clear();
    encode_request(req, wirebuf);
    write_frame(stream, wirebuf).map_err(|e| format!("send: {e}"))?;
    if !read_frame(stream, respbuf).map_err(|e| format!("recv: {e}"))? {
        return Err("connection closed".into());
    }
    decode_response(respbuf).map_err(|e| format!("decode: {e}"))
}

fn connect(port: u16) -> Result<TcpStream, String> {
    // connect_with_retry sets nodelay + read timeout; the in-process
    // server is already listening, so the default bounded schedule is
    // plenty.
    let cfg = ClientConfig {
        read_timeout: Duration::from_secs(10),
        ..ClientConfig::default()
    };
    let mut rng = SplitMix64::new(0x5EED_C0DE ^ u64::from(port));
    connect_with_retry(port, &cfg, &mut rng).map_err(|e| e.to_string())
}

/// One measured cell: primary + `replicas` followers, preloaded and
/// caught up, then `clients` closed-loop GET threads.
fn measure_cell(mode: Mode, replicas: usize, args: &Args) -> Result<CellResult, String> {
    let primary = spawn(ServerConfig {
        mode,
        port: 0,
        workers: 2,
        shards: SHARDS,
        capacity_per_shard: (KEYS * 4) as usize,
        repl_accept: true,
        ..ServerConfig::default()
    })
    .map_err(|e| format!("spawn primary: {e}"))?;
    let followers: Vec<ServerHandle> = (0..replicas)
        .map(|_| {
            spawn(ServerConfig {
                mode,
                port: 0,
                workers: 2,
                shards: SHARDS,
                capacity_per_shard: (KEYS * 4) as usize,
                replica_of: Some(format!("127.0.0.1:{}", primary.port())),
                ..ServerConfig::default()
            })
            .map_err(|e| format!("spawn replica: {e}"))
        })
        .collect::<Result<_, _>>()?;
    let mut ports = vec![primary.port()];
    ports.extend(followers.iter().map(ServerHandle::port));

    // Preload every key, then wait for the replicas to catch up to the
    // primary's replicated version so the measurement reads warm copies.
    {
        let mut stream = connect(primary.port())?;
        let (mut wirebuf, mut respbuf) = (Vec::new(), Vec::new());
        let mut rng = SplitMix64::new(0xBE4C);
        let mut keybuf = String::new();
        for k in 0..KEYS {
            use std::fmt::Write as _;
            keybuf.clear();
            let _ = write!(keybuf, "k{k}");
            let resp = call(
                &mut stream,
                &Request::Set {
                    key: keybuf.as_bytes(),
                    value: rng.next_u64() >> 1,
                    ttl: 0,
                },
                &mut wirebuf,
                &mut respbuf,
            )?;
            if resp != Response::Done {
                return Err(format!("preload SET answered {resp:?}"));
            }
        }
    }
    let want = version_sum(primary.port())?;
    let deadline = Instant::now() + Duration::from_secs(10);
    for &port in &ports[1..] {
        while version_sum(port)? < want {
            if Instant::now() > deadline {
                return Err(format!(
                    "replica {port} never caught up to version sum {want}"
                ));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    let warmup = args.window / 8;
    let stop = AtomicBool::new(false);
    let started = Instant::now();
    let per_client: Vec<(usize, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..args.clients)
            .map(|t| {
                let (stop, ports) = (&stop, &ports);
                s.spawn(move || {
                    let endpoint = t % ports.len();
                    let mut stream = connect(ports[endpoint]).expect("connect endpoint");
                    let mut rng = SplitMix64::new(0x6E7 ^ (t as u64 + 1).wrapping_mul(0x9E37_79B9));
                    let (mut wirebuf, mut respbuf) = (Vec::new(), Vec::new());
                    let mut keybuf = String::new();
                    let mut ops = 0u64;
                    let mut counting = false;
                    while !stop.load(Ordering::Relaxed) {
                        use std::fmt::Write as _;
                        keybuf.clear();
                        let _ = write!(keybuf, "k{}", rng.below(KEYS));
                        let got = call(
                            &mut stream,
                            &Request::Get {
                                key: keybuf.as_bytes(),
                            },
                            &mut wirebuf,
                            &mut respbuf,
                        )
                        .expect("GET");
                        assert!(
                            matches!(got, Response::Value { found: true, .. }),
                            "warm key missing: {got:?}"
                        );
                        if counting {
                            ops += 1;
                        } else if started.elapsed() >= warmup {
                            counting = true;
                        }
                    }
                    (endpoint, ops)
                })
            })
            .collect();
        std::thread::sleep(warmup + args.window);
        stop.store(true, Ordering::Relaxed);
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });

    for f in followers {
        f.request_shutdown();
        let _ = f.join();
    }
    primary.request_shutdown();
    let _ = primary.join();

    let total: u64 = per_client.iter().map(|&(_, ops)| ops).sum();
    let primary_reads: u64 = per_client
        .iter()
        .filter(|&&(e, _)| e == 0)
        .map(|&(_, ops)| ops)
        .sum();
    Ok(CellResult {
        kops: total as f64 / args.window.as_secs_f64() / 1e3,
        primary_reads,
        replica_reads: total - primary_reads,
    })
}

/// The read-your-writes tax cell: primary + 2 replicas, every client a
/// closed-loop *session* reader. Each client seeds `SESSION_KEYS`
/// private keys via `SET_S` (pocketing the version tokens), then drives
/// floor-carrying session reads with one floor-advancing refresh write
/// per [`SESSION_WRITE_EVERY`] ops. Returns `(session read kops/s,
/// Behind rotations observed)` — the rotations are the tax made visible.
fn measure_session_cell(mode: Mode, args: &Args) -> Result<(f64, u64), String> {
    let primary = spawn(ServerConfig {
        mode,
        port: 0,
        workers: 2,
        shards: SHARDS,
        capacity_per_shard: (KEYS * 4) as usize,
        repl_accept: true,
        ..ServerConfig::default()
    })
    .map_err(|e| format!("spawn primary: {e}"))?;
    let followers: Vec<ServerHandle> = (0..2)
        .map(|_| {
            spawn(ServerConfig {
                mode,
                port: 0,
                workers: 2,
                shards: SHARDS,
                capacity_per_shard: (KEYS * 4) as usize,
                replica_of: Some(format!("127.0.0.1:{}", primary.port())),
                ..ServerConfig::default()
            })
            .map_err(|e| format!("spawn replica: {e}"))
        })
        .collect::<Result<_, _>>()?;
    let mut ports = vec![primary.port()];
    ports.extend(followers.iter().map(ServerHandle::port));

    let warmup = args.window / 8;
    let stop = AtomicBool::new(false);
    let started = Instant::now();
    let per_client: Vec<(u64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..args.clients)
            .map(|t| {
                let (stop, ports) = (&stop, &ports);
                s.spawn(move || {
                    let seed = 0xC11E ^ (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let mut cluster = ClusterClient::new(ports, ClientConfig::default(), seed);
                    let mut session = Session::new();
                    let mut rng = SplitMix64::new(seed ^ 0x5E55);
                    let mut resp = Vec::new();
                    let mut keybuf = String::new();
                    let seed_key = |keybuf: &mut String, k: u64| {
                        use std::fmt::Write as _;
                        keybuf.clear();
                        let _ = write!(keybuf, "s{t}-{k}");
                    };
                    for k in 0..SESSION_KEYS {
                        seed_key(&mut keybuf, k);
                        cluster
                            .write_session(&mut session, keybuf.as_bytes(), k, 0, &mut resp)
                            .expect("seed session write");
                    }
                    let mut reads = 0u64;
                    let mut op = 0u64;
                    let mut counting = false;
                    while !stop.load(Ordering::Relaxed) {
                        op += 1;
                        seed_key(&mut keybuf, rng.below(SESSION_KEYS));
                        if op % SESSION_WRITE_EVERY == 0 {
                            cluster
                                .write_session(&mut session, keybuf.as_bytes(), op, 0, &mut resp)
                                .expect("session refresh write");
                            continue;
                        }
                        cluster
                            .read_session(&session, keybuf.as_bytes(), &mut resp)
                            .expect("session read");
                        let got = decode_response(&resp).expect("decode session read");
                        assert!(
                            matches!(got, Response::Value { found: true, .. }),
                            "session read answered {got:?}"
                        );
                        if counting {
                            reads += 1;
                        } else if started.elapsed() >= warmup {
                            counting = true;
                        }
                    }
                    (reads, cluster.behind_rotations())
                })
            })
            .collect();
        std::thread::sleep(warmup + args.window);
        stop.store(true, Ordering::Relaxed);
        handles
            .into_iter()
            .map(|h| h.join().expect("session client"))
            .collect()
    });

    for f in followers {
        f.request_shutdown();
        let _ = f.join();
    }
    primary.request_shutdown();
    let _ = primary.join();

    let reads: u64 = per_client.iter().map(|&(r, _)| r).sum();
    let behind: u64 = per_client.iter().map(|&(_, b)| b).sum();
    Ok((reads as f64 / args.window.as_secs_f64() / 1e3, behind))
}

fn gate_env(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// `fetch_stats` returns a parsed document; pull its `repl` object.
trait ReplDoc {
    fn get_repl(&self) -> Option<&JsonValue>;
}

impl ReplDoc for gocc_loadgen::StatsDoc {
    fn get_repl(&self) -> Option<&JsonValue> {
        self.parsed.get("repl")
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    gocc_gosync::set_procs(8);

    let mut w = JsonWriter::new();
    w.begin_object()
        .field_u64("clients", args.clients as u64)
        .field_u64("window_ms", args.window.as_millis() as u64)
        .field_u64("keys", KEYS);

    println!(
        "replication read throughput: {} closed-loop GET clients round-robined over \
         primary + replicas, {}ms window",
        args.clients,
        args.window.as_millis()
    );
    let mut gocc_cells: Vec<CellResult> = Vec::new();
    for mode in [Mode::Lock, Mode::Gocc] {
        println!("  {}:", mode_name(mode));
        let mut plain_two_kops = 0.0;
        w.key(mode_name(mode)).begin_array();
        for &replicas in &REPLICA_COUNTS {
            let mut best: Option<CellResult> = None;
            for _ in 0..args.repeats {
                let r = match measure_cell(mode, replicas, &args) {
                    Ok(r) => r,
                    Err(msg) => {
                        eprintln!("repl_bench: FAIL: {msg}");
                        return ExitCode::FAILURE;
                    }
                };
                if best.as_ref().is_none_or(|b| r.kops > b.kops) {
                    best = Some(r);
                }
            }
            let r = best.expect("repeats >= 1");
            println!(
                "    replicas={replicas}  {:>9.1} kops/s  replica_share={:>5.1}%",
                r.kops,
                r.replica_share_pct()
            );
            w.begin_object()
                .field_u64("replicas", replicas as u64)
                .field_f64("kops", r.kops)
                .field_u64("primary_reads", r.primary_reads)
                .field_u64("replica_reads", r.replica_reads)
                .field_f64("replica_share_pct", r.replica_share_pct())
                .end_object();
            if replicas == *REPLICA_COUNTS.last().expect("non-empty") {
                plain_two_kops = r.kops;
            }
            if mode == Mode::Gocc {
                gocc_cells.push(r);
            }
        }
        w.end_array();

        // Session-read cell: same 2-replica topology, floor-carrying
        // reads. The tax ratio compares against the plain cell above.
        let (session_kops, behind) = match measure_session_cell(mode, &args) {
            Ok(v) => v,
            Err(msg) => {
                eprintln!("repl_bench: FAIL: {msg}");
                return ExitCode::FAILURE;
            }
        };
        let ryw_tax = if plain_two_kops > 0.0 {
            session_kops / plain_two_kops
        } else {
            0.0
        };
        println!(
            "    session reads  {session_kops:>9.1} kops/s  ryw_tax={ryw_tax:.2}x \
             behind_rotations={behind}"
        );
        w.key(&format!("{}_session", mode_name(mode)))
            .begin_object()
            .field_f64("kops", session_kops)
            .field_f64("ryw_tax_x", ryw_tax)
            .field_u64("behind_rotations", behind)
            .field_u64("write_every", SESSION_WRITE_EVERY)
            .end_object();
    }

    // Gates on the gocc cells (the paper's execution mode): bounded
    // replication tax and genuine read distribution. The raw scaling
    // ratio is recorded for machines with cores to exercise it. The
    // tax bound sits at ~2x the measured cost (0.67–0.76x across runs
    // on this one-core box); a real regression — replicas serializing
    // the primary — lands under 0.4x.
    let scale_x = gate_env("REPL_GATE_SCALE_X", 0.55);
    let share_pct = gate_env("REPL_GATE_SHARE_PCT", 25.0);
    let baseline = gocc_cells[0].kops;
    let two = &gocc_cells[REPLICA_COUNTS.len() - 1];
    let scale_ratio = if baseline > 0.0 {
        two.kops / baseline
    } else {
        f64::INFINITY
    };
    let share = two.replica_share_pct();
    let scale_ok = scale_ratio >= scale_x;
    let share_ok = share >= share_pct;
    w.key("gates")
        .begin_object()
        .field_bool("enforced", args.gate)
        .field_f64("scale_ratio_2_replicas", scale_ratio)
        .field_f64("scale_ratio_min", scale_x)
        .field_bool("scale_ok", scale_ok)
        .field_f64("replica_share_pct", share)
        .field_f64("replica_share_min_pct", share_pct)
        .field_bool("share_ok", share_ok)
        .end_object()
        .end_object();
    gocc_bench::write_artifact("replication", &w.finish());
    println!(
        "gates (gocc): 2-replica/0-replica read throughput = {scale_ratio:.2}x \
         (need >= {scale_x:.2}x)  replica share = {share:.1}% (need >= {share_pct:.1}%)"
    );

    if args.gate && !(scale_ok && share_ok) {
        if !scale_ok {
            eprintln!(
                "repl_bench: GATE FAIL: read throughput with 2 replicas is only \
                 {scale_ratio:.2}x the replica-free baseline (need {scale_x:.2}x; \
                 override REPL_GATE_SCALE_X)"
            );
        }
        if !share_ok {
            eprintln!(
                "repl_bench: GATE FAIL: replicas served only {share:.1}% of reads \
                 (need {share_pct:.1}%; override REPL_GATE_SHARE_PCT)"
            );
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
