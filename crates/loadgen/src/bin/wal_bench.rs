//! `wal_bench` — WAL throughput sweep: what durability costs, and how
//! much group commit buys back.
//!
//! Two measurement levels, each a closed-loop SET workload over the
//! same four sync configurations (no WAL baseline, `off`, `group`,
//! `always`), each in both execution modes:
//!
//! * **engine** — worker threads call `ShardedStore::execute_durable`
//!   directly (no sockets). Per-op CPU is sub-microsecond here, so this
//!   level isolates the *fsync amortization*: `group` batches every
//!   in-flight record behind one fsync while `always` pays one fsync
//!   per record, and the ratio between them is the subsystem's reason
//!   to exist — the same cost-amortization shape as the paper's lock
//!   elision against the always-lock floor.
//! * **service** — a real in-process `goccd` driven over loopback
//!   sockets, including the conn-layer ack-after-barrier wait. The
//!   request path (syscalls, scheduling) dominates here, so this level
//!   measures the *WAL tax on the service*: what `--wal-sync off`
//!   costs relative to running with no `--data-dir` at all.
//!
//! Emits `BENCH_wal.json` (common artifact header) and, with `--gate`,
//! enforces the durability subsystem's two acceptance bounds on the
//! gocc-mode numbers, each at the level where it is meaningful:
//! engine-level group commit at least `WAL_GATE_GROUP_X`× the
//! per-record-fsync floor (default 5), and service-level sync-off
//! throughput within `WAL_GATE_OFF_PCT`% of the in-memory baseline
//! (default 10). Override either via the environment on noisy boxes,
//! like `HOTPATH_GATE_RATIO`.
//!
//! ```console
//! $ wal_bench --window-ms 400 --gate
//! ```

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use gocc_loadgen::{connect_with_retry, ClientConfig};
use gocc_optilock::{GoccConfig, GoccRuntime};
use gocc_server::{mode_name, spawn, Mode, ServerConfig, ShardedStore, SyncPolicy};
use gocc_telemetry::{JsonWriter, SplitMix64};
use gocc_wal::{Wal, WalBackend, WalConfig};
use gocc_wire::{decode_response, encode_request, read_frame, write_frame, Request, Response};
use gocc_workloads::Engine;

const KEYS: u64 = 4096;
const SHARDS: usize = 8;

struct Args {
    window: Duration,
    /// Closed-loop writers: engine threads, and service client
    /// connections (= server workers, so a group batch can reach this
    /// many records per fsync).
    workers: usize,
    gate: bool,
}

fn usage() -> String {
    "usage: wal_bench [--window-ms N] [--workers N] [--gate]".to_string()
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut args = Args {
        window: Duration::from_millis(400),
        workers: 8,
        gate: false,
    };
    let mut it = raw.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--window-ms" => {
                args.window = Duration::from_millis(
                    value("--window-ms")?
                        .parse()
                        .map_err(|e| format!("--window-ms: {e}"))?,
                );
            }
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
                if args.workers == 0 {
                    return Err("--workers must be >= 1".into());
                }
            }
            "--gate" => args.gate = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    Ok(args)
}

struct PolicyResult {
    kops: f64,
    fsyncs: u64,
    records: u64,
}

impl PolicyResult {
    fn records_per_fsync(&self) -> f64 {
        if self.fsyncs == 0 {
            0.0
        } else {
            self.records as f64 / self.fsyncs as f64
        }
    }
}

fn wal_config(sync: SyncPolicy) -> WalConfig {
    WalConfig {
        sync,
        // No linger: a closed loop of `workers` writers caps every batch
        // at `workers` records, so waiting for a fuller batch is pure
        // latency — natural batching from fsync duration does the rest.
        fsync_wait_us: 0,
        checkpoint_every: 0,
        ..WalConfig::default()
    }
}

/// One closed-loop run with `workers` threads hammering the store
/// directly; `policy: None` skips the WAL entirely.
fn measure_engine(
    mode: Mode,
    policy: Option<SyncPolicy>,
    args: &Args,
    dir: &PathBuf,
) -> PolicyResult {
    let _ = std::fs::remove_dir_all(dir);
    let wal = policy.map(|sync| {
        let (wal, _) = Wal::open(dir, SHARDS, wal_config(sync)).expect("open wal");
        wal
    });
    let store = ShardedStore::new(SHARDS, (KEYS * 4) as usize);
    let rt = GoccRuntime::new(GoccConfig::default());
    let warmup = args.window / 8;
    let stop = AtomicBool::new(false);
    let started = Instant::now();

    let total_ops: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..args.workers)
            .map(|t| {
                let (stop, store, rt, wal) = (&stop, &store, &rt, &wal);
                s.spawn(move || {
                    let engine = Engine::new(rt, mode);
                    let mut rng = SplitMix64::new(0x5EED ^ (t as u64 + 1).wrapping_mul(0x9E37));
                    let mut keybuf = String::new();
                    let mut ops = 0u64;
                    let mut counting = false;
                    while !stop.load(Ordering::Relaxed) {
                        use std::fmt::Write as _;
                        keybuf.clear();
                        let _ = write!(keybuf, "k{}", rng.below(KEYS));
                        let req = Request::Set {
                            key: keybuf.as_bytes(),
                            value: rng.next_u64() >> 1,
                            ttl: 0,
                        };
                        match wal {
                            Some(wal) => {
                                let (_, ticket) = store.execute_durable(&engine, &req, wal);
                                if let Some((ticket, _staged)) = ticket {
                                    wal.wait(ticket).expect("wal healthy");
                                }
                            }
                            None => {
                                let _ = store.execute(&engine, &req);
                            }
                        }
                        if counting {
                            ops += 1;
                        } else if started.elapsed() >= warmup {
                            counting = true;
                        }
                    }
                    ops
                })
            })
            .collect();
        std::thread::sleep(warmup + args.window);
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().expect("worker")).sum()
    });

    let (fsyncs, records) = wal.as_ref().map_or((0, 0), |w| (w.fsyncs(), w.appended()));
    if let Some(wal) = wal {
        wal.shutdown();
    }
    let _ = std::fs::remove_dir_all(dir);
    PolicyResult {
        kops: total_ops as f64 / args.window.as_secs_f64() / 1e3,
        fsyncs,
        records,
    }
}

/// One closed-loop run against a fresh in-process `goccd` over
/// loopback; `policy: None` runs without a data dir.
fn measure_service(
    mode: Mode,
    policy: Option<SyncPolicy>,
    args: &Args,
    dir: &PathBuf,
) -> PolicyResult {
    let _ = std::fs::remove_dir_all(dir);
    let mut config = ServerConfig {
        mode,
        port: 0,
        workers: args.workers,
        shards: SHARDS,
        capacity_per_shard: (KEYS * 4) as usize,
        write_timeout: Duration::from_secs(5),
        data_dir: policy.map(|_| dir.clone()),
        ..ServerConfig::default()
    };
    if let Some(sync) = policy {
        config.wal = WalConfig {
            backend: WalBackend::Real,
            ..wal_config(sync)
        };
    }
    let handle = spawn(config).expect("spawn goccd");
    let port = handle.port();
    let warmup = args.window / 8;
    let stop = AtomicBool::new(false);
    let started = Instant::now();

    let total_ops: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..args.workers)
            .map(|t| {
                let stop = &stop;
                s.spawn(move || {
                    let cfg = ClientConfig {
                        read_timeout: Duration::from_secs(10),
                        ..ClientConfig::default()
                    };
                    let mut rng = SplitMix64::new(0x5EED ^ (t as u64 + 1).wrapping_mul(0x9E37));
                    let mut stream = connect_with_retry(port, &cfg, &mut rng).expect("connect");
                    let (mut wirebuf, mut respbuf) = (Vec::new(), Vec::new());
                    let mut keybuf = String::new();
                    let mut ops = 0u64;
                    let mut counting = false;
                    while !stop.load(Ordering::Relaxed) {
                        use std::fmt::Write as _;
                        keybuf.clear();
                        let _ = write!(keybuf, "k{}", rng.below(KEYS));
                        wirebuf.clear();
                        encode_request(
                            &Request::Set {
                                key: keybuf.as_bytes(),
                                value: rng.next_u64() >> 1,
                                ttl: 0,
                            },
                            &mut wirebuf,
                        );
                        write_frame(&mut stream, &wirebuf).expect("send");
                        assert!(read_frame(&mut stream, &mut respbuf).expect("recv"));
                        assert_eq!(decode_response(&respbuf).expect("decode"), Response::Done);
                        if counting {
                            ops += 1;
                        } else if started.elapsed() >= warmup {
                            counting = true;
                        }
                    }
                    let _ = stream.flush();
                    ops
                })
            })
            .collect();
        std::thread::sleep(warmup + args.window);
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().expect("client")).sum()
    });

    let state = handle.state_arc();
    let (fsyncs, records) = state.wal().map_or((0, 0), |w| (w.fsyncs(), w.appended()));
    handle.request_shutdown();
    let _ = handle.join();
    let _ = std::fs::remove_dir_all(dir);
    PolicyResult {
        kops: total_ops as f64 / args.window.as_secs_f64() / 1e3,
        fsyncs,
        records,
    }
}

fn gate_env(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Runs all four policies for one (level, mode) cell, prints the rows,
/// writes them under `w`, and returns the four kops numbers in
/// [baseline, off, group, always] order.
///
/// With `repeats > 1` the whole policy loop runs that many times
/// *interleaved* and each cell keeps its best run: closed-loop
/// throughput noise on a shared box is strictly one-sided (interference
/// only ever slows a run down), so best-of-N converges on the true
/// figure — the same reasoning as `trace_overhead`'s min-of-5.
fn sweep(
    w: &mut JsonWriter,
    args: &Args,
    dir: &PathBuf,
    mode: Mode,
    repeats: usize,
    measure: impl Fn(Mode, Option<SyncPolicy>, &Args, &PathBuf) -> PolicyResult,
) -> [f64; 4] {
    let policies = [
        None,
        Some(SyncPolicy::Off),
        Some(SyncPolicy::Group),
        Some(SyncPolicy::Always),
    ];
    w.key(mode_name(mode)).begin_object();
    println!("  {}:", mode_name(mode));
    let mut best: [Option<PolicyResult>; 4] = [None, None, None, None];
    for _ in 0..repeats {
        for (i, policy) in policies.into_iter().enumerate() {
            let r = measure(mode, policy, args, dir);
            if best[i].as_ref().is_none_or(|b| r.kops > b.kops) {
                best[i] = Some(r);
            }
        }
    }
    let mut kops = [0.0; 4];
    for (i, policy) in policies.into_iter().enumerate() {
        let r = best[i].as_ref().expect("measured above");
        let name = policy.map_or("baseline", SyncPolicy::name);
        println!(
            "    {name:<8} {:>9.1} kops/s  fsyncs={:<8} records/fsync={:.1}",
            r.kops,
            r.fsyncs,
            r.records_per_fsync()
        );
        w.key(name)
            .begin_object()
            .field_f64("kops", r.kops)
            .field_u64("fsyncs", r.fsyncs)
            .field_u64("records", r.records)
            .field_f64("records_per_fsync", r.records_per_fsync())
            .end_object();
        kops[i] = r.kops;
    }
    w.end_object();
    kops
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    gocc_gosync::set_procs(8);
    // Current directory, not /tmp: a tmpfs fsync is free, which would
    // flatten exactly the amortization this bench exists to measure.
    let dir = PathBuf::from(format!(".wal_bench-{}", std::process::id()));

    let mut w = JsonWriter::new();
    w.begin_object()
        .field_u64("workers", args.workers as u64)
        .field_u64("window_ms", args.window.as_millis() as u64);

    println!(
        "WAL engine throughput: {} closed-loop threads on execute_durable, {}ms window, SET",
        args.workers,
        args.window.as_millis()
    );
    w.key("engine").begin_object();
    let mut engine_gocc = [0.0; 4];
    for mode in [Mode::Lock, Mode::Gocc] {
        let kops = sweep(&mut w, &args, &dir, mode, 1, measure_engine);
        if mode == Mode::Gocc {
            engine_gocc = kops;
        }
    }
    w.end_object();

    println!(
        "WAL service throughput: goccd loopback, {} closed-loop clients, {}ms window, SET",
        args.workers,
        args.window.as_millis()
    );
    // Service runs are where box noise bites (sockets + scheduling on
    // top of everything else), so each cell is the best of three.
    w.key("service").begin_object();
    let mut service_gocc = [0.0; 4];
    for mode in [Mode::Lock, Mode::Gocc] {
        let kops = sweep(&mut w, &args, &dir, mode, 3, measure_service);
        if mode == Mode::Gocc {
            service_gocc = kops;
        }
    }
    w.end_object();

    // Gates on the gocc numbers: the subsystem exists to make durability
    // cheap for the paper's execution mode. Amortization is an engine
    // property (per-op CPU is tiny there, so the fsync schedule is the
    // whole difference); the off tax is a service property (what a real
    // client loses when the daemon keeps a log it never syncs).
    let group_x = gate_env("WAL_GATE_GROUP_X", 5.0);
    let off_pct = gate_env("WAL_GATE_OFF_PCT", 10.0);
    let [_, _, group, always] = engine_gocc;
    let [baseline, off, _, _] = service_gocc;
    let group_ratio = if always > 0.0 {
        group / always
    } else {
        f64::INFINITY
    };
    let off_loss_pct = if baseline > 0.0 {
        (1.0 - off / baseline) * 100.0
    } else {
        0.0
    };
    let group_ok = group_ratio >= group_x;
    let off_ok = off_loss_pct <= off_pct;
    w.key("gates")
        .begin_object()
        .field_bool("enforced", args.gate)
        .field_f64("engine_group_over_always", group_ratio)
        .field_f64("engine_group_over_always_min", group_x)
        .field_bool("group_ok", group_ok)
        .field_f64("service_off_loss_pct", off_loss_pct)
        .field_f64("service_off_loss_max_pct", off_pct)
        .field_bool("off_ok", off_ok)
        .end_object()
        .end_object();
    gocc_bench::write_artifact("wal", &w.finish());
    println!(
        "gates (gocc): engine group/always = {group_ratio:.1}x (need >= {group_x:.1}x)  \
         service off loss = {off_loss_pct:.1}% (allow <= {off_pct:.1}%)"
    );

    if args.gate && !(group_ok && off_ok) {
        if !group_ok {
            eprintln!(
                "wal_bench: GATE FAIL: engine group commit only {group_ratio:.2}x over \
                 per-record fsync (need {group_x:.1}x; override WAL_GATE_GROUP_X)"
            );
        }
        if !off_ok {
            eprintln!(
                "wal_bench: GATE FAIL: service sync=off loses {off_loss_pct:.1}% vs \
                 in-memory (allow {off_pct:.1}%; override WAL_GATE_OFF_PCT)"
            );
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
