//! Cluster-aware client: write-to-primary with `NotPrimary` redirect
//! following, reads round-robined across every endpoint.
//!
//! A replicated deployment gives a client two new jobs the single-node
//! [`ResilientClient`](crate::ResilientClient) never had:
//!
//! * **Writes must find the primary.** Any replica answers a write with
//!   `NotPrimary { hint }`; the hint names the upstream the replica is
//!   following. During failover the hint may point at a corpse — the
//!   client treats a dead endpoint like any other failed attempt and
//!   rotates to the next known node, so it converges on the promoted
//!   replica as soon as promotion lands, without any out-of-band
//!   coordination.
//! * **Reads may go anywhere.** Replicas serve GET/SCAN/STATS from
//!   their version-checked copy, so reads round-robin across the whole
//!   endpoint set and keep succeeding while the primary is down — that
//!   availability is the half of the replication story the failover
//!   soak asserts on.
//!
//! Endpoints learned from redirect hints are added to the set on the
//! fly; per-endpoint connections are lazy and survive across calls.

use std::io;
use std::time::Duration;

use gocc_telemetry::SplitMix64;
use gocc_wire::{decode_response, Request, Response};

use crate::resilient::{ClientConfig, ResilientClient};

/// Total write attempts (across redirects, rotations and replays) before
/// a write call reports failure to the caller.
const WRITE_ATTEMPTS: u32 = 12;

/// Full round-robin passes a session read makes before concluding no
/// endpoint can satisfy its version floor (replication lag longer than
/// the retry budget, or an impossible floor).
const READ_ROUNDS: usize = 3;

/// A read-your-writes session: the version tokens returned by this
/// session's acknowledged `SET_S` writes, keyed by the written key.
///
/// A token is the `(shard, version)` the write reached on the primary.
/// A later `GET_S` of the same key carries the version as its floor; a
/// replica whose copy of that key's shard is still behind the floor
/// answers `Behind` instead of serving a stale value, and the client
/// rotates to a caught-up node. Keying by the written key (rather than
/// by shard) is what lets the client stay ignorant of the server's
/// key→shard mapping: the same key always lands on the same shard, so
/// floor and check line up by construction.
#[derive(Clone, Debug, Default)]
pub struct Session {
    tokens: std::collections::HashMap<Vec<u8>, (u32, u64)>,
}

impl Session {
    /// An empty session: no floors, reads behave like plain reads.
    #[must_use]
    pub fn new() -> Self {
        Session::default()
    }

    /// Records an acknowledged write's token; floors only ever rise.
    pub fn note(&mut self, key: &[u8], shard: u32, version: u64) {
        let slot = self.tokens.entry(key.to_vec()).or_insert((shard, 0));
        if version > slot.1 {
            *slot = (shard, version);
        }
    }

    /// The session's version floor for `key` (0 when the session never
    /// wrote it — any copy is then fresh enough).
    #[must_use]
    pub fn floor(&self, key: &[u8]) -> u64 {
        self.tokens.get(key).map_or(0, |&(_, v)| v)
    }

    /// Number of keys this session holds tokens for.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the session holds no tokens.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

struct Endpoint {
    port: u16,
    client: ResilientClient,
    /// Reads this endpoint served (the distribution proof for the
    /// read-scaling bench and the failover soak).
    reads: u64,
}

/// A client for a primary/replica group on loopback.
pub struct ClusterClient {
    cfg: ClientConfig,
    seed: u64,
    endpoints: Vec<Endpoint>,
    /// Index of the endpoint currently believed to be the primary.
    primary: usize,
    /// Read round-robin cursor.
    rr: usize,
    rng: SplitMix64,
    redirects: u64,
    rotations: u64,
    /// `Behind` answers session reads rotated past (replica lag made
    /// visible — the price and the proof of read-your-writes).
    behind_rotations: u64,
}

impl ClusterClient {
    /// A client over `ports` (any mix of primary and replicas — the
    /// first write discovers which is which); `seed` drives backoff
    /// jitter and retry pacing.
    #[must_use]
    pub fn new(ports: &[u16], cfg: ClientConfig, seed: u64) -> Self {
        assert!(!ports.is_empty(), "a cluster needs at least one endpoint");
        let endpoints = ports
            .iter()
            .enumerate()
            .map(|(i, &port)| Endpoint {
                port,
                client: ResilientClient::new(
                    port,
                    cfg.clone(),
                    seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
                reads: 0,
            })
            .collect();
        ClusterClient {
            cfg,
            seed,
            endpoints,
            primary: 0,
            rr: 0,
            rng: SplitMix64::new(seed ^ 0xC1_05_7E_12),
            redirects: 0,
            rotations: 0,
            behind_rotations: 0,
        }
    }

    /// The port currently believed to host the primary.
    #[must_use]
    pub fn primary_port(&self) -> u16 {
        self.endpoints[self.primary].port
    }

    /// `NotPrimary` hints followed.
    #[must_use]
    pub fn redirects(&self) -> u64 {
        self.redirects
    }

    /// Blind rotations to the next endpoint after an I/O failure or an
    /// unusable hint (dead-primary windows during failover).
    #[must_use]
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// `Behind` answers session reads rotated past.
    #[must_use]
    pub fn behind_rotations(&self) -> u64 {
        self.behind_rotations
    }

    /// Reads served per endpoint, in endpoint order (ports alongside).
    #[must_use]
    pub fn reads_by_endpoint(&self) -> Vec<(u16, u64)> {
        self.endpoints.iter().map(|e| (e.port, e.reads)).collect()
    }

    fn index_of(&mut self, port: u16) -> usize {
        if let Some(i) = self.endpoints.iter().position(|e| e.port == port) {
            return i;
        }
        // A hint named a node we did not know about: adopt it.
        let i = self.endpoints.len();
        self.endpoints.push(Endpoint {
            port,
            client: ResilientClient::new(
                port,
                self.cfg.clone(),
                self.seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
            reads: 0,
        });
        i
    }

    /// Sends a write to the believed primary, following `NotPrimary`
    /// hints and rotating past dead endpoints, up to a bounded number of
    /// attempts. On `Ok` the response body is in `resp` and came from a
    /// node that accepted the write (it may still be a server `Error`,
    /// e.g. a fenced primary — the caller decides what that means).
    ///
    /// Replay safety is the caller's contract exactly as with
    /// [`ResilientClient`]: route INCR through a fresh key history or
    /// accept ambiguity.
    pub fn write(&mut self, req: &Request<'_>, resp: &mut Vec<u8>) -> io::Result<()> {
        let mut last: Option<io::Error> = None;
        for attempt in 0..WRITE_ATTEMPTS {
            if attempt > 0 {
                // Failover windows are tens of milliseconds; pace the
                // retry loop instead of hammering corpses.
                std::thread::sleep(Duration::from_millis(1 + self.rng.below(4)));
            }
            let i = self.primary;
            match self.endpoints[i].client.call_no_replay(req, resp) {
                Ok(()) => {
                    let hint_port = match decode_response(resp) {
                        Ok(Response::NotPrimary { hint }) => {
                            Some(hint.rsplit(':').next().and_then(|p| p.parse::<u16>().ok()))
                        }
                        _ => None,
                    };
                    match hint_port {
                        None => return Ok(()), // any non-redirect answer
                        Some(Some(port)) if port != self.endpoints[i].port => {
                            self.primary = self.index_of(port);
                            self.redirects += 1;
                        }
                        Some(_) => {
                            // Empty, unparsable or self-referential hint:
                            // the node knows no better primary. Rotate.
                            self.primary = (i + 1) % self.endpoints.len();
                            self.rotations += 1;
                        }
                    }
                }
                Err(e) => {
                    self.primary = (i + 1) % self.endpoints.len();
                    self.rotations += 1;
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(
                io::ErrorKind::TimedOut,
                "no endpoint accepted the write (redirect loop)",
            )
        }))
    }

    /// Sends a read to the next endpoint in round-robin order, trying
    /// every endpoint once before giving up. Replicas and primaries both
    /// serve reads, so this succeeds as long as *any* node is alive.
    pub fn read(&mut self, req: &Request<'_>, resp: &mut Vec<u8>) -> io::Result<()> {
        let n = self.endpoints.len();
        let mut last: Option<io::Error> = None;
        for _ in 0..n {
            let i = self.rr % n;
            self.rr = self.rr.wrapping_add(1);
            match self.endpoints[i].client.call(req, resp) {
                Ok(()) => {
                    self.endpoints[i].reads += 1;
                    return Ok(());
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| io::Error::other("cluster has no endpoints")))
    }

    /// A session write: `SET_S` through the primary-finding write path,
    /// recording the returned `(shard, version)` token in `session` so
    /// later session reads of the same key carry the floor.
    ///
    /// `Ok` with a non-`DoneAt` body (a fenced primary's `Error`, say)
    /// records nothing; the caller inspects `resp` exactly as with
    /// [`ClusterClient::write`].
    pub fn write_session(
        &mut self,
        session: &mut Session,
        key: &[u8],
        value: u64,
        ttl: u64,
        resp: &mut Vec<u8>,
    ) -> io::Result<()> {
        self.write(&Request::SetS { key, value, ttl }, resp)?;
        if let Ok(Response::DoneAt { shard, version }) = decode_response(resp) {
            session.note(key, shard, version);
        }
        Ok(())
    }

    /// A session read: `GET_S` carrying the session's floor for `key`,
    /// round-robined like [`ClusterClient::read`] but treating `Behind`
    /// (a replica that has not yet applied the session's write) as one
    /// more reason to rotate. Bounded at [`READ_ROUNDS`] full passes:
    /// the primary always satisfies floors it acknowledged, so under any
    /// live cluster this converges long before the budget runs out.
    pub fn read_session(
        &mut self,
        session: &Session,
        key: &[u8],
        resp: &mut Vec<u8>,
    ) -> io::Result<()> {
        let req = Request::GetS {
            key,
            min_version: session.floor(key),
        };
        let n = self.endpoints.len();
        let mut last: Option<io::Error> = None;
        for attempt in 0..n * READ_ROUNDS {
            if attempt > 0 && attempt % n == 0 {
                // A full pass of Behind/dead answers: give replication
                // a beat to catch up instead of spinning.
                std::thread::sleep(Duration::from_millis(1 + self.rng.below(4)));
            }
            let i = self.rr % n;
            self.rr = self.rr.wrapping_add(1);
            match self.endpoints[i].client.call(&req, resp) {
                Ok(()) => {
                    if matches!(decode_response(resp), Ok(Response::Behind { .. })) {
                        self.behind_rotations += 1;
                        continue;
                    }
                    self.endpoints[i].reads += 1;
                    return Ok(());
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(
                io::ErrorKind::TimedOut,
                "no endpoint satisfied the session's version floor",
            )
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gocc_wire::{encode_response, read_frame, Response};
    use std::io::Write as _;
    use std::net::{Ipv4Addr, TcpListener};

    /// A one-shot server loop answering every request with `make(port)`.
    fn answering_server(
        total: usize,
        make: impl Fn() -> Vec<u8> + Send + 'static,
    ) -> (u16, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let port = listener.local_addr().unwrap().port();
        let handle = std::thread::spawn(move || {
            for _ in 0..total {
                let (mut s, _) = listener.accept().unwrap();
                let mut body = Vec::new();
                while read_frame(&mut s, &mut body).unwrap_or(false) {
                    s.write_all(&make()).unwrap();
                }
            }
        });
        (port, handle)
    }

    fn done_frame() -> Vec<u8> {
        let mut out = Vec::new();
        encode_response(&Response::Done, &mut out);
        out
    }

    #[test]
    fn writes_follow_the_redirect_hint() {
        let (primary_port, primary) = answering_server(1, done_frame);
        let hint = format!("127.0.0.1:{primary_port}");
        let (replica_port, replica) = answering_server(1, move || {
            let mut out = Vec::new();
            encode_response(&Response::NotPrimary { hint: &hint }, &mut out);
            out
        });
        // The client starts believing the replica is the primary.
        let mut c = ClusterClient::new(&[replica_port], ClientConfig::chaos(), 7);
        let mut resp = Vec::new();
        c.write(
            &Request::Set {
                key: b"k",
                value: 1,
                ttl: 0,
            },
            &mut resp,
        )
        .expect("redirect must land on the real primary");
        assert_eq!(decode_response(&resp).unwrap(), Response::Done);
        assert_eq!(c.redirects(), 1);
        assert_eq!(c.primary_port(), primary_port, "hint endpoint adopted");
        drop(c); // close the client connections so the server loops exit
        primary.join().unwrap();
        replica.join().unwrap();
    }

    #[test]
    fn writes_rotate_past_a_dead_primary() {
        // Endpoint 0 is a corpse (bound then dropped); endpoint 1 answers.
        let dead = TcpListener::bind((Ipv4Addr::LOCALHOST, 0))
            .unwrap()
            .local_addr()
            .unwrap()
            .port();
        let (live, server) = answering_server(1, done_frame);
        let mut c = ClusterClient::new(&[dead, live], ClientConfig::chaos(), 8);
        let mut resp = Vec::new();
        c.write(
            &Request::Set {
                key: b"k",
                value: 2,
                ttl: 0,
            },
            &mut resp,
        )
        .expect("rotation must find the live node");
        assert_eq!(decode_response(&resp).unwrap(), Response::Done);
        assert!(c.rotations() >= 1, "the corpse cost at least one rotation");
        assert_eq!(c.primary_port(), live);
        drop(c);
        server.join().unwrap();
    }

    #[test]
    fn reads_round_robin_across_endpoints() {
        let (a, sa) = answering_server(1, || {
            let mut out = Vec::new();
            encode_response(
                &Response::Value {
                    found: true,
                    value: 1,
                },
                &mut out,
            );
            out
        });
        let (b, sb) = answering_server(1, || {
            let mut out = Vec::new();
            encode_response(
                &Response::Value {
                    found: true,
                    value: 2,
                },
                &mut out,
            );
            out
        });
        let mut c = ClusterClient::new(&[a, b], ClientConfig::chaos(), 9);
        let mut resp = Vec::new();
        for _ in 0..6 {
            c.read(&Request::Get { key: b"k" }, &mut resp).unwrap();
        }
        let reads = c.reads_by_endpoint();
        assert_eq!(reads.len(), 2);
        assert_eq!(reads[0].1, 3, "round-robin splits evenly");
        assert_eq!(reads[1].1, 3);
        drop(c);
        sa.join().unwrap();
        sb.join().unwrap();
    }

    #[test]
    fn writes_fail_boundedly_when_every_endpoint_is_dead() {
        // Both endpoints are corpses: bound a port, then drop the
        // listener so connects are refused. The write must rotate a
        // bounded number of times and report failure — not spin forever
        // against a cluster that will never answer.
        let dead = |seed: u16| {
            TcpListener::bind((Ipv4Addr::LOCALHOST, 0))
                .map(|l| l.local_addr().unwrap().port())
                .unwrap_or(seed)
        };
        let (a, b) = (dead(1), dead(2));
        let mut c = ClusterClient::new(&[a, b], ClientConfig::chaos(), 11);
        let mut resp = Vec::new();
        let err = c
            .write(
                &Request::Set {
                    key: b"k",
                    value: 3,
                    ttl: 0,
                },
                &mut resp,
            )
            .expect_err("a fully dead cluster must surface an error");
        assert_ne!(err.kind(), std::io::ErrorKind::Other, "a real I/O error");
        assert!(
            c.rotations() <= u64::from(super::WRITE_ATTEMPTS),
            "rotation is bounded by the attempt budget, got {}",
            c.rotations()
        );
    }

    #[test]
    fn epoch_change_redirects_the_session_write_and_records_the_token() {
        // After an election the deposed address answers NotPrimary with
        // the winner's port (the announce repointed it); the winner
        // answers DoneAt. The client must follow the redirect and pocket
        // the session token from the node that actually took the write.
        let (new_primary_port, new_primary) = answering_server(1, || {
            let mut out = Vec::new();
            encode_response(
                &Response::DoneAt {
                    shard: 3,
                    version: 17,
                },
                &mut out,
            );
            out
        });
        let hint = format!("127.0.0.1:{new_primary_port}");
        let (old_port, old_primary) = answering_server(1, move || {
            let mut out = Vec::new();
            encode_response(&Response::NotPrimary { hint: &hint }, &mut out);
            out
        });
        let mut c = ClusterClient::new(&[old_port], ClientConfig::chaos(), 12);
        let mut session = Session::new();
        let mut resp = Vec::new();
        c.write_session(&mut session, b"k", 9, 0, &mut resp)
            .expect("the redirect must land on the new primary");
        assert_eq!(c.redirects(), 1);
        assert_eq!(c.primary_port(), new_primary_port);
        assert_eq!(session.floor(b"k"), 17, "token from the acking node");
        drop(c);
        new_primary.join().unwrap();
        old_primary.join().unwrap();
    }

    #[test]
    fn session_reads_rotate_past_behind_replicas() {
        // Endpoint A is a lagging replica: every session read answers
        // Behind. Endpoint B is caught up. The session read must rotate
        // off A and return B's value, counting the Behind rotation.
        let (lagging, sa) = answering_server(1, || {
            let mut out = Vec::new();
            encode_response(&Response::Behind { version: 2 }, &mut out);
            out
        });
        let (caught_up, sb) = answering_server(1, || {
            let mut out = Vec::new();
            encode_response(
                &Response::Value {
                    found: true,
                    value: 42,
                },
                &mut out,
            );
            out
        });
        let mut c = ClusterClient::new(&[lagging, caught_up], ClientConfig::chaos(), 13);
        let mut session = Session::new();
        session.note(b"k", 0, 5);
        let mut resp = Vec::new();
        // Several reads: whichever endpoint round-robin starts on, every
        // read must end at the caught-up node.
        for _ in 0..4 {
            c.read_session(&session, b"k", &mut resp).unwrap();
            assert_eq!(
                decode_response(&resp).unwrap(),
                Response::Value {
                    found: true,
                    value: 42
                }
            );
        }
        assert!(
            c.behind_rotations() >= 1,
            "the lagging replica must have been rotated past at least once"
        );
        drop(c);
        sa.join().unwrap();
        sb.join().unwrap();
    }
}
