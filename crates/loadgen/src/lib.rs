//! Closed-loop load generation for `goccd`.
//!
//! The generator opens `workers` connections, each driven by one thread in
//! a closed loop (send one request, wait for its response, repeat), with a
//! configurable read/write mix over a Zipf-skewed key population. After a
//! warmup phase, operations completed inside the measurement window are
//! counted and their request→response latency recorded in the shared
//! log2 histogram from `gocc-telemetry` — the same bucketing the runtime
//! uses for critical-section latency, so client-side and server-side
//! distributions are directly comparable.
//!
//! Everything is seeded: worker *w* of a point draws from
//! `SplitMix64::new(seed ^ w)`, so two runs against equal servers issue
//! identical request streams per connection (arrival interleaving is the
//! only nondeterminism, as in any closed-loop harness).

pub mod cluster;
pub mod openloop;
pub mod resilient;
pub mod zipf;

use std::io;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

use gocc_telemetry::{HistogramSnapshot, JsonValue, JsonWriter, LatencyHistogram, SplitMix64};
use gocc_wire::{decode_response, Request, Response};

pub use cluster::{ClusterClient, Session};
pub use openloop::{run_open_loop, OpenLoopConfig, OpenLoopResult};
pub use resilient::{
    connect_with_retry, BreakerConfig, BreakerState, CircuitBreaker, ClientConfig, ResilientClient,
};
use zipf::Zipf;

/// Workload shape knobs (shared by every point of a sweep).
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Fraction of operations that are GETs (the rest split into
    /// SET/DEL/INCR at 6:1:1).
    pub read_frac: f64,
    /// Number of distinct keys (`key-0` … `key-{n-1}`).
    pub keyspace: usize,
    /// Zipf skew exponent (0 = uniform, 0.99 = YCSB-style hot keys).
    pub zipf_s: f64,
    /// Issue one SCAN every this many operations per connection (0 =
    /// never). SCANs are the large-read-set outlier in the mix.
    pub scan_every: u64,
    /// Entry limit per SCAN.
    pub scan_limit: u32,
    /// Ramp-up time before the measurement window opens.
    pub warmup: Duration,
    /// Measurement window length.
    pub window: Duration,
    /// Base RNG seed.
    pub seed: u64,
    /// Frames kept outstanding per connection. 1 (the default) is the
    /// classic closed loop: send, wait, repeat. Above 1 each connection
    /// keeps this many requests in flight over one socket, matching
    /// responses FIFO — the client-side half of the batching amortization
    /// (many frames per round-trip, many requests per server pump pass).
    pub pipeline: usize,
    /// Connection resilience (timeouts, bounded retries, replay).
    pub client: ClientConfig,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            read_frac: 0.9,
            keyspace: 4096,
            zipf_s: 0.99,
            scan_every: 2048,
            scan_limit: 64,
            warmup: Duration::from_millis(200),
            window: Duration::from_millis(800),
            seed: 42,
            pipeline: 1,
            client: ClientConfig::default(),
        }
    }
}

/// One measured `(mode, workers)` point, client side.
#[derive(Clone, Debug)]
pub struct PointResult {
    /// Concurrent closed-loop connections.
    pub workers: usize,
    /// Operations completed inside the measurement window.
    pub ops: u64,
    /// Actual measured window length.
    pub elapsed: Duration,
    /// Request→response latency of measured operations.
    pub latency: HistogramSnapshot,
    /// IO/decode/protocol failures on the client side that exhausted
    /// their retries.
    pub client_errors: u64,
    /// `Response::Error` frames received.
    pub server_errors: u64,
    /// Connections re-established after I/O failures.
    pub reconnects: u64,
    /// Requests re-sent over a fresh connection (idempotent verbs only).
    pub replays: u64,
    /// `Response::Overloaded` frames received (server-side admission
    /// shed — retriable, not an error).
    pub sheds: u64,
    /// `Response::DeadlineExceeded` frames received.
    pub deadline_exceeded: u64,
}

impl PointResult {
    /// Throughput over the measurement window.
    #[must_use]
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Mean wall-clock cost per operation per connection, the closed-loop
    /// analog of the bench harness's ns/op.
    #[must_use]
    pub fn ns_per_op(&self) -> f64 {
        if self.ops == 0 {
            return f64::INFINITY;
        }
        self.elapsed.as_nanos() as f64 * self.workers as f64 / self.ops as f64
    }
}

const PHASE_WARMUP: u8 = 0;
const PHASE_MEASURE: u8 = 1;
const PHASE_DONE: u8 = 2;

/// Cross-thread tallies shared by one point's connection drivers.
#[derive(Default)]
struct PointTallies {
    ops: AtomicU64,
    client_errors: AtomicU64,
    server_errors: AtomicU64,
    reconnects: AtomicU64,
    replays: AtomicU64,
    sheds: AtomicU64,
    deadline_exceeded: AtomicU64,
}

/// Runs one closed-loop point against a live server.
pub fn run_point(port: u16, workers: usize, cfg: &LoadConfig) -> io::Result<PointResult> {
    assert!(workers >= 1);
    let zipf = Zipf::new(cfg.keyspace, cfg.zipf_s);
    let phase = AtomicU8::new(PHASE_WARMUP);
    let tallies = PointTallies::default();
    let hist = LatencyHistogram::new();

    let elapsed = std::thread::scope(|s| {
        for w in 0..workers {
            let (zipf, phase, tallies, hist) = (&zipf, &phase, &tallies, &hist);
            let seed = cfg.seed ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let cfg = cfg.clone();
            s.spawn(move || {
                // Depth 1 keeps the original one-at-a-time driver byte for
                // byte — unpipelined results stay comparable across
                // versions of the pipelined driver.
                if cfg.pipeline > 1 {
                    drive_pipelined(port, &cfg, zipf, seed, phase, tallies, hist);
                } else {
                    drive_connection(port, &cfg, zipf, seed, phase, tallies, hist);
                }
            });
        }
        std::thread::sleep(cfg.warmup);
        phase.store(PHASE_MEASURE, Ordering::SeqCst);
        let t0 = Instant::now();
        std::thread::sleep(cfg.window);
        phase.store(PHASE_DONE, Ordering::SeqCst);
        t0.elapsed()
        // Scope end joins the workers.
    });

    Ok(PointResult {
        workers,
        ops: tallies.ops.load(Ordering::SeqCst),
        elapsed,
        latency: hist.snapshot(),
        client_errors: tallies.client_errors.load(Ordering::SeqCst),
        server_errors: tallies.server_errors.load(Ordering::SeqCst),
        reconnects: tallies.reconnects.load(Ordering::SeqCst),
        replays: tallies.replays.load(Ordering::SeqCst),
        sheds: tallies.sheds.load(Ordering::SeqCst),
        deadline_exceeded: tallies.deadline_exceeded.load(Ordering::SeqCst),
    })
}

/// Whether a response is the right shape for the request that elicited it.
fn response_matches(req: &Request<'_>, resp: &Response<'_>) -> bool {
    matches!(
        (req, resp),
        (Request::Get { .. }, Response::Value { .. })
            | (Request::Set { .. }, Response::Done)
            | (Request::Del { .. }, Response::Deleted { .. })
            | (Request::Incr { .. }, Response::Counter { .. })
            | (Request::Scan { .. }, Response::Entries { .. })
            | (Request::Stats, Response::Stats { .. })
            | (Request::Trace { .. }, Response::Trace { .. })
            | (Request::Flush, Response::Flushed { .. })
            | (Request::Shutdown, Response::Bye)
    )
}

/// Give up on a connection whose failures exhaust retries this many times
/// in a row — the server is gone, not merely faulty.
const MAX_CONSECUTIVE_FAILURES: u32 = 5;

fn drive_connection(
    port: u16,
    cfg: &LoadConfig,
    zipf: &Zipf,
    seed: u64,
    phase: &AtomicU8,
    tallies: &PointTallies,
    hist: &LatencyHistogram,
) {
    // Independent streams for the workload draw and the backoff jitter so
    // resilience events never perturb the request sequence.
    let mut client = ResilientClient::new(port, cfg.client.clone(), seed ^ 0xA076_1D64_78BD_642F);
    let mut rng = SplitMix64::new(seed);
    let mut keybuf = String::new();
    let mut respbuf = Vec::new();
    let mut local_ops = 0u64;
    let mut op_index = 0u64;
    let mut consecutive_failures = 0u32;

    loop {
        let ph = phase.load(Ordering::Acquire);
        if ph == PHASE_DONE {
            break;
        }
        op_index += 1;
        use std::fmt::Write as _;
        keybuf.clear();
        let _ = write!(keybuf, "key-{}", zipf.sample(&mut rng));
        let req = if cfg.scan_every > 0 && op_index.is_multiple_of(cfg.scan_every) {
            Request::Scan {
                limit: cfg.scan_limit,
            }
        } else if rng.chance(cfg.read_frac) {
            Request::Get {
                key: keybuf.as_bytes(),
            }
        } else {
            match rng.below(8) {
                0 => Request::Del {
                    key: keybuf.as_bytes(),
                },
                1 => Request::Incr {
                    key: keybuf.as_bytes(),
                    delta: 1,
                },
                _ => Request::Set {
                    key: keybuf.as_bytes(),
                    value: rng.next_u64(),
                    ttl: 0,
                },
            }
        };

        let t0 = Instant::now();
        // Idempotent verbs replay over fresh connections; INCR must not
        // (a lost response leaves the increment's fate unknown).
        let sent = match req {
            Request::Incr { .. } => client.call_no_replay(&req, &mut respbuf),
            _ => client.call(&req, &mut respbuf),
        };
        if sent.is_err() {
            tallies.client_errors.fetch_add(1, Ordering::Relaxed);
            consecutive_failures += 1;
            if consecutive_failures >= MAX_CONSECUTIVE_FAILURES {
                break;
            }
            continue;
        }
        consecutive_failures = 0;
        match decode_response(&respbuf) {
            Ok(Response::Error { .. }) => {
                tallies.server_errors.fetch_add(1, Ordering::Relaxed);
            }
            // Overload-protection responses are valid answers to any data
            // verb: count them, keep the loop running.
            Ok(Response::Overloaded { .. }) => {
                tallies.sheds.fetch_add(1, Ordering::Relaxed);
            }
            Ok(Response::DeadlineExceeded) => {
                tallies.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            }
            Ok(ref resp) if response_matches(&req, resp) => {}
            Ok(_) | Err(_) => {
                // A mis-shaped response is a protocol bug, not chaos:
                // stop this connection so the point reports it.
                tallies.client_errors.fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
        if ph == PHASE_MEASURE {
            hist.record(t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
            local_ops += 1;
        }
    }
    tallies.ops.fetch_add(local_ops, Ordering::SeqCst);
    tallies
        .reconnects
        .fetch_add(client.reconnects(), Ordering::SeqCst);
    tallies
        .replays
        .fetch_add(client.replays(), Ordering::SeqCst);
}

/// One outstanding pipelined request: everything needed to replay it over
/// a fresh connection (the op spec, owned) plus the submit instant the
/// latency measurement runs from.
struct PipeInflight {
    submitted: Instant,
    measured: bool,
    op: PipeOp,
}

/// Owned, replayable form of one workload op (key index instead of the
/// formatted key string).
#[derive(Clone, Copy)]
enum PipeOp {
    Get { key: usize },
    Set { key: usize, value: u64 },
    Del { key: usize },
    Incr { key: usize },
    Scan { limit: u32 },
}

impl PipeOp {
    /// Encodes this op as a wire frame onto `outbuf`.
    fn encode(self, keybuf: &mut String, outbuf: &mut Vec<u8>) {
        use std::fmt::Write as _;
        keybuf.clear();
        let req = match self {
            PipeOp::Get { key } => {
                let _ = write!(keybuf, "key-{key}");
                Request::Get {
                    key: keybuf.as_bytes(),
                }
            }
            PipeOp::Set { key, value } => {
                let _ = write!(keybuf, "key-{key}");
                Request::Set {
                    key: keybuf.as_bytes(),
                    value,
                    ttl: 0,
                }
            }
            PipeOp::Del { key } => {
                let _ = write!(keybuf, "key-{key}");
                Request::Del {
                    key: keybuf.as_bytes(),
                }
            }
            PipeOp::Incr { key } => {
                let _ = write!(keybuf, "key-{key}");
                Request::Incr {
                    key: keybuf.as_bytes(),
                    delta: 1,
                }
            }
            PipeOp::Scan { limit } => Request::Scan { limit },
        };
        gocc_wire::encode_request(&req, outbuf);
    }

    /// Whether a lost response leaves the op safe to re-send. INCR is the
    /// one non-idempotent verb: replaying it could double-count.
    fn idempotent(self) -> bool {
        !matches!(self, PipeOp::Incr { .. })
    }

    /// Whether `resp` is the right success shape for this op (overload /
    /// deadline / error responses are matched separately).
    fn matches(self, resp: &Response<'_>) -> bool {
        matches!(
            (self, resp),
            (PipeOp::Get { .. }, Response::Value { .. })
                | (PipeOp::Set { .. }, Response::Done)
                | (PipeOp::Del { .. }, Response::Deleted { .. })
                | (PipeOp::Incr { .. }, Response::Counter { .. })
                | (PipeOp::Scan { .. }, Response::Entries { .. })
        )
    }
}

/// Draws the next workload op — the exact mix and RNG draw order of
/// [`drive_connection`], in owned form.
fn draw_pipe_op(cfg: &LoadConfig, zipf: &Zipf, rng: &mut SplitMix64, op_index: u64) -> PipeOp {
    let key = zipf.sample(rng);
    if cfg.scan_every > 0 && op_index.is_multiple_of(cfg.scan_every) {
        PipeOp::Scan {
            limit: cfg.scan_limit,
        }
    } else if rng.chance(cfg.read_frac) {
        PipeOp::Get { key }
    } else {
        match rng.below(8) {
            0 => PipeOp::Del { key },
            1 => PipeOp::Incr { key },
            _ => PipeOp::Set {
                key,
                value: rng.next_u64(),
            },
        }
    }
}

/// The pipelined closed loop: keep `cfg.pipeline` frames outstanding on
/// one nonblocking socket, match responses FIFO (the server answers every
/// admitted frame in order), measure submit→match per request. On an I/O
/// failure the connection is rebuilt and the outstanding *idempotent*
/// requests are replayed in order; outstanding INCRs are dropped and
/// counted as client errors — their fate is unknown, same contract as the
/// resilient client's no-replay rule.
fn drive_pipelined(
    port: u16,
    cfg: &LoadConfig,
    zipf: &Zipf,
    seed: u64,
    phase: &AtomicU8,
    tallies: &PointTallies,
    hist: &LatencyHistogram,
) {
    use std::io::{Read, Write};

    let depth = cfg.pipeline;
    // Same stream split as drive_connection: workload draws never depend
    // on resilience events.
    let mut rng = SplitMix64::new(seed);
    let mut backoff_rng = SplitMix64::new(seed ^ 0xA076_1D64_78BD_642F);
    let connect = |backoff_rng: &mut SplitMix64| -> io::Result<std::net::TcpStream> {
        let stream = connect_with_retry(port, &cfg.client, backoff_rng)?;
        stream.set_nonblocking(true)?;
        Ok(stream)
    };
    let Ok(mut stream) = connect(&mut backoff_rng) else {
        tallies.client_errors.fetch_add(1, Ordering::Relaxed);
        return;
    };

    let mut inflight: std::collections::VecDeque<PipeInflight> =
        std::collections::VecDeque::with_capacity(depth);
    let mut outbuf: Vec<u8> = Vec::new();
    let mut framebuf = gocc_wire::FrameBuf::new();
    let mut readbuf = [0u8; 16 * 1024];
    let mut keybuf = String::new();
    let mut local_ops = 0u64;
    let mut local_reconnects = 0u64;
    let mut local_replays = 0u64;
    let mut op_index = 0u64;
    let mut consecutive_failures = 0u32;

    'outer: loop {
        let ph = phase.load(Ordering::Acquire);
        if ph == PHASE_DONE {
            break;
        }

        // Top up to the configured depth.
        while inflight.len() < depth {
            op_index += 1;
            let op = draw_pipe_op(cfg, zipf, &mut rng, op_index);
            op.encode(&mut keybuf, &mut outbuf);
            inflight.push_back(PipeInflight {
                submitted: Instant::now(),
                measured: ph == PHASE_MEASURE,
                op,
            });
        }

        // Push pending frames as far as the socket allows.
        let mut io_failed = false;
        let mut progressed = false;
        while !outbuf.is_empty() {
            match stream.write(&outbuf) {
                Ok(0) => {
                    io_failed = true;
                    break;
                }
                Ok(k) => {
                    outbuf.drain(..k);
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    io_failed = true;
                    break;
                }
            }
        }

        // Drain and FIFO-match whatever responses have arrived.
        if !io_failed {
            loop {
                match stream.read(&mut readbuf) {
                    Ok(0) => {
                        io_failed = true;
                        break;
                    }
                    Ok(k) => {
                        framebuf.extend(&readbuf[..k]);
                        match match_pipe_frames(
                            &mut framebuf,
                            &mut inflight,
                            tallies,
                            hist,
                            &mut local_ops,
                        ) {
                            Ok(matched) => progressed |= matched,
                            Err(()) => {
                                // Mis-shaped response: protocol bug, not
                                // chaos. Stop so the point reports it.
                                tallies.client_errors.fetch_add(1, Ordering::Relaxed);
                                break 'outer;
                            }
                        }
                        if k < readbuf.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        io_failed = true;
                        break;
                    }
                }
            }
        }

        if io_failed {
            local_reconnects += 1;
            consecutive_failures += 1;
            if consecutive_failures >= MAX_CONSECUTIVE_FAILURES {
                tallies.client_errors.fetch_add(1, Ordering::Relaxed);
                break;
            }
            outbuf.clear();
            framebuf = gocc_wire::FrameBuf::new();
            let pending: Vec<PipeInflight> = inflight.drain(..).collect();
            match connect(&mut backoff_rng) {
                Ok(s) => stream = s,
                Err(_) => {
                    tallies.client_errors.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
            // Replay outstanding idempotent requests in order; drop the
            // non-idempotent ones.
            for f in pending {
                if f.op.idempotent() {
                    f.op.encode(&mut keybuf, &mut outbuf);
                    local_replays += 1;
                    inflight.push_back(f);
                } else {
                    tallies.client_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            continue;
        }
        if progressed {
            consecutive_failures = 0;
        } else {
            // Nothing moved: responses are in flight. Nap briefly instead
            // of spinning on the nonblocking socket.
            std::thread::sleep(Duration::from_micros(20));
        }
    }

    tallies.ops.fetch_add(local_ops, Ordering::SeqCst);
    tallies
        .reconnects
        .fetch_add(local_reconnects, Ordering::SeqCst);
    tallies.replays.fetch_add(local_replays, Ordering::SeqCst);
}

/// Decodes every complete frame in `framebuf`, matching FIFO against
/// `inflight` with the same response classification as
/// [`drive_connection`]. `Ok(true)` when at least one frame matched;
/// `Err(())` on a protocol violation (mis-shaped or unsolicited
/// response).
fn match_pipe_frames(
    framebuf: &mut gocc_wire::FrameBuf,
    inflight: &mut std::collections::VecDeque<PipeInflight>,
    tallies: &PointTallies,
    hist: &LatencyHistogram,
    local_ops: &mut u64,
) -> Result<bool, ()> {
    let mut matched = false;
    loop {
        let frame = match framebuf.next_frame() {
            Ok(Some(f)) => f,
            Ok(None) => return Ok(matched),
            Err(_) => return Err(()),
        };
        let Ok(resp) = decode_response(frame) else {
            return Err(());
        };
        let Some(f) = inflight.pop_front() else {
            return Err(());
        };
        match resp {
            Response::Error { .. } => {
                tallies.server_errors.fetch_add(1, Ordering::Relaxed);
            }
            Response::Overloaded { .. } => {
                tallies.sheds.fetch_add(1, Ordering::Relaxed);
            }
            Response::DeadlineExceeded => {
                tallies.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            }
            ref r if f.op.matches(r) => {}
            _ => return Err(()),
        }
        matched = true;
        if f.measured {
            hist.record(f.submitted.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
            *local_ops += 1;
        }
    }
}

/// A fetched-and-validated STATS document.
#[derive(Clone, Debug)]
pub struct StatsDoc {
    /// The raw JSON exactly as served.
    pub raw: String,
    /// The parse (by `gocc-telemetry`'s own parser — the acceptance check).
    pub parsed: JsonValue,
}

impl StatsDoc {
    /// The server's reported `"mode"`.
    #[must_use]
    pub fn mode(&self) -> Option<&str> {
        self.parsed.get("mode").and_then(JsonValue::as_str)
    }
}

fn control_call(port: u16, req: &Request<'_>) -> Result<Vec<u8>, String> {
    // Bounded connects + timeouts: control-plane calls against a dead or
    // wedged daemon fail in seconds, they never hang a script.
    let mut client = ResilientClient::new(port, ClientConfig::default(), 0x0C07);
    let mut respbuf = Vec::new();
    match client.call_no_replay(req, &mut respbuf) {
        Ok(()) => Ok(respbuf),
        Err(e) => Err(format!("control call: {e}")),
    }
}

/// Fetches STATS and parses it with the telemetry JSON parser; any parse
/// failure is an error (this is the wire-level acceptance check scripts
/// rely on).
pub fn fetch_stats(port: u16) -> Result<StatsDoc, String> {
    let respbuf = control_call(port, &Request::Stats)?;
    let Response::Stats { json } =
        decode_response(&respbuf).map_err(|e| format!("bad stats response: {e}"))?
    else {
        return Err("STATS returned a non-stats response".into());
    };
    let parsed = JsonValue::parse(json).map_err(|e| format!("STATS JSON does not parse: {e}"))?;
    Ok(StatsDoc {
        raw: json.to_string(),
        parsed,
    })
}

/// A drained-and-validated TRACE document.
#[derive(Clone, Debug)]
pub struct TraceDoc {
    /// The raw JSON exactly as served.
    pub raw: String,
    /// The parse (through `gocc-telemetry`'s own parser).
    pub parsed: JsonValue,
}

impl TraceDoc {
    /// The `"spans"` array.
    #[must_use]
    pub fn spans(&self) -> &[JsonValue] {
        self.parsed
            .get("spans")
            .and_then(JsonValue::as_array)
            .unwrap_or(&[])
    }
}

/// Drains up to `max` flight-recorder spans from a live daemon (`0` asks
/// for the server-side default cap). TRACE is *draining* — a lost response
/// loses spans — so this never replays over a fresh connection.
pub fn fetch_trace(port: u16, max: u32) -> Result<TraceDoc, String> {
    let respbuf = control_call(port, &Request::Trace { max })?;
    let Response::Trace { json } =
        decode_response(&respbuf).map_err(|e| format!("bad trace response: {e}"))?
    else {
        return Err("TRACE returned a non-trace response".into());
    };
    let parsed = JsonValue::parse(json).map_err(|e| format!("TRACE JSON does not parse: {e}"))?;
    Ok(TraceDoc {
        raw: json.to_string(),
        parsed,
    })
}

/// Fetches the server's HEALTH triple `(state, shed_total,
/// deadline_misses)` — the cheap probe scripts poll while waiting for a
/// browned-out server to recover.
pub fn fetch_health(port: u16) -> Result<(u8, u64, u64), String> {
    let respbuf = control_call(port, &Request::Health)?;
    match decode_response(&respbuf) {
        Ok(Response::Health {
            state,
            shed_total,
            deadline_misses,
        }) => Ok((state, shed_total, deadline_misses)),
        Ok(other) => Err(format!("HEALTH answered {other:?}")),
        Err(e) => Err(format!("bad health response: {e}")),
    }
}

/// Sends SHUTDOWN and confirms the Bye.
pub fn send_shutdown(port: u16) -> Result<(), String> {
    let respbuf = control_call(port, &Request::Shutdown)?;
    match decode_response(&respbuf) {
        Ok(Response::Bye) => Ok(()),
        Ok(other) => Err(format!("SHUTDOWN answered {other:?}")),
        Err(e) => Err(format!("bad shutdown response: {e}")),
    }
}

/// One mode's measurement at a worker count, plus the server's stats.
#[derive(Clone, Debug)]
pub struct ModeResult {
    /// Client-side measurement.
    pub point: PointResult,
    /// Raw server STATS JSON captured right after the window.
    pub stats_raw: String,
}

/// One row of the sweep: both modes at a worker count (either may be
/// absent in single-mode runs).
#[derive(Clone, Debug, Default)]
pub struct SweepRow {
    /// Closed-loop connection count.
    pub workers: usize,
    /// Frames outstanding per connection when this row was measured
    /// (1 = classic closed loop). `Default` yields 0; builders must set
    /// it explicitly so depth is never silently conflated across rows.
    pub pipeline: usize,
    /// Lock-mode result.
    pub lock: Option<ModeResult>,
    /// Gocc-mode result.
    pub gocc: Option<ModeResult>,
}

impl SweepRow {
    /// GOCC throughput gain over the lock baseline, in percent (the
    /// paper's reporting convention); `None` unless both modes ran.
    #[must_use]
    pub fn speedup_pct(&self) -> Option<f64> {
        let (l, g) = (self.lock.as_ref()?, self.gocc.as_ref()?);
        Some((g.point.ops_per_sec() / l.point.ops_per_sec().max(1e-9) - 1.0) * 100.0)
    }
}

/// Worker counts for a `1..=max` sweep: powers of two, plus `max` itself.
#[must_use]
pub fn sweep_counts(max: usize) -> Vec<usize> {
    let mut counts = Vec::new();
    let mut c = 1;
    while c < max {
        counts.push(c);
        c *= 2;
    }
    counts.push(max.max(1));
    counts
}

fn mode_fields(w: &mut JsonWriter, m: &ModeResult) {
    let p = &m.point;
    let h = &p.latency;
    w.begin_object()
        .field_u64("ops", p.ops)
        .field_f64("ops_per_sec", p.ops_per_sec())
        .field_f64("ns_per_op", p.ns_per_op())
        .field_u64("client_errors", p.client_errors)
        .field_u64("server_errors", p.server_errors)
        .field_u64("reconnects", p.reconnects)
        .field_u64("replays", p.replays)
        .field_u64("sheds", p.sheds)
        .field_u64("deadline_exceeded", p.deadline_exceeded)
        .key("latency")
        .begin_object()
        .field_f64("mean_ns", h.mean())
        .field_u64("p50_ns", h.quantile(0.5))
        .field_u64("p90_ns", h.quantile(0.9))
        .field_u64("p99_ns", h.quantile(0.99))
        .field_u64("max_ns", h.max)
        .field_u64("samples", h.count)
        .end_object()
        .field_raw("server_stats", &m.stats_raw)
        .end_object();
}

/// Renders the `BENCH_server.json` document (same artifact family as the
/// figure benches: a `"figure"` tag, config echo, measured points).
#[must_use]
pub fn bench_server_json(cfg: &LoadConfig, pipeline_depths: &[usize], rows: &[SweepRow]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object()
        .field_str("figure", "server")
        .key("config")
        .begin_object()
        .field_f64("read_frac", cfg.read_frac)
        .field_f64("zipf_s", cfg.zipf_s)
        .field_u64("keyspace", cfg.keyspace as u64)
        .field_u64("scan_every", cfg.scan_every)
        .field_u64("scan_limit", u64::from(cfg.scan_limit))
        .field_u64("warmup_ms", cfg.warmup.as_millis() as u64)
        .field_u64("window_ms", cfg.window.as_millis() as u64)
        .field_u64("seed", cfg.seed);
    w.key("pipeline_depths").begin_array();
    for d in pipeline_depths {
        w.u64(*d as u64);
    }
    w.end_array().end_object();
    w.key("worker_counts").begin_array();
    for r in rows {
        w.u64(r.workers as u64);
    }
    w.end_array();
    w.key("points").begin_array();
    for r in rows {
        w.begin_object()
            .field_u64("workers", r.workers as u64)
            .field_u64("pipeline", r.pipeline.max(1) as u64);
        if let Some(l) = &r.lock {
            w.key("lock");
            mode_fields(&mut w, l);
        }
        if let Some(g) = &r.gocc {
            w.key("gocc");
            mode_fields(&mut w, g);
        }
        if let Some(s) = r.speedup_pct() {
            w.field_f64("speedup_pct", s);
        }
        w.end_object();
    }
    w.end_array().end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_mode_result(ops: u64, elapsed_ms: u64) -> ModeResult {
        let hist = LatencyHistogram::new();
        for i in 0..100 {
            hist.record(1000 + i * 37);
        }
        ModeResult {
            point: PointResult {
                workers: 2,
                ops,
                elapsed: Duration::from_millis(elapsed_ms),
                latency: hist.snapshot(),
                client_errors: 0,
                server_errors: 1,
                reconnects: 3,
                replays: 2,
                sheds: 0,
                deadline_exceeded: 0,
            },
            stats_raw: r#"{"server":"goccd","mode":"gocc","telemetry":null}"#.to_string(),
        }
    }

    #[test]
    fn sweep_counts_cover_powers_of_two_and_max() {
        assert_eq!(sweep_counts(1), vec![1]);
        assert_eq!(sweep_counts(4), vec![1, 2, 4]);
        assert_eq!(sweep_counts(6), vec![1, 2, 4, 6]);
        assert_eq!(sweep_counts(8), vec![1, 2, 4, 8]);
    }

    #[test]
    fn speedup_sign_convention() {
        let row = SweepRow {
            workers: 2,
            pipeline: 1,
            lock: Some(fake_mode_result(1000, 1000)),
            gocc: Some(fake_mode_result(1500, 1000)),
        };
        assert!((row.speedup_pct().unwrap() - 50.0).abs() < 1e-6);
        let partial = SweepRow {
            workers: 2,
            pipeline: 1,
            lock: None,
            gocc: Some(fake_mode_result(1500, 1000)),
        };
        assert!(partial.speedup_pct().is_none());
    }

    #[test]
    fn artifact_parses_and_nests_server_stats() {
        let cfg = LoadConfig::default();
        let rows = vec![SweepRow {
            workers: 2,
            pipeline: 8,
            lock: Some(fake_mode_result(1000, 1000)),
            gocc: Some(fake_mode_result(2000, 1000)),
        }];
        let json = bench_server_json(&cfg, &[1, 8], &rows);
        let v = JsonValue::parse(&json).expect("artifact parses");
        assert_eq!(v.get("figure").unwrap().as_str(), Some("server"));
        let depths = v.get("config").unwrap().get("pipeline_depths").unwrap();
        assert_eq!(depths.as_array().unwrap().len(), 2);
        let p = &v.get("points").unwrap().as_array().unwrap()[0];
        assert_eq!(p.get("pipeline").unwrap().as_f64(), Some(8.0));
        assert!((p.get("speedup_pct").unwrap().as_f64().unwrap() - 100.0).abs() < 1e-6);
        let gocc = p.get("gocc").unwrap();
        assert_eq!(gocc.get("ops").unwrap().as_f64(), Some(2000.0));
        assert_eq!(
            gocc.get("server_stats")
                .unwrap()
                .get("server")
                .unwrap()
                .as_str(),
            Some("goccd")
        );
        assert!(
            gocc.get("latency")
                .unwrap()
                .get("p99_ns")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0
        );
    }

    #[test]
    fn response_matching_is_strict() {
        assert!(response_matches(
            &Request::Get { key: b"k" },
            &Response::Value {
                found: true,
                value: 1
            }
        ));
        assert!(!response_matches(
            &Request::Get { key: b"k" },
            &Response::Done
        ));
        assert!(!response_matches(
            &Request::Set {
                key: b"k",
                value: 1,
                ttl: 0
            },
            &Response::Bye
        ));
    }
}
