//! Open-loop load generation: arrivals on a fixed schedule, regardless of
//! whether earlier requests have completed.
//!
//! The closed-loop generator in the crate root can never overload a
//! server: each connection waits for its response, so when the server
//! slows down the offered load slows down with it — the classic
//! coordinated-omission trap. Overload protection can only be evaluated
//! under *open-loop* arrivals, where request *n* is due at
//! `start + n / rate` whether or not request *n-1* has been answered, and
//! latency is measured **from the scheduled arrival instant** so queueing
//! delay (client- and server-side) is charged to the request.
//!
//! Each connection runs on one thread with a nonblocking socket: due
//! arrivals are encoded into a pending write buffer, responses are
//! reassembled through [`FrameBuf`] and matched FIFO against the in-flight
//! queue (the server answers every admitted or shed frame in order).
//! Arrivals beyond [`OpenLoopConfig::max_inflight`] are dropped and
//! counted — an open-loop client must bound its own memory too.
//!
//! An optional client-side [`CircuitBreaker`] sheds arrivals locally while
//! the server reports `Overloaded`, modeling the polite client described
//! in `DESIGN.md`.

use std::collections::VecDeque;
use std::io::{self, Read as _, Write as _};
use std::net::{Ipv4Addr, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use gocc_telemetry::{HistogramSnapshot, LatencyHistogram, SplitMix64};
use gocc_wire::{decode_response, encode_request_v2, FrameBuf, Request, Response};

use crate::resilient::{BreakerConfig, CircuitBreaker};
use crate::zipf::Zipf;

/// Open-loop run shape.
#[derive(Clone, Debug)]
pub struct OpenLoopConfig {
    /// Concurrent connections, each with its own arrival schedule.
    pub conns: usize,
    /// Scheduled arrivals per second **per connection**.
    pub rate_per_conn: f64,
    /// Arrivals before this are sent but not measured.
    pub warmup: Duration,
    /// Measured arrival window.
    pub duration: Duration,
    /// Deadline budget stamped on every data request (protocol v2);
    /// `None` sends v2 frames without a deadline field.
    pub deadline_us: Option<u32>,
    /// Fraction of arrivals that are GETs (the rest split into
    /// SET/DEL/INCR at 6:1:1, as in the closed-loop mix; no SCANs — the
    /// open-loop harness measures the cheap-verb path under pressure).
    pub read_frac: f64,
    /// Number of distinct keys.
    pub keyspace: usize,
    /// Zipf skew exponent.
    pub zipf_s: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// In-flight cap per connection; arrivals past it are dropped (and
    /// counted), bounding client memory under saturation.
    pub max_inflight: usize,
    /// Client-side circuit breaker; `None` keeps offering load while the
    /// server sheds (the adversarial client overload tests need).
    pub breaker: Option<BreakerConfig>,
    /// How long after the last scheduled arrival to keep draining
    /// responses before abandoning the remaining in-flight requests.
    pub drain_grace: Duration,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            conns: 4,
            rate_per_conn: 2_000.0,
            warmup: Duration::from_millis(200),
            duration: Duration::from_millis(800),
            deadline_us: None,
            read_frac: 0.9,
            keyspace: 4096,
            zipf_s: 0.99,
            seed: 42,
            max_inflight: 256,
            breaker: None,
            drain_grace: Duration::from_secs(2),
        }
    }
}

/// Aggregated outcome of one open-loop run. Counters cover the measured
/// window only (warmup arrivals are sent and matched but not counted).
#[derive(Clone, Debug)]
pub struct OpenLoopResult {
    /// Connections driven.
    pub conns: usize,
    /// Total target arrival rate (conns × rate_per_conn).
    pub target_rate: f64,
    /// Scheduled arrivals.
    pub offered: u64,
    /// Arrivals actually written to a socket.
    pub sent: u64,
    /// Responses matched to a sent request.
    pub completed: u64,
    /// Completed with the expected data response.
    pub ok: u64,
    /// Completed with `Response::Overloaded` (server shed).
    pub overloaded: u64,
    /// Completed with `Response::DeadlineExceeded`.
    pub deadline_exceeded: u64,
    /// Completed with `Response::Error`.
    pub server_errors: u64,
    /// Requests lost to IO failures / abandoned at drain timeout, plus
    /// protocol violations.
    pub client_errors: u64,
    /// Arrivals dropped at the client because `max_inflight` was reached.
    pub dropped_inflight: u64,
    /// Arrivals dropped client-side by an open circuit breaker.
    pub breaker_dropped: u64,
    /// Times the circuit breaker opened, summed over connections.
    pub breaker_trips: u64,
    /// Scheduled-arrival→response latency of **admitted, OK** requests
    /// (shed and deadline responses are excluded: the gate is on the
    /// latency of work the server accepted).
    pub latency: HistogramSnapshot,
    /// Measured window length.
    pub elapsed: Duration,
}

impl OpenLoopResult {
    /// Completed-OK throughput over the measured window.
    #[must_use]
    pub fn goodput(&self) -> f64 {
        self.ok as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Fraction of measured arrivals the server shed.
    #[must_use]
    pub fn shed_frac(&self) -> f64 {
        self.overloaded as f64 / (self.offered as f64).max(1.0)
    }
}

#[derive(Default)]
struct Tallies {
    offered: AtomicU64,
    sent: AtomicU64,
    completed: AtomicU64,
    ok: AtomicU64,
    overloaded: AtomicU64,
    deadline_exceeded: AtomicU64,
    server_errors: AtomicU64,
    client_errors: AtomicU64,
    dropped_inflight: AtomicU64,
    breaker_dropped: AtomicU64,
    breaker_trips: AtomicU64,
}

/// Expected response shape per request kind, for FIFO matching.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Get,
    Set,
    Del,
    Incr,
}

struct Inflight {
    scheduled: Instant,
    measured: bool,
    kind: Kind,
}

/// Runs one open-loop point against a live server on loopback `port`.
///
/// # Errors
/// Fails only on setup (initial connect); runtime IO failures are counted
/// in [`OpenLoopResult::client_errors`] and the run continues.
pub fn run_open_loop(port: u16, cfg: &OpenLoopConfig) -> io::Result<OpenLoopResult> {
    assert!(cfg.conns >= 1);
    assert!(cfg.rate_per_conn > 0.0);
    assert!(cfg.max_inflight >= 1);
    let zipf = Zipf::new(cfg.keyspace, cfg.zipf_s);
    let tallies = Tallies::default();
    let hist = LatencyHistogram::new();
    let start = Instant::now() + Duration::from_millis(10);

    std::thread::scope(|s| {
        for c in 0..cfg.conns {
            let (zipf, tallies, hist) = (&zipf, &tallies, &hist);
            let cfg = cfg.clone();
            s.spawn(move || {
                let seed = cfg.seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                drive_open(port, &cfg, zipf, seed, start, tallies, hist);
            });
        }
    });

    Ok(OpenLoopResult {
        conns: cfg.conns,
        target_rate: cfg.conns as f64 * cfg.rate_per_conn,
        offered: tallies.offered.load(Ordering::SeqCst),
        sent: tallies.sent.load(Ordering::SeqCst),
        completed: tallies.completed.load(Ordering::SeqCst),
        ok: tallies.ok.load(Ordering::SeqCst),
        overloaded: tallies.overloaded.load(Ordering::SeqCst),
        deadline_exceeded: tallies.deadline_exceeded.load(Ordering::SeqCst),
        server_errors: tallies.server_errors.load(Ordering::SeqCst),
        client_errors: tallies.client_errors.load(Ordering::SeqCst),
        dropped_inflight: tallies.dropped_inflight.load(Ordering::SeqCst),
        breaker_dropped: tallies.breaker_dropped.load(Ordering::SeqCst),
        breaker_trips: tallies.breaker_trips.load(Ordering::SeqCst),
        latency: hist.snapshot(),
        elapsed: cfg.duration,
    })
}

fn connect(port: u16) -> io::Result<TcpStream> {
    let addr = SocketAddr::from((Ipv4Addr::LOCALHOST, port));
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_nodelay(true)?;
    stream.set_nonblocking(true)?;
    Ok(stream)
}

/// One connection's open loop. Arrival *n* is due at
/// `start + n / rate`; the loop never waits for a response to schedule
/// the next arrival.
#[allow(clippy::too_many_lines)]
fn drive_open(
    port: u16,
    cfg: &OpenLoopConfig,
    zipf: &Zipf,
    seed: u64,
    start: Instant,
    tallies: &Tallies,
    hist: &LatencyHistogram,
) {
    let Ok(mut stream) = connect(port) else {
        tallies.client_errors.fetch_add(1, Ordering::Relaxed);
        return;
    };
    let mut rng = SplitMix64::new(seed);
    let mut breaker = cfg.breaker.map(CircuitBreaker::new);
    let interval = Duration::from_secs_f64(1.0 / cfg.rate_per_conn);
    let measure_at = start + cfg.warmup;
    let last_arrival = measure_at + cfg.duration;
    let drain_by = last_arrival + cfg.drain_grace;

    let mut inflight: VecDeque<Inflight> = VecDeque::new();
    let mut outbuf: Vec<u8> = Vec::new();
    let mut framebuf = FrameBuf::new();
    let mut readbuf = [0u8; 16 * 1024];
    let mut keybuf = String::new();
    let mut n: u64 = 0;

    loop {
        let now = Instant::now();
        let next_due = start + interval.mul_f64(n as f64);
        let arrivals_done = next_due >= last_arrival;
        if arrivals_done && inflight.is_empty() && outbuf.is_empty() {
            break;
        }
        if now >= drain_by {
            // Whatever the server still owes us is lost to the run.
            tallies
                .client_errors
                .fetch_add(inflight.len() as u64, Ordering::Relaxed);
            break;
        }

        // Schedule every arrival that is due, waiting for nothing.
        while !arrivals_done && start + interval.mul_f64(n as f64) <= now {
            let due = start + interval.mul_f64(n as f64);
            n += 1;
            let measured = due >= measure_at && due < last_arrival;
            if measured {
                tallies.offered.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(b) = breaker.as_mut() {
                if !b.permit() {
                    if measured {
                        tallies.breaker_dropped.fetch_add(1, Ordering::Relaxed);
                    }
                    continue;
                }
            }
            if inflight.len() >= cfg.max_inflight {
                if measured {
                    tallies.dropped_inflight.fetch_add(1, Ordering::Relaxed);
                }
                continue;
            }
            use std::fmt::Write as _;
            keybuf.clear();
            let _ = write!(keybuf, "key-{}", zipf.sample(&mut rng));
            let (req, kind) = if rng.chance(cfg.read_frac) {
                (
                    Request::Get {
                        key: keybuf.as_bytes(),
                    },
                    Kind::Get,
                )
            } else {
                match rng.below(8) {
                    0 => (
                        Request::Del {
                            key: keybuf.as_bytes(),
                        },
                        Kind::Del,
                    ),
                    1 => (
                        Request::Incr {
                            key: keybuf.as_bytes(),
                            delta: 1,
                        },
                        Kind::Incr,
                    ),
                    _ => (
                        Request::Set {
                            key: keybuf.as_bytes(),
                            value: rng.next_u64(),
                            ttl: 0,
                        },
                        Kind::Set,
                    ),
                }
            };
            encode_request_v2(&req, cfg.deadline_us, &mut outbuf);
            inflight.push_back(Inflight {
                scheduled: due,
                measured,
                kind,
            });
            if measured {
                tallies.sent.fetch_add(1, Ordering::Relaxed);
            }
        }

        // Flush as much of the pending writes as the socket will take.
        let mut io_failed = false;
        while !outbuf.is_empty() {
            match stream.write(&outbuf) {
                Ok(0) => {
                    io_failed = true;
                    break;
                }
                Ok(k) => {
                    outbuf.drain(..k);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    io_failed = true;
                    break;
                }
            }
        }

        // Drain whatever responses have arrived.
        if !io_failed {
            loop {
                match stream.read(&mut readbuf) {
                    Ok(0) => {
                        io_failed = true;
                        break;
                    }
                    Ok(k) => {
                        framebuf.extend(&readbuf[..k]);
                        if !drain_frames(&mut framebuf, &mut inflight, tallies, hist, &mut breaker)
                        {
                            io_failed = true;
                        }
                        if io_failed || k < readbuf.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        io_failed = true;
                        break;
                    }
                }
            }
        }

        if io_failed {
            // The connection is gone: every in-flight request with it.
            let lost = inflight.iter().filter(|f| f.measured).count() as u64;
            tallies.client_errors.fetch_add(lost, Ordering::Relaxed);
            inflight.clear();
            outbuf.clear();
            framebuf = FrameBuf::new();
            match connect(port) {
                Ok(s) => stream = s,
                Err(_) => {
                    tallies.client_errors.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }

        // Sleep until the next scheduled arrival, but keep polling the
        // socket often enough that responses drain promptly.
        let next_due = start + interval.mul_f64(n as f64);
        let now = Instant::now();
        let until_due = if arrivals_done {
            Duration::from_micros(200)
        } else {
            next_due.saturating_duration_since(now)
        };
        let nap = until_due.min(Duration::from_micros(500));
        if !nap.is_zero() {
            std::thread::sleep(nap);
        }
    }

    if let Some(b) = breaker {
        tallies
            .breaker_trips
            .fetch_add(b.trips(), Ordering::Relaxed);
    }
}

/// Decodes every complete frame in `framebuf`, matching FIFO against
/// `inflight`. Returns `false` on a protocol violation (which the caller
/// treats like an IO failure: reconnect).
fn drain_frames(
    framebuf: &mut FrameBuf,
    inflight: &mut VecDeque<Inflight>,
    tallies: &Tallies,
    hist: &LatencyHistogram,
    breaker: &mut Option<CircuitBreaker>,
) -> bool {
    loop {
        let frame = match framebuf.next_frame() {
            Ok(Some(f)) => f,
            Ok(None) => return true,
            Err(_) => return false,
        };
        let Ok(resp) = decode_response(frame) else {
            return false;
        };
        let Some(f) = inflight.pop_front() else {
            // A response nobody asked for.
            return false;
        };
        if f.measured {
            tallies.completed.fetch_add(1, Ordering::Relaxed);
        }
        let mut success = true;
        match resp {
            Response::Overloaded { .. } => {
                success = false;
                if f.measured {
                    tallies.overloaded.fetch_add(1, Ordering::Relaxed);
                }
            }
            Response::DeadlineExceeded => {
                if f.measured {
                    tallies.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                }
            }
            Response::Error { .. } => {
                if f.measured {
                    tallies.server_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            ref r if kind_matches(f.kind, r) => {
                if f.measured {
                    tallies.ok.fetch_add(1, Ordering::Relaxed);
                    let ns = f.scheduled.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                    hist.record(ns);
                }
            }
            _ => return false,
        }
        if let Some(b) = breaker.as_mut() {
            if success {
                b.on_success();
            } else {
                b.on_overloaded();
            }
        }
    }
}

fn kind_matches(kind: Kind, resp: &Response<'_>) -> bool {
    matches!(
        (kind, resp),
        (Kind::Get, Response::Value { .. })
            | (Kind::Set, Response::Done)
            | (Kind::Del, Response::Deleted { .. })
            | (Kind::Incr, Response::Counter { .. })
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gocc_server::{spawn, Mode, ServerConfig};

    #[test]
    fn open_loop_completes_against_a_live_server() {
        gocc_gosync::set_procs(8);
        let handle = spawn(ServerConfig {
            mode: Mode::Gocc,
            port: 0,
            workers: 2,
            shards: 2,
            capacity_per_shard: 4096,
            ..ServerConfig::default()
        })
        .expect("spawn");
        let cfg = OpenLoopConfig {
            conns: 2,
            rate_per_conn: 500.0,
            warmup: Duration::from_millis(50),
            duration: Duration::from_millis(300),
            deadline_us: Some(1_000_000),
            ..OpenLoopConfig::default()
        };
        let r = run_open_loop(handle.port(), &cfg).expect("run");
        assert!(r.offered > 0, "{r:?}");
        assert!(r.ok > 0, "{r:?}");
        assert_eq!(r.client_errors, 0, "{r:?}");
        assert_eq!(r.server_errors, 0, "{r:?}");
        // Everything sent was answered: completion accounting balances.
        assert_eq!(r.completed, r.sent, "{r:?}");
        assert!(r.latency.count > 0);
        handle.request_shutdown();
        let _ = handle.join();
    }

    #[test]
    fn breaker_sheds_client_side_when_server_is_pinned_shedding() {
        gocc_gosync::set_procs(8);
        let mut scfg = ServerConfig {
            mode: Mode::Gocc,
            port: 0,
            workers: 1,
            shards: 2,
            capacity_per_shard: 1024,
            ..ServerConfig::default()
        };
        // Pin the server in Shedding: every write is answered Overloaded.
        scfg.brownout.recover_obs = u32::MAX;
        let handle = spawn(scfg).expect("spawn");
        handle.state().brownout().observe(1e18, 1e18);
        handle.state().brownout().observe(1e18, 1e18);
        let cfg = OpenLoopConfig {
            conns: 1,
            rate_per_conn: 800.0,
            warmup: Duration::from_millis(20),
            duration: Duration::from_millis(400),
            read_frac: 0.0, // all writes → all shed
            breaker: Some(BreakerConfig {
                open_after: 3,
                cooldown: Duration::from_millis(30),
            }),
            ..OpenLoopConfig::default()
        };
        let r = run_open_loop(handle.port(), &cfg).expect("run");
        assert!(r.overloaded > 0, "server must shed writes: {r:?}");
        assert!(r.breaker_trips >= 1, "breaker must open: {r:?}");
        assert!(
            r.breaker_dropped > 0,
            "an open breaker must shed arrivals client-side: {r:?}"
        );
        handle.request_shutdown();
        let _ = handle.join();
    }
}
