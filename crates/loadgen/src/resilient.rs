//! Client-side resilience: bounded connects, seeded exponential backoff,
//! and reconnect-with-replay.
//!
//! The load generator's original client treated any I/O hiccup as the end
//! of its connection's life. Under transport fault injection (or a
//! restarting server) that conflates *chaos* with *failure*. This module
//! provides the degradation contract instead:
//!
//! * **Connects are bounded**: [`connect_with_retry`] uses
//!   `TcpStream::connect_timeout` and a capped number of attempts, so a
//!   dead daemon fails fast instead of hanging a script.
//! * **Backoff is seeded**: retry delays are exponential with jitter drawn
//!   from a [`SplitMix64`], so a given client's retry schedule is a pure
//!   function of its seed (replay-by-seed, same contract as the fault
//!   plans in `gocc-faultplane`).
//! * **Replay is caller-controlled**: [`ResilientClient::call`] replays a
//!   request over a fresh connection after an I/O failure — safe for the
//!   idempotent verbs (GET/SET/DEL/SCAN/STATS). INCR is *not* replay-safe
//!   (a lost response leaves the increment's fate unknown), so callers
//!   route it through [`ResilientClient::call_no_replay`].
//! * **Failures are classified**: `ConnectionRefused` means nothing is
//!   listening — the daemon is dead, not busy — so connects give up after
//!   [`ClientConfig::refused_attempts`] instead of burning the full
//!   backoff schedule reserved for transient errors (timeouts, resets).
//! * **Overload is not a fault**: a [`CircuitBreaker`] tracks consecutive
//!   `Overloaded` responses and opens after
//!   [`BreakerConfig::open_after`] of them; while open, the client sheds
//!   its own arrivals locally (costing the server nothing) until a
//!   cooldown expires and a half-open probe closes the breaker again.

use std::io;
use std::net::{Ipv4Addr, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use gocc_telemetry::SplitMix64;
use gocc_wire::{encode_request, read_frame, write_frame, Request};

/// Resilience knobs for one client connection.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Per-attempt TCP connect timeout.
    pub connect_timeout: Duration,
    /// Socket read timeout (a stalled server surfaces as an error the
    /// replay path handles, never a hang).
    pub read_timeout: Duration,
    /// Connect attempts before giving up (≥ 1). Applies to *transient*
    /// failures (timeouts, resets) — a refused connection gives up after
    /// [`ClientConfig::refused_attempts`] instead.
    pub connect_attempts: u32,
    /// Connect attempts when the failure is `ConnectionRefused`: nothing
    /// is listening, so retrying the full schedule only delays the
    /// inevitable (≥ 1).
    pub refused_attempts: u32,
    /// First backoff delay; doubles per failed attempt.
    pub backoff_base: Duration,
    /// Ceiling on any single backoff delay.
    pub backoff_cap: Duration,
    /// Send attempts per [`ResilientClient::call`] (≥ 1); each failure
    /// costs a reconnect.
    pub replay_attempts: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(10),
            connect_attempts: 3,
            refused_attempts: 2,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(250),
            replay_attempts: 8,
        }
    }
}

impl ClientConfig {
    /// A profile for fault-heavy runs: patient on replays, snappy on
    /// timeouts (injected stalls should cost milliseconds, not seconds).
    #[must_use]
    pub fn chaos() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(2),
            connect_attempts: 5,
            refused_attempts: 2,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(50),
            replay_attempts: 20,
        }
    }
}

/// Exponential backoff with equal jitter: `d/2 + uniform(0, d/2)` where
/// `d = min(cap, base << attempt)`.
fn backoff_delay(cfg: &ClientConfig, attempt: u32, rng: &mut SplitMix64) -> Duration {
    let base = cfg.backoff_base.as_nanos().max(1) as u64;
    let exp = base.saturating_mul(1u64 << attempt.min(20));
    let capped = exp.min(cfg.backoff_cap.as_nanos().max(1) as u64);
    let half = capped / 2;
    Duration::from_nanos(half + rng.below(half.max(1)))
}

/// The bounded, classified retry loop, generic over the connect attempt
/// so the classification is unit-testable without sockets. Returns the
/// final result and the number of attempts actually made.
///
/// `ConnectionRefused` counts against [`ClientConfig::refused_attempts`]
/// (the daemon is dead — fail fast); every other error burns the full
/// [`ClientConfig::connect_attempts`] backoff schedule.
fn connect_loop<T>(
    cfg: &ClientConfig,
    rng: &mut SplitMix64,
    mut connect: impl FnMut() -> io::Result<T>,
) -> (io::Result<T>, u32) {
    let mut last: Option<io::Error> = None;
    let mut refused = 0u32;
    let mut attempts = 0u32;
    for attempt in 0..cfg.connect_attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(backoff_delay(cfg, attempt - 1, rng));
        }
        attempts += 1;
        match connect() {
            Ok(v) => return (Ok(v), attempts),
            Err(e) => {
                if e.kind() == io::ErrorKind::ConnectionRefused {
                    refused += 1;
                    if refused >= cfg.refused_attempts.max(1) {
                        return (Err(e), attempts);
                    }
                }
                last = Some(e);
            }
        }
    }
    (
        Err(last.unwrap_or_else(|| io::Error::other("zero connect attempts configured"))),
        attempts,
    )
}

/// Connects to `127.0.0.1:port` with per-attempt timeout and bounded,
/// backoff-spaced retries. A dead daemon (connection refused) fails after
/// [`ClientConfig::refused_attempts`]; transient failures get the full
/// schedule — at worst `connect_attempts × connect_timeout`, never a hang.
pub fn connect_with_retry(
    port: u16,
    cfg: &ClientConfig,
    rng: &mut SplitMix64,
) -> io::Result<TcpStream> {
    let addr = SocketAddr::from((Ipv4Addr::LOCALHOST, port));
    let (result, _) = connect_loop(cfg, rng, || {
        let stream = TcpStream::connect_timeout(&addr, cfg.connect_timeout)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(cfg.read_timeout))?;
        Ok(stream)
    });
    result
}

/// Circuit-breaker state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow normally.
    Closed,
    /// Requests are shed client-side until the cooldown expires.
    Open,
    /// One probe is in flight; its outcome decides Open vs Closed.
    HalfOpen,
}

/// Circuit-breaker thresholds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive `Overloaded` responses that open the breaker (≥ 1).
    pub open_after: u32,
    /// How long the breaker stays open before permitting one half-open
    /// probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            open_after: 5,
            cooldown: Duration::from_millis(200),
        }
    }
}

/// A client-side circuit breaker keyed on the server's `Overloaded`
/// responses.
///
/// The feedback loop: an overloaded server sheds cheaply but still pays
/// *something* per rejection, so a polite client stops sending once the
/// pattern is unambiguous. [`CircuitBreaker::permit`] gates each send;
/// the caller reports outcomes via [`CircuitBreaker::on_overloaded`] /
/// [`CircuitBreaker::on_success`]. After `open_after` consecutive
/// rejections the breaker opens; once [`BreakerConfig::cooldown`] passes,
/// exactly one probe is permitted (half-open) and its outcome either
/// closes or re-opens the breaker.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_overloaded: u32,
    opened_at: Option<Instant>,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker.
    #[must_use]
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_overloaded: 0,
            opened_at: None,
            trips: 0,
        }
    }

    /// Current state (recomputed lazily on [`CircuitBreaker::permit`]).
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has opened.
    #[must_use]
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Whether a request may be sent now. While open, returns `false`
    /// until the cooldown expires, then transitions to half-open and
    /// permits exactly one probe.
    pub fn permit(&mut self) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => false,
            BreakerState::Open => {
                let cooled = self
                    .opened_at
                    .is_none_or(|t| t.elapsed() >= self.cfg.cooldown);
                if cooled {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Reports an `Overloaded` response for a permitted request.
    pub fn on_overloaded(&mut self) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_overloaded += 1;
                if self.consecutive_overloaded >= self.cfg.open_after.max(1) {
                    self.open();
                }
            }
            BreakerState::HalfOpen => self.open(),
            BreakerState::Open => {}
        }
    }

    /// Reports any non-`Overloaded` response for a permitted request.
    pub fn on_success(&mut self) {
        self.consecutive_overloaded = 0;
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
            self.opened_at = None;
        }
    }

    fn open(&mut self) {
        self.state = BreakerState::Open;
        self.opened_at = Some(Instant::now());
        self.consecutive_overloaded = 0;
        self.trips += 1;
    }
}

/// A request/response client that survives connection loss.
///
/// The connection is established lazily and re-established after any I/O
/// failure. [`ResilientClient::reconnects`] and
/// [`ResilientClient::replays`] expose how much resilience a run actually
/// consumed — chaos tests assert these are nonzero (faults really landed)
/// while correctness stays perfect.
pub struct ResilientClient {
    port: u16,
    cfg: ClientConfig,
    rng: SplitMix64,
    stream: Option<TcpStream>,
    wirebuf: Vec<u8>,
    reconnects: u64,
    replays: u64,
}

impl ResilientClient {
    /// A client for `127.0.0.1:port`; `seed` drives its backoff jitter.
    #[must_use]
    pub fn new(port: u16, cfg: ClientConfig, seed: u64) -> Self {
        ResilientClient {
            port,
            cfg,
            rng: SplitMix64::new(seed),
            stream: None,
            wirebuf: Vec::new(),
            reconnects: 0,
            replays: 0,
        }
    }

    /// Times a connection was re-established after an I/O failure.
    #[must_use]
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Times a request was re-sent after a failed attempt.
    #[must_use]
    pub fn replays(&self) -> u64 {
        self.replays
    }

    /// Sends `req` and reads its response body into `resp`, replaying
    /// over fresh connections on failure (up to
    /// [`ClientConfig::replay_attempts`]). Only call this for idempotent
    /// requests.
    pub fn call(&mut self, req: &Request<'_>, resp: &mut Vec<u8>) -> io::Result<()> {
        self.call_inner(req, resp, self.cfg.replay_attempts.max(1))
    }

    /// Sends `req` exactly once. On failure the connection is dropped
    /// (the next call reconnects) and the error is returned — the verb's
    /// effect on the server is unknown, which is why INCR goes here.
    pub fn call_no_replay(&mut self, req: &Request<'_>, resp: &mut Vec<u8>) -> io::Result<()> {
        self.call_inner(req, resp, 1)
    }

    /// Sends every request in `reqs` as one pipelined burst (all frames
    /// written before any response is read) and collects the response
    /// bodies in order into `resps`.
    ///
    /// Replay is all-or-nothing: after an I/O failure the *whole batch*
    /// is re-sent over a fresh connection, so a batch containing INCR is
    /// sent exactly once (any failure surfaces as the error, same
    /// contract as [`ResilientClient::call_no_replay`]).
    pub fn call_pipelined(
        &mut self,
        reqs: &[Request<'_>],
        resps: &mut Vec<Vec<u8>>,
    ) -> io::Result<()> {
        self.wirebuf.clear();
        for req in reqs {
            encode_request(req, &mut self.wirebuf);
        }
        let replay_safe = !reqs.iter().any(|r| matches!(r, Request::Incr { .. }));
        let attempts = if replay_safe {
            self.cfg.replay_attempts.max(1)
        } else {
            1
        };
        let mut last: Option<io::Error> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.replays += 1;
            }
            match self.attempt_batch(reqs.len(), resps) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    if self.stream.take().is_some() {
                        self.reconnects += 1;
                    }
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or_else(|| io::Error::other("empty batch")))
    }

    fn attempt_batch(&mut self, n: usize, resps: &mut Vec<Vec<u8>>) -> io::Result<()> {
        resps.clear();
        if self.stream.is_none() {
            self.stream = Some(connect_with_retry(self.port, &self.cfg, &mut self.rng)?);
        }
        let stream = self.stream.as_mut().expect("just ensured");
        write_frame(stream, &self.wirebuf)?;
        for _ in 0..n {
            let mut body = Vec::new();
            if !read_frame(stream, &mut body)? {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "server closed mid-batch",
                ));
            }
            resps.push(body);
        }
        Ok(())
    }

    fn call_inner(
        &mut self,
        req: &Request<'_>,
        resp: &mut Vec<u8>,
        attempts: u32,
    ) -> io::Result<()> {
        self.wirebuf.clear();
        encode_request(req, &mut self.wirebuf);
        let mut last: Option<io::Error> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.replays += 1;
            }
            match self.attempt_once(resp) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    // Whatever went wrong, the stream's framing state is
                    // suspect; reconnect before any retry.
                    if self.stream.take().is_some() {
                        self.reconnects += 1;
                    }
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or_else(|| io::Error::other("zero attempts configured")))
    }

    fn attempt_once(&mut self, resp: &mut Vec<u8>) -> io::Result<()> {
        if self.stream.is_none() {
            self.stream = Some(connect_with_retry(self.port, &self.cfg, &mut self.rng)?);
        }
        let stream = self.stream.as_mut().expect("just ensured");
        write_frame(stream, &self.wirebuf)?;
        if !read_frame(stream, resp)? {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "server closed before responding",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gocc_wire::{decode_request, decode_response, encode_response, Response};
    use std::io::Write as _;
    use std::net::TcpListener;
    use std::time::Instant;

    fn free_port() -> u16 {
        // Bind-then-drop: the port is free again immediately after.
        TcpListener::bind((Ipv4Addr::LOCALHOST, 0))
            .unwrap()
            .local_addr()
            .unwrap()
            .port()
    }

    #[test]
    fn dead_daemon_fails_fast() {
        let port = free_port();
        let cfg = ClientConfig {
            connect_timeout: Duration::from_millis(200),
            connect_attempts: 3,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(5),
            ..ClientConfig::default()
        };
        let t0 = Instant::now();
        let err = connect_with_retry(port, &cfg, &mut SplitMix64::new(1));
        assert!(err.is_err(), "nothing is listening on {port}");
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "bounded retries must fail fast, took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn backoff_is_seeded_and_capped() {
        let cfg = ClientConfig {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(40),
            ..ClientConfig::default()
        };
        let series = |seed: u64| -> Vec<Duration> {
            let mut rng = SplitMix64::new(seed);
            (0..8).map(|a| backoff_delay(&cfg, a, &mut rng)).collect()
        };
        assert_eq!(series(7), series(7), "same seed, same schedule");
        assert_ne!(series(7), series(8), "different seeds diverge");
        for d in series(7) {
            assert!(d >= Duration::from_millis(2), "equal jitter keeps a floor");
            assert!(d <= Duration::from_millis(40), "cap respected: {d:?}");
        }
    }

    /// A one-request server: optionally drops the first `flaky` requests
    /// mid-exchange (read then close, no response), then serves `Done`.
    fn flaky_server(flaky: usize, total: usize) -> (u16, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let port = listener.local_addr().unwrap().port();
        let handle = std::thread::spawn(move || {
            for i in 0..total {
                let (mut s, _) = listener.accept().unwrap();
                let mut body = Vec::new();
                let got = read_frame(&mut s, &mut body).unwrap_or(false);
                if i < flaky {
                    drop(s); // mid-exchange hangup: the client must replay
                    continue;
                }
                assert!(got, "request must arrive intact");
                assert!(decode_request(&body).is_ok());
                let mut out = Vec::new();
                encode_response(&Response::Done, &mut out);
                s.write_all(&out).unwrap();
            }
        });
        (port, handle)
    }

    #[test]
    fn replay_survives_midexchange_hangups() {
        let (port, server) = flaky_server(2, 3);
        let mut client = ResilientClient::new(port, ClientConfig::chaos(), 5);
        let mut resp = Vec::new();
        client
            .call(
                &Request::Set {
                    key: b"k",
                    value: 1,
                    ttl: 0,
                },
                &mut resp,
            )
            .expect("replay must eventually land");
        assert_eq!(decode_response(&resp).unwrap(), Response::Done);
        assert_eq!(client.replays(), 2, "two hangups, two replays");
        assert_eq!(client.reconnects(), 2);
        server.join().unwrap();
    }

    #[test]
    fn no_replay_reports_the_failure_and_recovers() {
        let (port, server) = flaky_server(1, 2);
        let mut client = ResilientClient::new(port, ClientConfig::chaos(), 6);
        let mut resp = Vec::new();
        let req = Request::Incr {
            key: b"ctr",
            delta: 1,
        };
        // First attempt dies mid-exchange; INCR must NOT be replayed.
        assert!(client.call_no_replay(&req, &mut resp).is_err());
        assert_eq!(client.replays(), 0, "INCR is never replayed");
        // The client recovers on the next call over a fresh connection.
        client.call_no_replay(&req, &mut resp).expect("recovered");
        assert_eq!(decode_response(&resp).unwrap(), Response::Done);
        assert_eq!(client.reconnects(), 1);
        server.join().unwrap();
    }

    #[test]
    fn pipelined_batch_replays_whole_batch_after_hangup() {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let port = listener.local_addr().unwrap().port();
        let server = std::thread::spawn(move || {
            // First connection: swallow one frame, then hang up mid-batch.
            let (mut s, _) = listener.accept().unwrap();
            let mut body = Vec::new();
            let _ = read_frame(&mut s, &mut body);
            drop(s);
            // Second connection: serve the replayed batch in full.
            let (mut s, _) = listener.accept().unwrap();
            for _ in 0..3 {
                assert!(read_frame(&mut s, &mut body).unwrap());
                assert!(decode_request(&body).is_ok());
                let mut out = Vec::new();
                encode_response(&Response::Done, &mut out);
                s.write_all(&out).unwrap();
            }
        });
        let mut client = ResilientClient::new(port, ClientConfig::chaos(), 9);
        let reqs = [
            Request::Set {
                key: b"a",
                value: 1,
                ttl: 0,
            },
            Request::Del { key: b"b" },
            Request::Set {
                key: b"c",
                value: 3,
                ttl: 0,
            },
        ];
        let mut resps = Vec::new();
        client
            .call_pipelined(&reqs, &mut resps)
            .expect("batch replay must land");
        assert_eq!(resps.len(), 3, "one response per request, in order");
        for body in &resps {
            assert_eq!(decode_response(body).unwrap(), Response::Done);
        }
        assert_eq!(client.replays(), 1, "whole batch replayed once");
        server.join().unwrap();
    }

    #[test]
    fn pipelined_batch_with_incr_is_never_replayed() {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let port = listener.local_addr().unwrap().port();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut body = Vec::new();
            let _ = read_frame(&mut s, &mut body);
            drop(s); // mid-batch hangup; the INCR's fate is unknown
        });
        let mut client = ResilientClient::new(port, ClientConfig::chaos(), 10);
        let reqs = [
            Request::Set {
                key: b"a",
                value: 1,
                ttl: 0,
            },
            Request::Incr {
                key: b"ctr",
                delta: 1,
            },
        ];
        let mut resps = Vec::new();
        assert!(client.call_pipelined(&reqs, &mut resps).is_err());
        assert_eq!(client.replays(), 0, "a batch containing INCR sends once");
        server.join().unwrap();
    }

    /// A fast-retry config so the classification tests measure attempts,
    /// not wall-clock.
    fn retry_cfg() -> ClientConfig {
        ClientConfig {
            connect_attempts: 6,
            refused_attempts: 2,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
            ..ClientConfig::default()
        }
    }

    #[test]
    fn connection_refused_fails_after_refused_attempts() {
        let cfg = retry_cfg();
        let mut rng = SplitMix64::new(3);
        let (result, attempts) = connect_loop::<()>(&cfg, &mut rng, || {
            Err(io::Error::new(io::ErrorKind::ConnectionRefused, "refused"))
        });
        let err = result.unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        assert_eq!(
            attempts, 2,
            "a dead daemon must not burn the full backoff schedule"
        );
    }

    #[test]
    fn transient_errors_get_the_full_schedule() {
        let cfg = retry_cfg();
        let mut rng = SplitMix64::new(4);
        let (result, attempts) = connect_loop::<()>(&cfg, &mut rng, || {
            Err(io::Error::new(io::ErrorKind::TimedOut, "timeout"))
        });
        assert_eq!(result.unwrap_err().kind(), io::ErrorKind::TimedOut);
        assert_eq!(attempts, 6, "transient failures retry the full schedule");
    }

    #[test]
    fn transient_then_success_connects() {
        let cfg = retry_cfg();
        let mut rng = SplitMix64::new(5);
        let mut calls = 0u32;
        let (result, attempts) = connect_loop(&cfg, &mut rng, || {
            calls += 1;
            if calls < 4 {
                Err(io::Error::new(io::ErrorKind::TimedOut, "timeout"))
            } else {
                Ok(calls)
            }
        });
        assert_eq!(result.unwrap(), 4);
        assert_eq!(attempts, 4);
    }

    #[test]
    fn one_refusal_below_the_limit_still_recovers() {
        // One refusal (below refused_attempts = 2) sprinkled among
        // transient errors must not abort the schedule.
        let cfg = retry_cfg();
        let mut rng = SplitMix64::new(6);
        let mut calls = 0u32;
        let (result, attempts) = connect_loop(&cfg, &mut rng, || {
            calls += 1;
            match calls {
                1 => Err(io::Error::new(io::ErrorKind::TimedOut, "timeout")),
                2 => Err(io::Error::new(io::ErrorKind::ConnectionRefused, "refused")),
                _ => Ok(calls),
            }
        });
        assert_eq!(result.unwrap(), 3);
        assert_eq!(attempts, 3);
    }

    #[test]
    fn breaker_opens_after_consecutive_overloads_only() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            open_after: 3,
            cooldown: Duration::from_millis(50),
        });
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_overloaded();
        b.on_overloaded();
        // A success breaks the streak: the counter must reset.
        b.on_success();
        b.on_overloaded();
        b.on_overloaded();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.permit());
        b.on_overloaded();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        assert!(!b.permit(), "an open breaker sheds client-side");
    }

    #[test]
    fn breaker_half_open_probe_closes_on_success() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            open_after: 1,
            cooldown: Duration::from_millis(10),
        });
        b.on_overloaded();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.permit(), "cooldown not yet elapsed");
        std::thread::sleep(Duration::from_millis(15));
        assert!(b.permit(), "cooldown elapsed: one probe is permitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.permit(), "only ONE probe while half-open");
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.permit());
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn breaker_half_open_probe_reopens_on_overload() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            open_after: 1,
            cooldown: Duration::from_millis(5),
        });
        b.on_overloaded();
        std::thread::sleep(Duration::from_millis(10));
        assert!(b.permit());
        b.on_overloaded();
        assert_eq!(b.state(), BreakerState::Open, "failed probe re-opens");
        assert_eq!(b.trips(), 2);
        assert!(!b.permit(), "fresh cooldown after the failed probe");
    }
}
