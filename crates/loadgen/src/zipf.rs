//! Seeded, deterministic Zipf key sampling.
//!
//! Real cache traffic is skewed: a handful of hot keys absorb most
//! operations. The generator draws ranks from a Zipf(s) distribution over
//! `n` keys via an explicit normalized CDF and binary search — O(n) setup,
//! O(log n) per sample, bit-for-bit deterministic for a given seed, and
//! `s = 0` degrades to uniform.

use gocc_telemetry::SplitMix64;

/// A Zipf(s) sampler over ranks `0..n` (rank 0 is the hottest key).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler. `n` must be non-zero; `s` is the skew exponent
    /// (`0.99` is the classic YCSB setting, `0.0` is uniform).
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "empty key space");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    #[must_use]
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws one rank in `0..n`.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        // 53 random mantissa bits → uniform in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        // First rank whose CDF entry exceeds u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).unwrap_or(std::cmp::Ordering::Greater))
        {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let z = Zipf::new(1000, 0.99);
        let a: Vec<usize> = {
            let mut rng = SplitMix64::new(7);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = SplitMix64::new(7);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn skew_concentrates_on_low_ranks() {
        let z = Zipf::new(1024, 0.99);
        let mut rng = SplitMix64::new(42);
        let mut hits = vec![0u64; 1024];
        for _ in 0..100_000 {
            hits[z.sample(&mut rng)] += 1;
        }
        assert!(hits[0] > hits[100] && hits[0] > hits[1023]);
        // Top 10% of keys should absorb well over half the traffic at
        // s≈1 (the analytic share is ~78% for n=1024).
        let head: u64 = hits[..102].iter().sum();
        assert!(head > 60_000, "head share too small: {head}");
    }

    #[test]
    fn zero_skew_is_roughly_uniform() {
        let z = Zipf::new(64, 0.0);
        let mut rng = SplitMix64::new(3);
        let mut hits = vec![0u64; 64];
        for _ in 0..64_000 {
            hits[z.sample(&mut rng)] += 1;
        }
        for (rank, &h) in hits.iter().enumerate() {
            assert!(
                (600..1400).contains(&h),
                "rank {rank} count {h} far from uniform 1000"
            );
        }
    }

    #[test]
    fn samples_stay_in_range() {
        for n in [1usize, 2, 7, 100] {
            let z = Zipf::new(n, 1.2);
            let mut rng = SplitMix64::new(9);
            for _ in 0..1000 {
                assert!(z.sample(&mut rng) < n);
            }
        }
    }
}
