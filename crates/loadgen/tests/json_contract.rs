//! Writer↔parser contract: everything `JsonWriter` can emit must come
//! back identical through the same parser `fetch_stats` (and the TRACE
//! path) uses. The trace export serializes abort-cause names, adversarial
//! keys and nested span objects through this exact pair, so the contract
//! is pinned here with seeded proptest-style loops: deterministic,
//! reproducible from the printed seed, no external generator crate.

use std::collections::BTreeMap;

use gocc_loadgen::StatsDoc;
use gocc_telemetry::{JsonValue, JsonWriter, SplitMix64};

/// Characters chosen to hit every escaping branch: the two mandatory
/// escapes, the named control escapes, raw control bytes (`\u` escapes),
/// DEL, multi-byte UTF-8, an astral-plane scalar, and the line/paragraph
/// separators some serializers mishandle.
const CHARSET: &[char] = &[
    'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\t', '\r', '\u{0}', '\u{8}', '\u{c}', '\u{1f}',
    '\u{7f}', 'é', 'ß', '日', '🚀', '\u{2028}', '\u{2029}',
];

fn random_string(rng: &mut SplitMix64) -> String {
    let len = rng.below(24) as usize;
    (0..len)
        .map(|_| CHARSET[rng.below(CHARSET.len() as u64) as usize])
        .collect()
}

/// A random JSON value, depth-bounded. Numbers are multiples of 1/8 (or
/// integers) so the writer's fixed 3-decimal float rendering is exact and
/// the round-trip can demand full equality.
fn random_value(rng: &mut SplitMix64, depth: u32) -> JsonValue {
    let scalar_only = depth == 0;
    match rng.below(if scalar_only { 5 } else { 7 }) {
        0 => JsonValue::Null,
        1 => JsonValue::Bool(rng.below(2) == 1),
        2 => JsonValue::Number(rng.below(1 << 40) as f64),
        3 => JsonValue::Number(rng.below(8_000) as f64 / 8.0 - 500.0),
        4 => JsonValue::String(random_string(rng)),
        5 => {
            let n = rng.below(4) as usize;
            JsonValue::Array((0..n).map(|_| random_value(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.below(4);
            let mut map = BTreeMap::new();
            for i in 0..n {
                // A unique prefix keeps keys distinct; the adversarial
                // suffix still exercises key escaping.
                map.insert(
                    format!("k{i}-{}", random_string(rng)),
                    random_value(rng, depth - 1),
                );
            }
            JsonValue::Object(map)
        }
    }
}

/// Emits `v` through the public `JsonWriter` surface.
fn write_value(w: &mut JsonWriter, v: &JsonValue) {
    match v {
        JsonValue::Null => {
            w.null();
        }
        JsonValue::Bool(b) => {
            w.bool(*b);
        }
        JsonValue::Number(n) => {
            // Route integers through the integer emitters (the writer has
            // no general float formatter for them) and fractions through
            // the fixed-precision float path.
            if n.fract() == 0.0 && *n >= 0.0 {
                w.u64(*n as u64);
            } else if n.fract() == 0.0 {
                w.i64(*n as i64);
            } else {
                w.f64(*n);
            }
        }
        JsonValue::String(s) => {
            w.string(s);
        }
        JsonValue::Array(items) => {
            w.begin_array();
            for item in items {
                write_value(w, item);
            }
            w.end_array();
        }
        JsonValue::Object(map) => {
            w.begin_object();
            for (k, item) in map {
                w.key(k);
                write_value(w, item);
            }
            w.end_object();
        }
    }
}

#[test]
fn string_escaping_round_trips_for_adversarial_inputs() {
    let seed = 0x5EED_0001u64;
    let mut rng = SplitMix64::new(seed);
    for iter in 0..500 {
        let s = random_string(&mut rng);
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_str("value", &s)
            .key("nested")
            .begin_array()
            .string(&s)
            .end_array()
            .end_object();
        let text = w.finish();
        let doc = JsonValue::parse(&text)
            .unwrap_or_else(|e| panic!("seed {seed:#x} iter {iter}: {e}\n{text}"));
        assert_eq!(
            doc.get("value").and_then(JsonValue::as_str),
            Some(s.as_str()),
            "seed {seed:#x} iter {iter}: field {s:?} mangled in {text}"
        );
        let arr = doc.get("nested").and_then(JsonValue::as_array).unwrap();
        assert_eq!(arr[0].as_str(), Some(s.as_str()));
    }
}

#[test]
fn nested_documents_round_trip_through_the_stats_parser() {
    let seed = 0x5EED_0002u64;
    let mut rng = SplitMix64::new(seed);
    for iter in 0..300 {
        // Top level is always an object, like every wire document.
        let mut map = BTreeMap::new();
        let n = 1 + rng.below(4);
        for i in 0..n {
            map.insert(format!("f{i}-{}", random_string(&mut rng)), {
                random_value(&mut rng, 3)
            });
        }
        let model = JsonValue::Object(map);
        let mut w = JsonWriter::new();
        write_value(&mut w, &model);
        let text = w.finish();
        let parsed = JsonValue::parse(&text)
            .unwrap_or_else(|e| panic!("seed {seed:#x} iter {iter}: {e}\n{text}"));
        assert_eq!(
            parsed, model,
            "seed {seed:#x} iter {iter}: round-trip diverged for {text}"
        );
    }
}

#[test]
fn stats_doc_accessors_survive_escaped_content() {
    // The exact path fetch_stats takes: raw text in, telemetry parse,
    // accessor out — with a mode string that needs every common escape.
    let mode = "gocc\"\\\n\t\u{1f}日🚀";
    let mut w = JsonWriter::new();
    w.begin_object()
        .field_str("mode", mode)
        .key("overload")
        .begin_object()
        .field_u64("shed_total", 3)
        .end_object()
        .end_object();
    let raw = w.finish();
    let doc = StatsDoc {
        parsed: JsonValue::parse(&raw).expect("stats parse"),
        raw,
    };
    assert_eq!(doc.mode(), Some(mode));
    assert_eq!(
        doc.parsed
            .get("overload")
            .and_then(|o| o.get("shed_total"))
            .and_then(JsonValue::as_f64),
        Some(3.0)
    );
}
