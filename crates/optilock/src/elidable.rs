//! Locks paired with the word that transactions subscribe to.

use gocc_gosync::{GoMutex, GoRwMutex};
use gocc_htm::LockWord;

/// A `sync.Mutex` whose acquisitions are visible to fast-path transactions.
///
/// On hardware the first word of the mutex *is* the subscribable state; the
/// simulation pairs the Go mutex with an explicit [`LockWord`] and keeps the
/// two in lock-step: every pessimistic acquisition marks the word (and
/// drains in-flight speculative commits), every release clears it. This is
/// how untransformed `Lock()`/`Unlock()` call sites — which GOCC explicitly
/// supports leaving in place (§4) — interoperate with elided sections.
#[derive(Debug, Default)]
pub struct ElidableMutex {
    mutex: GoMutex,
    word: LockWord,
}

impl ElidableMutex {
    /// Creates an unlocked mutex.
    #[must_use]
    pub fn new() -> Self {
        ElidableMutex::default()
    }

    /// The subscribable lock word.
    #[must_use]
    pub fn word(&self) -> &LockWord {
        &self.word
    }

    /// Stable identity used for perceptron features and `lkMutex` matching.
    #[must_use]
    pub fn id(&self) -> usize {
        self as *const Self as usize
    }

    /// Whether the mutex is held by a pessimistic owner.
    #[must_use]
    pub fn is_locked(&self) -> bool {
        self.mutex.is_locked()
    }

    /// Pessimistic acquisition (an untransformed `Lock()` call site, and
    /// the `optiLib` slow path).
    pub fn lock_raw(&self) {
        self.mutex.lock_raw();
        // No separate coherence charge here: on hardware the subscribable
        // word *is* the mutex's first word, so the transfer was already
        // paid by the state RMW inside `lock_raw`.
        self.word.mark_held_and_drain();
    }

    /// Pessimistic release.
    pub fn unlock_raw(&self) {
        self.word.clear_held();
        self.mutex.unlock_raw();
    }

    /// The underlying Go mutex, bypassing the lock word.
    ///
    /// For *baseline* (untransformed) executions only: a program that
    /// mixes raw acquisitions with elided sections on the same lock loses
    /// the subscription guarantee. Benchmarks use this so the pessimistic
    /// baseline pays exactly `sync.Mutex`'s cost, nothing more.
    #[must_use]
    pub fn go_mutex(&self) -> &gocc_gosync::GoMutex {
        &self.mutex
    }

    /// RAII pessimistic acquisition.
    pub fn lock(&self) -> ElidableMutexGuard<'_> {
        self.lock_raw();
        ElidableMutexGuard { m: self }
    }
}

/// RAII guard for [`ElidableMutex`].
#[must_use = "the mutex unlocks when the guard is dropped"]
#[derive(Debug)]
pub struct ElidableMutexGuard<'a> {
    m: &'a ElidableMutex,
}

impl Drop for ElidableMutexGuard<'_> {
    fn drop(&mut self) {
        self.m.unlock_raw();
    }
}

/// A `sync.RWMutex` whose acquisitions are visible to fast-path
/// transactions.
///
/// Slow-path readers are counted in the lock word (they are compatible with
/// speculative readers but must abort speculative writers); a slow-path
/// writer marks the word held.
#[derive(Debug, Default)]
pub struct ElidableRwMutex {
    rw: GoRwMutex,
    word: LockWord,
}

impl ElidableRwMutex {
    /// Creates an unlocked reader/writer mutex.
    #[must_use]
    pub fn new() -> Self {
        ElidableRwMutex::default()
    }

    /// The subscribable lock word.
    #[must_use]
    pub fn word(&self) -> &LockWord {
        &self.word
    }

    /// Stable identity used for perceptron features and `lkMutex` matching.
    #[must_use]
    pub fn id(&self) -> usize {
        self as *const Self as usize
    }

    /// Whether a pessimistic writer holds or is acquiring the lock.
    #[must_use]
    pub fn is_write_locked(&self) -> bool {
        self.rw.is_write_locked()
    }

    /// The underlying Go RWMutex, bypassing the lock word (baseline use
    /// only; see [`ElidableMutex::go_mutex`]).
    #[must_use]
    pub fn go_rwmutex(&self) -> &gocc_gosync::GoRwMutex {
        &self.rw
    }

    /// Pessimistic `RLock`.
    pub fn rlock_raw(&self) {
        self.rw.rlock_raw();
        // Same line as the RWMutex reader count on hardware; no extra
        // coherence charge.
        self.word.reader_enter_and_drain();
    }

    /// Pessimistic `RUnlock`.
    pub fn runlock_raw(&self) {
        self.word.reader_exit();
        self.rw.runlock_raw();
    }

    /// Pessimistic write `Lock`.
    pub fn lock_raw(&self) {
        self.rw.lock_raw();
        self.word.mark_held_and_drain();
    }

    /// Pessimistic write `Unlock`.
    pub fn unlock_raw(&self) {
        self.word.clear_held();
        self.rw.unlock_raw();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_word_tracks_pessimistic_ops() {
        let m = ElidableMutex::new();
        let v0 = m.word().observe();
        m.lock_raw();
        assert!(m.is_locked());
        assert!(m.word().is_write_held());
        m.unlock_raw();
        assert!(!m.is_locked());
        assert!(!m.word().is_write_held());
        assert_ne!(
            m.word().observe(),
            v0,
            "overlapping subscribers must notice"
        );
    }

    #[test]
    fn rw_word_tracks_readers_and_writers() {
        let rw = ElidableRwMutex::new();
        rw.rlock_raw();
        assert_eq!(rw.word().slow_readers(), 1);
        assert!(!rw.word().is_write_held());
        rw.runlock_raw();
        assert_eq!(rw.word().slow_readers(), 0);
        rw.lock_raw();
        assert!(rw.word().is_write_held());
        rw.unlock_raw();
        assert!(!rw.word().is_write_held());
    }

    #[test]
    fn guard_releases_on_drop() {
        let m = ElidableMutex::new();
        {
            let _g = m.lock();
            assert!(m.is_locked());
        }
        assert!(!m.is_locked());
    }
}
