//! `optiLib`: the adaptive HTM runtime of GOCC (§5.4 of the paper).
//!
//! This crate layers the paper's runtime logic on top of the simulated HTM
//! in `gocc-htm` and the Go-faithful locks in `gocc-gosync`:
//!
//! * [`ElidableMutex`] / [`ElidableRwMutex`] — a `sync.Mutex`/`sync.RWMutex`
//!   paired with the lock word transactions subscribe to;
//! * [`OptiLock`] — the per-critical-section state object with
//!   `FastLock()`/`FastUnlock()` semantics, including nesting, mutex
//!   mismatch detection and recovery (Appendix C), and the retry loop of
//!   Listing 19;
//! * [`Perceptron`] — the hashed perceptron (two 4K-entry weight tables,
//!   weights in [-16, 15], features: mutex ⊕ call-site and call-site) that
//!   learns per-site/per-lock whether HTM pays off, with the 1000-decision
//!   weight-decay reset;
//! * [`GoccRuntime`] — the bundle of HTM domain, perceptron, policy and
//!   statistics a program links against.
//!
//! The common entry points are the closure helpers [`critical_mutex`],
//! [`critical_read`] and [`critical_write`], which own the re-execution
//! loop that hardware performs by rolling back to `xbegin`:
//!
//! ```
//! use gocc_htm::TxVar;
//! use gocc_optilock::{critical_mutex, ElidableMutex, GoccRuntime};
//!
//! let rt = GoccRuntime::new_default();
//! let m = ElidableMutex::new();
//! let counter = TxVar::new(0u64);
//! let site = gocc_optilock::call_site!();
//!
//! let seen = critical_mutex(&rt, site, &m, |tx| {
//!     let v = tx.read(&counter)?;
//!     tx.write(&counter, v + 1)?;
//!     Ok(v)
//! });
//! assert_eq!(seen, 0);
//! ```

mod elidable;
mod perceptron;
mod policy;
mod runtime;
mod session;
mod stats;

pub use elidable::{ElidableMutex, ElidableRwMutex};
pub use perceptron::{Perceptron, PerceptronConfig, PerceptronSnapshot};
pub use policy::RetryPolicy;
pub use runtime::{GoccConfig, GoccRuntime};
pub use session::{
    critical, critical_mutex, critical_read, critical_write, HtmScope, LockRef, OptiLock,
};
pub use stats::{OptiStats, OptiStatsSnapshot};

/// Declares a stable call-site identifier for perceptron context hashing.
///
/// The paper uses the stack address of the `OptiLock` variable as the
/// calling-context feature; in Rust a per-call-site `static` provides a
/// stable identity across invocations and threads, which is strictly better
/// behaved as a learning feature.
#[macro_export]
macro_rules! call_site {
    () => {{
        static SITE: u8 = 0;
        std::ptr::addr_of!(SITE) as usize
    }};
}
