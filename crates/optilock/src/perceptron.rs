//! The hashed perceptron that decides HTM vs. lock per call (§5.4.1).

use std::sync::atomic::{AtomicI8, AtomicU32, AtomicU64, Ordering};

/// Entries per global weight table (the paper uses two 4K-entry arrays).
const TABLE_ENTRIES: usize = 4096;
/// Index mask (lower 12 bits after alignment shift).
const INDEX_MASK: usize = TABLE_ENTRIES - 1;
/// Saturation bounds: "the weights take an integer number from -16 to 15".
const WEIGHT_MIN: i8 = -16;
const WEIGHT_MAX: i8 = 15;

/// Tunables of the perceptron predictor.
#[derive(Clone, Debug)]
pub struct PerceptronConfig {
    /// Consecutive slow-path decisions before a cell's weights reset
    /// (the paper's weight decay, threshold 1000).
    pub decay_threshold: u32,
    /// Decision threshold: predict HTM when the weight sum is at least
    /// this value.
    pub threshold: i32,
}

impl Default for PerceptronConfig {
    fn default() -> Self {
        PerceptronConfig {
            decay_threshold: 1000,
            threshold: 0,
        }
    }
}

/// The pair of weight-table indices backing one prediction.
///
/// Carried from [`Perceptron::predict`] to the update calls so prediction
/// and training touch the same cells, exactly like the hardware-inspired
/// design computes indices once per lock call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Features {
    mutex_idx: usize,
    site_idx: usize,
}

/// A hashed perceptron with two global weight tables (GWT).
///
/// Features, per the paper: (1) the mutex — XORed with the `OptiLock`
/// identity so different goroutines/sites do not fight over one cell — and
/// (2) the calling context. Reads and updates are lock-free and racy by
/// design: "perfection is not required here, but high-performance is
/// necessary".
#[derive(Debug)]
pub struct Perceptron {
    mutex_weights: Box<[AtomicI8]>,
    site_weights: Box<[AtomicI8]>,
    mutex_streak: Box<[AtomicU32]>,
    site_streak: Box<[AtomicU32]>,
    resets: AtomicU64,
    config: PerceptronConfig,
}

/// A point-in-time copy of a [`Perceptron`]'s learning state (Figure 10's
/// back-off narrative, as data): both weight tables and decay/reset
/// events. Decision counts live in `OptiStats`
/// (`perceptron_htm`/`perceptron_slow`) — the predictor itself keeps no
/// shared counters off its lookup path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PerceptronSnapshot {
    /// The mutex⊕site weight table.
    pub mutex_weights: Vec<i8>,
    /// The call-site weight table.
    pub site_weights: Vec<i8>,
    /// Decay-driven weight resets.
    pub resets: u64,
}

impl PerceptronSnapshot {
    /// Number of non-zero cells in a table (how much of the 4K space a
    /// workload actually trained).
    #[must_use]
    pub fn trained_cells(table: &[i8]) -> usize {
        table.iter().filter(|&&w| w != 0).count()
    }

    /// Sum of all weights in a table — negative when the workload has
    /// broadly learned to avoid HTM.
    #[must_use]
    pub fn table_bias(table: &[i8]) -> i64 {
        table.iter().map(|&w| i64::from(w)).sum()
    }
}

#[inline]
fn index_of(feature: usize) -> usize {
    // The paper takes the lower 12 bits of the address, which decorrelates
    // well for stack-allocated OptiLocks that live pages apart. This
    // implementation identifies call sites by the addresses of per-site
    // statics, which the linker may place only bytes apart — a bit-slice
    // would alias neighbors into one cell (and let one site's rewards
    // cancel another's penalties), so finalize with SplitMix64 before
    // masking.
    let mut x = feature as u64;
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x as usize) & INDEX_MASK
}

impl Perceptron {
    /// Creates a perceptron with all weights at zero (optimistic: a zero
    /// sum meets the default threshold, so unseen sites try HTM first).
    #[must_use]
    pub fn new(config: PerceptronConfig) -> Self {
        let zeroed_i8 = |n: usize| (0..n).map(|_| AtomicI8::new(0)).collect();
        let zeroed_u32 = |n: usize| (0..n).map(|_| AtomicU32::new(0)).collect();
        Perceptron {
            mutex_weights: zeroed_i8(TABLE_ENTRIES),
            site_weights: zeroed_i8(TABLE_ENTRIES),
            mutex_streak: zeroed_u32(TABLE_ENTRIES),
            site_streak: zeroed_u32(TABLE_ENTRIES),
            resets: AtomicU64::new(0),
            config,
        }
    }

    /// Computes the feature indices for a (mutex, call-site) pair.
    #[inline]
    #[must_use]
    pub fn features(&self, mutex_id: usize, site: usize) -> Features {
        Features {
            mutex_idx: index_of(mutex_id ^ site),
            site_idx: index_of(site),
        }
    }

    /// Predicts whether HTM should be attempted for this call.
    ///
    /// A slow-path prediction advances the decay streak of both cells; once
    /// a cell has steered [`PerceptronConfig::decay_threshold`] consecutive
    /// calls to the slow path its weights reset to zero, so the next call
    /// gives HTM another chance ("without this reset, perceptron would get
    /// stuck on the slowpath").
    ///
    /// The HTM branch is the steady-state hot path: it costs exactly the
    /// two weight-table reads, and only touches the streak cells when
    /// there is a nonzero streak to clear — so repeated fast predictions
    /// never dirty a shared cache line. Decision *counting* lives with
    /// the caller (`OptiStats::perceptron_htm`/`perceptron_slow`), not
    /// here: a shared counter RMW per prediction would put every core on
    /// one cache line and cost more than the lookup it is counting.
    #[inline]
    #[must_use]
    pub fn predict(&self, features: Features) -> bool {
        let sum = i32::from(self.mutex_weights[features.mutex_idx].load(Ordering::Relaxed))
            + i32::from(self.site_weights[features.site_idx].load(Ordering::Relaxed));
        if sum >= self.config.threshold {
            for (streaks, idx) in [
                (&self.mutex_streak, features.mutex_idx),
                (&self.site_streak, features.site_idx),
            ] {
                if streaks[idx].load(Ordering::Relaxed) != 0 {
                    streaks[idx].store(0, Ordering::Relaxed);
                }
            }
            return true;
        }
        self.advance_streak(features);
        false
    }

    fn advance_streak(&self, features: Features) {
        for (streaks, weights, idx) in [
            (&self.mutex_streak, &self.mutex_weights, features.mutex_idx),
            (&self.site_streak, &self.site_weights, features.site_idx),
        ] {
            let s = streaks[idx].fetch_add(1, Ordering::Relaxed) + 1;
            if s >= self.config.decay_threshold {
                weights[idx].store(0, Ordering::Relaxed);
                streaks[idx].store(0, Ordering::Relaxed);
                self.resets.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Trains towards HTM: the prediction said HTM and the section finished
    /// on the fast path.
    #[inline]
    pub fn reward(&self, features: Features) {
        bump(&self.mutex_weights[features.mutex_idx], 1);
        bump(&self.site_weights[features.site_idx], 1);
    }

    /// Trains away from HTM: the prediction said HTM but execution fell
    /// back to the lock.
    pub fn penalize(&self, features: Features) {
        bump(&self.mutex_weights[features.mutex_idx], -1);
        bump(&self.site_weights[features.site_idx], -1);
    }

    /// Number of decay-driven weight resets so far.
    #[must_use]
    pub fn reset_count(&self) -> u64 {
        self.resets.load(Ordering::Relaxed)
    }

    /// Current weight sum for a feature pair (diagnostics).
    #[must_use]
    pub fn weight_sum(&self, features: Features) -> i32 {
        i32::from(self.mutex_weights[features.mutex_idx].load(Ordering::Relaxed))
            + i32::from(self.site_weights[features.site_idx].load(Ordering::Relaxed))
    }

    /// The individual `(mutex_cell, site_cell)` weights behind a feature
    /// pair (diagnostics; [`Perceptron::weight_sum`] is their sum).
    #[must_use]
    pub fn weights(&self, features: Features) -> (i8, i8) {
        (
            self.mutex_weights[features.mutex_idx].load(Ordering::Relaxed),
            self.site_weights[features.site_idx].load(Ordering::Relaxed),
        )
    }

    /// Copies the complete learning state for offline inspection.
    #[must_use]
    pub fn snapshot(&self) -> PerceptronSnapshot {
        PerceptronSnapshot {
            mutex_weights: self
                .mutex_weights
                .iter()
                .map(|w| w.load(Ordering::Relaxed))
                .collect(),
            site_weights: self
                .site_weights
                .iter()
                .map(|w| w.load(Ordering::Relaxed))
                .collect(),
            resets: self.resets.load(Ordering::Relaxed),
        }
    }
}

impl Default for Perceptron {
    fn default() -> Self {
        Perceptron::new(PerceptronConfig::default())
    }
}

/// Racy saturating weight update. A lost update under contention is
/// acceptable; saturation keeps weights in [-16, 15] regardless.
fn bump(cell: &AtomicI8, delta: i8) {
    let w = cell.load(Ordering::Relaxed);
    let new = w.saturating_add(delta).clamp(WEIGHT_MIN, WEIGHT_MAX);
    if new != w {
        cell.store(new, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Perceptron {
        Perceptron::default()
    }

    #[test]
    fn fresh_perceptron_predicts_htm() {
        let p = p();
        let f = p.features(0x1000, 0x2000);
        assert!(p.predict(f), "zero weights must meet the zero threshold");
    }

    #[test]
    fn penalties_flip_prediction_to_slow() {
        let p = p();
        let f = p.features(0x1000, 0x2000);
        p.penalize(f);
        assert!(!p.predict(f), "sum -2 is below threshold 0");
    }

    #[test]
    fn rewards_recover_prediction() {
        let p = p();
        let f = p.features(0x1000, 0x2000);
        p.penalize(f);
        p.reward(f);
        assert!(p.predict(f));
    }

    #[test]
    fn weights_saturate() {
        let p = p();
        let f = p.features(0x30, 0x40);
        for _ in 0..100 {
            p.penalize(f);
        }
        assert_eq!(p.weight_sum(f), -32, "two tables saturated at -16 each");
        for _ in 0..100 {
            p.reward(f);
        }
        assert_eq!(p.weight_sum(f), 30, "two tables saturated at 15 each");
    }

    #[test]
    fn decay_resets_weights_after_slow_streak() {
        let p = Perceptron::new(PerceptronConfig {
            decay_threshold: 10,
            threshold: 0,
        });
        let f = p.features(0x1000, 0x2000);
        p.penalize(f);
        for _ in 0..9 {
            assert!(!p.predict(f));
        }
        // Tenth consecutive slow decision triggers the reset.
        assert!(!p.predict(f));
        assert!(p.reset_count() >= 1);
        assert!(p.predict(f), "after decay the cell must try HTM again");
    }

    #[test]
    fn snapshot_reflects_training() {
        let p = p();
        let f = p.features(0x10, 0x20);
        assert!(p.predict(f));
        p.penalize(f);
        assert!(!p.predict(f));
        let snap = p.snapshot();
        assert_eq!(snap.resets, 0);
        assert_eq!(PerceptronSnapshot::trained_cells(&snap.mutex_weights), 1);
        assert_eq!(PerceptronSnapshot::trained_cells(&snap.site_weights), 1);
        assert_eq!(PerceptronSnapshot::table_bias(&snap.mutex_weights), -1);
        assert_eq!(p.weights(f), (-1, -1));
    }

    #[test]
    fn distinct_mutexes_use_distinct_cells() {
        let p = p();
        let f1 = p.features(0x10, 0x2000);
        let f2 = p.features(0x20, 0x2000);
        assert_ne!(f1.mutex_idx, f2.mutex_idx);
        assert_eq!(f1.site_idx, f2.site_idx);
    }
}
