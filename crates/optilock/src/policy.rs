//! The HTM retry policy (Listing 19's `MAX_ATTEMPTS` loop).

use gocc_htm::AbortCause;

/// Decides whether and how often to retry aborted transactions before
/// falling back to the lock.
///
/// Per §2 (challenge five), naive fall-back on every abort is detrimental,
/// but so is unbounded retrying under genuine conflicts; the policy retries
/// transient causes a bounded number of times and gives up immediately on
/// deterministic ones (capacity, unfriendly instructions, mismatched
/// mutexes).
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// HTM attempts per critical-section execution (Listing 19's
    /// `MAX_ATTEMPTS`).
    pub max_attempts: u32,
    /// Spin iterations while waiting for a held lock to release before
    /// starting a transaction ("spin with pause till lock held" in
    /// Listing 19).
    pub lock_wait_spins: u32,
    /// Livelock watchdog: after this many aborts within one critical
    /// section the runtime hard-forces the lock path, regardless of
    /// `max_attempts`. The budget above is the *tuning* bound; this is
    /// the *guarantee* bound — it caps total re-executions even under a
    /// pathological policy or a perpetually-transient abort stream, so a
    /// section always completes after at most `watchdog_abort_bound + 1`
    /// executions. Forced sections are counted in `OptiStats` and
    /// telemetry (`watchdog_forced`).
    pub watchdog_abort_bound: u32,
}

impl RetryPolicy {
    /// Whether an abort with `cause` merits another fast-path attempt,
    /// given `attempts_left` attempts remain.
    #[must_use]
    pub fn should_retry(&self, cause: AbortCause, attempts_left: u32) -> bool {
        attempts_left > 0 && cause.is_transient()
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            lock_wait_spins: 128,
            watchdog_abort_bound: 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gocc_htm::{LOCK_HELD_CODE, MUTEX_MISMATCH_CODE};

    /// Every `AbortCause` variant, paired with whether the policy may
    /// retry it. This is the retry state machine's full transition table:
    /// `should_retry(cause, n)` is `transient(cause) && n > 0`, and the
    /// budget-zero row is the absorbing "fall back to the lock" state.
    const TRANSITIONS: &[(AbortCause, bool)] = &[
        // Transient: another attempt may succeed.
        (AbortCause::Retry, true),
        (AbortCause::Conflict, true),
        (AbortCause::Explicit(LOCK_HELD_CODE), true),
        // Deterministic: retrying re-derives the same abort.
        (AbortCause::Capacity, false),
        (AbortCause::Debug, false),
        (AbortCause::Nested, false),
        (AbortCause::Unfriendly, false),
        (AbortCause::Explicit(MUTEX_MISMATCH_CODE), false),
        (AbortCause::Explicit(0x00), false),
        (AbortCause::Explicit(0x7F), false),
    ];

    #[test]
    fn every_cause_with_budget_follows_transience() {
        let p = RetryPolicy::default();
        for &(cause, transient) in TRANSITIONS {
            for budget in [1, 2, p.max_attempts, u32::MAX] {
                assert_eq!(
                    p.should_retry(cause, budget),
                    transient,
                    "cause {cause:?} budget {budget}"
                );
            }
        }
    }

    #[test]
    fn exhausted_budget_is_absorbing_for_every_cause() {
        let p = RetryPolicy::default();
        for &(cause, _) in TRANSITIONS {
            assert!(
                !p.should_retry(cause, 0),
                "cause {cause:?} must not retry at budget 0"
            );
        }
    }

    #[test]
    fn transience_matches_the_abort_taxonomy() {
        // The policy's transition table and the HTM crate's taxonomy must
        // agree, or the session layer would retry causes the policy
        // considers deterministic.
        for &(cause, transient) in TRANSITIONS {
            assert_eq!(cause.is_transient(), transient, "{cause:?}");
        }
    }

    #[test]
    fn watchdog_bound_exceeds_default_budget() {
        let p = RetryPolicy::default();
        // The watchdog is a backstop, not the common path: it must only
        // fire after the normal budget is long exhausted.
        assert!(p.watchdog_abort_bound > p.max_attempts);
    }
}
