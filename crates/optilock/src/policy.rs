//! The HTM retry policy (Listing 19's `MAX_ATTEMPTS` loop).

use gocc_htm::AbortCause;

/// Decides whether and how often to retry aborted transactions before
/// falling back to the lock.
///
/// Per §2 (challenge five), naive fall-back on every abort is detrimental,
/// but so is unbounded retrying under genuine conflicts; the policy retries
/// transient causes a bounded number of times and gives up immediately on
/// deterministic ones (capacity, unfriendly instructions, mismatched
/// mutexes).
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// HTM attempts per critical-section execution (Listing 19's
    /// `MAX_ATTEMPTS`).
    pub max_attempts: u32,
    /// Spin iterations while waiting for a held lock to release before
    /// starting a transaction ("spin with pause till lock held" in
    /// Listing 19).
    pub lock_wait_spins: u32,
}

impl RetryPolicy {
    /// Whether an abort with `cause` merits another fast-path attempt,
    /// given `attempts_left` attempts remain.
    #[must_use]
    pub fn should_retry(&self, cause: AbortCause, attempts_left: u32) -> bool {
        attempts_left > 0 && cause.is_transient()
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            lock_wait_spins: 128,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gocc_htm::{LOCK_HELD_CODE, MUTEX_MISMATCH_CODE};

    #[test]
    fn transient_causes_retry_while_budget_remains() {
        let p = RetryPolicy::default();
        assert!(p.should_retry(AbortCause::Conflict, 2));
        assert!(p.should_retry(AbortCause::Retry, 1));
        assert!(p.should_retry(AbortCause::Explicit(LOCK_HELD_CODE), 1));
        assert!(!p.should_retry(AbortCause::Conflict, 0));
    }

    #[test]
    fn deterministic_causes_never_retry() {
        let p = RetryPolicy::default();
        assert!(!p.should_retry(AbortCause::Capacity, 3));
        assert!(!p.should_retry(AbortCause::Unfriendly, 3));
        assert!(!p.should_retry(AbortCause::Explicit(MUTEX_MISMATCH_CODE), 3));
    }
}
