//! The bundle of state an `optiLib`-using program links against.

use std::sync::OnceLock;

use gocc_htm::{HtmConfig, HtmRuntime};
use gocc_telemetry::{Telemetry, TraceRecorder};

use crate::perceptron::{Perceptron, PerceptronConfig};
use crate::policy::RetryPolicy;
use crate::stats::OptiStats;

/// Configuration for a [`GoccRuntime`].
#[derive(Clone, Debug)]
pub struct GoccConfig {
    /// HTM domain configuration.
    pub htm: HtmConfig,
    /// Retry policy.
    pub policy: RetryPolicy,
    /// Perceptron tunables.
    pub perceptron: PerceptronConfig,
    /// When `false`, HTM is always attempted regardless of history — the
    /// "No Perceptron" configuration of Figure 10.
    pub perceptron_enabled: bool,
    /// When `true`, the runtime carries a [`Telemetry`] bundle and the
    /// session layer records per-site attribution, latencies and elision
    /// events. Off by default: the disabled hot path pays one branch on a
    /// `None` check and nothing else.
    pub telemetry_enabled: bool,
}

impl Default for GoccConfig {
    fn default() -> Self {
        GoccConfig::standard()
    }
}

impl GoccConfig {
    /// The default, perceptron-enabled configuration.
    #[must_use]
    pub fn standard() -> Self {
        GoccConfig {
            htm: HtmConfig::coffee_lake(),
            policy: RetryPolicy::default(),
            perceptron: PerceptronConfig::default(),
            perceptron_enabled: true,
            telemetry_enabled: false,
        }
    }

    /// Figure 10's "NP" configuration: always attempt HTM.
    #[must_use]
    pub fn no_perceptron() -> Self {
        GoccConfig {
            perceptron_enabled: false,
            ..GoccConfig::standard()
        }
    }

    /// [`GoccConfig::standard`] with telemetry recording on.
    #[must_use]
    pub fn with_telemetry() -> Self {
        GoccConfig {
            telemetry_enabled: true,
            ..GoccConfig::standard()
        }
    }
}

/// One `optiLib` instance: HTM domain, perceptron, policy, statistics.
///
/// Production code uses [`GoccRuntime::global`]; benchmarks construct a
/// private runtime per configuration point so learning state does not leak
/// between runs.
#[derive(Debug)]
pub struct GoccRuntime {
    htm: HtmRuntime,
    perceptron: Perceptron,
    policy: RetryPolicy,
    perceptron_enabled: bool,
    stats: OptiStats,
    telemetry: Option<Box<Telemetry>>,
    tracer: Box<TraceRecorder>,
}

impl GoccRuntime {
    /// Creates a runtime from a configuration.
    #[must_use]
    pub fn new(config: GoccConfig) -> Self {
        GoccRuntime {
            htm: HtmRuntime::new(config.htm),
            perceptron: Perceptron::new(config.perceptron),
            policy: config.policy,
            perceptron_enabled: config.perceptron_enabled,
            stats: OptiStats::default(),
            telemetry: config.telemetry_enabled.then(|| Box::new(Telemetry::new())),
            tracer: Box::new(TraceRecorder::new()),
        }
    }

    /// Creates a runtime with [`GoccConfig::standard`].
    #[must_use]
    pub fn new_default() -> Self {
        GoccRuntime::new(GoccConfig::standard())
    }

    /// The process-wide runtime.
    #[must_use]
    pub fn global() -> &'static GoccRuntime {
        static GLOBAL: OnceLock<GoccRuntime> = OnceLock::new();
        GLOBAL.get_or_init(GoccRuntime::new_default)
    }

    /// The HTM domain.
    #[must_use]
    pub fn htm(&self) -> &HtmRuntime {
        &self.htm
    }

    /// The perceptron predictor.
    #[must_use]
    pub fn perceptron(&self) -> &Perceptron {
        &self.perceptron
    }

    /// The retry policy.
    #[must_use]
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Whether perceptron gating is active (Figure 10 ablation switch).
    #[must_use]
    pub fn perceptron_enabled(&self) -> bool {
        self.perceptron_enabled
    }

    /// `optiLib` statistics.
    #[must_use]
    pub fn stats(&self) -> &OptiStats {
        &self.stats
    }

    /// The telemetry bundle, when [`GoccConfig::telemetry_enabled`] is set.
    #[must_use]
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_deref()
    }

    /// The per-request flight recorder. Always present — sampling is off
    /// (and the hot path pays one global relaxed load) until
    /// [`TraceRecorder::configure`] enables it.
    #[must_use]
    pub fn tracer(&self) -> &TraceRecorder {
        &self.tracer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_is_singleton() {
        assert!(std::ptr::eq(GoccRuntime::global(), GoccRuntime::global()));
    }

    #[test]
    fn np_config_disables_perceptron() {
        let rt = GoccRuntime::new(GoccConfig::no_perceptron());
        assert!(!rt.perceptron_enabled());
        assert!(GoccRuntime::new_default().perceptron_enabled());
    }

    #[test]
    fn telemetry_is_opt_in() {
        assert!(GoccRuntime::new_default().telemetry().is_none());
        let rt = GoccRuntime::new(GoccConfig::with_telemetry());
        assert!(rt.telemetry().is_some());
    }
}
